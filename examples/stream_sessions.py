"""Stream serving: four concurrent client sessions on one server.

Four clients watch the 'bicycle' scene at once — two head-jittering
viewers (seated AR users), one orbiting viewer, and one dollying
viewer — multiplexed by a :class:`~repro.stream.server.StreamServer`
over two worker processes.  Each session keeps its own cross-frame
state (warm tile binning + temporal reuse cache) alive on its worker
for the whole stream, so every client's warm hit rate climbs above
its own frame-0 cold baseline.

Run:  PYTHONPATH=src python examples/stream_sessions.py
"""

from repro.harness import format_table
from repro.scenes.catalog import CATALOG
from repro.stream import CameraTrajectory, StreamServer, StreamSession

SCENE = "bicycle"
FRAMES = 12
WORKERS = 2


def main() -> None:
    spec = CATALOG[SCENE]
    sessions = [
        StreamSession(
            "jitter-a",
            SCENE,
            CameraTrajectory.for_scene(
                spec, "head_jitter", n_frames=FRAMES, seed=1
            ),
        ),
        StreamSession(
            "jitter-b",
            SCENE,
            CameraTrajectory.for_scene(
                spec, "head_jitter", n_frames=FRAMES, seed=2
            ),
        ),
        StreamSession(
            "orbiter",
            SCENE,
            CameraTrajectory.for_scene(spec, "orbit", n_frames=FRAMES),
        ),
        StreamSession(
            "dollier",
            SCENE,
            CameraTrajectory.for_scene(spec, "dolly", n_frames=FRAMES),
        ),
    ]

    print(
        f"Serving {len(sessions)} sessions x {FRAMES} frames of '{SCENE}' "
        f"over {WORKERS} workers ..."
    )
    with StreamServer(workers=WORKERS) as server:
        server.warm_up()
        results, summary = server.serve_timed(sessions)

    rows = [
        [
            r.session_id,
            r.report.trajectory,
            r.worker,
            r.report.cold_hit_rate,
            r.report.warm_hit_rate,
            r.report.binning_reuse,
            r.report.mean_sim_fps,
        ]
        for r in results
    ]
    print(
        format_table(
            [
                "session",
                "path",
                "worker",
                "cold hit",
                "warm hit",
                "bin reuse",
                "sim FPS",
            ],
            rows,
        )
    )
    print(
        f"\naggregate: {summary.total_frames} frames, "
        f"{summary.sim_frames_per_sec:.1f} simulated frames/sec over "
        f"{summary.workers} workers "
        f"({summary.wall_frames_per_sec:.2f} wall frames/sec on this host)"
    )


if __name__ == "__main__":
    main()
