"""Cache design-space exploration (Fig. 17 and beyond).

Sweeps the Gaussian Reuse Cache capacity on one scene per application
class, compares the paper's precomputed reuse-distance policy against
LRU and FIFO at the shipping 32 KB size, and reports the saturation
point that justifies the paper's capacity choice (Sec. VI-E).

Run:  python examples/cache_explorer.py
"""

from repro.analysis.cache_study import CACHE_SIZES, compare_policies, sweep_scene
from repro.harness import format_table

SCENES = ("bonsai", "flame_steak", "female_4")


def main() -> None:
    print("hit rate vs cache capacity (reuse-distance policy):\n")
    rows = []
    for scene in SCENES:
        result = sweep_scene(scene)
        rows.append(
            [scene, result.app_type.value]
            + [result.hit_rates[s] for s in CACHE_SIZES]
            + [f"{result.saturation_size() // 1024}KB"]
        )
    headers = (
        ["scene", "type"]
        + [f"{s // 1024}KB" for s in CACHE_SIZES]
        + ["saturates@"]
    )
    print(format_table(headers, rows))

    # At the simulated scene scale a 32 KB cache already holds the
    # working set (every policy ties); compare policies where capacity
    # is actually contended, mirroring the paper's full-scale regime.
    print("\nreplacement-policy comparison at 4 KB (capacity-contended):\n")
    rows = []
    for scene in SCENES:
        comparison = compare_policies(scene, capacity_bytes=4 * 1024)
        rates = comparison.hit_rates
        rows.append(
            [
                scene,
                rates["reuse_distance"],
                rates["lru"],
                rates["fifo"],
                comparison.rd_advantage_over_lru,
            ]
        )
    print(format_table(
        ["scene", "reuse-distance", "LRU", "FIFO", "RD advantage"], rows
    ))
    print("\nThe precomputable access trace is what lets the hardware "
          "realize a Belady-style policy (Sec. V-D): under capacity "
          "pressure a generic LRU leaves hit rate on the table.")


if __name__ == "__main__":
    main()
