"""Quickstart: render a random scene three ways and compare.

Builds a small random Gaussian cloud, renders it with

1. the reference PFS rasterizer (the 3DGS baseline),
2. the IRSS dataflow (same image, ~80-90% fewer fragments),
3. the GBU hardware model (fp16 datapath, cycle + energy accounting),

and prints the equivalence/speedup numbers the paper is built on.
Rendering goes through the pluggable backend registry
(`repro.render.backends`): the scoped `use_backend("vectorized")`
switch makes every render below use the instance-batched engine, which
is pixel-exact against the scalar reference loops.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

import numpy as np

from repro import (
    Camera,
    GaussianCloud,
    GBUConfig,
    GBUDevice,
    list_backends,
    project,
    render_irss,
    render_reference,
    use_backend,
)
from repro.metrics.image import psnr


def main() -> None:
    rng = np.random.default_rng(7)
    cloud = GaussianCloud.random(800, rng, extent=1.0, scale_range=(0.02, 0.12))
    camera = Camera.look_at(
        eye=[0.5, 0.4, -3.0], target=[0, 0, 0], width=160, height=120
    )

    backends = ", ".join(f"{k} ({v})" for k, v in list_backends().items())
    print(f"registered backends: {backends}\n")

    projected = project(cloud, camera)
    print(f"visible Gaussians: {len(projected)} / {len(cloud)}")

    with use_backend("vectorized"):
        # 1. Reference: Parallel Fragment Shading (tile-lockstep).
        reference = render_reference(projected)
        print(
            f"PFS     : {reference.stats.fragments_shaded:>9,} fragments shaded, "
            f"{reference.stats.significant_fraction:.1%} significant"
        )

        # 2. IRSS: row-sequential shading with compute sharing + skipping.
        irss = render_irss(projected)
        max_diff = np.abs(irss.image - reference.image).max()
        print(
            f"IRSS    : {irss.stats.fragments_shaded:>9,} fragments shaded "
            f"(skip rate {irss.stats.skip_rate:.1%}), "
            f"{irss.stats.flops_per_fragment:.2f} Eq.7 FLOPs/fragment, "
            f"max image diff vs PFS = {max_diff:.2e}"
        )

    # 3. GBU: the hardware model (D&B + tile engine + reuse cache, fp16).
    # The feature configuration (Tab. V axes) and the render backend are
    # both carried by GBUConfig.
    device = GBUDevice(
        config=GBUConfig(
            use_dnb=True,
            use_cache=True,
            cache_policy="reuse_distance",
            fp16=True,
            backend="vectorized",
        )
    )
    report = device.render(projected)
    print(
        f"GBU     : {report.step3_seconds * 1e6:8.1f} us simulated Step-3, "
        f"Row-PE utilization {report.utilization:.1%}, "
        f"cache hit rate {report.cache.hit_rate:.1%}, "
        f"PSNR vs PFS = {psnr(reference.image, report.image):.1f} dB (fp16)"
    )


if __name__ == "__main__":
    main()
