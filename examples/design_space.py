"""GBU design-space exploration (beyond the paper's shipping config).

Varies the hardware parameters the paper fixed — Row PE count, row
assignment, cache size, cross-tile streaming — and measures simulated
Step-3 latency on a static scene.  This is the kind of what-if a
downstream architect would run with this library.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro import project
from repro.core.gbu import GBUConfig, GBUDevice
from repro.gpu.specs import GBU_SPEC
from repro.gpu.workload import ScaleFactors
from repro.harness import format_table
from repro.scenes import build_scene


def main() -> None:
    bundle = build_scene("kitchen")
    cloud, _ = bundle.frame_cloud(0)
    projected = project(cloud, bundle.camera)
    scales = ScaleFactors.for_scene(bundle.spec)

    variants = [
        ("shipping (8 PEs, interleaved, 32KB)", GBU_SPEC, GBUConfig()),
        ("4 Row PEs", replace(GBU_SPEC, n_row_pes=4, rows_per_pe=4), GBUConfig()),
        ("16 Row PEs", replace(GBU_SPEC, n_row_pes=16, rows_per_pe=1), GBUConfig()),
        ("contiguous row pairs", GBU_SPEC, GBUConfig(interleaved_rows=False)),
        ("per-tile barrier", GBU_SPEC, GBUConfig(cross_tile_overlap=False)),
        ("no reuse cache", GBU_SPEC, GBUConfig(use_cache=False)),
        ("8KB cache", replace(GBU_SPEC, cache_bytes=8 * 1024), GBUConfig()),
        ("128KB cache", replace(GBU_SPEC, cache_bytes=128 * 1024), GBUConfig()),
        ("LRU cache", GBU_SPEC, GBUConfig(cache_policy="lru")),
    ]

    rows = []
    shipping_s = None
    for label, spec, config in variants:
        report = GBUDevice(spec=spec, config=config).render(
            projected, scales=scales
        )
        if shipping_s is None:
            shipping_s = report.step3_seconds
        rows.append(
            [
                label,
                report.step3_seconds * 1e3,
                shipping_s / report.step3_seconds,
                report.utilization,
                report.cache.hit_rate,
            ]
        )
    print(format_table(
        ["design point", "step-3 ms", "vs shipping", "PE util", "cache hit"],
        rows,
    ))
    print("\nThe shipping point is on the knee everywhere: more PEs win "
          "little (generation engine and memory take over), smaller "
          "caches or LRU give up hit rate, and the per-tile barrier "
          "shows what the Row Buffers buy.")


if __name__ == "__main__":
    main()
