"""Avatar animation: pose-driven Gaussians through the full pipeline.

Animates the 'female_4' stand-in through a walk cycle: linear blend
skinning poses the splats (the application-specific Rendering Step 1),
then the shared Steps 2-3 run on the GBU.  Shows why avatars have the
largest Step-1 share (Fig. 5) and the smallest energy win (Fig. 15):
the GPU stays busy skinning while the GBU blends.

Run:  python examples/avatar_animation.py
"""

import numpy as np

from repro import project
from repro.analysis.endtoend import evaluate_scene
from repro.dynamics.avatar import walking_pose
from repro.harness import format_table
from repro.metrics.energy import EnergyModel
from repro.scenes import build_scene


def main() -> None:
    bundle = build_scene("female_4")
    model = bundle.avatar_model
    print(
        f"avatar: {len(model)} splats bound to "
        f"{model.skeleton.n_joints} joints"
    )

    rows = []
    for frame in range(8):
        t = frame / 8
        theta = walking_pose(t)
        posed = model.at_pose(theta)
        projected = project(posed, bundle.camera)
        baseline = evaluate_scene(bundle.spec, "gpu_pfs", frame=frame, bundle=bundle)
        gbu = evaluate_scene(bundle.spec, "gbu_full", frame=frame, bundle=bundle)
        eff = EnergyModel.efficiency_improvement(baseline.energy, gbu.energy)
        rows.append(
            [
                frame,
                f"{np.rad2deg(theta[11]):+.0f}deg",  # left hip swing
                len(projected),
                baseline.fps,
                gbu.fps,
                gbu.gpu_seconds * 1e3,
                eff,
            ]
        )
    print(format_table(
        ["frame", "hip", "visible", "Orin FPS", "GBU FPS", "GPU-side ms", "energy eff"],
        rows,
    ))
    print("\nNote the GPU-side milliseconds: skinning keeps the GPU busy, "
          "capping the avatar energy win near the paper's 2.5x.")


if __name__ == "__main__":
    main()
