"""Dynamic scene (4D Gaussians): render an animation through the GBU.

Slices the 'flame_steak' stand-in at 12 timesteps, renders each frame
through the GPU baseline model and the GBU-enhanced system, and prints
the per-frame FPS timeline — the workload breathes as transient
kernels appear and disappear, but the GBU side stays above 60 FPS.
Both systems render through the vectorized backend (pixel-exact, ~5x
faster combined than the reference loops).

Run:  PYTHONPATH=src python examples/dynamic_scene.py
"""

from repro.analysis.endtoend import evaluate_scene
from repro.harness import format_table
from repro.scenes import build_scene

BACKEND = "vectorized"


def main() -> None:
    bundle = build_scene("flame_steak")
    bundle.n_eval_frames = 12
    print("Rendering 12 timesteps of 'flame_steak' (4D Gaussians) ...")

    rows = []
    for frame in range(12):
        baseline = evaluate_scene(
            bundle.spec, "gpu_pfs", frame=frame, bundle=bundle, backend=BACKEND
        )
        gbu = evaluate_scene(
            bundle.spec, "gbu_full", frame=frame, bundle=bundle, backend=BACKEND
        )
        cloud, _ = bundle.frame_cloud(frame)
        rows.append(
            [
                frame,
                len(cloud),
                baseline.fps,
                gbu.fps,
                gbu.fps / baseline.fps,
                gbu.gbu_report.cache.hit_rate,
            ]
        )
    print(format_table(
        ["frame", "active kernels", "Orin FPS", "GBU FPS", "speedup", "cache hit"],
        rows,
    ))
    worst = min(r[3] for r in rows)
    print(f"\nworst-case GBU frame rate across the clip: {worst:.1f} FPS "
          f"({'real-time' if worst >= 60 else 'below real-time'})")


if __name__ == "__main__":
    main()
