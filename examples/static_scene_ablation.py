"""Static-scene walkthrough: the Tab. V ablation on one scene.

Evaluates the 'kitchen' MipNeRF-360 stand-in under every system
configuration — baseline GPU, IRSS-on-GPU, then the GBU with its
engines enabled one by one — and prints the FPS / energy / quality
story of the paper's Tab. V.

Run:  python examples/static_scene_ablation.py [scene]
"""

import sys

from repro.analysis.endtoend import CONFIG_NAMES, evaluate_all_configs
from repro.harness import format_table
from repro.metrics.energy import EnergyModel
from repro.metrics.image import psnr

LABELS = {
    "gpu_pfs": "Jetson Orin NX (PFS baseline)",
    "gpu_irss": "+ IRSS dataflow (CUDA kernel)",
    "gbu_tile": "+ GBU Row-Centric Tile Engine",
    "gbu_dnb": "+ GBU Decomposition & Binning",
    "gbu_full": "+ GBU Gaussian Reuse Cache",
}


def main(scene: str = "kitchen") -> None:
    print(f"Running the Tab. V ablation on '{scene}' ...")
    results = evaluate_all_configs(scene)
    baseline = results["gpu_pfs"]

    rows = []
    for name in CONFIG_NAMES:
        result = results[name]
        eff = EnergyModel.efficiency_improvement(baseline.energy, result.energy)
        quality = psnr(baseline.image, result.image)
        rows.append(
            [
                LABELS[name],
                result.fps,
                result.fps / baseline.fps,
                eff,
                "inf" if quality == float("inf") else f"{quality:.1f}",
            ]
        )
    print(format_table(
        ["configuration", "FPS", "speedup", "energy eff", "PSNR vs baseline"],
        rows,
    ))

    full = results["gbu_full"].gbu_report
    print(
        f"\nGBU internals: compute {full.compute_seconds * 1e3:.2f} ms, "
        f"memory {full.memory_seconds * 1e3:.2f} ms, "
        f"D&B {full.dnb_seconds * 1e3:.2f} ms, "
        f"feature-traffic reduction {full.traffic_reduction:.1%}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "kitchen")
