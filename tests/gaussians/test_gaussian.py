"""Unit tests for the GaussianCloud container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.gaussians.gaussian import GaussianCloud, quaternion_to_rotation


class TestQuaternionToRotation:
    def test_identity_quaternion(self):
        rot = quaternion_to_rotation(np.array([[1.0, 0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(rot[0], np.eye(3), atol=1e-12)

    def test_rotations_are_orthonormal(self, rng):
        quats = rng.normal(size=(50, 4))
        rots = quaternion_to_rotation(quats)
        for r in rots:
            np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-10)

    def test_unnormalized_quaternions_accepted(self):
        rot_a = quaternion_to_rotation(np.array([[1.0, 2.0, 3.0, 4.0]]))
        rot_b = quaternion_to_rotation(np.array([[2.0, 4.0, 6.0, 8.0]]))
        np.testing.assert_allclose(rot_a, rot_b, atol=1e-12)

    def test_z_axis_quarter_turn(self):
        half = np.pi / 4
        quat = np.array([[np.cos(half), 0.0, 0.0, np.sin(half)]])
        rot = quaternion_to_rotation(quat)[0]
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValidationError):
            quaternion_to_rotation(np.zeros((1, 4)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            quaternion_to_rotation(np.ones((3, 3)))


class TestCovariances:
    def test_covariances_are_symmetric_psd(self, rng):
        cloud = GaussianCloud.random(40, rng)
        covs = cloud.covariances()
        for c in covs:
            np.testing.assert_allclose(c, c.T, atol=1e-12)
            eigenvalues = np.linalg.eigvalsh(c)
            assert np.all(eigenvalues > 0)

    def test_isotropic_cloud_covariance_diagonal(self):
        cloud = GaussianCloud(
            means=np.zeros((1, 3)),
            scales=np.full((1, 3), 0.5),
            quats=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacities=np.array([0.5]),
            sh=np.zeros((1, 9, 3)),
        )
        np.testing.assert_allclose(cloud.covariances()[0], 0.25 * np.eye(3), atol=1e-12)

    def test_rotation_preserves_eigenvalues(self, rng):
        scales = np.array([[0.1, 0.2, 0.3]])
        base = GaussianCloud(
            means=np.zeros((1, 3)),
            scales=scales,
            quats=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacities=np.array([0.5]),
            sh=np.zeros((1, 4, 3)),
        )
        rotated = GaussianCloud(
            means=np.zeros((1, 3)),
            scales=scales,
            quats=rng.normal(size=(1, 4)),
            opacities=np.array([0.5]),
            sh=np.zeros((1, 4, 3)),
        )
        ev_base = np.sort(np.linalg.eigvalsh(base.covariances()[0]))
        ev_rot = np.sort(np.linalg.eigvalsh(rotated.covariances()[0]))
        np.testing.assert_allclose(ev_base, ev_rot, rtol=1e-10)


class TestValidation:
    def _kwargs(self, n=3):
        return dict(
            means=np.zeros((n, 3)),
            scales=np.full((n, 3), 0.1),
            quats=np.tile([1.0, 0, 0, 0], (n, 1)),
            opacities=np.full(n, 0.5),
            sh=np.zeros((n, 9, 3)),
        )

    def test_valid_cloud_builds(self):
        cloud = GaussianCloud(**self._kwargs())
        assert len(cloud) == 3
        assert cloud.sh_degree == 2

    def test_negative_scale_rejected(self):
        kwargs = self._kwargs()
        kwargs["scales"][1, 2] = -0.1
        with pytest.raises(ValidationError):
            GaussianCloud(**kwargs)

    def test_opacity_out_of_range_rejected(self):
        kwargs = self._kwargs()
        kwargs["opacities"][0] = 1.5
        with pytest.raises(ValidationError):
            GaussianCloud(**kwargs)

    def test_zero_opacity_rejected(self):
        kwargs = self._kwargs()
        kwargs["opacities"][0] = 0.0
        with pytest.raises(ValidationError):
            GaussianCloud(**kwargs)

    def test_partial_sh_band_rejected(self):
        kwargs = self._kwargs()
        kwargs["sh"] = np.zeros((3, 7, 3))  # not a full degree
        with pytest.raises(ValidationError):
            GaussianCloud(**kwargs)

    def test_nonfinite_means_rejected(self):
        kwargs = self._kwargs()
        kwargs["means"][0, 0] = np.nan
        with pytest.raises(ValidationError):
            GaussianCloud(**kwargs)

    def test_mismatched_lengths_rejected(self):
        kwargs = self._kwargs()
        kwargs["opacities"] = np.full(4, 0.5)
        with pytest.raises(ValidationError):
            GaussianCloud(**kwargs)


class TestManipulation:
    def test_subset_selects(self, rng):
        cloud = GaussianCloud.random(20, rng)
        sub = cloud.subset(np.array([3, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.means[1], cloud.means[5])

    def test_translated_moves_means_only(self, rng):
        cloud = GaussianCloud.random(10, rng)
        moved = cloud.translated([1.0, -2.0, 3.0])
        np.testing.assert_allclose(moved.means, cloud.means + [1.0, -2.0, 3.0])
        np.testing.assert_array_equal(moved.scales, cloud.scales)

    def test_perturbed_zero_sigma_is_identity(self, rng):
        cloud = GaussianCloud.random(10, rng)
        same = cloud.perturbed(np.random.default_rng(0))
        np.testing.assert_allclose(same.means, cloud.means)
        np.testing.assert_allclose(same.opacities, cloud.opacities)

    def test_perturbed_keeps_validity(self, rng):
        cloud = GaussianCloud.random(30, rng)
        noisy = cloud.perturbed(
            np.random.default_rng(1),
            position_sigma=0.1,
            scale_sigma=0.3,
            opacity_sigma=0.5,
            sh_sigma=0.1,
        )
        noisy.validate()
        assert np.all(noisy.opacities > 0)

    def test_concatenate(self, rng):
        a = GaussianCloud.random(5, rng)
        b = GaussianCloud.random(7, rng)
        merged = GaussianCloud.concatenate([a, b])
        assert len(merged) == 12
        np.testing.assert_array_equal(merged.means[:5], a.means)

    def test_concatenate_mixed_degrees_rejected(self, rng):
        a = GaussianCloud.random(5, rng, sh_degree=1)
        b = GaussianCloud.random(5, rng, sh_degree=2)
        with pytest.raises(ValidationError):
            GaussianCloud.concatenate([a, b])

    def test_concatenate_empty_list_rejected(self):
        with pytest.raises(ValidationError):
            GaussianCloud.concatenate([])

    def test_empty_cloud(self):
        cloud = GaussianCloud.empty()
        assert len(cloud) == 0
        assert cloud.covariances().shape == (0, 3, 3)


class TestRandomFactory:
    def test_deterministic_with_seed(self):
        a = GaussianCloud.random(15, np.random.default_rng(9))
        b = GaussianCloud.random(15, np.random.default_rng(9))
        np.testing.assert_array_equal(a.means, b.means)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValidationError):
            GaussianCloud.random(-1, rng)

    @given(n=st.integers(min_value=0, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_any_count_valid(self, n):
        cloud = GaussianCloud.random(n, np.random.default_rng(n))
        assert len(cloud) == n
        cloud.validate()
