"""Unit tests for the tile grid and binning."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians import GaussianCloud, Camera, project
from repro.gaussians.tiles import (
    TileGrid,
    bin_gaussians,
    duplication_count,
    ellipse_intersects_rect,
    exact_tile_intersections,
    tile_rect_of_footprint,
)


class TestTileGrid:
    def test_tile_counts(self):
        grid = TileGrid(width=100, height=50, tile=16)
        assert grid.tiles_x == 7
        assert grid.tiles_y == 4
        assert grid.n_tiles == 28

    def test_exact_multiple(self):
        grid = TileGrid(width=64, height=32)
        assert grid.tiles_x == 4 and grid.tiles_y == 2

    def test_bounds_clipped_to_image(self):
        grid = TileGrid(width=100, height=50)
        x0, y0, x1, y1 = grid.tile_bounds(grid.n_tiles - 1)
        assert x1 == 100 and y1 == 50
        assert grid.tile_shape(grid.n_tiles - 1) == (50 - y0, 100 - x0)

    def test_origin_row_major(self):
        grid = TileGrid(width=64, height=64)
        assert grid.tile_origin(0) == (0, 0)
        assert grid.tile_origin(1) == (16, 0)
        assert grid.tile_origin(4) == (0, 16)

    def test_traversal_order_covers_all(self):
        grid = TileGrid(width=80, height=48)
        order = grid.traversal_order()
        assert sorted(order.tolist()) == list(range(grid.n_tiles))

    def test_invalid_dimensions(self):
        with pytest.raises(ValidationError):
            TileGrid(width=0, height=10)


class TestFootprintRect:
    def test_small_footprint_single_tile(self):
        grid = TileGrid(width=64, height=64)
        rect = tile_rect_of_footprint(grid, np.array([8.0, 8.0]), 2.0)
        assert rect == (0, 0, 1, 1)

    def test_footprint_spanning_tiles(self):
        grid = TileGrid(width=64, height=64)
        rect = tile_rect_of_footprint(grid, np.array([16.0, 16.0]), 2.0)
        assert rect == (0, 0, 2, 2)

    def test_clipped_to_grid(self):
        grid = TileGrid(width=64, height=64)
        rect = tile_rect_of_footprint(grid, np.array([63.0, 63.0]), 100.0)
        assert rect == (0, 0, 4, 4)


class TestBinning:
    def test_every_footprint_lands_somewhere(self, rng):
        grid = TileGrid(width=128, height=96)
        means = rng.uniform([0, 0], [128, 96], size=(40, 2))
        radii = rng.uniform(1, 10, size=40)
        per_tile = bin_gaussians(grid, means, radii)
        seen = np.unique(np.concatenate([t for t in per_tile if len(t)]))
        assert len(seen) == 40

    def test_binning_preserves_input_order(self):
        grid = TileGrid(width=32, height=32)
        means = np.array([[8.0, 8.0], [9.0, 9.0], [7.0, 7.0]])
        radii = np.array([2.0, 2.0, 2.0])
        per_tile = bin_gaussians(grid, means, radii)
        np.testing.assert_array_equal(per_tile[0], [0, 1, 2])

    def test_mismatched_inputs_rejected(self):
        grid = TileGrid(width=32, height=32)
        with pytest.raises(ValidationError):
            bin_gaussians(grid, np.zeros((3, 2)), np.zeros(4))

    def test_duplication_count(self):
        grid = TileGrid(width=32, height=32)
        means = np.array([[16.0, 16.0]])
        radii = np.array([10.0])
        per_tile = bin_gaussians(grid, means, radii)
        assert duplication_count(per_tile) == 4


class TestEllipseRect:
    def test_center_inside(self):
        conic = np.array([1.0, 0.0, 1.0])
        assert ellipse_intersects_rect(conic, np.array([5.0, 5.0]), 1.0, 0, 0, 10, 10)

    def test_far_outside(self):
        conic = np.array([1.0, 0.0, 1.0])
        assert not ellipse_intersects_rect(
            conic, np.array([50.0, 50.0]), 4.0, 0, 0, 10, 10
        )

    def test_edge_crossing(self):
        # Circle of radius 2 centered just outside the right edge.
        conic = np.array([1.0, 0.0, 1.0])
        assert ellipse_intersects_rect(
            conic, np.array([11.0, 5.0]), 4.0, 0, 0, 10, 10
        )

    def test_corner_miss_aabb_hit(self):
        """Diagonal ellipse whose AABB overlaps the rect corner but
        whose body does not: the exact test must reject it."""
        # Narrow ellipse along the (1,1) diagonal near the corner.
        conic = np.array([10.0, -9.9, 10.0])  # elongated along (1,1)
        center = np.array([12.5, -2.5])
        assert not ellipse_intersects_rect(conic, center, 1.0, 0, 0, 10, 10)


class TestExactIntersections:
    def test_exact_subset_of_conservative(self, rng):
        camera = Camera.look_at(eye=[0, 0, -3], target=[0, 0, 0],
                                width=96, height=64)
        cloud = GaussianCloud.random(80, rng, extent=0.4)
        projected = project(cloud, camera)
        grid = TileGrid(width=96, height=64)
        coarse = bin_gaussians(grid, projected.means2d, projected.radii)
        exact = exact_tile_intersections(
            grid, projected.means2d, projected.radii,
            projected.conics, projected.thresholds,
        )
        for tile_coarse, tile_exact in zip(coarse, exact):
            assert set(tile_exact.tolist()) <= set(tile_coarse.tolist())
        assert duplication_count(exact) <= duplication_count(coarse)

    def test_exact_keeps_contributing_gaussians(self, rng):
        """Any tile where a Gaussian has a significant fragment must
        keep that Gaussian in the exact lists (soundness)."""
        camera = Camera.look_at(eye=[0, 0, -3], target=[0, 0, 0],
                                width=64, height=64)
        cloud = GaussianCloud.random(30, rng, extent=0.3)
        projected = project(cloud, camera)
        grid = TileGrid(width=64, height=64)
        exact = exact_tile_intersections(
            grid, projected.means2d, projected.radii,
            projected.conics, projected.thresholds,
        )
        from repro.gaussians.projection import mahalanobis_sq

        for tile_id in range(grid.n_tiles):
            x0, y0, x1, y1 = grid.tile_bounds(tile_id)
            ys, xs = np.mgrid[y0:y1, x0:x1]
            centers = np.stack([xs.ravel() + 0.5, ys.ravel() + 0.5], axis=1)
            members = set(exact[tile_id].tolist())
            for g in range(len(projected)):
                e = mahalanobis_sq(projected, g, centers)
                if np.any(e <= projected.thresholds[g]):
                    assert g in members, (tile_id, g)
