"""Unit tests for spherical-harmonics color evaluation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians.sh import (
    SH_C0,
    direction_normalize,
    eval_sh_colors,
    num_sh_coeffs,
    sh_basis,
)


class TestNumCoeffs:
    @pytest.mark.parametrize("degree,expected", [(0, 1), (1, 4), (2, 9), (3, 16)])
    def test_counts(self, degree, expected):
        assert num_sh_coeffs(degree) == expected

    @pytest.mark.parametrize("degree", [-1, 4, 10])
    def test_out_of_range(self, degree):
        with pytest.raises(ValidationError):
            num_sh_coeffs(degree)


class TestBasis:
    def test_shapes(self, rng):
        dirs = direction_normalize(rng.normal(size=(17, 3)))
        for degree in range(4):
            basis = sh_basis(degree, dirs)
            assert basis.shape == (17, num_sh_coeffs(degree))

    def test_dc_term_constant(self, rng):
        dirs = direction_normalize(rng.normal(size=(10, 3)))
        basis = sh_basis(3, dirs)
        np.testing.assert_allclose(basis[:, 0], SH_C0)

    def test_degree1_linear_in_direction(self):
        basis = sh_basis(1, np.array([[0.0, 0.0, 1.0]]))
        # Along +z only the l=1,m=0 band is non-zero.
        assert basis[0, 2] != 0.0
        assert basis[0, 1] == pytest.approx(0.0)
        assert basis[0, 3] == pytest.approx(0.0)

    def test_orthogonality_numerically(self, rng):
        """SH bands are orthogonal under the sphere measure; Monte
        Carlo integration should show near-zero off-diagonals."""
        dirs = direction_normalize(rng.normal(size=(60000, 3)))
        basis = sh_basis(2, dirs)
        gram = basis.T @ basis / dirs.shape[0]
        off_diag = gram - np.diag(np.diag(gram))
        assert np.abs(off_diag).max() < 0.01

    def test_bad_dirs_shape(self):
        with pytest.raises(ValidationError):
            sh_basis(1, np.zeros((5, 2)))


class TestColors:
    def test_dc_only_color(self):
        sh = np.zeros((1, 9, 3))
        sh[0, 0, :] = 1.0
        colors = eval_sh_colors(2, sh, np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(colors[0], SH_C0 + 0.5)

    def test_colors_nonnegative(self, rng):
        sh = rng.normal(0, 2.0, size=(30, 9, 3))
        dirs = direction_normalize(rng.normal(size=(30, 3)))
        colors = eval_sh_colors(2, sh, dirs)
        assert np.all(colors >= 0.0)

    def test_view_dependence(self, rng):
        sh = np.zeros((1, 4, 3))
        sh[0, 0, :] = 1.0
        sh[0, 2, :] = 0.5  # z band
        up = eval_sh_colors(1, sh, np.array([[0.0, 0.0, 1.0]]))
        down = eval_sh_colors(1, sh, np.array([[0.0, 0.0, -1.0]]))
        assert not np.allclose(up, down)

    def test_degree_exceeding_storage_rejected(self, rng):
        sh = rng.normal(size=(3, 4, 3))  # degree 1 storage
        dirs = direction_normalize(rng.normal(size=(3, 3)))
        with pytest.raises(ValidationError):
            eval_sh_colors(2, sh, dirs)

    def test_lower_degree_evaluation(self, rng):
        """Evaluating at lower degree uses only the leading bands."""
        sh = rng.normal(size=(5, 16, 3))
        dirs = direction_normalize(rng.normal(size=(5, 3)))
        full = eval_sh_colors(1, sh, dirs)
        truncated = eval_sh_colors(1, sh[:, :4, :], dirs)
        np.testing.assert_allclose(full, truncated)


class TestDirectionNormalize:
    def test_unit_norm(self, rng):
        vectors = rng.normal(size=(40, 3)) * 10
        dirs = direction_normalize(vectors)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_zero_vector_survives(self):
        dirs = direction_normalize(np.zeros((1, 3)))
        assert np.all(np.isfinite(dirs))
