"""Unit tests for the pinhole camera model."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians.camera import Camera, orbit_cameras


class TestLookAt:
    def test_target_projects_to_principal_point(self):
        cam = Camera.look_at(eye=[1, 2, -5], target=[0.5, 0.2, 1.0])
        target_cam = cam.to_camera_space(np.array([[0.5, 0.2, 1.0]]))[0]
        # Target lies on the optical axis.
        assert target_cam[0] == pytest.approx(0.0, abs=1e-10)
        assert target_cam[1] == pytest.approx(0.0, abs=1e-10)
        assert target_cam[2] > 0

    def test_position_roundtrip(self):
        cam = Camera.look_at(eye=[3, -1, 2], target=[0, 0, 0])
        np.testing.assert_allclose(cam.position, [3, -1, 2], atol=1e-12)

    def test_depth_increases_away_from_camera(self):
        cam = Camera.look_at(eye=[0, 0, -5], target=[0, 0, 0])
        near = cam.to_camera_space(np.array([[0, 0, -1.0]]))[0, 2]
        far = cam.to_camera_space(np.array([[0, 0, 3.0]]))[0, 2]
        assert far > near > 0

    def test_coincident_eye_target_rejected(self):
        with pytest.raises(ValidationError):
            Camera.look_at(eye=[1, 1, 1], target=[1, 1, 1])

    def test_up_parallel_to_view_rejected(self):
        with pytest.raises(ValidationError):
            Camera.look_at(eye=[0, 0, 0], target=[0, 1, 0], up=[0, 1, 0])

    def test_fov_sets_focal_length(self):
        cam = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                             height=200, fov_y_deg=90.0)
        assert cam.fy == pytest.approx(100.0)


class TestValidation:
    def test_non_orthonormal_rotation_rejected(self):
        with pytest.raises(ValidationError):
            Camera(
                width=64, height=64, fx=50, fy=50, cx=32, cy=32,
                rotation=np.ones((3, 3)), translation=np.zeros(3),
            )

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            Camera(
                width=0, height=64, fx=50, fy=50, cx=32, cy=32,
                rotation=np.eye(3), translation=np.zeros(3),
            )

    def test_negative_focal_rejected(self):
        with pytest.raises(ValidationError):
            Camera(
                width=64, height=64, fx=-50, fy=50, cx=32, cy=32,
                rotation=np.eye(3), translation=np.zeros(3),
            )


class TestResolutionScaling:
    def test_field_of_view_preserved(self):
        cam = Camera.look_at(eye=[0, 0, -3], target=[0, 0, 0],
                             width=100, height=80, fov_y_deg=60)
        big = cam.with_resolution(200, 160)
        # Half-height over focal length is the FOV tangent.
        assert big.height / big.fy == pytest.approx(cam.height / cam.fy)
        assert big.width / big.fx == pytest.approx(cam.width / cam.fx)

    def test_principal_point_scales(self):
        cam = Camera.look_at(eye=[0, 0, -3], target=[0, 0, 0],
                             width=100, height=80)
        big = cam.with_resolution(300, 240)
        assert big.cx == pytest.approx(3 * cam.cx)
        assert big.cy == pytest.approx(3 * cam.cy)


class TestDolly:
    def test_distance_scales(self):
        cam = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0])
        far = cam.dollied(4.0, target=np.zeros(3))
        assert np.linalg.norm(far.position) == pytest.approx(8.0)

    def test_view_direction_preserved(self):
        cam = Camera.look_at(eye=[1, 1, -2], target=[0, 0, 0])
        far = cam.dollied(2.0, target=np.zeros(3))
        np.testing.assert_allclose(far.rotation, cam.rotation)

    def test_non_positive_factor_rejected(self):
        cam = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0])
        with pytest.raises(ValidationError):
            cam.dollied(0.0)


class TestOrbit:
    def test_count_and_radius(self):
        cams = orbit_cameras(8, radius=3.0, height=0.0)
        assert len(cams) == 8
        for cam in cams:
            planar = np.array([cam.position[0], cam.position[2]])
            assert np.linalg.norm(planar) == pytest.approx(3.0)

    def test_all_look_at_target(self):
        target = np.array([0.5, 0.0, -0.5])
        for cam in orbit_cameras(4, radius=2.0, target=target):
            t = cam.to_camera_space(target[None, :])[0]
            assert abs(t[0]) < 1e-9 and abs(t[1]) < 1e-9

    def test_zero_cameras_rejected(self):
        with pytest.raises(ValidationError):
            orbit_cameras(0, radius=1.0)
