"""Unit tests for Rendering Step 2 (depth sorting / render lists)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians.sorting import (
    RenderLists,
    build_render_lists,
    sort_cost_model,
    sort_tile_lists,
)
from repro.gaussians.tiles import TileGrid


class TestSortTileLists:
    def test_depth_order(self, rng):
        depths = rng.uniform(1, 10, size=30)
        per_tile = [np.arange(30, dtype=np.int64)]
        sorted_lists = sort_tile_lists(per_tile, depths)
        assert np.all(np.diff(depths[sorted_lists[0]]) >= 0)

    def test_stability_for_equal_depths(self):
        depths = np.array([2.0, 1.0, 2.0, 1.0])
        per_tile = [np.array([0, 1, 2, 3], dtype=np.int64)]
        sorted_lists = sort_tile_lists(per_tile, depths)
        np.testing.assert_array_equal(sorted_lists[0], [1, 3, 0, 2])

    def test_empty_tiles_pass_through(self):
        sorted_lists = sort_tile_lists(
            [np.zeros(0, dtype=np.int64)], np.zeros(0)
        )
        assert len(sorted_lists[0]) == 0


class TestRenderLists:
    def test_built_lists_sorted(self, small_projected, small_lists):
        for members in small_lists.per_tile:
            if len(members) > 1:
                depths = small_projected.depths[members]
                assert np.all(np.diff(depths) >= 0)

    def test_instance_count_matches(self, small_lists):
        counts = small_lists.instances_per_tile()
        assert counts.sum() == small_lists.n_instances

    def test_access_sequence_alignment(self, small_lists):
        trace = small_lists.gaussian_access_sequence()
        assert trace.shape[0] == small_lists.n_instances
        boundaries = small_lists.tile_boundaries()
        assert boundaries[0] == 0
        assert boundaries[-1] == small_lists.n_instances
        # Each boundary segment reproduces the tile's list.
        nonzero = 0
        for t, members in enumerate(small_lists.per_tile):
            seg = trace[nonzero:nonzero + len(members)]
            np.testing.assert_array_equal(seg, members)
            nonzero += len(members)

    def test_nonempty_tiles(self, small_lists):
        nonempty = small_lists.nonempty_tiles()
        for t in nonempty:
            assert len(small_lists.per_tile[t]) > 0

    def test_wrong_tile_count_rejected(self):
        grid = TileGrid(width=32, height=32)
        with pytest.raises(ValidationError):
            RenderLists(grid=grid, per_tile=[np.zeros(0, dtype=np.int64)])

    def test_prebinned_lists_accepted(self, small_projected):
        grid = TileGrid(*small_projected.image_size)
        custom = [np.zeros(0, dtype=np.int64) for _ in range(grid.n_tiles)]
        custom[0] = np.array([2, 0, 1], dtype=np.int64)
        lists = build_render_lists(small_projected, grid=grid, per_tile=custom)
        depths = small_projected.depths[lists.per_tile[0]]
        assert np.all(np.diff(depths) >= 0)


class TestSortCost:
    def test_linear_in_keys(self):
        assert sort_cost_model(1000) == 1000.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            sort_cost_model(-1)
