"""Unit tests for Rendering Step 1 (EWA projection)."""

import numpy as np
import pytest

from repro.config import COV2D_DILATION, DEFAULT_SETTINGS, MAX_MAHALANOBIS_SQ
from repro.errors import ValidationError
from repro.gaussians import Camera, GaussianCloud, project
from repro.gaussians.projection import (
    compute_jacobians,
    mahalanobis_sq,
    truncation_thresholds,
)


@pytest.fixture()
def camera():
    return Camera.look_at(eye=[0, 0, -3], target=[0, 0, 0], width=128, height=96)


class TestCulling:
    def test_behind_camera_culled(self, camera, rng):
        cloud = GaussianCloud.random(10, rng, extent=0.2)
        behind = cloud.translated([0, 0, -10.0])  # behind the eye at z=-3
        projected = project(behind, camera)
        assert len(projected) == 0

    def test_offscreen_culled(self, camera, rng):
        cloud = GaussianCloud.random(10, rng, extent=0.1, scale_range=(0.01, 0.02))
        offscreen = cloud.translated([100.0, 0, 0])
        projected = project(offscreen, camera)
        assert len(projected) == 0

    def test_visible_survive(self, camera, rng):
        cloud = GaussianCloud.random(50, rng, extent=0.3)
        projected = project(cloud, camera)
        assert len(projected) == 50

    def test_empty_cloud(self, camera):
        projected = project(GaussianCloud.empty(), camera)
        assert len(projected) == 0
        assert projected.image_size == (camera.width, camera.height)

    def test_source_index_maps_back(self, camera, rng):
        cloud = GaussianCloud.random(20, rng, extent=0.3)
        # Push half the cloud behind the camera.
        means = cloud.means.copy()
        means[::2, 2] = -20.0
        moved = GaussianCloud(
            means=means, scales=cloud.scales, quats=cloud.quats,
            opacities=cloud.opacities, sh=cloud.sh,
        )
        projected = project(moved, camera)
        assert np.all(projected.source_index % 2 == 1)


class TestGeometry:
    def test_center_gaussian_projects_to_center(self, camera):
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0]]),
            scales=np.full((1, 3), 0.05),
            quats=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([0.8]),
            sh=np.zeros((1, 9, 3)),
        )
        projected = project(cloud, camera)
        np.testing.assert_allclose(
            projected.means2d[0], [camera.cx, camera.cy], atol=1e-9
        )
        assert projected.depths[0] == pytest.approx(3.0)

    def test_cov2d_positive_definite(self, camera, rng):
        cloud = GaussianCloud.random(60, rng, extent=0.4)
        projected = project(cloud, camera)
        for cov in projected.cov2d:
            assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_conic_is_cov2d_inverse(self, camera, rng):
        cloud = GaussianCloud.random(25, rng, extent=0.4)
        projected = project(cloud, camera)
        for cov, conic in zip(projected.cov2d, projected.conics):
            inv = np.linalg.inv(cov)
            np.testing.assert_allclose(conic[0], inv[0, 0], rtol=1e-9)
            np.testing.assert_allclose(conic[1], inv[0, 1], rtol=1e-9)
            np.testing.assert_allclose(conic[2], inv[1, 1], rtol=1e-9)

    def test_dilation_applied(self, camera):
        """A degenerate (tiny) Gaussian still projects with at least
        the low-pass dilation on the diagonal."""
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0]]),
            scales=np.full((1, 3), 1e-5),
            quats=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([0.8]),
            sh=np.zeros((1, 9, 3)),
        )
        projected = project(cloud, camera)
        assert projected.cov2d[0, 0, 0] >= COV2D_DILATION
        assert projected.cov2d[0, 1, 1] >= COV2D_DILATION

    def test_closer_gaussian_has_larger_footprint(self, camera):
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 3.0]]),
            scales=np.full((2, 3), 0.1),
            quats=np.tile([1.0, 0, 0, 0], (2, 1)),
            opacities=np.array([0.8, 0.8]),
            sh=np.zeros((2, 9, 3)),
        )
        projected = project(cloud, camera)
        assert projected.radii[0] > projected.radii[1]

    def test_jacobian_shape_and_values(self, camera):
        points = np.array([[0.0, 0.0, 2.0]])
        jac = compute_jacobians(points, camera)
        assert jac.shape == (1, 2, 3)
        assert jac[0, 0, 0] == pytest.approx(camera.fx / 2.0)
        assert jac[0, 1, 1] == pytest.approx(camera.fy / 2.0)
        assert jac[0, 0, 1] == 0.0


class TestThresholds:
    def test_threshold_formula(self):
        opacities = np.array([0.5])
        th = truncation_thresholds(opacities, DEFAULT_SETTINGS)
        expected = 2.0 * np.log(0.5 / DEFAULT_SETTINGS.alpha_min)
        assert th[0] == pytest.approx(min(expected, MAX_MAHALANOBIS_SQ))

    def test_threshold_capped_at_three_sigma(self):
        th = truncation_thresholds(np.array([0.99]), DEFAULT_SETTINGS)
        assert th[0] == pytest.approx(MAX_MAHALANOBIS_SQ)

    def test_dim_gaussian_zero_threshold(self):
        # Opacity below alpha_min: no fragment can ever contribute.
        th = truncation_thresholds(np.array([1e-4]), DEFAULT_SETTINGS)
        assert th[0] == 0.0

    def test_radius_is_conservative(self, camera, rng):
        """Points outside the binning radius must be outside the
        truncated ellipse."""
        cloud = GaussianCloud.random(30, rng, extent=0.4)
        projected = project(cloud, camera)
        for i in range(len(projected)):
            radius = projected.radii[i]
            center = projected.means2d[i]
            # Probe points just beyond the radius in 8 directions.
            angles = np.linspace(0, 2 * np.pi, 8, endpoint=False)
            probes = center + (radius + 0.5) * np.stack(
                [np.cos(angles), np.sin(angles)], axis=1
            )
            e = mahalanobis_sq(projected, i, probes)
            assert np.all(e > projected.thresholds[i])


class TestMahalanobis:
    def test_zero_at_center(self, camera, rng):
        cloud = GaussianCloud.random(5, rng, extent=0.3)
        projected = project(cloud, camera)
        e = mahalanobis_sq(projected, 0, projected.means2d[:1])
        assert e[0] == pytest.approx(0.0, abs=1e-12)

    def test_matches_quadratic_form(self, camera, rng):
        cloud = GaussianCloud.random(5, rng, extent=0.3)
        projected = project(cloud, camera)
        points = rng.normal(size=(10, 2)) * 20 + projected.means2d[2]
        e = mahalanobis_sq(projected, 2, points)
        inv = np.linalg.inv(projected.cov2d[2])
        for point, value in zip(points, e):
            d = point - projected.means2d[2]
            assert value == pytest.approx(d @ inv @ d, rel=1e-9)

    def test_bad_points_shape(self, camera, rng):
        cloud = GaussianCloud.random(3, rng, extent=0.3)
        projected = project(cloud, camera)
        with pytest.raises(ValidationError):
            mahalanobis_sq(projected, 0, np.zeros((5, 3)))
