"""Unit tests for the reference PFS rasterizer (Rendering Step 3)."""

import numpy as np

from repro.config import RenderSettings
from repro.gaussians import Camera, GaussianCloud, build_render_lists, project
from repro.gaussians.rasterizer import render_image, render_reference


class TestBasics:
    def test_output_shapes(self, small_projected, reference_render):
        width, height = small_projected.image_size
        assert reference_render.image.shape == (height, width, 3)
        assert reference_render.transmittance.shape == (height, width)
        assert reference_render.n_contrib.shape == (height, width)

    def test_empty_scene_is_background(self):
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=32, height=32)
        projected = project(GaussianCloud.empty(), camera)
        settings = RenderSettings(background=(0.2, 0.4, 0.6))
        result = render_reference(projected, settings=settings)
        np.testing.assert_allclose(result.image[..., 0], 0.2)
        np.testing.assert_allclose(result.image[..., 1], 0.4)
        np.testing.assert_allclose(result.transmittance, 1.0)

    def test_transmittance_bounds(self, reference_render):
        t = reference_render.transmittance
        assert np.all(t >= 0.0) and np.all(t <= 1.0)

    def test_image_finite_nonnegative(self, reference_render):
        assert np.all(np.isfinite(reference_render.image))
        assert np.all(reference_render.image >= 0.0)

    def test_convenience_wrapper(self, small_projected):
        image = render_image(small_projected)
        assert image.ndim == 3


class TestBlendingSemantics:
    def _single_gaussian(self, opacity=0.9):
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0]]),
            scales=np.full((1, 3), 0.3),
            quats=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([opacity]),
            sh=np.zeros((1, 1, 3)),  # color = 0.5 gray
        )
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=32, height=32)
        return project(cloud, camera)

    def test_single_gaussian_center_color(self):
        projected = self._single_gaussian(opacity=0.9)
        result = render_reference(projected)
        # Center pixel: alpha ~= opacity, color = 0.5 (DC-only zero SH).
        center = result.image[16, 16]
        expected = 0.9 * 0.5
        np.testing.assert_allclose(center, expected, rtol=0.05)

    def test_opacity_scales_contribution(self):
        strong = render_reference(self._single_gaussian(0.9)).image[16, 16, 0]
        weak = render_reference(self._single_gaussian(0.3)).image[16, 16, 0]
        assert strong > weak

    def test_near_occludes_far(self):
        # Two overlapping Gaussians: red near, green far.
        sh = np.zeros((2, 1, 3))
        sh[0, 0] = [2.0, -0.5, -0.5]   # near: red-ish
        sh[1, 0] = [-0.5, 2.0, -0.5]   # far: green-ish
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, -0.5], [0.0, 0.0, 0.5]]),
            scales=np.full((2, 3), 0.3),
            quats=np.tile([1.0, 0, 0, 0], (2, 1)),
            opacities=np.array([0.95, 0.95]),
            sh=sh,
        )
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=32, height=32)
        result = render_reference(project(cloud, camera))
        center = result.image[16, 16]
        assert center[0] > center[1]  # red wins at the center

    def test_alpha_blending_weights_sum(self):
        """1 - final transmittance equals the blended alpha mass."""
        projected = self._single_gaussian(0.8)
        result = render_reference(projected)
        # For a single gaussian: T = 1 - alpha at each pixel, so image
        # (gray 0.5) = 0.5 * (1 - T).
        np.testing.assert_allclose(
            result.image[..., 0], 0.5 * (1.0 - result.transmittance), atol=1e-12
        )


class TestStats:
    def test_significant_at_most_shaded(self, reference_render):
        stats = reference_render.stats
        assert 0 < stats.fragments_significant <= stats.fragments_shaded
        assert 0 < stats.instances_processed <= stats.instances

    def test_contrib_counts_match_significant(self, reference_render):
        assert (
            reference_render.n_contrib.sum()
            == reference_render.stats.fragments_significant
        )

    def test_flop_accounting(self, reference_render):
        stats = reference_render.stats
        assert stats.eq7_flops == stats.fragments_shaded * 11

    def test_early_termination_saves_work(self, rng):
        """An opaque wall of gaussians terminates pixels early."""
        n = 120
        cloud = GaussianCloud(
            means=np.concatenate(
                [rng.normal(0, 0.02, (n, 2)), rng.uniform(-1, 1, (n, 1))], axis=1
            ),
            scales=np.full((n, 3), 1.2),
            quats=np.tile([1.0, 0, 0, 0], (n, 1)),
            opacities=np.full(n, 0.99),
            sh=np.zeros((n, 1, 3)),
        )
        camera = Camera.look_at(eye=[0, 0, -3], target=[0, 0, 0],
                                width=32, height=32)
        projected = project(cloud, camera)
        lists = build_render_lists(projected)
        result = render_reference(projected, lists)
        assert result.stats.instances_processed < result.stats.instances

    def test_significant_fraction_range(self, reference_render):
        assert 0.0 < reference_render.stats.significant_fraction <= 1.0
