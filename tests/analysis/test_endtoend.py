"""Integration tests for the system-level evaluation."""

import numpy as np
import pytest

from repro.analysis.endtoend import (
    CONFIG_NAMES,
    SystemConfig,
    evaluate_all_configs,
    evaluate_scene,
)
from repro.errors import ValidationError

DETAIL = 0.35  # keep integration tests fast


@pytest.fixture(scope="module")
def bonsai_results():
    return evaluate_all_configs("bonsai", detail=DETAIL)


class TestConfigs:
    def test_unknown_config_rejected(self):
        with pytest.raises(ValidationError):
            SystemConfig("gbu_quantum")

    def test_gpu_config_has_no_gbu(self):
        with pytest.raises(ValidationError):
            SystemConfig("gpu_pfs").gbu_config()

    def test_gbu_config_flags(self):
        assert not SystemConfig("gbu_tile").gbu_config().use_dnb
        assert SystemConfig("gbu_dnb").gbu_config().use_dnb
        assert not SystemConfig("gbu_dnb").gbu_config().use_cache
        assert SystemConfig("gbu_full").gbu_config().use_cache


class TestEvaluation:
    def test_all_configs_present(self, bonsai_results):
        assert set(bonsai_results) == set(CONFIG_NAMES)

    def test_ablation_monotonic(self, bonsai_results):
        """Each added technique must not slow the system down
        (Tab. V's ordering)."""
        fps = [bonsai_results[c].fps for c in CONFIG_NAMES]
        assert all(b >= a * 0.98 for a, b in zip(fps, fps[1:]))

    def test_gbu_beats_baseline(self, bonsai_results):
        assert bonsai_results["gbu_full"].fps > 2 * bonsai_results["gpu_pfs"].fps

    def test_energy_improves(self, bonsai_results):
        base = bonsai_results["gpu_pfs"].energy.total_j
        full = bonsai_results["gbu_full"].energy.total_j
        assert full < base

    def test_images_finite(self, bonsai_results):
        for result in bonsai_results.values():
            assert np.all(np.isfinite(result.image))

    def test_gpu_configs_render_identically(self, bonsai_results):
        np.testing.assert_allclose(
            bonsai_results["gpu_pfs"].image,
            bonsai_results["gpu_irss"].image,
            atol=1e-9,
        )

    def test_gbu_report_attached(self, bonsai_results):
        assert bonsai_results["gbu_full"].gbu_report is not None
        assert bonsai_results["gpu_pfs"].gbu_report is None
        assert bonsai_results["gpu_pfs"].breakdown is not None

    def test_cache_only_differs_in_memory(self, bonsai_results):
        dnb = bonsai_results["gbu_dnb"].gbu_report
        full = bonsai_results["gbu_full"].gbu_report
        assert full.cache.hit_rate > 0
        assert dnb.cache.hit_rate == 0
        assert full.memory_seconds <= dnb.memory_seconds
        assert full.compute_seconds == pytest.approx(dnb.compute_seconds)

    def test_evaluate_scene_single(self):
        result = evaluate_scene("male_3", "gbu_full", detail=DETAIL)
        assert result.scene == "male_3"
        assert result.fps > 0
