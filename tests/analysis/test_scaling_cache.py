"""Tests for the scaling and cache-study drivers."""

import pytest

from repro.analysis.cache_study import (
    compare_policies,
    memory_pressure,
    sweep_scene,
)
from repro.analysis.scaling import camera_distance_sweep, resolution_sweep

DETAIL = 0.35


class TestResolutionSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return resolution_sweep("flame_steak", factors=(0.5, 1.0))

    def test_fps_drops_with_resolution(self, points):
        assert points[0].baseline_fps > points[1].baseline_fps
        # The GBU side saturates at the GPU-side limit for small
        # frames, so require only non-increase within tolerance.
        assert points[0].gbu_fps >= points[1].gbu_fps * 0.98

    def test_speedup_grows_with_resolution(self, points):
        """Fig. 16's headline: higher resolutions favor the GBU."""
        assert points[1].speedup > points[0].speedup * 0.95

    def test_dimensions_scale(self, points):
        assert points[1].width > points[0].width


class TestDistanceSweep:
    def test_speedup_degrades_with_distance(self):
        points = camera_distance_sweep("bonsai", factors=(1.0, 4.0))
        # Sec. VI-F: distant cameras erode the GBU's advantage.
        assert points[1].speedup < points[0].speedup


class TestCacheStudy:
    def test_sweep_monotone(self):
        result = sweep_scene("bonsai", sizes=(0, 2048, 8192, 32768), detail=DETAIL)
        rates = [result.hit_rates[s] for s in sorted(result.hit_rates)]
        assert rates[0] == 0.0
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_saturation_size(self):
        result = sweep_scene(
            "bonsai", sizes=(0, 2048, 8192, 32768, 65536), detail=DETAIL
        )
        assert result.saturation_size() <= 65536

    def test_rd_policy_at_least_lru(self):
        comparison = compare_policies("bonsai", detail=DETAIL)
        assert comparison.hit_rates["reuse_distance"] >= comparison.hit_rates["lru"]
        assert comparison.rd_advantage_over_lru >= 0.0

    def test_memory_pressure(self):
        pressure = memory_pressure("bonsai", detail=DETAIL)
        assert 0.0 < pressure.traffic_reduction < 1.0
        assert pressure.pipeline_slowdown_without_cache >= 0.0
