"""Tests for the experiment registry and table formatting."""

import pytest

from repro.analysis.literature import (
    FIG1_LANDSCAPE,
    GBU_STANDALONE_REPORTED,
    GSCORE,
    NERF_ACCELERATORS,
    PAPER_CLAIMS,
)
from repro.errors import ValidationError
from repro.harness import EXPERIMENTS, format_table, run_experiment


class TestTables:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.2345], ["long-name", 100.0]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.23" in table

    def test_nan_rendered_as_dash(self):
        table = format_table(["x"], [[float("nan")]])
        assert "-" in table.splitlines()[-1]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        paper = {
            "fig1", "tab1", "fig4_fig5", "fig6", "fig9", "sec4d",
            "tab2_tab3", "tab4", "tab5", "fig14_fig15", "fig16",
            "fig17", "sec5a", "sec6f", "tab6_tab7",
        }
        extensions = {"stream", "qos", "fleet"}
        assert paper | extensions == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValidationError):
            run_experiment("fig99")

    def test_static_experiments_run(self):
        """Constant-data experiments run instantly and format cleanly."""
        for key in ("fig1", "tab1", "tab2_tab3"):
            out = run_experiment(key)
            assert out.experiment == key
            assert len(out.table.splitlines()) >= 3


class TestLiterature:
    def test_fig1_families(self):
        families = {m.family for m in FIG1_LANDSCAPE}
        assert families == {"voxel_nerf", "mlp_nerf", "gaussian"}

    def test_gaussian_methods_fastest_per_app(self):
        for app in ("static", "dynamic", "avatar"):
            methods = [m for m in FIG1_LANDSCAPE if m.app_type == app]
            best = max(methods, key=lambda m: m.fps)
            assert best.family == "gaussian"

    def test_gbu_standalone_beats_gscore_on_specs(self):
        assert GBU_STANDALONE_REPORTED.area_mm2 < GSCORE.area_mm2
        assert GBU_STANDALONE_REPORTED.power_w < GSCORE.power_w

    def test_gbu_standalone_tops_nerf_accelerators(self):
        for acc in NERF_ACCELERATORS:
            assert GBU_STANDALONE_REPORTED.psnr > acc.psnr
            assert GBU_STANDALONE_REPORTED.fps > acc.fps

    def test_paper_claims_complete(self):
        assert PAPER_CLAIMS["ablation_fps"]["gbu_full"] == 91.5
        assert PAPER_CLAIMS["cache_hit_64kb"]["static"] == pytest.approx(0.597)
