"""Tests for the profiling and quality analysis drivers."""

import numpy as np
import pytest

from repro.analysis.profiling import (
    per_row_workload_histogram,
    profile_scene,
    row_imbalance_ratio,
)
from repro.analysis.quality import evaluate_quality, ground_truth_image

DETAIL = 0.35


class TestProfiling:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_scene("bonsai", detail=DETAIL)

    def test_fractions_sum_to_one(self, profile):
        assert sum(profile.breakdown.fractions) == pytest.approx(1.0)

    def test_step3_dominates_static(self, profile):
        f1, f2, f3 = profile.breakdown.fractions
        assert f3 > 0.5

    def test_challenge_statistics(self, profile):
        assert profile.fragment_ratio > 10
        assert 0.0 < profile.significant_fraction < 0.5
        assert 0.0 < profile.row_utilization <= 1.0
        assert profile.comparison.fragment_skip_rate > 0.5

    def test_dram_and_peak_fractions_positive(self, profile):
        assert profile.step3_dram_fraction_60fps > 0
        assert profile.eq7_peak_fraction_60fps > 0

    def test_row_histogram(self):
        hist = per_row_workload_histogram("bonsai", detail=DETAIL)
        assert hist.size % 16 == 0
        assert hist.max() > hist.mean()
        imbalance = row_imbalance_ratio(hist)
        assert imbalance > 1.0  # rows are measurably imbalanced

    def test_imbalance_of_uniform_rows_is_one(self):
        uniform = np.full(64, 5, dtype=np.int64)
        assert row_imbalance_ratio(uniform) == pytest.approx(1.0)


class TestQuality:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate_quality("bonsai", detail=DETAIL)

    def test_reconstruction_psnr_plausible(self, result):
        # Perturbed reconstruction lands in the plausible band.
        assert 20.0 < result.reference_psnr < 45.0

    def test_gbu_quality_close_to_reference(self, result):
        """Tab. IV: the fp16 pipeline costs (well) under 1 dB."""
        assert abs(result.psnr_delta) < 1.0
        assert abs(result.lpips_delta) < 0.05

    def test_ground_truth_deterministic(self):
        a = ground_truth_image("bonsai", detail=DETAIL)
        b = ground_truth_image("bonsai", detail=DETAIL)
        np.testing.assert_array_equal(a, b)
