"""Tests for image quality metrics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.metrics.image import lpips_proxy, mse, psnr, ssim


@pytest.fixture()
def image(rng):
    return np.clip(np.random.default_rng(0).normal(0.5, 0.2, (48, 64, 3)), 0, 1)


class TestPsnr:
    def test_identical_is_infinite(self, image):
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_more_noise_lower_psnr(self, image, rng):
        g = np.random.default_rng(1)
        light = np.clip(image + g.normal(0, 0.01, image.shape), 0, 1)
        heavy = np.clip(image + g.normal(0, 0.1, image.shape), 0, 1)
        assert psnr(image, light) > psnr(image, heavy)

    def test_shape_mismatch_rejected(self, image):
        with pytest.raises(ValidationError):
            psnr(image, image[:-1])


class TestMse:
    def test_zero_for_identical(self, image):
        assert mse(image, image) == 0.0

    def test_known_value(self):
        assert mse(np.zeros(4).reshape(2, 2), np.ones(4).reshape(2, 2)) == 1.0


class TestSsim:
    def test_identical_is_one(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    def test_degrades_with_noise(self, image):
        g = np.random.default_rng(2)
        noisy = np.clip(image + g.normal(0, 0.2, image.shape), 0, 1)
        assert ssim(image, noisy) < 0.95

    def test_structural_sensitivity(self, image):
        """SSIM punishes structural change more than constant shift."""
        shifted = np.clip(image + 0.05, 0, 1)
        scrambled = image[::-1].copy()
        assert ssim(image, shifted) > ssim(image, scrambled)

    def test_tiny_image_rejected(self):
        with pytest.raises(ValidationError):
            ssim(np.zeros((3, 3)), np.zeros((3, 3)))


class TestLpipsProxy:
    def test_identical_is_zero(self, image):
        assert lpips_proxy(image, image) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_in_noise(self, image):
        g = np.random.default_rng(3)
        light = np.clip(image + g.normal(0, 0.02, image.shape), 0, 1)
        heavy = np.clip(image + g.normal(0, 0.2, image.shape), 0, 1)
        assert lpips_proxy(image, light) < lpips_proxy(image, heavy)

    def test_deterministic(self, image, rng):
        g = np.random.default_rng(4)
        noisy = np.clip(image + g.normal(0, 0.05, image.shape), 0, 1)
        assert lpips_proxy(image, noisy) == lpips_proxy(image, noisy)

    def test_grayscale_rejected(self, image):
        with pytest.raises(ValidationError):
            lpips_proxy(image[..., 0], image[..., 0])


class TestInputChecking:
    """Edge cases of the shared pair check: all-black frames, and the
    distinct errors for representation vs resolution mismatches."""

    def test_all_black_frames_compare_clean(self):
        black = np.zeros((32, 48, 3))
        assert mse(black, black) == 0.0
        assert psnr(black, black) == float("inf")
        assert ssim(black, black) == pytest.approx(1.0)

    def test_all_black_vs_all_white_is_zero_db(self):
        black = np.zeros((16, 16))
        white = np.ones((16, 16))
        assert psnr(black, white) == pytest.approx(0.0)

    def test_dtype_kind_mismatch_is_distinct_error(self, image):
        """A float render against a uint8 one is a units bug, reported
        as a dtype error — not silently cast, not a shape error."""
        quantized = (image * 255).astype(np.uint8)
        with pytest.raises(ValidationError, match="dtype"):
            psnr(image, quantized)
        with pytest.raises(ValidationError, match="dtype"):
            ssim(image, quantized)

    def test_resolution_mismatch_is_distinct_error(self, image):
        with pytest.raises(ValidationError, match="shape"):
            mse(image, image[:-2, :-2])

    def test_dtype_checked_before_shape(self, image):
        """Both defects at once report the representation problem (it
        is checked first, before any cast could mask it)."""
        quantized = (image[:-1] * 255).astype(np.uint8)
        with pytest.raises(ValidationError, match="dtype"):
            psnr(image, quantized)

    def test_same_kind_different_width_is_fine(self):
        """Only the dtype *kind* must match; float32 vs float64 is the
        same representation at different precision."""
        a = np.full((16, 16), 0.5, dtype=np.float32)
        b = np.full((16, 16), 0.5, dtype=np.float64)
        assert psnr(a, b) == float("inf")

    def test_non_image_rank_rejected(self):
        with pytest.raises(ValidationError, match="HxW"):
            mse(np.zeros(8), np.zeros(8))
