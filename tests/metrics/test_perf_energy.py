"""Tests for performance and energy metrics."""

import pytest

from repro.errors import ValidationError
from repro.metrics.energy import EnergyBreakdown, EnergyModel
from repro.metrics.perf import (
    fps_from_seconds,
    geometric_mean,
    harmonic_mean_fps,
    speedup,
)


class TestPerf:
    def test_fps(self):
        assert fps_from_seconds(0.02) == pytest.approx(50.0)
        with pytest.raises(ValidationError):
            fps_from_seconds(0.0)

    def test_speedup(self):
        assert speedup(0.1, 0.05) == pytest.approx(2.0)
        with pytest.raises(ValidationError):
            speedup(-1.0, 0.1)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_error_paths_are_distinct(self):
        """Empty input (nothing measured) and non-positive values
        (corrupt measurement) are different bugs; the error must say
        which one happened."""
        with pytest.raises(ValidationError, match="empty sequence"):
            geometric_mean([])
        with pytest.raises(ValidationError, match="positive values"):
            geometric_mean([1.0, -2.0])
        with pytest.raises(ValidationError, match="positive values"):
            geometric_mean([0.0])

    def test_harmonic_mean_fps(self):
        # Two frames at 10 and 30 FPS average to 15 FPS of wall time.
        assert harmonic_mean_fps([10.0, 30.0]) == pytest.approx(15.0)

    def test_harmonic_mean_error_paths_are_distinct(self):
        with pytest.raises(ValidationError, match="empty sequence"):
            harmonic_mean_fps([])
        with pytest.raises(ValidationError, match="positive values"):
            harmonic_mean_fps([10.0, 0.0])
        with pytest.raises(ValidationError, match="positive values"):
            harmonic_mean_fps([-5.0])


class TestEnergyModel:
    def test_baseline_frame(self):
        model = EnergyModel()
        energy = model.gpu_only_frame(0.080)
        assert energy.gpu_busy_j == pytest.approx(15.0 * 0.080)
        assert energy.gbu_j == 0.0

    def test_enhanced_frame_components(self):
        model = EnergyModel()
        energy = model.enhanced_frame(0.010, gpu_busy_seconds=0.006,
                                      gbu_busy_seconds=0.010)
        assert energy.gpu_busy_j == pytest.approx(15.0 * 0.006)
        assert energy.gpu_idle_j == pytest.approx(4.0 * 0.004)
        assert energy.gbu_j == pytest.approx(0.22 * 0.010)

    def test_busy_time_clamped_to_frame(self):
        model = EnergyModel()
        energy = model.enhanced_frame(0.010, gpu_busy_seconds=0.5,
                                      gbu_busy_seconds=0.5)
        assert energy.gpu_idle_j == 0.0
        assert energy.gpu_busy_j == pytest.approx(15.0 * 0.010)

    def test_efficiency_improvement(self):
        baseline = EnergyBreakdown(gpu_busy_j=1.2, gpu_idle_j=0.0, gbu_j=0.0)
        enhanced = EnergyBreakdown(gpu_busy_j=0.08, gpu_idle_j=0.02, gbu_j=0.01)
        improvement = EnergyModel.efficiency_improvement(baseline, enhanced)
        assert improvement == pytest.approx(1.2 / 0.11)

    def test_per_n_frames(self):
        energy = EnergyBreakdown(gpu_busy_j=0.01, gpu_idle_j=0.0, gbu_j=0.0)
        assert energy.per_n_frames(60) == pytest.approx(0.6)
        with pytest.raises(ValidationError):
            energy.per_n_frames(0)

    def test_invalid_frame_time(self):
        with pytest.raises(ValidationError):
            EnergyModel().gpu_only_frame(0.0)
