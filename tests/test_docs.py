"""Docs gate: modules stay docstringed, docs reference live paths.

CI runs ``scripts/check_docs.py`` directly; this test runs the same
dependency-free checker inside the tier-1 suite so documentation rot
(an undocumented module, a renamed file leaving a dead link in
``docs/`` or ``README.md``) fails fast offline too.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_gate():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"documentation errors:\n{result.stdout}{result.stderr}"
    )
