"""Shared fixtures: small deterministic scenes and rendered frames.

Module-scoped fixtures keep the suite fast: most tests inspect the
same small rendered frame rather than re-rendering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.irss import render_irss
from repro.gaussians import (
    Camera,
    GaussianCloud,
    build_render_lists,
    project,
    render_reference,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_cloud():
    """A compact random cloud covering the whole frame."""
    rng = np.random.default_rng(42)
    return GaussianCloud.random(250, rng, extent=1.0, scale_range=(0.03, 0.12))


@pytest.fixture(scope="session")
def small_camera():
    return Camera.look_at(
        eye=[0.2, 0.4, -2.8], target=[0, 0, 0], width=96, height=80
    )


@pytest.fixture(scope="session")
def small_projected(small_cloud, small_camera):
    return project(small_cloud, small_camera)


@pytest.fixture(scope="session")
def small_lists(small_projected):
    return build_render_lists(small_projected)


@pytest.fixture(scope="session")
def reference_render(small_projected, small_lists):
    return render_reference(small_projected, small_lists)


@pytest.fixture(scope="session")
def irss_render(small_projected, small_lists):
    return render_irss(small_projected, small_lists)


@pytest.fixture(scope="session")
def tiny_projected():
    """A handful of Gaussians on a single-tile image (hand-inspectable)."""
    rng = np.random.default_rng(7)
    cloud = GaussianCloud.random(12, rng, extent=0.25, scale_range=(0.05, 0.2))
    camera = Camera.look_at(eye=[0, 0, -1.5], target=[0, 0, 0], width=16, height=16)
    return project(cloud, camera)
