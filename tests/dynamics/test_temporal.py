"""Tests for 4D (temporal) Gaussians."""

import numpy as np
import pytest

from repro.dynamics.temporal import TemporalGaussianModel
from repro.errors import ValidationError
from repro.gaussians import GaussianCloud


@pytest.fixture()
def model(rng):
    base = GaussianCloud.random(60, np.random.default_rng(5))
    return TemporalGaussianModel.synthetic(
        base, np.random.default_rng(6), moving_fraction=0.5
    )


class TestSlicing:
    def test_slice_returns_cloud(self, model):
        cloud = model.at_time(0.3)
        assert isinstance(cloud, GaussianCloud)
        assert 0 < len(cloud) <= len(model)

    def test_static_kernels_do_not_move(self, model):
        moving = np.any(model.velocities != 0, axis=1) | np.any(
            model.amplitudes != 0, axis=1
        )
        # Transient kernels can be culled by the temporal window, so
        # check only always-active static kernels.
        persistent = model.time_sigmas > 1e5
        static_idx = np.nonzero(~moving & persistent)[0]
        assert len(static_idx) > 0
        at_zero = model.at_time(0.0)
        at_half = model.at_time(0.5)
        rest = model.base.means[static_idx]
        for cloud in (at_zero, at_half):
            # Every static rest position must appear in the sliced means.
            for p in rest[:10]:
                distances = np.linalg.norm(cloud.means - p, axis=1)
                assert distances.min() < 1e-12

    def test_motion_displaces_moving_kernels(self, model):
        moving = np.nonzero(np.any(model.velocities != 0, axis=1))[0]
        if len(moving) == 0:
            pytest.skip("no moving kernels in this draw")
        late = model.at_time(0.9)
        # At least one moving kernel is displaced from rest.
        rest = model.base.means[moving[0]]
        distances = np.linalg.norm(late.means - rest, axis=1)
        assert distances.min() > 1e-6 or len(late) < len(model)

    def test_temporal_window_drops_transients(self, model):
        far = model.at_time(1e6)
        # Transient kernels (finite sigma) die far outside the clip.
        transient = np.isfinite(model.time_sigmas) & (model.time_sigmas < 1e5)
        assert len(far) <= len(model) - int(transient.sum())

    def test_opacity_never_exceeds_base(self, model):
        sliced = model.at_time(0.25)
        assert np.all(sliced.opacities <= 1.0)
        assert np.all(sliced.opacities > 0.0)

    def test_determinism(self, model):
        a = model.at_time(0.4)
        b = model.at_time(0.4)
        np.testing.assert_array_equal(a.means, b.means)


class TestValidation:
    def test_mismatched_arrays_rejected(self, rng):
        base = GaussianCloud.random(5, np.random.default_rng(1))
        with pytest.raises(ValidationError):
            TemporalGaussianModel(
                base=base,
                velocities=np.zeros((4, 3)),
                amplitudes=np.zeros((5, 3)),
                frequencies=np.zeros(5),
                phases=np.zeros(5),
                time_centers=np.zeros(5),
                time_sigmas=np.ones(5),
            )

    def test_nonpositive_sigma_rejected(self, rng):
        base = GaussianCloud.random(5, np.random.default_rng(1))
        with pytest.raises(ValidationError):
            TemporalGaussianModel(
                base=base,
                velocities=np.zeros((5, 3)),
                amplitudes=np.zeros((5, 3)),
                frequencies=np.zeros(5),
                phases=np.zeros(5),
                time_centers=np.zeros(5),
                time_sigmas=np.zeros(5),
            )

    def test_slice_flops_positive(self, model):
        assert model.slice_flops_per_gaussian() > 0
