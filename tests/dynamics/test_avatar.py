"""Tests for the animatable avatar model."""

import numpy as np
import pytest

from repro.dynamics.avatar import (
    AvatarModel,
    Skeleton,
    _matrix_to_quat,
    _axis_angle_matrix,
    walking_pose,
)
from repro.errors import ValidationError
from repro.gaussians.gaussian import quaternion_to_rotation


@pytest.fixture(scope="module")
def avatar():
    return AvatarModel.synthetic(300, np.random.default_rng(11))


class TestSkeleton:
    def test_humanoid_structure(self):
        skeleton = Skeleton.humanoid()
        assert skeleton.n_joints == 15
        assert skeleton.parents[0] == -1

    def test_fk_identity_at_zero_pose(self):
        skeleton = Skeleton.humanoid()
        rotations, translations = skeleton.forward_kinematics(np.zeros(15))
        for r, t in zip(rotations, translations):
            np.testing.assert_allclose(r, np.eye(3), atol=1e-12)
            np.testing.assert_allclose(t, 0.0, atol=1e-12)

    def test_fk_rotation_preserves_pivot(self):
        """A joint's own pivot point is a fixed point of its transform."""
        skeleton = Skeleton.humanoid()
        theta = np.zeros(15)
        theta[6] = 0.7  # bend left elbow
        rotations, translations = skeleton.forward_kinematics(theta)
        pivot = skeleton.rest_positions[6]
        moved = rotations[6] @ pivot + translations[6]
        np.testing.assert_allclose(moved, pivot, atol=1e-12)

    def test_child_follows_parent(self):
        """Rotating the shoulder moves the hand."""
        skeleton = Skeleton.humanoid()
        theta = np.zeros(15)
        theta[5] = 0.8  # l_shoulder
        rotations, translations = skeleton.forward_kinematics(theta)
        hand_rest = skeleton.rest_positions[7]
        hand_posed = rotations[7] @ hand_rest + translations[7]
        assert np.linalg.norm(hand_posed - hand_rest) > 0.05

    def test_bone_lengths_preserved(self):
        skeleton = Skeleton.humanoid()
        theta = walking_pose(0.3)
        rotations, translations = skeleton.forward_kinematics(theta)
        for j in range(1, skeleton.n_joints):
            p = skeleton.parents[j]
            rest_len = np.linalg.norm(
                skeleton.rest_positions[j] - skeleton.rest_positions[p]
            )
            pj = rotations[j] @ skeleton.rest_positions[j] + translations[j]
            pp = rotations[p] @ skeleton.rest_positions[p] + translations[p]
            # Parent-child attachment: child pivot under the PARENT
            # transform stays rigid; joint transforms only rotate the
            # subtree about the child's pivot.
            pj_under_parent = rotations[p] @ skeleton.rest_positions[j] + translations[p]
            assert np.linalg.norm(pj_under_parent - pp) == pytest.approx(
                rest_len, rel=1e-9
            )

    def test_bad_theta_shape_rejected(self):
        skeleton = Skeleton.humanoid()
        with pytest.raises(ValidationError):
            skeleton.forward_kinematics(np.zeros(3))

    def test_bad_topology_rejected(self):
        with pytest.raises(ValidationError):
            Skeleton(
                names=("a", "b"),
                parents=(1, 0),  # parent after child
                rest_positions=np.zeros((2, 3)),
                rotation_axes=np.tile([0.0, 0, 1], (2, 1)),
            )


class TestQuaternionHelpers:
    def test_matrix_quat_roundtrip(self, rng):
        for _ in range(20):
            axis = rng.normal(size=3)
            axis /= np.linalg.norm(axis)
            angle = rng.uniform(-np.pi, np.pi)
            mat = _axis_angle_matrix(axis, angle)
            quat = _matrix_to_quat(mat)
            back = quaternion_to_rotation(quat[None, :])[0]
            np.testing.assert_allclose(back, mat, atol=1e-9)


class TestAvatarModel:
    def test_rest_pose_is_identity(self, avatar):
        posed = avatar.at_pose(np.zeros(15))
        np.testing.assert_allclose(posed.means, avatar.rest_cloud.means, atol=1e-9)

    def test_pose_preserves_count_and_scales(self, avatar):
        posed = avatar.at_pose(walking_pose(0.25))
        assert len(posed) == len(avatar)
        np.testing.assert_array_equal(posed.scales, avatar.rest_cloud.scales)

    def test_pose_moves_limbs(self, avatar):
        posed = avatar.at_pose(walking_pose(0.25))
        displacement = np.linalg.norm(
            posed.means - avatar.rest_cloud.means, axis=1
        )
        assert displacement.max() > 0.05

    def test_skinning_weights_valid(self, avatar):
        assert np.allclose(avatar.bone_weights.sum(axis=1), 1.0)
        assert np.all(avatar.bone_weights >= 0.0)

    def test_quats_stay_usable(self, avatar):
        """Rest quats are unnormalized by design; skinning must not
        collapse any of them to (near) zero, which would make the
        rotation undefined."""
        posed = avatar.at_pose(walking_pose(0.6))
        norms = np.linalg.norm(posed.quats, axis=1)
        assert np.all(norms > 1e-3)

    def test_invalid_skinning_rejected(self, avatar):
        with pytest.raises(ValidationError):
            AvatarModel(
                skeleton=avatar.skeleton,
                rest_cloud=avatar.rest_cloud,
                bone_indices=avatar.bone_indices,
                bone_weights=avatar.bone_weights * 2.0,  # no longer convex
            )

    def test_skinning_flops_positive(self, avatar):
        assert avatar.skinning_flops_per_gaussian() > 0


class TestWalkingPose:
    def test_periodicity(self):
        np.testing.assert_allclose(walking_pose(0.0), walking_pose(1.0), atol=1e-12)

    def test_bounded_angles(self):
        for t in np.linspace(0, 1, 16):
            assert np.abs(walking_pose(t)).max() < np.pi / 2
