"""Failure-injection tests: corrupted inputs and misuse must fail
loudly with library exceptions, never produce silent garbage."""

import numpy as np
import pytest

from repro.config import RenderSettings
from repro.core.gbu import GBUDevice
from repro.core.irss import render_irss
from repro.core.transform import compute_transforms
from repro.errors import RenderError, ReproError, ValidationError
from repro.gaussians import (
    Camera,
    GaussianCloud,
    TileGrid,
    project,
    render_reference,
)
from repro.gaussians.sorting import RenderLists


@pytest.fixture(scope="module")
def projected():
    rng = np.random.default_rng(0)
    cloud = GaussianCloud.random(40, rng, extent=0.4)
    camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                            width=48, height=48)
    return project(cloud, camera)


class TestGridMismatch:
    def test_reference_rejects_wrong_grid(self, projected):
        wrong_grid = TileGrid(width=96, height=96)
        lists = RenderLists(
            grid=wrong_grid,
            per_tile=[np.zeros(0, dtype=np.int64)] * wrong_grid.n_tiles,
        )
        with pytest.raises(RenderError):
            render_reference(projected, lists)

    def test_irss_rejects_wrong_grid(self, projected):
        wrong_grid = TileGrid(width=96, height=96)
        lists = RenderLists(
            grid=wrong_grid,
            per_tile=[np.zeros(0, dtype=np.int64)] * wrong_grid.n_tiles,
        )
        with pytest.raises(RenderError):
            render_irss(projected, lists)


class TestDegenerateConics:
    def test_singular_conic_rejected(self):
        conics = np.array([[0.0, 0.0, 1.0]])
        with pytest.raises(ValidationError):
            compute_transforms(conics, np.zeros((1, 2)), np.ones(1))

    def test_indefinite_conic_rejected(self):
        conics = np.array([[1.0, 2.0, 1.0]])  # b^2 > a c
        with pytest.raises(ValidationError):
            compute_transforms(conics, np.zeros((1, 2)), np.ones(1))


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro import errors

        for name in ("ValidationError", "RenderError", "SimulationError",
                      "DeviceBusyError", "CalibrationError"):
            assert issubclass(getattr(errors, name), ReproError)

    def test_catching_base_class_works(self, projected):
        device = GBUDevice()
        width, height = projected.image_size
        with pytest.raises(ReproError):
            device.GBU_render_image(
                height, width, projected, None, np.zeros((1, 1, 3))
            )


class TestRobustness:
    def test_all_gaussians_behind_camera(self):
        rng = np.random.default_rng(1)
        cloud = GaussianCloud.random(10, rng, extent=0.2).translated([0, 0, -50])
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=32, height=32)
        projected = project(cloud, camera)
        result = render_reference(projected)
        np.testing.assert_allclose(result.transmittance, 1.0)
        gbu = GBUDevice().render(projected)
        assert gbu.step3_seconds >= 0.0

    def test_single_pixel_sized_image(self):
        rng = np.random.default_rng(2)
        cloud = GaussianCloud.random(5, rng, extent=0.2)
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=16, height=16)
        projected = project(cloud, camera)
        ref = render_reference(projected)
        irss = render_irss(projected)
        np.testing.assert_allclose(irss.image, ref.image, atol=1e-10)

    def test_non_multiple_of_tile_resolution(self):
        """Images whose size is not a multiple of 16 exercise clipped
        edge tiles in both rasterizers."""
        rng = np.random.default_rng(3)
        cloud = GaussianCloud.random(30, rng, extent=0.4)
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=50, height=37)
        projected = project(cloud, camera)
        ref = render_reference(projected)
        irss = render_irss(projected)
        assert ref.image.shape == (37, 50, 3)
        np.testing.assert_allclose(irss.image, ref.image, atol=1e-10)

    def test_opaque_alpha_clamp(self):
        """Opacity 1.0 gaussians clamp at alpha_max, keeping
        transmittance strictly positive."""
        cloud = GaussianCloud(
            means=np.zeros((1, 3)),
            scales=np.full((1, 3), 0.5),
            quats=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([1.0]),
            sh=np.zeros((1, 1, 3)),
        )
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=16, height=16)
        result = render_reference(project(cloud, camera))
        assert result.transmittance.min() > 0.0

    def test_settings_thresholds_respected(self, projected):
        """A higher alpha_min truncates more fragments."""
        strict = RenderSettings(alpha_min=0.1)
        loose = RenderSettings(alpha_min=1.0 / 255.0)
        # Re-project so per-Gaussian thresholds follow the settings.
        rng = np.random.default_rng(4)
        cloud = GaussianCloud.random(40, rng, extent=0.4)
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=48, height=48)
        p_strict = project(cloud, camera, settings=strict)
        p_loose = project(cloud, camera, settings=loose)
        r_strict = render_irss(p_strict, settings=strict)
        r_loose = render_irss(p_loose, settings=loose)
        assert r_strict.stats.fragments_shaded < r_loose.stats.fragments_shaded
