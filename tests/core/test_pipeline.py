"""Tests for the two-level pipeline timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PipelinedFrame, chunk_count, chunked_overlap_seconds
from repro.errors import ValidationError


class TestFramePipeline:
    def test_pipelined_is_max_plus_sync(self):
        frame = PipelinedFrame(gpu_seconds=0.005, gbu_seconds=0.012,
                               sync_seconds=0.001)
        assert frame.frame_seconds == pytest.approx(0.013)
        assert frame.unpipelined_seconds == pytest.approx(0.018)
        assert frame.bottleneck == "gbu"

    def test_gpu_bound_frame(self):
        frame = PipelinedFrame(gpu_seconds=0.02, gbu_seconds=0.004)
        assert frame.bottleneck == "gpu"
        assert frame.fps == pytest.approx(50.0)

    @given(
        gpu=st.floats(1e-4, 1.0, allow_nan=False),
        gbu=st.floats(1e-4, 1.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_pipeline_gain_bounds(self, gpu, gbu):
        frame = PipelinedFrame(gpu_seconds=gpu, gbu_seconds=gbu)
        assert 1.0 <= frame.pipeline_gain <= 2.0 + 1e-9


class TestChunkPipeline:
    def test_formula(self):
        total = chunked_overlap_seconds(0.004, 0.010, 4)
        assert total == pytest.approx(0.010 + 0.001)

    def test_one_chunk_is_serial(self):
        assert chunked_overlap_seconds(3.0, 5.0, 1) == pytest.approx(8.0)

    def test_many_chunks_approach_max(self):
        assert chunked_overlap_seconds(3.0, 5.0, 10_000) == pytest.approx(
            5.0, rel=1e-3
        )

    @given(
        a=st.floats(0, 1.0, allow_nan=False),
        b=st.floats(0, 1.0, allow_nan=False),
        n=st.integers(1, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, a, b, n):
        total = chunked_overlap_seconds(a, b, n)
        assert max(a, b) - 1e-12 <= total <= a + b + 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            chunked_overlap_seconds(1.0, 1.0, 0)
        with pytest.raises(ValidationError):
            chunked_overlap_seconds(-1.0, 1.0, 2)


class TestChunkCount:
    def test_rounding_up(self):
        assert chunk_count(1000, 128) == 8
        assert chunk_count(1025, 1024) == 2

    def test_minimum_one(self):
        assert chunk_count(0, 128) == 1

    def test_invalid_chunk_size(self):
        with pytest.raises(ValidationError):
            chunk_count(100, 0)
