"""Tests for the two-step IRSS coordinate transformation.

The key properties from Sec. IV-B: the transform is *exact*
(||P''||^2 equals Eq. 7), the column step is axis-aligned in P''-space,
and the hardware's binary-search + walk-off agrees with the
closed-form interval oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.core.transform import (
    binary_search_first_fragment,
    compute_transforms,
    compute_transforms_evd,
    walk_last_fragment,
)


def _random_conic(rng) -> np.ndarray:
    """A random symmetric positive-definite conic."""
    a = rng.uniform(0.05, 3.0)
    c = rng.uniform(0.05, 3.0)
    b = rng.uniform(-0.9, 0.9) * np.sqrt(a * c)
    return np.array([a, b, c])


@st.composite
def conic_strategy(draw):
    a = draw(st.floats(0.02, 5.0, allow_nan=False))
    c = draw(st.floats(0.02, 5.0, allow_nan=False))
    rho = draw(st.floats(-0.95, 0.95, allow_nan=False))
    return np.array([a, rho * np.sqrt(a * c), c])


def _build(conics, means=None, thresholds=None):
    conics = np.atleast_2d(conics)
    n = conics.shape[0]
    if means is None:
        means = np.zeros((n, 2))
    if thresholds is None:
        thresholds = np.full(n, 9.0)
    return compute_transforms(conics, means, thresholds)


class TestCholeskyConstruction:
    def test_dx_col_is_sqrt_a(self, rng):
        conics = np.stack([_random_conic(rng) for _ in range(20)])
        transform = _build(conics)
        np.testing.assert_allclose(transform.dx_col, np.sqrt(conics[:, 0]))

    def test_factorization_reconstructs_conic(self, rng):
        conics = np.stack([_random_conic(rng) for _ in range(20)])
        t = _build(conics)
        for i in range(20):
            u = np.array([[t.u00[i], t.u01[i]], [0.0, t.u11[i]]])
            recon = u.T @ u
            np.testing.assert_allclose(
                recon, [[conics[i, 0], conics[i, 1]], [conics[i, 1], conics[i, 2]]],
                rtol=1e-10,
            )

    def test_degenerate_conic_rejected(self):
        with pytest.raises(ValidationError):
            _build(np.array([[1.0, 1.0, 1.0]]))  # b^2 == a*c

    def test_negative_a_rejected(self):
        with pytest.raises(ValidationError):
            _build(np.array([[-1.0, 0.0, 1.0]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            compute_transforms(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(3))


class TestEvdEquivalence:
    """The paper's EVD + rotation construction equals the Cholesky."""

    @given(conic=conic_strategy())
    @settings(max_examples=60, deadline=None)
    def test_constructions_agree(self, conic):
        means = np.array([[1.5, -2.0]])
        th = np.array([9.0])
        chol = compute_transforms(conic[None, :], means, th)
        evd = compute_transforms_evd(conic[None, :], means, th)
        # Both are upper-triangular factors with positive u11; they can
        # differ by the sign of the first row (a reflection), which
        # does not change any distance.
        np.testing.assert_allclose(np.abs(chol.u00), np.abs(evd.u00), rtol=1e-8)
        np.testing.assert_allclose(np.abs(chol.u11), np.abs(evd.u11), rtol=1e-8)
        pts = np.array([[0.3, 1.2], [-4.0, 2.0], [10.0, -3.0]])
        np.testing.assert_allclose(
            chol.mahalanobis_sq(0, pts), evd.mahalanobis_sq(0, pts), rtol=1e-8
        )


class TestExactness:
    """||P''||^2 must equal Eq. 7 — the transform is not an
    approximation (Sec. IV-B)."""

    @given(
        conic=conic_strategy(),
        px=st.floats(-50, 50, allow_nan=False),
        py=st.floats(-50, 50, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_distance_equals_quadratic_form(self, conic, px, py):
        mean = np.array([3.0, -1.0])
        t = _build(conic[None, :], means=mean[None, :])
        point = np.array([[px, py]])
        d = point[0] - mean
        a, b, c = conic
        direct = a * d[0] ** 2 + 2 * b * d[0] * d[1] + c * d[1] ** 2
        via_transform = t.mahalanobis_sq(0, point)[0]
        assert via_transform == pytest.approx(direct, rel=1e-9, abs=1e-12)

    def test_row_invariant_y(self, rng):
        """y'' is constant along a row (the point of Theta)."""
        conic = _random_conic(rng)
        t = _build(conic[None, :])
        y = 7
        ys = [t.row_start(0, x0, y)[1] for x0 in range(-5, 25, 3)]
        np.testing.assert_allclose(ys, ys[0])

    def test_column_step_constant(self, rng):
        conic = _random_conic(rng)
        t = _build(conic[None, :])
        x0_a, _ = t.row_start(0, 0, 3)
        x0_b, _ = t.row_start(0, 1, 3)
        assert x0_b - x0_a == pytest.approx(t.dx_col[0], rel=1e-12)


class TestRowInterval:
    def test_interval_contains_exactly_inside_fragments(self, rng):
        conic = _random_conic(rng)
        mean = np.array([[8.0, 8.0]])
        th = np.array([rng.uniform(1.0, 9.0)])
        t = compute_transforms(conic[None, :], mean, th)
        for y in range(16):
            c0, c1 = t.row_interval(0, 0, y, 16)
            for col in range(16):
                point = np.array([[col + 0.5, y + 0.5]])
                inside = t.mahalanobis_sq(0, point)[0] <= th[0]
                assert inside == (c0 <= col <= c1), (y, col)

    def test_empty_row(self):
        conic = np.array([[1.0, 0.0, 1.0]])
        t = compute_transforms(conic, np.array([[8.0, 100.0]]), np.array([4.0]))
        assert t.row_interval(0, 0, 0, 16) == (0, -1)


class TestHardwareSearch:
    """The 3-step binary search + walk-off must agree with the oracle."""

    @given(
        conic=conic_strategy(),
        mx=st.floats(-20.0, 36.0, allow_nan=False),
        my=st.floats(-20.0, 36.0, allow_nan=False),
        th=st.floats(0.5, 9.0, allow_nan=False),
        y=st.integers(0, 15),
    )
    @settings(max_examples=150, deadline=None)
    def test_search_matches_oracle(self, conic, mx, my, th, y):
        t = compute_transforms(
            conic[None, :], np.array([[mx, my]]), np.array([th])
        )
        c0, c1 = t.row_interval(0, 0, y, 16)
        first, steps = binary_search_first_fragment(t, 0, 0, y, 16)
        if c1 < c0:
            assert first == -1
        else:
            assert first == c0
            last = walk_last_fragment(t, 0, 0, y, first, 16)
            assert last == c1
        assert steps <= int(np.ceil(np.log2(16))) + 1

    def test_step1_rejects_distant_rows_without_search(self):
        conic = np.array([[1.0, 0.0, 1.0]])
        t = compute_transforms(conic, np.array([[8.0, 100.0]]), np.array([9.0]))
        first, steps = binary_search_first_fragment(t, 0, 0, 0, 16)
        assert first == -1 and steps == 0

    def test_step2_leftmost_inside_without_search(self):
        conic = np.array([[0.05, 0.0, 0.05]])  # huge footprint
        t = compute_transforms(conic, np.array([[8.0, 8.0]]), np.array([9.0]))
        first, steps = binary_search_first_fragment(t, 0, 0, 8, 16)
        assert first == 0 and steps == 0

    def test_step3_sign_agreement_skips(self):
        # Gaussian entirely to the left of the tile.
        conic = np.array([[1.0, 0.0, 1.0]])
        t = compute_transforms(conic, np.array([[-10.0, 8.0]]), np.array([4.0]))
        first, steps = binary_search_first_fragment(t, 0, 0, 8, 16)
        assert first == -1 and steps == 0
