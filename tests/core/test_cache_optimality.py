"""Cross-validation of the reuse-distance cache against an
independent Belady (MIN) oracle.

The paper's claim (Sec. V-D) is that precomputing reuse distances
lets the hardware realize the optimal replacement policy.  At tile
granularity this is exactly Belady's MIN algorithm, so we implement
MIN from scratch (by next *access index*, not the production code's
next tile index) and require equal hit counts whenever every tile
contains each Gaussian at most once — which the render lists
guarantee by construction.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reuse_cache import ReuseDistanceCache


def belady_min_hits(trace: np.ndarray, capacity: int) -> int:
    """Textbook Belady MIN at access granularity."""
    if capacity == 0:
        return 0
    n = len(trace)
    next_access = np.full(n, np.inf)
    last: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        g = int(trace[i])
        if g in last:
            next_access[i] = last[g]
        last[g] = i
    resident: dict[int, float] = {}
    hits = 0
    for i in range(n):
        g = int(trace[i])
        if g in resident:
            hits += 1
            resident[g] = next_access[i]
            continue
        if len(resident) >= capacity:
            victim = max(resident, key=lambda k: resident[k])
            del resident[victim]
        resident[g] = next_access[i]
    return hits


@st.composite
def tile_unique_trace(draw):
    """A tile-major trace where each tile lists distinct Gaussians —
    the structure render lists always have."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    n_tiles = draw(st.integers(3, 20))
    n_gaussians = draw(st.integers(4, 30))
    trace, tiles = [], []
    for t in range(n_tiles):
        k = int(rng.integers(1, min(n_gaussians, 8) + 1))
        members = rng.choice(n_gaussians, size=k, replace=False)
        trace.extend(int(m) for m in members)
        tiles.extend([t] * k)
    return np.asarray(trace, dtype=np.int64), np.asarray(tiles, dtype=np.int64)


class TestBeladyEquivalence:
    @given(data=tile_unique_trace(), capacity=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_rd_policy_matches_min_oracle(self, data, capacity):
        """Tile-granular reuse distance == Belady MIN on render-list
        traces: when each tile holds distinct Gaussians, ordering by
        next-use tile orders identically to next-use access index up
        to ties inside one tile, which cannot change the hit count
        because tied lines are all next used in the *same* tile and
        any of them is an equally optimal victim."""
        trace, tiles = data
        rd = ReuseDistanceCache(capacity).simulate(trace, tiles)
        oracle = belady_min_hits(trace, capacity)
        # The RD policy can never beat MIN; with per-tile-distinct
        # traces it must tie within the slack of intra-tile ties.
        assert rd.hits <= oracle
        assert rd.hits >= oracle - _tie_slack(trace, tiles, capacity)


def _tie_slack(trace, tiles, capacity) -> int:
    """Upper bound on hit-count difference caused by intra-tile
    next-use ties (usually zero; bounded by the number of accesses
    whose next use shares a tile with another resident line's)."""
    from repro.core.reuse_cache import next_use_tiles

    nxt = next_use_tiles(trace, tiles)
    finite = nxt[np.isfinite(nxt)]
    if len(finite) == 0:
        return 0
    values, counts = np.unique(finite, return_counts=True)
    return int(np.sum(counts - 1))


class TestOracleSanity:
    def test_oracle_zero_capacity(self):
        assert belady_min_hits(np.array([1, 1, 1]), 0) == 0

    def test_oracle_full_reuse(self):
        assert belady_min_hits(np.array([1, 1, 1]), 1) == 2

    def test_oracle_classic_example(self):
        # 1 2 3 1 2 with capacity 2: MIN (without bypass) installs 3
        # by evicting 2 (next used farthest), then hits on 1 only.
        trace = np.array([1, 2, 3, 1, 2])
        assert belady_min_hits(trace, 2) == 1

    def test_oracle_keeps_imminent_line(self):
        # 1 2 3 1 3 with capacity 2: evicting 2 keeps both reused
        # lines -> 2 hits.
        trace = np.array([1, 2, 3, 1, 3])
        assert belady_min_hits(trace, 2) == 2
