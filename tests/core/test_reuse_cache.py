"""Tests for the Gaussian Reuse Cache: the reuse-distance policy's
optimality, baselines, and sweep behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.core.reuse_cache import (
    FIFOCache,
    LRUCache,
    ReuseDistanceCache,
    next_use_tiles,
    sweep_cache_sizes,
)


def _tiled_trace(rng, n_gaussians=40, n_tiles=25, per_tile=8):
    """A random tile-major access trace with spatial locality."""
    trace, tiles = [], []
    for t in range(n_tiles):
        # Nearby tiles reuse a sliding window of gaussians.
        base = (t * 3) % n_gaussians
        members = (base + rng.permutation(per_tile * 2)[:per_tile]) % n_gaussians
        trace.extend(members.tolist())
        tiles.extend([t] * per_tile)
    return np.asarray(trace, dtype=np.int64), np.asarray(tiles, dtype=np.int64)


class TestNextUse:
    def test_simple_sequence(self):
        trace = np.array([1, 2, 1, 3, 2])
        tiles = np.array([0, 0, 1, 1, 2])
        nxt = next_use_tiles(trace, tiles)
        assert nxt[0] == 1   # gaussian 1 reused in tile 1
        assert nxt[1] == 2   # gaussian 2 reused in tile 2
        assert nxt[2] == np.inf
        assert nxt[3] == np.inf

    def test_misaligned_rejected(self):
        with pytest.raises(ValidationError):
            next_use_tiles(np.array([1, 2]), np.array([0]))


class TestPolicies:
    def test_zero_capacity_all_miss(self, rng):
        trace, tiles = _tiled_trace(rng)
        for cls in (ReuseDistanceCache, LRUCache, FIFOCache):
            report = cls(0).simulate(trace, tiles)
            assert report.hits == 0
            assert report.misses == len(trace)

    def test_infinite_capacity_compulsory_only(self, rng):
        trace, tiles = _tiled_trace(rng)
        unique = len(np.unique(trace))
        for cls in (ReuseDistanceCache, LRUCache, FIFOCache):
            report = cls(10_000).simulate(trace, tiles)
            assert report.misses == unique

    def test_report_arithmetic(self, rng):
        trace, tiles = _tiled_trace(rng)
        report = ReuseDistanceCache(8, bytes_per_line=32).simulate(trace, tiles)
        assert report.hits + report.misses == report.accesses
        assert report.miss_bytes == report.misses * 32
        assert report.hit_rate == pytest.approx(report.hits / report.accesses)
        assert report.traffic_reduction == pytest.approx(report.hit_rate)

    @given(seed=st.integers(0, 10_000), capacity=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_rd_beats_or_ties_lru_and_fifo(self, seed, capacity):
        """Belady-style optimality at tile granularity: on tile-major
        traces whose reuses happen in later tiles, the precomputed
        reuse-distance policy never loses to LRU or FIFO."""
        rng = np.random.default_rng(seed)
        trace, tiles = _tiled_trace(rng)
        rd = ReuseDistanceCache(capacity).simulate(trace, tiles)
        lru = LRUCache(capacity).simulate(trace, tiles)
        fifo = FIFOCache(capacity).simulate(trace, tiles)
        assert rd.hits >= lru.hits
        assert rd.hits >= fifo.hits

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_hit_rate_monotone_in_capacity(self, seed):
        rng = np.random.default_rng(seed)
        trace, tiles = _tiled_trace(rng)
        previous = -1.0
        for capacity in (1, 2, 4, 8, 16, 32):
            report = ReuseDistanceCache(capacity).simulate(trace, tiles)
            assert report.hit_rate >= previous - 1e-12
            previous = report.hit_rate

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            ReuseDistanceCache(-1)


class TestRdPolicyMechanics:
    def test_evicts_farthest_reuse(self):
        """Classic Belady scenario: keep the line that is reused next."""
        # g0 reused immediately (tile 1), g1 reused far (tile 9).
        trace = np.array([0, 1, 2, 0, 1])
        tiles = np.array([0, 0, 1, 1, 9])
        report = ReuseDistanceCache(2).simulate(trace, tiles)
        # Optimal: install 0,1; miss 2 evicts g1 (reuse at 9) keeping
        # g0 (reuse at 1) -> hit on 0, miss on final 1 = 1 hit.
        assert report.hits == 1
        lru = LRUCache(2).simulate(trace, tiles)
        # LRU evicts g0 (least recent) -> misses 0 again -> evicts...
        assert report.hits >= lru.hits

    def test_empty_trace(self):
        report = ReuseDistanceCache(4).simulate(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert report.accesses == 0
        assert report.hit_rate == 0.0


class TestSweep:
    def test_sweep_returns_all_sizes(self, rng):
        trace, tiles = _tiled_trace(rng)
        sizes = [0, 256, 1024, 4096]
        results = sweep_cache_sizes(trace, tiles, sizes, bytes_per_line=32)
        assert sorted(results) == sorted(sizes)
        assert results[0].hit_rate == 0.0

    def test_unknown_policy_rejected(self, rng):
        trace, tiles = _tiled_trace(rng)
        with pytest.raises(ValidationError):
            sweep_cache_sizes(trace, tiles, [1024], policy="random")
