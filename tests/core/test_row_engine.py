"""Tests for the Row Generation Engine / Row PE cycle models,
including the tick-vs-analytic cross-validation property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.core.row_engine import (
    TileTrace,
    analytic_tile_cycles,
    row_assignment,
    tick_simulate_tile,
    trace_to_aggregates,
)


@st.composite
def trace_strategy(draw, max_instances=25):
    n_inst = draw(st.integers(1, max_instances))
    segments = np.zeros((n_inst, 16), dtype=np.int64)
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    for i in range(n_inst):
        r0 = rng.integers(0, 16)
        r1 = rng.integers(r0, 16)
        segments[i, r0:r1 + 1] = rng.integers(1, 17, size=r1 - r0 + 1)
    search = rng.integers(0, 5, size=n_inst)
    return TileTrace(segments=segments, search_steps=search)


class TestRowAssignment:
    def test_interleaved_partition(self):
        assignment = row_assignment(16, 8, interleaved=True)
        all_rows = np.sort(np.concatenate(assignment))
        np.testing.assert_array_equal(all_rows, np.arange(16))
        np.testing.assert_array_equal(assignment[0], [0, 8])

    def test_contiguous_partition(self):
        assignment = row_assignment(16, 8, interleaved=False)
        np.testing.assert_array_equal(assignment[0], [0, 1])
        np.testing.assert_array_equal(assignment[7], [14, 15])

    def test_uneven_rejected(self):
        with pytest.raises(ValidationError):
            row_assignment(16, 7)


class TestTileTrace:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TileTrace(segments=np.zeros((3, 16)) - 1, search_steps=np.zeros(3))
        with pytest.raises(ValidationError):
            TileTrace(segments=np.zeros((3, 16)), search_steps=np.zeros(2))

    def test_aggregates(self):
        seg = np.zeros((2, 16), dtype=np.int64)
        seg[0, 0] = 5
        seg[1, 0] = 3
        seg[1, 2] = 4
        trace = TileTrace(segments=seg, search_steps=np.array([0, 4]))
        frag, segs, inst, searching = trace_to_aggregates(trace)
        assert frag[0] == 8 and frag[2] == 4
        assert segs[0] == 2 and segs[2] == 1
        assert inst == 2
        assert searching == 1  # only the second instance searched


class TestAnalyticModel:
    def test_empty_tile_zero_cycles(self):
        est = analytic_tile_cycles(
            np.zeros(16), np.zeros(16), 0, 0
        )
        assert est.tile_cycles == 0.0

    def test_fragments_drive_cycles(self):
        rows = np.zeros(16)
        rows[3] = 100
        est = analytic_tile_cycles(rows, (rows > 0).astype(int), 1, 0)
        assert est.tile_cycles >= 100

    def test_balanced_rows_beat_single_row(self):
        lumped = np.zeros(16)
        lumped[0] = 160
        spread = np.full(16, 10.0)
        est_lumped = analytic_tile_cycles(lumped, (lumped > 0).astype(int), 1, 0)
        est_spread = analytic_tile_cycles(spread, np.ones(16), 1, 0)
        assert est_spread.tile_cycles < est_lumped.tile_cycles

    def test_generation_bound_tile(self):
        # Many instances with tiny segments: the generation engine
        # serializes the tile.
        rows = np.full(16, 2.0)
        est = analytic_tile_cycles(rows, np.ones(16), 500, 400)
        assert est.generation_cycles > float(est.row_pe_cycles.max())
        assert est.tile_cycles >= est.generation_cycles

    def test_utilization_bounds(self, rng):
        rows = rng.integers(0, 50, 16).astype(float)
        est = analytic_tile_cycles(rows, (rows > 0).astype(int), 10, 2)
        assert 0.0 <= est.utilization <= 1.0


class TestTickSimulator:
    def test_fragment_conservation(self):
        seg = np.zeros((3, 16), dtype=np.int64)
        seg[0, 1] = 4
        seg[1, 1] = 2
        seg[2, 9] = 7
        trace = TileTrace(segments=seg, search_steps=np.zeros(3, dtype=np.int64))
        result = tick_simulate_tile(trace)
        assert result.fragments_shaded == 13

    def test_empty_trace(self):
        trace = TileTrace(
            segments=np.zeros((0, 16), dtype=np.int64),
            search_steps=np.zeros(0, dtype=np.int64),
        )
        result = tick_simulate_tile(trace)
        assert result.cycles <= 1
        assert result.fragments_shaded == 0

    def test_shallow_buffers_cost_more(self):
        rng = np.random.default_rng(3)
        seg = rng.integers(0, 10, size=(30, 16)).astype(np.int64)
        trace = TileTrace(segments=seg, search_steps=np.zeros(30, dtype=np.int64))
        deep = tick_simulate_tile(trace, buffer_depth=256)
        shallow = tick_simulate_tile(trace, buffer_depth=1)
        assert shallow.cycles >= deep.cycles

    def test_buffer_occupancy_respects_depth(self):
        rng = np.random.default_rng(4)
        seg = rng.integers(0, 10, size=(20, 16)).astype(np.int64)
        trace = TileTrace(segments=seg, search_steps=np.zeros(20, dtype=np.int64))
        result = tick_simulate_tile(trace, buffer_depth=4)
        assert result.max_buffer_occupancy.max() <= 4

    @given(trace=trace_strategy())
    @settings(max_examples=25, deadline=None)
    def test_analytic_close_to_tick_with_deep_buffers(self, trace):
        """The analytic model tracks the tick simulator within 20%
        (plus a small absolute slack for drain effects) when FIFOs are
        deep enough to decouple the engines."""
        tick = tick_simulate_tile(trace, buffer_depth=512)
        analytic = analytic_tile_cycles(*trace_to_aggregates(trace))
        assert tick.fragments_shaded == int(trace.segments.sum())
        if trace.segments.sum() > 100:
            ratio = tick.cycles / analytic.tile_cycles
            assert 0.6 < ratio < 1.2

    @given(trace=trace_strategy(max_instances=12))
    @settings(max_examples=15, deadline=None)
    def test_tick_busy_bounded_by_cycles(self, trace):
        result = tick_simulate_tile(trace, buffer_depth=64)
        assert np.all(result.row_pe_busy_cycles <= result.cycles)
        assert result.generation_busy_cycles <= result.cycles
