"""Property-based tests on alpha-blending invariants.

These pin down the physical semantics both rasterizers must satisfy
regardless of scene content: transmittance is monotone under added
content, colors are convex combinations, and blending respects depth
order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RenderSettings
from repro.core.irss import render_irss
from repro.gaussians import Camera, GaussianCloud, project, render_reference

pytestmark = pytest.mark.property


def _scene(seed: int, n: int, opacity_hi: float = 0.9) -> GaussianCloud:
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.random(n, rng, extent=0.5, scale_range=(0.05, 0.25))
    return GaussianCloud(
        means=cloud.means,
        scales=cloud.scales,
        quats=cloud.quats,
        opacities=np.clip(cloud.opacities, 0.05, opacity_hi),
        sh=cloud.sh,
    )


CAMERA = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0], width=48, height=48)


class TestTransmittanceInvariants:
    @given(seed=st.integers(0, 5000), n=st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_transmittance_in_unit_interval(self, seed, n):
        result = render_reference(project(_scene(seed, n), CAMERA))
        assert np.all(result.transmittance >= 0.0)
        assert np.all(result.transmittance <= 1.0)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_more_gaussians_never_raise_transmittance(self, seed):
        """Adding content can only absorb more light."""
        full = _scene(seed, 24)
        half = full.subset(np.arange(12))
        t_half = render_reference(project(half, CAMERA)).transmittance
        t_full = render_reference(project(full, CAMERA)).transmittance
        assert np.all(t_full <= t_half + 1e-12)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_color_bounded_by_absorbed_light(self, seed):
        """C_p = sum T a c with colors <= c_max implies
        C_p <= c_max * (1 - T_final)."""
        cloud = _scene(seed, 20)
        projected = project(cloud, CAMERA)
        result = render_reference(projected)
        c_max = projected.colors.max() if len(projected) else 0.0
        bound = c_max * (1.0 - result.transmittance) + 1e-9
        assert np.all(result.image <= bound[:, :, None])


class TestOrderSemantics:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=8, deadline=None)
    def test_input_permutation_invariance(self, seed):
        """Blending depends on depth order, not on the input order of
        the Gaussians in the cloud (sorting normalizes it)."""
        cloud = _scene(seed, 16)
        rng = np.random.default_rng(seed + 1)
        # Avoid exact depth ties, which would expose the stable-sort
        # tiebreak to the permutation.
        means = cloud.means.copy()
        means[:, 2] += np.linspace(0, 1e-3, len(cloud))
        cloud = GaussianCloud(
            means=means, scales=cloud.scales, quats=cloud.quats,
            opacities=cloud.opacities, sh=cloud.sh,
        )
        perm = rng.permutation(len(cloud))
        image_a = render_reference(project(cloud, CAMERA)).image
        image_b = render_reference(project(cloud.subset(perm), CAMERA)).image
        np.testing.assert_allclose(image_a, image_b, atol=1e-9)

    def test_background_shows_through_translucent_scene(self):
        cloud = _scene(3, 5, opacity_hi=0.3)
        settings_bg = RenderSettings(background=(1.0, 0.0, 0.0))
        result = render_reference(project(cloud, CAMERA), settings=settings_bg)
        # Red background visible everywhere the scene is translucent.
        assert result.image[..., 0].min() > 0.0


class TestIrssSameInvariants:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=8, deadline=None)
    def test_irss_transmittance_matches(self, seed):
        projected = project(_scene(seed, 18), CAMERA)
        ref = render_reference(projected)
        irss = render_irss(projected)
        np.testing.assert_allclose(
            irss.transmittance, ref.transmittance, atol=1e-12
        )

    @given(seed=st.integers(0, 5000), opacity=st.floats(0.05, 0.99))
    @settings(max_examples=10, deadline=None)
    def test_single_gaussian_peak_alpha(self, seed, opacity):
        """At the footprint center the blended alpha approaches the
        opacity factor (Eq. 5 with E ~ 0)."""
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0]]),
            scales=np.full((1, 3), 0.3),
            quats=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([opacity]),
            sh=np.zeros((1, 1, 3)),
        )
        projected = project(cloud, CAMERA)
        result = render_irss(projected)
        center_t = result.transmittance[24, 24]
        assert center_t == pytest.approx(1.0 - min(opacity, 0.99), abs=0.05)
