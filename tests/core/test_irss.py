"""Tests for the IRSS rasterizer: exact equivalence with the PFS
reference (the paper's central no-quality-loss claim), skip
statistics, FLOP accounting, and the fp16 datapath.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RenderSettings
from repro.core.irss import render_irss, render_irss_sequential
from repro.gaussians import (
    Camera,
    GaussianCloud,
    build_render_lists,
    project,
    render_reference,
)


class TestEquivalence:
    def test_image_matches_reference(self, reference_render, irss_render):
        np.testing.assert_allclose(
            irss_render.image, reference_render.image, atol=1e-10
        )

    def test_transmittance_matches(self, reference_render, irss_render):
        np.testing.assert_allclose(
            irss_render.transmittance, reference_render.transmittance, atol=1e-12
        )

    def test_contrib_counts_match(self, reference_render, irss_render):
        np.testing.assert_array_equal(
            irss_render.n_contrib, reference_render.n_contrib
        )

    def test_sequential_matches_vectorized(self, small_projected, small_lists,
                                            irss_render):
        seq = render_irss_sequential(small_projected, small_lists)
        np.testing.assert_allclose(seq.image, irss_render.image, atol=1e-10)
        assert seq.stats.fragments_shaded == irss_render.stats.fragments_shaded
        assert seq.stats.segments == irss_render.stats.segments
        assert seq.stats.fragments_blended == irss_render.stats.fragments_blended

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_equivalence_random_scenes(self, seed):
        """Property: on arbitrary random scenes, IRSS == PFS."""
        rng = np.random.default_rng(seed)
        cloud = GaussianCloud.random(
            40, rng, extent=0.6, scale_range=(0.02, 0.3), anisotropy=6.0
        )
        camera = Camera.look_at(
            eye=[0.3, 0.2, -2.0], target=[0, 0, 0], width=48, height=48
        )
        projected = project(cloud, camera)
        lists = build_render_lists(projected)
        ref = render_reference(projected, lists)
        irss = render_irss(projected, lists)
        np.testing.assert_allclose(irss.image, ref.image, atol=1e-9)

    def test_empty_scene(self):
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=32, height=32)
        projected = project(GaussianCloud.empty(), camera)
        settings = RenderSettings(background=(0.1, 0.2, 0.3))
        result = render_irss(projected, settings=settings)
        np.testing.assert_allclose(result.image[..., 2], 0.3)


class TestSkipStatistics:
    def test_skip_rate_bounds(self, irss_render):
        assert 0.0 < irss_render.stats.skip_rate < 1.0

    def test_irss_shades_fewer_fragments(self, reference_render, irss_render):
        assert (
            irss_render.stats.fragments_shaded
            < reference_render.stats.fragments_shaded
        )

    def test_blended_at_most_shaded(self, irss_render):
        assert irss_render.stats.fragments_blended <= irss_render.stats.fragments_shaded

    def test_row_accounting_adds_up(self, irss_render):
        """Every considered row is shaded, skipped, or terminated."""
        s = irss_render.stats
        classified = (
            s.segments
            + s.rows_skipped_y
            + s.rows_skipped_sign
            + s.rows_skipped_empty
            + s.rows_terminated
        )
        assert classified == s.rows_considered

    def test_skipped_fragments_insignificant(self, small_projected, small_lists,
                                             reference_render, irss_render):
        """Soundness: everything the reference blended, IRSS blended."""
        assert (
            irss_render.stats.fragments_blended
            == reference_render.stats.fragments_significant
        )


class TestFlopAccounting:
    def test_flop_identity(self, irss_render):
        s = irss_render.stats
        expected = s.segments * 11 + (s.fragments_shaded - s.segments) * 2
        assert s.eq7_flops == expected

    def test_flops_per_fragment_between_2_and_11(self, irss_render):
        assert 2.0 <= irss_render.stats.flops_per_fragment <= 11.0

    def test_large_footprints_approach_2_flops(self):
        """Long rows amortize the per-segment setup toward 2 FLOPs."""
        cloud = GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0]]),
            scales=np.array([[1.2, 1.2, 1.2]]),
            quats=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([0.95]),
            sh=np.zeros((1, 1, 3)),
        )
        camera = Camera.look_at(eye=[0, 0, -2], target=[0, 0, 0],
                                width=96, height=96)
        result = render_irss(project(cloud, camera))
        assert result.stats.flops_per_fragment < 3.0


class TestWorkload:
    def test_row_fragments_sum(self, irss_render):
        assert (
            irss_render.workload.row_fragments.sum()
            == irss_render.stats.fragments_shaded
        )

    def test_row_segments_sum(self, irss_render):
        assert irss_render.workload.row_segments.sum() == irss_render.stats.segments

    def test_instance_setup_matches_processed(self, irss_render):
        assert (
            irss_render.workload.instance_setup.sum()
            == irss_render.stats.instances_processed
        )

    def test_search_instances_at_most_processed(self, irss_render):
        w = irss_render.workload
        assert np.all(w.instance_search <= w.instance_setup)

    def test_max_run_bounds(self, irss_render):
        w = irss_render.workload
        # Per-instance max run is at most the tile width, so the sum is
        # bounded by 16x the instances.
        assert w.instance_max_run.sum() <= 16 * w.instance_setup.sum()
        assert w.instance_max_run.sum() >= w.instance_setup.sum() * 0  # sane

    def test_row_utilization_bounds(self, irss_render):
        util = irss_render.workload.row_utilization()
        assert 0.0 < util <= 1.0

    def test_sequential_workload_matches(self, small_projected, small_lists,
                                          irss_render):
        seq = render_irss_sequential(small_projected, small_lists)
        np.testing.assert_array_equal(
            seq.workload.row_fragments, irss_render.workload.row_fragments
        )
        np.testing.assert_array_equal(
            seq.workload.row_segments, irss_render.workload.row_segments
        )
        np.testing.assert_array_equal(
            seq.workload.instance_max_run, irss_render.workload.instance_max_run
        )


class TestFp16:
    def test_fp16_close_to_reference(self, small_projected, small_lists,
                                     reference_render):
        fp16 = render_irss(small_projected, small_lists, fp16=True)
        err = np.abs(fp16.image - reference_render.image).max()
        assert 0.0 < err < 0.05  # visible but small (Tab. IV's point)

    def test_fp16_psnr_high(self, small_projected, small_lists, reference_render):
        from repro.metrics.image import psnr

        fp16 = render_irss(small_projected, small_lists, fp16=True)
        assert psnr(reference_render.image, fp16.image) > 35.0

    def test_fp16_still_counts_workload(self, small_projected, small_lists):
        fp16 = render_irss(small_projected, small_lists, fp16=True)
        assert fp16.stats.fragments_shaded > 0
