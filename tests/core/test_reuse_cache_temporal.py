"""Temporal (cross-frame) mode of the Gaussian Reuse Cache."""

import numpy as np
import pytest

from repro.core.reuse_cache import (
    POLICIES,
    TemporalReuseSimulator,
)
from repro.errors import ValidationError


@pytest.fixture()
def trace():
    rng = np.random.default_rng(7)
    trace = rng.integers(0, 60, 500)
    tiles = np.sort(rng.integers(0, 24, 500))
    return trace, tiles


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_frame_zero_matches_cold_simulation(trace, policy):
    t, tiles = trace
    cold = POLICIES[policy](24).simulate(t, tiles)
    sim = TemporalReuseSimulator(24, policy=policy)
    sample = sim.observe_frame(t, tiles)
    assert sample.report.hits == cold.hits
    assert sample.report.misses == cold.misses
    assert sample.carried_hits == 0
    assert sim.cold_hit_rate == cold.hit_rate


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_repeated_trace_hit_rate_is_monotone(trace, policy):
    t, tiles = trace
    sim = TemporalReuseSimulator(24, policy=policy)
    rates = [sim.observe_frame(t, tiles).report.hit_rate for _ in range(6)]
    for earlier, later in zip(rates, rates[1:]):
        assert later >= earlier - 1e-12
    assert rates[-1] > rates[0]


def test_working_set_within_capacity_gets_full_warm_hits(trace):
    t, tiles = trace
    sim = TemporalReuseSimulator(1000)  # everything fits
    sim.observe_frame(t, tiles)
    warm = sim.observe_frame(t, tiles)
    assert warm.report.hit_rate == 1.0
    # Every distinct Gaussian's first access this frame was carried.
    assert warm.carried_hits == len(np.unique(t))


def test_cumulative_accounting(trace):
    t, tiles = trace
    sim = TemporalReuseSimulator(24)
    s0 = sim.observe_frame(t, tiles)
    s1 = sim.observe_frame(t, tiles)
    assert s1.cumulative_accesses == 2 * len(t)
    assert s1.cumulative_hits == s0.report.hits + s1.report.hits
    assert sim.cumulative_hit_rate == pytest.approx(
        s1.cumulative_hits / s1.cumulative_accesses
    )
    assert sim.frames_observed == 2
    assert len(sim.samples) == 2


def test_zero_capacity_never_hits(trace):
    t, tiles = trace
    sim = TemporalReuseSimulator(0)
    for _ in range(3):
        sample = sim.observe_frame(t, tiles)
        assert sample.report.hits == 0
        assert sample.report.misses == len(t)
    assert sim.resident_lines == 0


def test_reset_restores_cold_behavior(trace):
    t, tiles = trace
    sim = TemporalReuseSimulator(24)
    first = sim.observe_frame(t, tiles)
    sim.observe_frame(t, tiles)
    sim.reset()
    again = sim.observe_frame(t, tiles)
    assert again.report.hits == first.report.hits
    assert again.frame == 0


def test_disjoint_frames_carry_nothing():
    tiles = np.arange(50)
    sim = TemporalReuseSimulator(64)
    sim.observe_frame(np.arange(50), tiles)
    sample = sim.observe_frame(np.arange(100, 150), tiles)
    assert sample.carried_hits == 0


def test_validation():
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(-1)
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, policy="belady")
    sim = TemporalReuseSimulator(8)
    with pytest.raises(ValidationError):
        sim.observe_frame(np.zeros(3), np.zeros(4))
