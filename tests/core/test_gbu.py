"""Tests for the GBU device model and its Listing-1 interface."""

import numpy as np
import pytest

from repro.core.gbu import GBUConfig, GBUDevice
from repro.core.irss import render_irss
from repro.errors import DeviceBusyError, ValidationError
from repro.gpu.workload import ScaleFactors


class TestConfig:
    def test_defaults(self):
        config = GBUConfig()
        assert config.use_dnb and config.use_cache and config.fp16

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            GBUConfig(cache_policy="belady_but_wrong")


class TestRender:
    def test_report_fields(self, small_projected):
        report = GBUDevice().render(small_projected)
        assert report.step3_seconds > 0
        assert report.compute_seconds > 0
        assert report.cache.accesses > 0
        assert 0.0 < report.utilization <= 1.0
        assert report.image.shape[2] == 3

    def test_image_matches_fp16_irss(self, small_projected):
        """The device's functional output is the fp16 IRSS render over
        the D&B engine's exact lists."""
        device = GBUDevice()
        report = device.render(small_projected)
        from repro.core.dnb import run_dnb

        dnb = run_dnb(small_projected)
        expected = render_irss(
            small_projected, dnb.lists, transform=dnb.transform, fp16=True
        )
        np.testing.assert_allclose(report.image, expected.image, atol=1e-12)

    def test_fp32_option(self, small_projected, reference_render):
        device = GBUDevice(config=GBUConfig(fp16=False))
        report = device.render(small_projected)
        np.testing.assert_allclose(report.image, reference_render.image, atol=1e-9)

    def test_cache_reduces_traffic(self, small_projected):
        cached = GBUDevice(config=GBUConfig(use_cache=True)).render(small_projected)
        uncached = GBUDevice(config=GBUConfig(use_cache=False)).render(small_projected)
        assert cached.feature_bytes_fetched < uncached.feature_bytes_fetched
        assert cached.memory_seconds < uncached.memory_seconds
        assert cached.cache.hit_rate > 0.0
        assert uncached.cache.hit_rate == 0.0

    def test_dnb_reduces_instances(self, small_projected, small_lists):
        with_dnb = GBUDevice(config=GBUConfig(use_dnb=True)).render(small_projected)
        without = GBUDevice(config=GBUConfig(use_dnb=False)).render(
            small_projected, lists=small_lists
        )
        assert with_dnb.cache.accesses <= without.cache.accesses
        assert with_dnb.dnb_cycles > 0
        assert without.dnb_cycles == 0

    def test_scales_scale_time_linearly(self, small_projected):
        device = GBUDevice()
        base = device.render(small_projected, scales=ScaleFactors.uniform(1.0))
        scaled = device.render(small_projected, scales=ScaleFactors.uniform(10.0))
        assert scaled.compute_seconds == pytest.approx(10 * base.compute_seconds)
        assert scaled.memory_seconds == pytest.approx(10 * base.memory_seconds)

    def test_lru_policy_usable(self, small_projected):
        report = GBUDevice(config=GBUConfig(cache_policy="lru")).render(
            small_projected
        )
        assert report.cache.hit_rate > 0.0


class TestListingOneInterface:
    def test_render_and_blocking_status(self, small_projected):
        device = GBUDevice()
        width, height = small_projected.image_size
        frame = np.zeros((height, width, 3))
        device.GBU_render_image(height, width, small_projected, None, frame)
        assert device.GBU_check_status(blocking=False) == 1
        assert device.GBU_check_status(blocking=True) == 0
        assert frame.max() > 0  # image landed in the caller's buffer

    def test_idle_status(self):
        assert GBUDevice().GBU_check_status() == 0

    def test_busy_device_rejects_second_frame(self, small_projected):
        device = GBUDevice()
        width, height = small_projected.image_size
        frame = np.zeros((height, width, 3))
        device.GBU_render_image(height, width, small_projected, None, frame)
        with pytest.raises(DeviceBusyError):
            device.GBU_render_image(height, width, small_projected, None, frame)

    def test_wrong_buffer_shape_rejected(self, small_projected):
        device = GBUDevice()
        width, height = small_projected.image_size
        with pytest.raises(ValidationError):
            device.GBU_render_image(
                height, width, small_projected, None, np.zeros((8, 8, 3))
            )

    def test_wrong_channel_count_rejected(self, small_projected):
        device = GBUDevice()
        width, height = small_projected.image_size
        with pytest.raises(ValidationError):
            device.GBU_render_image(
                height, width, small_projected, None,
                np.zeros((height, width, 4)), ch=4,
            )

    def test_last_report_available_after_render(self, small_projected):
        device = GBUDevice()
        with pytest.raises(ValidationError):
            _ = device.last_report
        device.render(small_projected)
        assert device.last_report.step3_seconds > 0
