"""Tests for the frame-level Row-Centric Tile Engine model."""

import numpy as np
import pytest

from repro.core.irss import TileRowWorkload
from repro.core.tile_engine import simulate_tile_engine
from repro.errors import ValidationError
from repro.gpu.specs import GBUSpec


def _workload(n_tiles=6, rng=None, rows=16):
    rng = rng or np.random.default_rng(0)
    frag = rng.integers(0, 60, size=(n_tiles, rows)).astype(np.int64)
    seg = np.minimum(frag, rng.integers(0, 5, size=(n_tiles, rows))).astype(np.int64)
    inst = rng.integers(1, 30, size=n_tiles).astype(np.int64)
    return TileRowWorkload(
        row_fragments=frag,
        row_segments=seg,
        instance_max_run=rng.integers(1, 200, size=n_tiles).astype(np.int64),
        instance_setup=inst,
        binary_search_steps=rng.integers(0, 40, size=n_tiles).astype(np.int64),
        instance_search=np.minimum(inst, rng.integers(0, 10, size=n_tiles)).astype(np.int64),
    )


class TestSimulation:
    def test_report_shapes(self):
        workload = _workload()
        report = simulate_tile_engine(workload)
        assert report.tile_cycles.shape == (6,)
        assert report.pe_frame_cycles.shape == (8,)

    def test_cross_tile_overlap_not_slower(self):
        workload = _workload()
        overlapped = simulate_tile_engine(workload, cross_tile_overlap=True)
        barrier = simulate_tile_engine(workload, cross_tile_overlap=False)
        assert overlapped.total_cycles <= barrier.total_cycles

    def test_utilization_bounds(self):
        report = simulate_tile_engine(_workload())
        assert 0.0 < report.utilization <= 1.0

    def test_empty_tiles_cost_nothing(self):
        workload = _workload(n_tiles=3)
        workload.instance_setup[1] = 0
        workload.row_fragments[1] = 0
        report = simulate_tile_engine(workload)
        assert report.tile_cycles[1] == 0.0

    def test_seconds_uses_clock(self):
        workload = _workload()
        report = simulate_tile_engine(workload)
        spec = GBUSpec()
        assert report.seconds(spec) == pytest.approx(
            report.total_cycles / spec.clock_hz
        )

    def test_generation_bound_detection(self):
        workload = _workload()
        workload.instance_setup[:] = 10_000
        report = simulate_tile_engine(workload)
        assert report.generation_bound_tiles() == workload.n_tiles

    def test_row_count_mismatch_rejected(self):
        workload = _workload(rows=8)
        with pytest.raises(ValidationError):
            simulate_tile_engine(workload)

    def test_interleave_helps_centered_footprints(self):
        """Elliptical footprints concentrate work in central rows;
        interleaved row assignment balances the PE pairs better than
        contiguous pairing."""
        n_tiles = 4
        rows = np.zeros((n_tiles, 16), dtype=np.int64)
        # Center-heavy per-row profile (like a fat Gaussian).
        profile = np.array([1, 2, 5, 9, 14, 18, 20, 22, 22, 20, 18, 14, 9, 5, 2, 1])
        rows[:] = profile
        workload = TileRowWorkload(
            row_fragments=rows,
            row_segments=(rows > 0).astype(np.int64),
            instance_max_run=np.full(n_tiles, 22, dtype=np.int64),
            instance_setup=np.ones(n_tiles, dtype=np.int64),
            binary_search_steps=np.zeros(n_tiles, dtype=np.int64),
            instance_search=np.zeros(n_tiles, dtype=np.int64),
        )
        inter = simulate_tile_engine(workload, interleaved=True,
                                     cross_tile_overlap=False)
        contig = simulate_tile_engine(workload, interleaved=False,
                                      cross_tile_overlap=False)
        assert inter.total_cycles <= contig.total_cycles
