"""Tests for the Decomposition & Binning engine."""

import numpy as np

from repro.core.dnb import reuse_distance_table, run_dnb
from repro.core.transform import compute_transforms
from repro.gaussians.rasterizer import render_reference
from repro.core.irss import render_irss


class TestRunDnb:
    def test_exact_pairs_at_most_candidates(self, small_projected):
        out = run_dnb(small_projected)
        assert out.report.exact_pairs <= out.report.candidate_pairs
        assert out.report.pair_reduction >= 0.0

    def test_exact_false_matches_conservative(self, small_projected, small_lists):
        out = run_dnb(small_projected, exact=False)
        assert out.lists.n_instances == small_lists.n_instances
        assert out.report.pair_reduction == 0.0

    def test_transforms_match_direct_computation(self, small_projected):
        out = run_dnb(small_projected)
        direct = compute_transforms(
            small_projected.conics,
            small_projected.means2d,
            small_projected.thresholds,
        )
        np.testing.assert_allclose(out.transform.u00, direct.u00)
        np.testing.assert_allclose(out.transform.u11, direct.u11)

    def test_cycles_positive(self, small_projected):
        out = run_dnb(small_projected)
        assert out.report.cycles > 0
        assert out.report.n_gaussians == len(small_projected)

    def test_exact_lists_render_identically(self, small_projected, small_lists):
        """Dropping non-intersecting (tile, Gaussian) pairs must not
        change the image: the exact test only removes pairs with no
        significant fragment."""
        reference = render_reference(small_projected, small_lists)
        out = run_dnb(small_projected)
        via_dnb = render_irss(small_projected, out.lists, transform=out.transform)
        np.testing.assert_allclose(via_dnb.image, reference.image, atol=1e-9)

    def test_depth_order_preserved(self, small_projected):
        out = run_dnb(small_projected)
        for members in out.lists.per_tile:
            if len(members) > 1:
                depths = small_projected.depths[members]
                assert np.all(np.diff(depths) >= 0)


class TestReuseDistanceTable:
    def test_alignment(self, small_projected):
        out = run_dnb(small_projected)
        trace, tiles = reuse_distance_table(out.lists)
        assert trace.shape == tiles.shape
        assert trace.shape[0] == out.lists.n_instances
        # Tile ids are non-decreasing in a tile-major trace.
        assert np.all(np.diff(tiles) >= 0)

    def test_trace_contents(self, small_projected):
        out = run_dnb(small_projected)
        trace, tiles = reuse_distance_table(out.lists)
        offset = 0
        for t, members in enumerate(out.lists.per_tile):
            np.testing.assert_array_equal(
                trace[offset:offset + len(members)], members
            )
            assert np.all(tiles[offset:offset + len(members)] == t)
            offset += len(members)
