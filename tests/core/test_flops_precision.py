"""Tests for FLOP accounting and fp16 precision helpers."""

import numpy as np
import pytest

from repro.core.flops import (
    DataflowComparison,
    compare_dataflows,
    peak_fraction,
    tflops_for_target_fps,
)
from repro.core.precision import (
    FP16_UNIT_ROUNDOFF,
    max_relative_error,
    quantization_error,
    quantize_fp16,
)


class TestDataflowComparison:
    def test_from_renders(self, reference_render, irss_render):
        comp = compare_dataflows(reference_render.stats, irss_render.stats)
        assert comp.pfs_fragments == reference_render.stats.fragments_shaded
        assert 0.0 < comp.fragment_skip_rate < 1.0
        assert comp.per_fragment_reduction > 1.0
        assert comp.total_flop_reduction > comp.per_fragment_reduction

    def test_perfect_sharing_reaches_5_5x(self):
        comp = DataflowComparison(
            pfs_fragments=1000, pfs_flops=11_000,
            irss_fragments=1000, irss_flops=2_000,
        )
        assert comp.per_fragment_reduction == pytest.approx(5.5)

    def test_zero_division_guards(self):
        comp = DataflowComparison(0, 0, 0, 0)
        assert comp.fragment_skip_rate == 0.0
        assert comp.per_fragment_reduction == 0.0
        assert comp.total_flop_reduction == 0.0


class TestProjections:
    def test_tflops_for_target(self):
        # 1.83e10 FLOPs/frame at 60 FPS ~ the paper's 1.1 TFLOPs.
        assert tflops_for_target_fps(1.83e10, 60.0) == pytest.approx(1.1, rel=0.01)

    def test_peak_fraction(self):
        assert peak_fraction(1.1, 1.88) == pytest.approx(0.585, rel=0.01)

    def test_zero_peak(self):
        assert peak_fraction(1.0, 0.0) == float("inf")


class TestFp16:
    def test_quantize_idempotent(self, rng):
        values = rng.normal(size=100)
        once = quantize_fp16(values)
        twice = quantize_fp16(once)
        np.testing.assert_array_equal(once, twice)

    def test_error_bound_for_normal_range(self, rng):
        values = rng.uniform(0.5, 2.0, size=1000)
        assert max_relative_error(values) <= FP16_UNIT_ROUNDOFF

    def test_error_zero_for_exact_values(self):
        values = np.array([0.0, 0.5, 1.0, 2.0, -4.0])
        np.testing.assert_array_equal(quantization_error(values), 0.0)

    def test_all_zero_input(self):
        assert max_relative_error(np.zeros(10)) == 0.0
