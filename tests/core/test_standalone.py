"""Tests for the GBU-Standalone accelerator model."""

import pytest

from repro.core.standalone import STANDALONE_SPEC, GBUStandalone
from repro.errors import ValidationError
from repro.gaussians import GaussianCloud
from repro.gpu.workload import ScaleFactors


class TestSpec:
    def test_totals_match_tab6(self):
        # Tab. VI: GBU-Standalone 1.78 mm2 / 0.78 W.
        assert STANDALONE_SPEC.area_mm2 == pytest.approx(1.78, abs=0.01)
        assert STANDALONE_SPEC.power_w == pytest.approx(0.78, abs=0.01)

    def test_step3_pe_matches_tab6(self):
        assert STANDALONE_SPEC.step3_area_mm2 == pytest.approx(0.50, abs=0.01)
        assert STANDALONE_SPEC.step3_power_w == pytest.approx(0.15, abs=0.01)

    def test_smaller_than_gscore(self):
        from repro.analysis.literature import GSCORE

        assert STANDALONE_SPEC.area_mm2 < GSCORE.area_mm2
        assert STANDALONE_SPEC.power_w < GSCORE.power_w
        assert STANDALONE_SPEC.step3_area_mm2 < GSCORE.step3_area_mm2


class TestRender:
    def test_render_report(self, small_cloud, small_camera):
        accelerator = GBUStandalone()
        report = accelerator.render(small_cloud, small_camera)
        assert report.fps > 0
        assert report.preprocess_seconds > 0
        assert report.sort_seconds > 0
        assert report.energy_j > 0
        assert report.image.ndim == 3

    def test_pipeline_bounded_by_stage_sum(self, small_cloud, small_camera):
        report = GBUStandalone().render(small_cloud, small_camera)
        serial = (
            report.preprocess_seconds
            + report.sort_seconds
            + report.gbu.step3_seconds
        )
        assert report.frame_seconds <= serial + 1e-12
        assert report.frame_seconds >= max(
            report.preprocess_seconds, report.sort_seconds,
            report.gbu.step3_seconds,
        ) - 1e-12

    def test_scales_applied(self, small_cloud, small_camera):
        base = GBUStandalone().render(small_cloud, small_camera)
        scaled = GBUStandalone().render(
            small_cloud, small_camera, scales=ScaleFactors.uniform(5.0)
        )
        assert scaled.frame_seconds > base.frame_seconds

    def test_empty_cloud_rejected(self, small_camera):
        with pytest.raises(ValidationError):
            GBUStandalone().render(GaussianCloud.empty(), small_camera)
