"""Unit tests for the determinism rules (DET101/DET102/DET103).

Each test pairs positive fixtures (must flag) with negative ones
(must stay quiet) as inline source strings — the rule's contract is
the sum of these cases.
"""

import pytest

from rule_fixtures import sim

pytestmark = pytest.mark.analyze


# ---------------------------------------------------------------------------
# DET101 — unseeded RNG
# ---------------------------------------------------------------------------
def test_unseeded_default_rng_flagged(run_rule):
    findings = run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        ),
    )
    assert [f.line for f in findings] == [3]
    assert "without a seed" in findings[0].message


def test_seeded_default_rng_ok(run_rule):
    assert not run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "import numpy as np\n"
            "rng = np.random.default_rng(1234)\n"
            "rng2 = np.random.default_rng(seed=0)\n"
        ),
    )


def test_global_numpy_rng_flagged(run_rule):
    findings = run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "import numpy as np\n"
            "x = np.random.uniform(0.0, 1.0)\n"
            "np.random.seed(0)\n"
        ),
    )
    assert sorted(f.line for f in findings) == [3, 4]


def test_stdlib_global_rng_and_bare_random_flagged(run_rule):
    findings = run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "import random\n"
            "x = random.random()\n"
            "r = random.Random()\n"
            "ok = random.Random(42)\n"
        ),
    )
    assert sorted(f.line for f in findings) == [3, 4]


def test_from_import_alias_resolved(run_rule):
    findings = run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "from numpy.random import default_rng as mk\n"
            "rng = mk()\n"
            "ok = mk(7)\n"
        ),
    )
    assert [f.line for f in findings] == [3]


def test_seeded_generator_param_ok(run_rule):
    # The repository idiom: accept a seeded Generator from the caller.
    assert not run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "import numpy as np\n"
            "def jitter(rng: np.random.Generator):\n"
            "    return rng.normal(size=3)\n"
        ),
    )


def test_local_attribute_not_mistaken_for_module(run_rule):
    # self.random.foo() has a non-import root: never flagged.
    assert not run_rule(
        "DET101",
        sim(
            '"""m."""\n'
            "class C:\n"
            "    def f(self):\n"
            "        return self.random.shuffle([1])\n"
        ),
    )


def test_rule_is_sim_scoped(run_rule):
    src = '"""m."""\nimport numpy as np\nrng = np.random.default_rng()\n'
    assert not run_rule("DET101", {"benchmarks/bench_x.py": src})
    assert not run_rule("DET101", {"tests/test_x.py": src})


# ---------------------------------------------------------------------------
# DET102 — wall-clock reads
# ---------------------------------------------------------------------------
def test_wall_clock_calls_flagged(run_rule):
    findings = run_rule(
        "DET102",
        sim(
            '"""m."""\n'
            "import time\n"
            "from datetime import datetime\n"
            "a = time.time()\n"
            "b = time.perf_counter()\n"
            "c = datetime.now()\n"
        ),
    )
    assert sorted(f.line for f in findings) == [4, 5, 6]


def test_wall_clock_module_allowlist(run_rule):
    src = '"""m."""\nimport time\nwall = time.perf_counter()\n'
    # The timing-labeled stream modules are allowlisted...
    assert not run_rule(
        "DET102", {"src/repro/stream/pipeline.py": src}
    )
    # ...arbitrary sim modules are not.
    assert run_rule("DET102", {"src/repro/stream/qos.py": src})


def test_simulated_time_arithmetic_ok(run_rule):
    assert not run_rule(
        "DET102",
        sim(
            '"""m."""\n'
            "def advance(sim_seconds, dt):\n"
            "    return sim_seconds + dt\n"
        ),
    )


def test_inline_allow_suppresses_wall_clock(run_rule):
    findings = run_rule(
        "DET102",
        sim(
            '"""m."""\n'
            "import time\n"
            "t = time.time()  # analyze: allow[DET102] host telemetry\n"
        ),
    )
    assert not findings


# ---------------------------------------------------------------------------
# DET103 — set iteration feeding ordered outputs
# ---------------------------------------------------------------------------
def test_for_loop_over_set_flagged(run_rule):
    findings = run_rule(
        "DET103",
        sim(
            '"""m."""\n'
            "def f():\n"
            "    seen = {1, 2, 3}\n"
            "    out = []\n"
            "    for x in seen:\n"
            "        out.append(x)\n"
            "    return out\n"
        ),
    )
    assert [f.line for f in findings] == [5]


def test_list_comp_over_set_call_flagged(run_rule):
    findings = run_rule(
        "DET103",
        sim(
            '"""m."""\n'
            "def f(items):\n"
            "    return [x for x in set(items)]\n"
        ),
    )
    assert [f.line for f in findings] == [3]


def test_sorted_and_reducers_ok(run_rule):
    assert not run_rule(
        "DET103",
        sim(
            '"""m."""\n'
            "def f(items):\n"
            "    s = set(items)\n"
            "    a = sorted(s)\n"
            "    b = [x for x in sorted(s)]\n"
            "    c = sum(x for x in s)\n"
            "    d = max(s)\n"
            "    e = {x * 2 for x in s}\n"
            "    return a, b, c, d, e\n"
        ),
    )


def test_mixed_rebinding_stays_quiet(run_rule):
    # A name that is sometimes a list is not unambiguously a set:
    # flow-insensitive analysis must not guess.
    assert not run_rule(
        "DET103",
        sim(
            '"""m."""\n'
            "def f(flag):\n"
            "    xs = {1, 2}\n"
            "    xs = [1, 2]\n"
            "    return [x for x in xs]\n"
        ),
    )


def test_module_level_scope_checked_once(run_rule):
    findings = run_rule(
        "DET103",
        sim(
            '"""m."""\n'
            "S = {1, 2}\n"
            "ORDERED = [x for x in S]\n"
        ),
    )
    assert [f.line for f in findings] == [3]
