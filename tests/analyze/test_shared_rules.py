"""Unit tests for the shared-state race rule (RACE301).

Includes the ISSUE-mandated fixture: a mutated shared bundle must
fail the gate.
"""

import pytest

from rule_fixtures import sim

pytestmark = pytest.mark.analyze


# ---------------------------------------------------------------------------
# positives
# ---------------------------------------------------------------------------
def test_mutated_shared_bundle_flagged(run_rule):
    # The ISSUE's acceptance fixture: a worker patches an interned
    # bundle in place.
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def render(worker, scene, detail):\n"
            "    bundle = worker.interner.build(scene, detail)\n"
            "    bundle.detail = detail\n"
        ),
    )
    assert len(findings) == 1
    assert findings[0].line == 4
    assert "'bundle'" in findings[0].message
    assert "modified copy" in findings[0].hint


def test_annotated_param_mutation_flagged(run_rule):
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def patch(sb: 'SceneBundle'):\n"
            "    sb.positions[0] = 1.0\n"
        ),
    )
    assert [f.line for f in findings] == [3]


def test_bundle_attribute_tail_deep_mutation_flagged(run_rule):
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "class Worker:\n"
            "    def tweak(self, x):\n"
            "        self.bundle.static_cloud.positions[0] = x\n"
        ),
    )
    assert [f.line for f in findings] == [4]
    assert "self.bundle" in findings[0].message


def test_mutator_call_on_cache_product_flagged(run_rule):
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def refresh(tier, key):\n"
            "    frame = tier.get(key)\n"
            "    frame.tags.append('reused')\n"
        ),
    )
    assert [f.line for f in findings] == [4]
    assert ".append()" in findings[0].message


def test_mutation_after_escape_flagged(run_rule):
    # Once handed to tier.put() the frame has concurrent readers;
    # mutating it afterwards is a race even though the name itself
    # carries no shared annotation.
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def publish(tier, frame):\n"
            "    tier.put(frame)\n"
            "    frame.image[0, 0] = 1.0\n"
        ),
    )
    assert [f.line for f in findings] == [4]
    assert "escaped at line 3" in findings[0].message


def test_setflags_rearm_flagged(run_rule):
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def thaw(frame_cache, key):\n"
            "    frame = frame_cache.lookup(key)\n"
            "    frame.image.setflags(write=True)\n"
        ),
    )
    assert [f.line for f in findings] == [4]


# ---------------------------------------------------------------------------
# negatives
# ---------------------------------------------------------------------------
def test_rebinding_is_not_mutation(run_rule):
    assert not run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "class Worker:\n"
            "    def swap(self, provider, scene):\n"
            "        self.bundle = provider(scene)\n"
        ),
    )


def test_mutation_before_escape_ok(run_rule):
    # Construction-then-publish is the intended lifecycle: writes
    # before the escape point are fine.
    assert not run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def publish(tier, frame):\n"
            "    frame.hits = 0\n"
            "    tier.put(frame)\n"
        ),
    )


def test_shared_class_own_methods_exempt(run_rule):
    assert not run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "class CachedFrame:\n"
            "    def __post_init__(self):\n"
            "        self.image.setflags(write=False)\n"
        ),
    )


def test_unrelated_local_mutation_ok(run_rule):
    assert not run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def tally(items):\n"
            "    counts = {}\n"
            "    for item in items:\n"
            "        counts[item] = counts.get(item, 0) + 1\n"
            "    out = []\n"
            "    out.append(len(counts))\n"
            "    return out\n"
        ),
    )


def test_inline_allow_suppresses(run_rule):
    findings = run_rule(
        "RACE301",
        sim(
            '"""m."""\n'
            "def warm(interner, scene):\n"
            "    b = interner.build(scene, 1.0)\n"
            "    b.tags.append('warm')  "
            "# analyze: allow[RACE301] pre-publication warm-up\n"
        ),
    )
    assert not findings
