"""Fixture helpers for the per-rule analysis tests.

Lives in its own uniquely-named module (not ``conftest``) so plain
``from rule_fixtures import sim`` resolves unambiguously however
pytest orders the suite's several ``conftest.py`` files.
"""

from __future__ import annotations


def sim(source: str, name: str = "mod") -> dict[str, str]:
    """Wrap one source string as a sim-scoped module mapping."""
    return {f"src/repro/fixture/{name}.py": source}
