"""End-to-end tests for the ``scripts/analyze.py`` CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.analyze

REPO_ROOT = Path(__file__).resolve().parents[2]
ANALYZE = REPO_ROOT / "scripts" / "analyze.py"


def _run(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(ANALYZE), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
    )


def test_cli_clean_tree_exits_zero():
    proc = _run()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "analyze OK" in proc.stdout


def test_cli_json_output_shape():
    proc = _run("--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = json.loads(proc.stdout)
    assert data["ok"] is True
    assert data["counts"]["new"] == 0
    assert {"DET101", "CKPT201", "RACE301", "IMP001"} <= set(data["rules"])


def test_cli_list_rules():
    proc = _run("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("DET101", "DET102", "DET103", "CKPT201", "CKPT202",
                    "RACE301", "IMP001", "IMP002"):
        assert rule_id in proc.stdout


def test_cli_new_finding_fails_gate(tmp_path):
    # The three ISSUE acceptance fixtures all fail through the real CLI.
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        '"""Deliberately broken fixture."""\n'
        "import numpy as np\n"
        "rng = np.random.default_rng()\n"
    )
    proc = _run(str(bad), "--rules", "DET101")
    assert proc.returncode == 1
    assert "analyze FAILED" in proc.stderr
    assert "DET101" in proc.stdout


def test_cli_rules_filter_limits_scope(tmp_path):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""m."""\nimport numpy as np\nrng = np.random.default_rng()\n')
    # IMP001 alone does not see the determinism violation (np is used).
    proc = _run(str(bad), "--rules", "IMP001")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_update_baseline_writes_todo_entries(tmp_path):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""m."""\nimport random\nx = random.random()\n')
    baseline_path = tmp_path / "baseline.json"
    proc = _run(
        str(bad),
        "--rules",
        "DET101",
        "--baseline",
        str(baseline_path),
        "--update-baseline",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = json.loads(baseline_path.read_text())
    assert len(data["entries"]) == 1
    entry = data["entries"][0]
    assert entry["rule"] == "DET101"
    assert "TODO" in entry["justification"]
    # With the updated baseline the same scan now passes...
    again = _run(
        str(bad), "--rules", "DET101", "--baseline", str(baseline_path)
    )
    assert again.returncode == 0
    assert "baselined" in again.stdout
