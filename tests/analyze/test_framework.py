"""Framework tests: registry, project model, suppressions, baseline,
and engine report partitioning."""

import json

import pytest

from repro.analyze import (
    AnalysisReport,
    Baseline,
    BaselineEntry,
    Finding,
    ModuleInfo,
    Project,
    Severity,
    all_rules,
    get_rule,
    run_analysis,
)
from repro.analyze.registry import Rule
from repro.errors import ValidationError

pytestmark = pytest.mark.analyze

EXPECTED_RULES = {
    "CKPT201", "CKPT202",
    "DET101", "DET102", "DET103",
    "IMP001", "IMP002",
    "RACE301",
}


def _finding(rule_id="DET101", path="src/repro/x.py", line=3):
    return Finding(
        path=path,
        line=line,
        rule_id=rule_id,
        severity=Severity.ERROR,
        message="m",
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_all_rule_families_registered():
    ids = {r.rule_id for r in all_rules()}
    assert EXPECTED_RULES <= ids
    # id order is the stable report order
    assert [r.rule_id for r in all_rules()] == sorted(ids)


def test_unknown_rule_id_raises():
    with pytest.raises(ValidationError, match="unknown rule id"):
        get_rule("NOPE999")


def test_rule_metadata_complete():
    for r in all_rules():
        assert r.title and r.description
        assert isinstance(r.severity, Severity)


def test_mislabeled_finding_rejected():
    bad = Rule(
        rule_id="TST901",
        title="t",
        severity=Severity.ERROR,
        description="d",
        check=lambda project: [_finding(rule_id="DET101")],
    )
    project = Project.from_sources({"src/repro/x.py": '"""m."""\n'})
    with pytest.raises(ValidationError, match="labeled 'DET101'"):
        bad.run(project)


# ---------------------------------------------------------------------------
# project model + suppressions
# ---------------------------------------------------------------------------
def test_module_names_and_sim_scope():
    project = Project.from_sources(
        {
            "src/repro/stream/qos.py": '"""m."""\n',
            "src/repro/__init__.py": '"""m."""\n',
            "scripts/analyze.py": '"""m."""\n',
            "tests/test_x.py": '"""m."""\n',
        }
    )
    names = {m.rel_path: m.name for m in project.modules}
    assert names["src/repro/stream/qos.py"] == "repro.stream.qos"
    assert names["src/repro/__init__.py"] == "repro"
    assert names["scripts/analyze.py"] == "scripts.analyze"
    sim = {m.rel_path for m in project.sim_modules}
    assert sim == {"src/repro/stream/qos.py", "src/repro/__init__.py"}


def test_suppression_comment_parsing():
    mod = ModuleInfo.from_source(
        "src/repro/x.py",
        '"""m."""\n'
        "a = 1  # analyze: allow[DET101] reason\n"
        "b = 2  # analyze: allow[DET101,RACE301] two rules\n"
        "c = 3  # analyze: allow[*] anything here\n",
    )
    assert mod.suppressed("DET101", 2)
    assert not mod.suppressed("DET102", 2)
    assert not mod.suppressed("DET101", 1)
    assert mod.suppressed("RACE301", 3)
    assert mod.suppressed("CKPT202", 4)  # wildcard


def test_module_wide_suppression():
    mod = ModuleInfo.from_source(
        "src/repro/x.py",
        '"""m."""\n# analyze: allow-module[DET102] telemetry module\n',
    )
    assert mod.suppressed("DET102", 99)
    assert not mod.suppressed("DET101", 99)


def test_syntax_error_is_loud(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    with pytest.raises(ValidationError, match="cannot analyze"):
        Project.from_paths(tmp_path, [bad])


def test_missing_path_is_loud(tmp_path):
    with pytest.raises(ValidationError, match="does not exist"):
        Project.from_paths(tmp_path, [tmp_path / "ghost"])


def test_import_graph_edges():
    project = Project.from_sources(
        {
            "src/repro/a.py": '"""m."""\nfrom repro import b\nimport os\n',
            "src/repro/b.py": '"""m."""\nfrom repro.a import thing\n',
            "src/repro/c.py": '"""m."""\nfrom . import a\n',
        }
    )
    graph = project.import_graph()
    assert graph["repro.a"] == {"repro.b"}
    assert graph["repro.b"] == {"repro.a"}
    assert graph["repro.c"] == {"repro.a"}


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
def test_baseline_split_new_baselined_stale():
    baseline = Baseline(
        entries=[
            BaselineEntry("DET101", "src/repro/x.py", 3, "known"),
            BaselineEntry("DET102", "src/repro/gone.py", None, "stale"),
        ]
    )
    new, baselined, stale = baseline.split(
        [_finding(), _finding(rule_id="RACE301", line=9)]
    )
    assert [f.rule_id for f in baselined] == ["DET101"]
    assert [f.rule_id for f in new] == ["RACE301"]
    assert [e.rule for e in stale] == ["DET102"]


def test_baseline_null_line_matches_any_line():
    baseline = Baseline(
        entries=[BaselineEntry("DET101", "src/repro/x.py", None, "file-wide")]
    )
    new, baselined, _ = baseline.split([_finding(line=3), _finding(line=40)])
    assert not new and len(baselined) == 2


def test_baseline_load_rejects_empty_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "entries": [
                    {"rule": "DET101", "path": "x.py", "justification": " "}
                ]
            }
        )
    )
    with pytest.raises(ValidationError, match="empty justification"):
        Baseline.load(path)


def test_baseline_load_rejects_missing_keys(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"entries": [{"rule": "DET101"}]}))
    with pytest.raises(ValidationError, match="missing"):
        Baseline.load(path)


def test_baseline_missing_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "ghost.json").entries == []


def test_baseline_round_trip(tmp_path):
    original = Baseline.from_findings([_finding()], justification="TODO")
    path = tmp_path / "baseline.json"
    original.save(path)
    assert Baseline.load(path) == original


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------
def test_report_partitions_and_ok():
    project = Project.from_sources(
        {
            "src/repro/a.py": (
                '"""m."""\n'
                "import numpy as np\n"
                "bad = np.random.default_rng()\n"
                "meh = np.random.default_rng()  "
                "# analyze: allow[DET101] fixture\n"
            )
        }
    )
    baseline = Baseline(
        entries=[BaselineEntry("DET101", "src/repro/a.py", 3, "adopted")]
    )
    report = run_analysis(
        project=project, rules=[get_rule("DET101")], baseline=baseline
    )
    assert report.ok
    assert [f.line for f in report.baselined] == [3]
    assert [f.line for f in report.suppressed] == [4]
    assert not report.stale_entries
    data = report.to_dict()
    assert data["ok"] is True
    assert data["counts"] == {
        "new": 0,
        "baselined": 1,
        "suppressed": 1,
        "stale_baseline_entries": 0,
    }


def test_new_finding_fails_gate():
    project = Project.from_sources(
        {
            "src/repro/a.py": (
                '"""m."""\nimport random\nx = random.random()\n'
            )
        }
    )
    report = run_analysis(project=project, rules=[get_rule("DET101")])
    assert not report.ok
    assert report.new[0].location() == "src/repro/a.py:3"


def test_run_analysis_requires_project_or_root():
    with pytest.raises(ValueError, match="project or a root"):
        run_analysis()


def test_run_analysis_from_disk(tmp_path):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "m.py").write_text(
        '"""m."""\nimport random\nx = random.random()\n'
    )
    report = run_analysis(root=tmp_path, rules=[get_rule("DET101")])
    assert not report.ok
    assert report.new[0].path == "src/repro/m.py"


def test_report_all_findings_sorted():
    report = AnalysisReport(
        rules=[],
        new=[_finding(line=9)],
        baselined=[_finding(line=2)],
        suppressed=[_finding(line=5)],
    )
    assert [f.line for f in report.all_findings] == [2, 5, 9]
