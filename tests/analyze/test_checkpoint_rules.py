"""Unit tests for the checkpoint-completeness rules (CKPT201/CKPT202).

Includes the ISSUE-mandated regression fixture: a synthetic "new field
added to the dataclass but not to the serializer" module must be
caught by the gate.
"""

import pytest

from rule_fixtures import sim

pytestmark = pytest.mark.analyze


# ---------------------------------------------------------------------------
# CKPT201 — mutable attribute missing from its checkpoint pair
# ---------------------------------------------------------------------------
COMPLETE_CONTROLLER = (
    '"""m."""\n'
    "class Controller:\n"
    "    def __init__(self):\n"
    "        self._scale = 1.0\n"
    "        self._frames = 0\n"
    "    def observe(self, miss):\n"
    "        self._frames += 1\n"
    "        self._scale *= 0.5 if miss else 1.0\n"
    "    def export_state(self):\n"
    "        return {'scale': self._scale, 'frames': self._frames}\n"
    "    def import_state(self, state):\n"
    "        self._scale = state['scale']\n"
    "        self._frames = state['frames']\n"
)


def test_complete_pair_ok(run_rule):
    assert not run_rule("CKPT201", sim(COMPLETE_CONTROLLER))


def test_uncheckpointed_attr_flagged(run_rule):
    findings = run_rule(
        "CKPT201",
        sim(
            '"""m."""\n'
            "class Controller:\n"
            "    def __init__(self):\n"
            "        self._scale = 1.0\n"
            "        self._misses = 0\n"
            "    def observe(self, miss):\n"
            "        self._scale *= 0.5\n"
            "        self._misses += 1\n"
            "    def export_state(self):\n"
            "        return {'scale': self._scale}\n"
            "    def import_state(self, state):\n"
            "        self._scale = state['scale']\n"
        ),
    )
    assert len(findings) == 1
    assert "'_misses'" in findings[0].message
    assert findings[0].line == 8
    assert "thread '_misses'" in findings[0].hint


def test_mutator_call_counts_as_mutation(run_rule):
    findings = run_rule(
        "CKPT201",
        sim(
            '"""m."""\n'
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self._samples = []\n"
            "    def record(self, x):\n"
            "        self._samples.append(x)\n"
            "    def capture(self):\n"
            "        return {}\n"
            "    def restore(self, state):\n"
            "        pass\n"
        ),
    )
    assert len(findings) == 1
    assert "'_samples'" in findings[0].message


def test_import_side_store_covers(run_rule):
    # An attribute reset by import_state is covered even when
    # export_state never reads it (derived state).
    assert not run_rule(
        "CKPT201",
        sim(
            '"""m."""\n'
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self._samples = []\n"
            "    def record(self, x):\n"
            "        self._samples.append(x)\n"
            "    def capture(self):\n"
            "        return {}\n"
            "    def restore(self, state):\n"
            "        self._samples = []\n"
        ),
    )


def test_init_only_config_attr_exempt(run_rule):
    assert not run_rule(
        "CKPT201",
        sim(
            '"""m."""\n'
            "class Controller:\n"
            "    def __init__(self, deadline):\n"
            "        self.deadline = deadline\n"
            "        self._scale = 1.0\n"
            "    def observe(self):\n"
            "        self._scale *= 0.5\n"
            "    def export_state(self):\n"
            "        return {'scale': self._scale}\n"
            "    def import_state(self, state):\n"
            "        self._scale = state['scale']\n"
        ),
    )


def test_class_without_pair_ignored(run_rule):
    assert not run_rule(
        "CKPT201",
        sim(
            '"""m."""\n'
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def bump(self):\n"
            "        self.x += 1\n"
        ),
    )


# ---------------------------------------------------------------------------
# CKPT202 — state field never read at restore
# ---------------------------------------------------------------------------
ROUND_TRIP = (
    '"""m."""\n'
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class State:\n"
    "    scale: float\n"
    "    frames: int\n"
    "def capture_state(ctrl):\n"
    "    return State(scale=ctrl.scale, frames=ctrl.frames)\n"
    "def restore_state(ctrl, state):\n"
    "    ctrl.scale = state.scale\n"
    "    ctrl.frames = state.frames\n"
)


def test_round_trip_ok(run_rule):
    assert not run_rule("CKPT202", sim(ROUND_TRIP))


def test_new_field_not_in_checkpoint_caught(run_rule):
    # The ISSUE's regression fixture: someone adds 'misses' to the
    # state dataclass and the capture side, but forgets restore.
    findings = run_rule(
        "CKPT202",
        sim(
            '"""m."""\n'
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class State:\n"
            "    scale: float\n"
            "    misses: int\n"
            "def capture_state(ctrl):\n"
            "    return State(scale=ctrl.scale, misses=ctrl.misses)\n"
            "def restore_state(ctrl, state):\n"
            "    ctrl.scale = state.scale\n"
        ),
    )
    assert len(findings) == 1
    assert "'misses'" in findings[0].message
    assert findings[0].line == 6  # points at the field declaration
    assert "state.misses" in findings[0].hint


def test_method_pair_with_dataclass_state(run_rule):
    findings = run_rule(
        "CKPT202",
        sim(
            '"""m."""\n'
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class State:\n"
            "    scale: float\n"
            "    comfort: float\n"
            "class Controller:\n"
            "    def export_state(self):\n"
            "        return State(scale=1.0, comfort=0.5)\n"
            "    def import_state(self, state: State):\n"
            "        self._scale = state.scale\n"
        ),
    )
    assert len(findings) == 1
    assert "'comfort'" in findings[0].message


def test_classvar_fields_exempt(run_rule):
    assert not run_rule(
        "CKPT202",
        sim(
            '"""m."""\n'
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "@dataclass\n"
            "class State:\n"
            "    VERSION: ClassVar[int] = 2\n"
            "    scale: float\n"
            "def export_snap(ctrl):\n"
            "    return State(scale=ctrl.scale)\n"
            "def import_snap(ctrl, state):\n"
            "    ctrl.scale = state.scale\n"
        ),
    )


def test_inline_allow_on_field_line(run_rule):
    findings = run_rule(
        "CKPT202",
        sim(
            '"""m."""\n'
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class State:\n"
            "    scale: float\n"
            "    note: str  # analyze: allow[CKPT202] telemetry-only\n"
            "def save_snap(ctrl):\n"
            "    return State(scale=ctrl.scale, note='x')\n"
            "def load_snap(ctrl, state):\n"
            "    ctrl.scale = state.scale\n"
        ),
    )
    assert not findings
