"""Self-check: the live tree passes its own static-analysis gate.

This is the test that makes the gate bite in CI even when the
dedicated ``analyze`` job is skipped: any commit that introduces an
unseeded RNG, an un-checkpointed field, or a shared-object mutation
into ``repro.*`` — or an unused import anywhere — fails the plain
pytest run.
"""

from pathlib import Path

import pytest

from repro.analyze import Baseline, run_analysis
from repro.analyze.baseline import BASELINE_FILENAME

pytestmark = pytest.mark.analyze

REPO_ROOT = Path(__file__).resolve().parents[2]


def _live_report():
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    return run_analysis(root=REPO_ROOT, baseline=baseline), baseline


def test_live_tree_is_clean():
    report, _ = _live_report()
    assert report.ok, "new findings on the live tree:\n" + "\n".join(
        f"  {f.location()} {f.rule_id} {f.message}" for f in report.new
    )


def test_baseline_has_no_stale_entries():
    report, _ = _live_report()
    assert not report.stale_entries, (
        "baseline entries matching nothing (fix landed — delete them): "
        + ", ".join(f"{e.rule}@{e.path}" for e in report.stale_entries)
    )


def test_shipped_baseline_is_empty():
    """ISSUE 8 acceptance: the tree is clean, so the committed baseline
    carries zero entries — any future entry must arrive with a
    justification and survive review."""
    _, baseline = _live_report()
    assert baseline.entries == []
