"""Unit tests for the import/definition hygiene rules (IMP001/IMP002)."""

import pytest

from rule_fixtures import sim

pytestmark = pytest.mark.analyze


# ---------------------------------------------------------------------------
# IMP001 — unused import (F401)
# ---------------------------------------------------------------------------
def test_unused_import_flagged(run_rule):
    findings = run_rule(
        "IMP001",
        sim(
            '"""m."""\n'
            "import json\n"
            "import os\n"
            "print(os.sep)\n"
        ),
    )
    assert [f.line for f in findings] == [2]
    assert "'json'" in findings[0].message


def test_future_and_all_exports_exempt(run_rule):
    assert not run_rule(
        "IMP001",
        sim(
            '"""m."""\n'
            "from __future__ import annotations\n"
            "from json import dumps\n"
            "__all__ = ['dumps']\n"
        ),
    )


def test_hygiene_rules_scan_outside_sim_scope(run_rule):
    # Unlike the invariant families, IMP rules cover tests/scripts too.
    findings = run_rule(
        "IMP001", {"tests/test_x.py": '"""m."""\nimport sys\n'}
    )
    assert len(findings) == 1


def test_aliased_import_reports_display_name(run_rule):
    findings = run_rule(
        "IMP001", sim('"""m."""\nimport numpy as np\n')
    )
    assert len(findings) == 1
    assert "'numpy'" in findings[0].message


# ---------------------------------------------------------------------------
# IMP002 — mutable default argument (B006)
# ---------------------------------------------------------------------------
def test_mutable_defaults_flagged(run_rule):
    findings = run_rule(
        "IMP002",
        sim(
            '"""m."""\n'
            "def f(xs=[]):\n"
            "    return xs\n"
            "def g(*, opts={}):\n"
            "    return opts\n"
            "def h(pool=set()):\n"
            "    return pool\n"
        ),
    )
    assert sorted(f.line for f in findings) == [2, 4, 6]
    assert all("mutable default" in f.message for f in findings)


def test_immutable_defaults_ok(run_rule):
    assert not run_rule(
        "IMP002",
        sim(
            '"""m."""\n'
            "def f(x=0, name='a', pair=(1, 2), flag=None):\n"
            "    return x, name, pair, flag\n"
        ),
    )


def test_mutable_call_default_flagged(run_rule):
    findings = run_rule(
        "IMP002",
        sim('"""m."""\ndef f(xs=list()):\n    return xs\n'),
    )
    assert len(findings) == 1


def test_lint_shim_keeps_interface(tmp_path):
    """``scripts/lint.py`` still exposes check_file() with the
    historical F401 output format (CI and tests/test_lint.py rely on
    it)."""
    import importlib.util
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(
        "lint_shim", repo / "scripts" / "lint.py"
    )
    lint = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(lint)

    target = tmp_path / "sample.py"
    target.write_text('"""m."""\nimport json\n')
    messages = lint.check_file(target)
    assert messages == [
        f"{target}:2: F401 'json' imported but unused"
    ]
    assert lint.main([str(target)]) == 1
    target.write_text('"""m."""\nimport json\nprint(json.dumps({}))\n')
    assert lint.main([str(target)]) == 0
