"""Shared helpers for the static-analysis tests.

Rule tests build tiny in-memory projects from inline source strings
(positive and negative fixtures side by side) and run one rule — or
the whole engine — over them; nothing touches the real tree except
the self-check test.
"""

from __future__ import annotations

import pytest

from repro.analyze import Project, get_rule, run_analysis


@pytest.fixture
def run_rule():
    """``run_rule(rule_id, sources) -> [Finding]`` over inline sources.

    Sources live under ``src/repro/…`` by default (build them with
    :func:`rule_fixtures.sim`) so sim-scoped rules see them; pass
    explicit paths to test scoping itself.
    """

    def _run(rule_id: str, sources: dict[str, str]):
        project = Project.from_sources(sources)
        report = run_analysis(project=project, rules=[get_rule(rule_id)])
        return report.new

    return _run
