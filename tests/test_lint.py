"""Lint gate: the tree stays free of unused imports.

CI runs the real ``ruff check``; this test runs the dependency-free
AST checker in ``scripts/lint.py`` so the gate also holds in offline
environments (and keeps dead imports from creeping back between ruff
runs).
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_unused_imports():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "lint.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"lint errors:\n{result.stdout}{result.stderr}"
