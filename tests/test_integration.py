"""End-to-end integration tests: the full pipeline at reduced detail,
checking the paper's headline *shapes* (who wins, roughly by how much).
"""

import numpy as np
import pytest

import repro
from repro.analysis.endtoend import evaluate_all_configs
from repro.core.standalone import GBUStandalone
from repro.gpu.workload import ScaleFactors
from repro.metrics.energy import EnergyModel
from repro.scenes import build_scene

DETAIL = 0.35


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_flow(self):
        rng = np.random.default_rng(0)
        cloud = repro.GaussianCloud.random(150, rng)
        camera = repro.Camera.look_at(
            eye=[0, 0.3, -3], target=[0, 0, 0], width=64, height=48
        )
        projected = repro.project(cloud, camera)
        reference = repro.render_reference(projected)
        irss = repro.render_irss(projected)
        np.testing.assert_allclose(irss.image, reference.image, atol=1e-9)
        report = repro.GBUDevice().render(projected)
        assert report.step3_seconds > 0

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestPaperShapes:
    """The headline claims, at reduced scene detail (looser bands)."""

    @pytest.fixture(scope="class")
    def static_results(self):
        return evaluate_all_configs("kitchen", detail=DETAIL)

    def test_irss_speeds_up_gpu(self, static_results):
        speedup = static_results["gpu_irss"].fps / static_results["gpu_pfs"].fps
        assert 1.3 < speedup < 3.5  # paper: 1.71x

    def test_gbu_reaches_real_time_territory(self, static_results):
        ratio = static_results["gbu_full"].fps / static_results["gpu_pfs"].fps
        assert ratio > 3.0  # paper: ~7x on static scenes

    def test_energy_ordering(self, static_results):
        base = static_results["gpu_pfs"].energy
        effs = [
            EnergyModel.efficiency_improvement(base, static_results[c].energy)
            for c in ("gpu_irss", "gbu_tile", "gbu_dnb", "gbu_full")
        ]
        assert all(b >= a * 0.95 for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 3.0

    def test_gbu_quality_is_fp16_limited(self, static_results):
        from repro.metrics.image import psnr

        ref_img = static_results["gpu_pfs"].image
        gbu_img = static_results["gbu_full"].image
        assert psnr(ref_img, gbu_img) > 35.0


class TestStandaloneIntegration:
    def test_render_nerf_scene(self):
        bundle = build_scene("nerf_lego", detail=DETAIL)
        cloud, _ = bundle.frame_cloud(0)
        report = GBUStandalone().render(
            cloud, bundle.camera, scales=ScaleFactors.uniform(50.0)
        )
        assert report.fps > 0
        assert np.all(np.isfinite(report.image))


class TestMultiFrameAnimation:
    def test_dynamic_scene_over_time(self):
        bundle = build_scene("flame_steak", detail=DETAIL)
        fps = []
        for frame in range(3):
            cloud, extra = bundle.frame_cloud(frame)
            projected = repro.project(cloud, bundle.camera)
            report = repro.GBUDevice().render(projected)
            assert report.step3_seconds > 0
            fps.append(1.0 / report.step3_seconds)
        assert len(set(fps)) > 1  # motion changes the workload

    def test_avatar_animation(self):
        bundle = build_scene("female_4", detail=DETAIL)
        images = []
        for frame in (0, 3):
            cloud, _ = bundle.frame_cloud(frame)
            projected = repro.project(cloud, bundle.camera)
            images.append(repro.render_reference(projected).image)
        assert not np.allclose(images[0], images[1])
