"""Backend parity: the vectorized engine is pixel-exact.

Randomized-scene property tests asserting that the instance-batched
vectorized backend produces *bit-identical* images, transmittance,
contributor counts and workload statistics versus the scalar
reference loops — for the PFS rasterizer, the IRSS rasterizer, and
the IRSS fp16 Row-PE datapath — including the early-termination and
depth-chunking code paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.render.vectorized as vectorized
from repro.core.irss import render_irss, render_irss_loop
from repro.gaussians import Camera, GaussianCloud, build_render_lists, project
from repro.gaussians.rasterizer import render_reference, render_reference_loop
from repro.render import (
    get_backend,
    list_backends,
    render_irss_vectorized,
    render_pfs_vectorized,
    set_default_backend,
    use_backend,
)

WORKLOAD_FIELDS = (
    "row_fragments",
    "row_segments",
    "instance_max_run",
    "instance_setup",
    "binary_search_steps",
    "instance_search",
)


def _scene(seed: int, n: int, width: int = 72, height: int = 56,
           opacity_lo: float = 0.05, opacity_hi: float = 0.95):
    """A random projected scene; odd resolutions exercise clipped tiles."""
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.random(n, rng, extent=0.6, scale_range=(0.03, 0.3))
    cloud = GaussianCloud(
        means=cloud.means,
        scales=cloud.scales,
        quats=cloud.quats,
        opacities=np.clip(cloud.opacities, opacity_lo, opacity_hi),
        sh=cloud.sh,
    )
    camera = Camera.look_at(
        eye=[0.1, 0.2, -2.0], target=[0, 0, 0], width=width, height=height
    )
    return project(cloud, camera)


def assert_pfs_exact(projected, lists=None):
    ref = render_reference_loop(projected, lists)
    vec = render_pfs_vectorized(projected, lists)
    np.testing.assert_array_equal(ref.image, vec.image)
    np.testing.assert_array_equal(ref.transmittance, vec.transmittance)
    np.testing.assert_array_equal(ref.n_contrib, vec.n_contrib)
    assert ref.stats == vec.stats


def assert_irss_exact(projected, lists=None, fp16=False):
    ref = render_irss_loop(projected, lists, fp16=fp16)
    vec = render_irss_vectorized(projected, lists, fp16=fp16)
    np.testing.assert_array_equal(ref.image, vec.image)
    np.testing.assert_array_equal(ref.transmittance, vec.transmittance)
    np.testing.assert_array_equal(ref.n_contrib, vec.n_contrib)
    assert ref.stats == vec.stats
    for name in WORKLOAD_FIELDS:
        np.testing.assert_array_equal(
            getattr(ref.workload, name), getattr(vec.workload, name), err_msg=name
        )


class TestRandomizedParity:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120))
    @settings(max_examples=12, deadline=None)
    def test_pfs_bit_identical(self, seed, n):
        assert_pfs_exact(_scene(seed, n))

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120))
    @settings(max_examples=12, deadline=None)
    def test_irss_bit_identical(self, seed, n):
        assert_irss_exact(_scene(seed, n))

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120))
    @settings(max_examples=8, deadline=None)
    def test_irss_fp16_bit_identical(self, seed, n):
        assert_irss_exact(_scene(seed, n), fp16=True)


class TestEdgeCases:
    def test_empty_scene(self):
        """Every Gaussian culled: both backends return background only."""
        rng = np.random.default_rng(0)
        cloud = GaussianCloud.random(10, rng, extent=0.3)
        # Camera faces away from the cloud, so projection culls all.
        camera = Camera.look_at(
            eye=[0, 0, -2], target=[0, 0, -4], width=48, height=32
        )
        empty = project(cloud, camera)
        assert len(empty) == 0
        assert_pfs_exact(empty)
        assert_irss_exact(empty)

    def test_single_gaussian(self):
        assert_pfs_exact(_scene(3, 1))
        assert_irss_exact(_scene(3, 1))

    def test_opaque_overlap_triggers_early_termination(self):
        """Many opaque Gaussians stacked on one spot force the
        whole-tile termination (break) path in both dataflows."""
        projected = _scene(11, 200, width=48, height=48,
                           opacity_lo=0.9, opacity_hi=0.95)
        ref = render_reference_loop(projected)
        assert ref.stats.instances_processed < ref.stats.instances
        assert_pfs_exact(projected)
        assert_irss_exact(projected)
        assert_irss_exact(projected, fp16=True)

    def test_clipped_edge_tiles(self):
        """Resolutions that are not multiples of 16 produce partial
        tiles, which batch separately per shape."""
        for width, height in ((17, 33), (50, 20), (16, 16), (95, 63)):
            projected = _scene(5, 60, width=width, height=height)
            assert_pfs_exact(projected)
            assert_irss_exact(projected)

    def test_depth_chunking_continuation_path(self, monkeypatch):
        """A tiny fragment budget forces depth-chunked processing with
        transmittance carry and the add.at continuation accumulator."""
        monkeypatch.setattr(vectorized, "CHUNK_FRAGMENT_BUDGET", 1 << 10)
        projected = _scene(23, 150, width=40, height=24)
        lists = build_render_lists(projected)
        depths = lists.instances_per_tile().max()
        # The budget must actually split this scene's deepest tile.
        assert depths * 16 * 16 > (1 << 10)
        assert_pfs_exact(projected, lists)
        assert_irss_exact(projected, lists)
        assert_irss_exact(projected, lists, fp16=True)


class TestBinningParity:
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 150))
    @settings(max_examples=15, deadline=None)
    def test_flat_binning_matches_scalar_loop(self, seed, n):
        """The np.repeat/argsort binning reproduces the scalar
        double-loop's per-tile lists exactly (content and order)."""
        from repro.gaussians.tiles import (
            TileGrid,
            bin_gaussians,
            tile_rect_of_footprint,
        )

        rng = np.random.default_rng(seed)
        grid = TileGrid(width=77, height=45)
        means2d = rng.uniform(-20, 90, size=(n, 2))
        radii = rng.uniform(0, 30, size=n)

        per_tile_loop: list[list[int]] = [[] for _ in range(grid.n_tiles)]
        for g in range(n):
            tx0, ty0, tx1, ty1 = tile_rect_of_footprint(grid, means2d[g], radii[g])
            for ty in range(ty0, ty1):
                for tx in range(tx0, tx1):
                    per_tile_loop[ty * grid.tiles_x + tx].append(g)

        per_tile_vec = bin_gaussians(grid, means2d, radii)
        assert len(per_tile_vec) == grid.n_tiles
        for t in range(grid.n_tiles):
            np.testing.assert_array_equal(
                per_tile_vec[t], np.asarray(per_tile_loop[t], dtype=np.int64)
            )


class TestRegistry:
    def test_backends_registered(self):
        assert set(list_backends()) >= {"reference", "vectorized"}

    def test_unknown_backend_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            get_backend("no-such-backend")
        with pytest.raises(ValidationError):
            render_reference(_scene(1, 5), backend="no-such-backend")

    def test_dispatch_selects_backend(self):
        projected = _scene(9, 40)
        via_param = render_reference(projected, backend="vectorized")
        direct = render_pfs_vectorized(projected)
        np.testing.assert_array_equal(via_param.image, direct.image)
        irss_via = render_irss(projected, backend="vectorized")
        irss_direct = render_irss_vectorized(projected)
        np.testing.assert_array_equal(irss_via.image, irss_direct.image)

    def test_default_backend_override(self):
        projected = _scene(2, 30)
        loop = render_reference_loop(projected)
        previous = set_default_backend("vectorized")
        try:
            dispatched = render_reference(projected)
        finally:
            set_default_backend(previous)
        np.testing.assert_array_equal(loop.image, dispatched.image)

    def test_use_backend_context(self):
        projected = _scene(4, 30)
        with use_backend("vectorized") as backend:
            assert backend.name == "vectorized"
            result = render_irss(projected)
        np.testing.assert_array_equal(
            result.image, render_irss_loop(projected).image
        )
