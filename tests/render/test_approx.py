"""The approx backend: policy plumbing, culling properties, and
measured (never assumed) quality bands against the exact backend.

Tolerance 0 must be *bit-identical* to the exact vectorized backend
(the advertised exactness anchor); positive tolerances are scored with
PSNR/SSIM from ``repro.metrics.image`` against the exact render and
asserted against quality floors — approximate rendering with a golden
quality band instead of golden bytes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TRANSMITTANCE_EPS
from repro.core.irss import render_irss
from repro.errors import ValidationError
from repro.gaussians import build_render_lists, render_reference
from repro.metrics.image import psnr, ssim
from repro.render import get_backend, list_backends
from repro.render.approx import (
    APPROX_TOLERANCE_ENV_VAR,
    DEFAULT_TOLERANCE,
    ApproxPolicy,
    cull_render_lists,
    default_policy,
    render_irss_approx,
    render_pfs_approx,
    set_approx_policy,
    tile_alpha_estimate,
    tolerance_for_rung,
    use_approx_policy,
)

from repro.gaussians import Camera, GaussianCloud, project


def _scene(seed: int, n: int, width: int = 72, height: int = 56):
    """A random projected scene (odd resolutions exercise clipped tiles)."""
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.random(n, rng, extent=0.6, scale_range=(0.03, 0.3))
    cloud = GaussianCloud(
        means=cloud.means,
        scales=cloud.scales,
        quats=cloud.quats,
        opacities=np.clip(cloud.opacities, 0.05, 0.95),
        sh=cloud.sh,
    )
    camera = Camera.look_at(
        eye=[0.1, 0.2, -2.0], target=[0, 0, 0], width=width, height=height
    )
    return project(cloud, camera)


class TestApproxPolicy:
    def test_tolerance_band_enforced(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValidationError):
                ApproxPolicy.for_tolerance(bad)
        with pytest.raises(ValidationError):
            ApproxPolicy(tolerance=2.0, min_contribution=0.0,
                         term_eps=TRANSMITTANCE_EPS)

    def test_knob_validation(self):
        with pytest.raises(ValidationError):
            ApproxPolicy(tolerance=0.5, min_contribution=-1e-3,
                         term_eps=TRANSMITTANCE_EPS)
        with pytest.raises(ValidationError):
            # term_eps may never undercut the exact threshold.
            ApproxPolicy(tolerance=0.5, min_contribution=0.0,
                         term_eps=TRANSMITTANCE_EPS / 10)
        with pytest.raises(ValidationError):
            ApproxPolicy(tolerance=0.5, min_contribution=0.0,
                         term_eps=TRANSMITTANCE_EPS, min_keep=0)

    def test_for_tolerance_knobs_open_linearly(self):
        exact = ApproxPolicy.for_tolerance(0.0)
        assert exact.min_contribution == 0.0
        assert exact.term_eps == TRANSMITTANCE_EPS
        loose = ApproxPolicy.for_tolerance(1.0)
        assert loose.min_contribution > ApproxPolicy.for_tolerance(0.5).min_contribution
        assert loose.term_eps > TRANSMITTANCE_EPS

    def test_tolerance_for_rung_monotone_and_clamped(self):
        tols = [tolerance_for_rung(s) for s in (1.0, 0.75, 0.5, 0.25, 0.05)]
        assert tols == sorted(tols)  # lower rung -> wider tolerance
        assert tols[0] == pytest.approx(0.15)
        assert max(tols) <= 0.55
        # Scales above 1 (nominal > band) behave like full detail.
        assert tolerance_for_rung(2.0) == tols[0]
        with pytest.raises(ValidationError):
            tolerance_for_rung(0.0)


class TestPolicyOverride:
    def test_registered_backend(self):
        assert "approx" in list_backends()
        assert get_backend("approx").name == "approx"

    def test_default_policy_uses_default_tolerance(self):
        assert default_policy().tolerance == DEFAULT_TOLERANCE

    def test_env_var_seeds_tolerance(self, monkeypatch):
        monkeypatch.setenv(APPROX_TOLERANCE_ENV_VAR, "0.4")
        assert default_policy().tolerance == pytest.approx(0.4)

    def test_env_var_invalid_is_clean_error(self, monkeypatch):
        monkeypatch.setenv(APPROX_TOLERANCE_ENV_VAR, "brisk")
        with pytest.raises(ValidationError):
            default_policy()

    def test_use_approx_policy_scopes_and_restores(self):
        outer = ApproxPolicy.for_tolerance(0.6)
        previous = set_approx_policy(outer)
        try:
            with use_approx_policy(0.3) as inner:
                assert default_policy() is inner
                assert inner.tolerance == pytest.approx(0.3)
            assert default_policy() is outer
        finally:
            set_approx_policy(previous)


class TestCulling:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 150),
           tolerance=st.floats(0.05, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_cull_preserves_depth_order_and_subsets(self, seed, n, tolerance):
        projected = _scene(seed, n)
        lists = build_render_lists(projected)
        policy = ApproxPolicy.for_tolerance(tolerance)
        culled, stats = cull_render_lists(projected, lists, policy)
        assert stats.instances_before == lists.n_instances
        assert stats.instances_after == culled.n_instances
        assert 0.0 <= stats.culled_fraction <= 1.0
        assert culled.grid is lists.grid
        for kept, members in zip(culled.per_tile, lists.per_tile):
            # Subset, in the original (depth) order.
            pos = {int(g): i for i, g in enumerate(members)}
            idx = [pos[int(g)] for g in kept]
            assert idx == sorted(idx)
            # Busy tiles never drop below the keep floor.
            if len(members) >= policy.min_keep:
                assert len(kept) >= policy.min_keep
            else:
                assert len(kept) == len(members)

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 150))
    @settings(max_examples=10, deadline=None)
    def test_culling_is_monotone_in_tolerance(self, seed, n):
        projected = _scene(seed, n)
        lists = build_render_lists(projected)
        kept = [
            cull_render_lists(
                projected, lists, ApproxPolicy.for_tolerance(t)
            )[1].instances_after
            for t in (0.0, 0.25, 0.5, 1.0)
        ]
        assert kept == sorted(kept, reverse=True)
        assert kept[0] == lists.n_instances  # tolerance 0 culls nothing

    def test_alpha_estimate_covers_every_instance(self):
        projected = _scene(7, 80)
        lists = build_render_lists(projected)
        members, alpha = tile_alpha_estimate(projected, lists)
        assert members.shape == alpha.shape == (lists.n_instances,)
        assert (alpha >= 0.0).all() and (alpha <= 1.0).all()

    def test_empty_scene(self):
        rng = np.random.default_rng(0)
        cloud = GaussianCloud.random(10, rng, extent=0.3)
        # Camera faces away from the cloud, so projection culls all.
        camera = Camera.look_at(
            eye=[0, 0, -2], target=[0, 0, -4], width=48, height=32
        )
        projected = project(cloud, camera)
        assert len(projected) == 0
        empty = build_render_lists(projected)
        culled, stats = cull_render_lists(
            projected, empty, ApproxPolicy.for_tolerance(1.0)
        )
        assert stats.instances_before == stats.instances_after == 0
        assert stats.culled_fraction == 0.0
        assert culled.n_instances == 0


class TestQuality:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120))
    @settings(max_examples=8, deadline=None)
    def test_tolerance_zero_is_bit_identical(self, seed, n):
        """The exactness anchor: tolerance 0 means no culling, the
        exact termination threshold, and the float64 datapath."""
        projected = _scene(seed, n)
        lists = build_render_lists(projected)
        with use_approx_policy(0.0):
            appr_pfs = render_pfs_approx(projected, lists)
            appr_irss = render_irss_approx(projected, lists)
        exact_pfs = render_reference(projected, lists, backend="vectorized")
        exact_irss = render_irss(projected, lists, backend="vectorized")
        np.testing.assert_array_equal(appr_pfs.image, exact_pfs.image)
        np.testing.assert_array_equal(
            appr_pfs.transmittance, exact_pfs.transmittance
        )
        assert appr_pfs.stats == exact_pfs.stats
        np.testing.assert_array_equal(appr_irss.image, exact_irss.image)
        assert appr_irss.stats == exact_irss.stats

    def test_default_tolerance_quality_band(self):
        """Quality-banded golden: at the default tolerance the default
        catalog scene stays within the advertised PSNR/SSIM band of the
        exact render (the exact goldens continue to guard
        reference/vectorized byte-for-byte).  The floors match the
        acceptance bar asserted in ``benchmarks/bench_approx_quality.py``."""
        from repro.scenes.catalog import build_scene

        bundle = build_scene("bicycle")
        cloud, _ = bundle.frame_cloud(0)
        projected = project(cloud, bundle.camera)
        lists = build_render_lists(projected)
        exact = render_reference(projected, lists, backend="vectorized")
        with use_approx_policy(DEFAULT_TOLERANCE):
            appr = render_reference(projected, lists, backend="approx")
        assert psnr(appr.image, exact.image) >= 35.0
        assert ssim(appr.image, exact.image) >= 0.95
        # It must actually approximate: strictly fewer instances reach
        # the rasterizer (culling) than in the exact render.
        assert appr.stats.instances < exact.stats.instances

    def test_quality_degrades_monotonically_enough(self):
        """Wider tolerance never *improves* fidelity by more than noise
        (the knobs only ever discard more work)."""
        projected = _scene(13, 300, width=96, height=80)
        lists = build_render_lists(projected)
        exact = render_reference(projected, lists, backend="vectorized")
        scores = []
        for tol in (0.1, 0.5, 1.0):
            with use_approx_policy(tol):
                appr = render_reference(projected, lists, backend="approx")
            scores.append(psnr(appr.image, exact.image))
        assert scores[0] >= scores[-1]
        # Even the loosest tolerance on this adversarial random scene
        # (far denser overlap than any catalog scene) stays recognizable.
        assert min(scores) > 15.0
