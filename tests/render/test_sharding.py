"""Intra-frame tile sharding: shard-count invariance.

Tile rasterization is pixel-disjoint, so splitting one frame's tile
grid across N shards and stitching the results must reproduce the
unsharded render *bit for bit* — images, transmittance, contributor
counts, stats, and IRSS workload counters — for the exact backends at
any shard count (the property tested here).  The approx backend is
also covered: its culling is tile-local, so sharded approx renders
match the unsharded approx render, and sharding must never disturb
the caller's process-wide policy override.
"""

from __future__ import annotations

import numpy as np
import pytest
from dataclasses import fields
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.irss import TileRowWorkload, render_irss
from repro.errors import ValidationError
from repro.gaussians import (
    Camera,
    GaussianCloud,
    build_render_lists,
    project,
    render_reference,
)
from repro.render.approx import default_policy, use_approx_policy
from repro.render.sharding import (
    ShardedRenderer,
    render_irss_sharded,
    render_pfs_sharded,
    shard_tile_ranges,
    sub_render_lists,
)


def _scene(seed: int, n: int, width: int = 72, height: int = 56):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.random(n, rng, extent=0.6, scale_range=(0.03, 0.3))
    cloud = GaussianCloud(
        means=cloud.means,
        scales=cloud.scales,
        quats=cloud.quats,
        opacities=np.clip(cloud.opacities, 0.05, 0.95),
        sh=cloud.sh,
    )
    camera = Camera.look_at(
        eye=[0.1, 0.2, -2.0], target=[0, 0, 0], width=width, height=height
    )
    return project(cloud, camera)


def assert_pfs_invariant(projected, lists, n_shards, backend):
    base = render_reference(projected, lists, backend=backend)
    sharded = render_pfs_sharded(
        projected, lists, n_shards=n_shards, backend=backend
    )
    np.testing.assert_array_equal(base.image, sharded.image)
    np.testing.assert_array_equal(base.transmittance, sharded.transmittance)
    np.testing.assert_array_equal(base.n_contrib, sharded.n_contrib)
    assert base.stats == sharded.stats


def assert_irss_invariant(projected, lists, n_shards, backend, fp16=False):
    base = render_irss(projected, lists, backend=backend, fp16=fp16)
    sharded = render_irss_sharded(
        projected, lists, n_shards=n_shards, backend=backend, fp16=fp16
    )
    np.testing.assert_array_equal(base.image, sharded.image)
    np.testing.assert_array_equal(base.transmittance, sharded.transmittance)
    np.testing.assert_array_equal(base.n_contrib, sharded.n_contrib)
    assert base.stats == sharded.stats
    for f in fields(TileRowWorkload):
        np.testing.assert_array_equal(
            getattr(base.workload, f.name),
            getattr(sharded.workload, f.name),
            err_msg=f.name,
        )


class TestShardRanges:
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 150),
           n_shards=st.integers(1, 9))
    @settings(max_examples=20, deadline=None)
    def test_cover_every_tile_exactly_once(self, seed, n, n_shards):
        lists = build_render_lists(_scene(seed, n))
        ranges = shard_tile_ranges(lists, n_shards)
        assert len(ranges) == n_shards
        joined = np.concatenate(ranges)
        # Contiguous ascending ranges that jointly cover the grid.
        np.testing.assert_array_equal(
            joined, np.arange(lists.grid.n_tiles, dtype=np.int64)
        )

    def test_balances_by_instance_mass(self):
        lists = build_render_lists(_scene(5, 120))
        counts = lists.instances_per_tile()
        ranges = shard_tile_ranges(lists, 4)
        loads = [counts[r].sum() for r in ranges]
        # No shard carries more than the ideal split plus one tile's
        # worth of work (contiguity limits balancing to tile granularity).
        assert max(loads) <= counts.sum() / 4 + counts.max()

    def test_rejects_non_positive_shard_count(self):
        lists = build_render_lists(_scene(1, 10))
        with pytest.raises(ValidationError):
            shard_tile_ranges(lists, 0)

    def test_sub_lists_keep_only_selected_tiles(self):
        lists = build_render_lists(_scene(3, 80))
        tiles = np.arange(lists.grid.n_tiles // 2, dtype=np.int64)
        sub = sub_render_lists(lists, tiles)
        keep = set(int(t) for t in tiles)
        for t, members in enumerate(sub.per_tile):
            if t in keep:
                np.testing.assert_array_equal(members, lists.per_tile[t])
            else:
                assert len(members) == 0


class TestExactInvariance:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120),
           n_shards=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_vectorized_pfs_bit_identical(self, seed, n, n_shards):
        projected = _scene(seed, n)
        lists = build_render_lists(projected)
        assert_pfs_invariant(projected, lists, n_shards, "vectorized")

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120),
           n_shards=st.integers(2, 6))
    @settings(max_examples=8, deadline=None)
    def test_vectorized_irss_bit_identical(self, seed, n, n_shards):
        projected = _scene(seed, n)
        lists = build_render_lists(projected)
        assert_irss_invariant(projected, lists, n_shards, "vectorized")

    def test_reference_backend_bit_identical(self):
        projected = _scene(17, 60)
        lists = build_render_lists(projected)
        assert_pfs_invariant(projected, lists, 3, "reference")
        assert_irss_invariant(projected, lists, 3, "reference")

    def test_irss_fp16_bit_identical(self):
        projected = _scene(21, 80)
        lists = build_render_lists(projected)
        assert_irss_invariant(projected, lists, 4, "vectorized", fp16=True)

    def test_more_shards_than_busy_tiles(self):
        projected = _scene(2, 3, width=33, height=17)
        lists = build_render_lists(projected)
        assert_pfs_invariant(projected, lists, 16, "vectorized")

    def test_single_shard_is_plain_dispatch(self):
        projected = _scene(9, 40)
        lists = build_render_lists(projected)
        assert_pfs_invariant(projected, lists, 1, "vectorized")


class TestApproxSharding:
    def test_sharded_matches_unsharded(self):
        """Tile-local culling keeps the approx backend shard-invariant
        (near-exact: the reduced-precision datapath's segmented prefix
        products may round differently across chunk layouts)."""
        projected = _scene(31, 200, width=96, height=80)
        lists = build_render_lists(projected)
        with use_approx_policy(0.4):
            base = render_reference(projected, lists, backend="approx")
            for n in (2, 5):
                sharded = render_pfs_sharded(
                    projected, lists, n_shards=n, backend="approx"
                )
                np.testing.assert_allclose(
                    sharded.image, base.image, atol=1e-5
                )
                assert sharded.stats.instances == base.stats.instances

    def test_sharding_preserves_callers_policy_override(self):
        """An in-process sharded render must restore — not clear — the
        caller's policy override (regression: the first sharded frame
        used to erase the session's tolerance for all later frames)."""
        projected = _scene(31, 100)
        lists = build_render_lists(projected)
        with use_approx_policy(0.4) as policy:
            before = render_reference(projected, lists, backend="approx")
            render_pfs_sharded(projected, lists, n_shards=3, backend="approx")
            assert default_policy() is policy
            after = render_reference(projected, lists, backend="approx")
        np.testing.assert_array_equal(before.image, after.image)


class TestShardedRenderer:
    def test_validates_shard_count(self):
        with pytest.raises(ValidationError):
            ShardedRenderer(0)

    def test_renderer_matches_free_functions(self):
        projected = _scene(8, 70)
        lists = build_render_lists(projected)
        renderer = ShardedRenderer(3, backend="vectorized")
        np.testing.assert_array_equal(
            renderer.render_pfs(projected, lists).image,
            render_pfs_sharded(
                projected, lists, n_shards=3, backend="vectorized"
            ).image,
        )
        np.testing.assert_array_equal(
            renderer.render_irss(projected, lists).image,
            render_irss_sharded(
                projected, lists, n_shards=3, backend="vectorized"
            ).image,
        )

    def test_process_pool_smoke(self):
        """Shards fanned over real worker processes stitch bit-identically
        (one small frame: the pool is shared and torn down at exit)."""
        projected = _scene(12, 40, width=48, height=32)
        lists = build_render_lists(projected)
        base = render_reference(projected, lists, backend="vectorized")
        sharded = ShardedRenderer(
            2, backend="vectorized", processes=True
        ).render_pfs(projected, lists)
        np.testing.assert_array_equal(base.image, sharded.image)
        assert base.stats == sharded.stats
