"""QoS: deadlines, the AIMD controller, adaptive streams, serving,
checkpoint replay (including crash recovery and double migration)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG, BundleCache
from repro.stream import (
    CameraTrajectory,
    FrameDeadline,
    FrameStream,
    QoSPolicy,
    QualityController,
    StreamServer,
    StreamSession,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.stream.server import _WorkerState

TARGET_FPS = 72.0


def _controller(policy=None, fps=TARGET_FPS, nominal=1.0):
    return QualityController(
        FrameDeadline(fps), policy, nominal_detail=nominal
    )


class TestFrameDeadline:
    def test_budget_and_margin(self):
        deadline = FrameDeadline(100.0)
        assert deadline.deadline_seconds == pytest.approx(0.01)
        assert deadline.met(0.009) and not deadline.met(0.011)
        assert deadline.margin(0.004) == pytest.approx(0.006)
        assert deadline.margin(0.014) == pytest.approx(-0.004)

    def test_rejects_non_positive_fps(self):
        with pytest.raises(ValidationError):
            FrameDeadline(0.0)
        with pytest.raises(ValidationError):
            FrameDeadline(-72.0)


class TestQoSPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            QoSPolicy(min_detail=0.0)
        with pytest.raises(ValidationError):
            QoSPolicy(min_detail=0.8, max_detail=0.5)
        with pytest.raises(ValidationError):
            QoSPolicy(decrease=0.0)
        with pytest.raises(ValidationError):
            QoSPolicy(decrease=1.5)
        with pytest.raises(ValidationError):
            QoSPolicy(increase=-0.1)
        with pytest.raises(ValidationError):
            QoSPolicy(hysteresis=-0.1)
        with pytest.raises(ValidationError):
            QoSPolicy(quantum=0.0)

    def test_fixed_policy_pins_detail(self):
        policy = QoSPolicy.fixed()
        assert policy.min_detail == policy.max_detail == 1.0
        assert policy.increase == 0.0


class TestQualityController:
    def test_miss_decreases_multiplicatively(self):
        ctrl = _controller(QoSPolicy(decrease=0.5, quantum=0.01))
        deadline = ctrl.deadline.deadline_seconds
        record = ctrl.observe(frame=0, detail=1.0, sim_seconds=2 * deadline)
        assert not record.met
        assert record.margin_seconds == pytest.approx(-deadline)
        assert ctrl.scale == pytest.approx(0.5)
        ctrl.observe(frame=1, detail=0.5, sim_seconds=2 * deadline)
        assert ctrl.scale == pytest.approx(0.25)  # clamped floor next

    def test_scale_clamped_to_band(self):
        ctrl = _controller(QoSPolicy(min_detail=0.4, decrease=0.1))
        ctrl.observe(frame=0, detail=1.0, sim_seconds=1.0)
        assert ctrl.scale == pytest.approx(0.4)

    def test_comfortable_frames_recover_additively(self):
        policy = QoSPolicy(decrease=0.5, increase=0.1, hysteresis=0.1)
        ctrl = _controller(policy)
        deadline = ctrl.deadline.deadline_seconds
        ctrl.observe(frame=0, detail=1.0, sim_seconds=2 * deadline)
        assert ctrl.scale == pytest.approx(0.5)
        ctrl.observe(frame=1, detail=0.5, sim_seconds=0.5 * deadline)
        assert ctrl.scale == pytest.approx(0.6)
        # Recovery never exceeds the band ceiling.
        for k in range(10):
            ctrl.observe(frame=2 + k, detail=1.0, sim_seconds=0.5 * deadline)
        assert ctrl.scale == pytest.approx(1.0)

    def test_hysteresis_holds_near_the_deadline(self):
        policy = QoSPolicy(increase=0.1, hysteresis=0.2)
        ctrl = _controller(policy)
        deadline = ctrl.deadline.deadline_seconds
        ctrl.observe(frame=0, detail=1.0, sim_seconds=2 * deadline)
        parked = ctrl.scale
        # Met, but inside the hysteresis band: no recovery.
        ctrl.observe(frame=1, detail=0.75, sim_seconds=0.9 * deadline)
        assert ctrl.scale == pytest.approx(parked)

    def test_next_detail_snaps_to_quantum_ladder(self):
        ctrl = _controller(QoSPolicy(decrease=0.77, quantum=0.05))
        deadline = ctrl.deadline.deadline_seconds
        ctrl.observe(frame=0, detail=1.0, sim_seconds=2 * deadline)
        assert ctrl.scale == pytest.approx(0.77)
        assert ctrl.next_detail == pytest.approx(0.75)
        rung = round(ctrl.next_detail / 0.05)
        assert rung * 0.05 == pytest.approx(ctrl.next_detail)

    def test_nominal_detail_scales_the_ladder(self):
        ctrl = _controller(QoSPolicy(decrease=0.5, quantum=0.25), nominal=0.5)
        assert ctrl.next_detail == pytest.approx(0.5)
        ctrl.observe(frame=0, detail=0.5, sim_seconds=1.0)
        assert ctrl.next_detail == pytest.approx(0.25)

    def test_ceiling_rung_emits_the_exact_nominal_detail(self):
        """At the band ceiling the emitted detail must compare equal to
        the stream's nominal detail bit-for-bit — otherwise frame 0
        spuriously reloads the bundle and flushes the cache for any
        nominal (like 1/3) that a decimal round would perturb."""
        nominal = 1.0 / 3.0
        ctrl = _controller(nominal=nominal)
        assert ctrl.next_detail == nominal
        stream = FrameStream(
            CATALOG["nerf_lego"],
            CameraTrajectory.for_scene(
                CATALOG["nerf_lego"], "frozen", n_frames=2, detail=nominal
            ),
            detail=nominal,
            controller=QualityController(
                FrameDeadline(1.0), nominal_detail=nominal
            ),
        )
        record = stream.render_next()
        assert record.detail == nominal
        assert stream.bundle is not None
        # No rung change: the seeded nominal bundle was reused, not
        # rebuilt into a second cache slot.
        assert stream.active_detail == nominal

    def test_fixed_policy_records_but_never_adapts(self):
        ctrl = _controller(QoSPolicy.fixed())
        deadline = ctrl.deadline.deadline_seconds
        for k in range(4):
            record = ctrl.observe(
                frame=k, detail=1.0, sim_seconds=2 * deadline
            )
            assert not record.met
        assert ctrl.next_detail == 1.0
        assert ctrl.misses == 4
        assert ctrl.miss_rate == 1.0

    def test_state_roundtrip_continues_identically(self):
        rng = np.random.default_rng(7)
        deadline = 1.0 / TARGET_FPS
        latencies = list(rng.uniform(0.3 * deadline, 2.0 * deadline, 24))

        full = _controller()
        for k, lat in enumerate(latencies):
            full.observe(frame=k, detail=full.next_detail, sim_seconds=lat)

        head = _controller()
        for k, lat in enumerate(latencies[:10]):
            head.observe(frame=k, detail=head.next_detail, sim_seconds=lat)
        tail = _controller()
        tail.import_state(head.export_state())
        for k, lat in enumerate(latencies[10:], start=10):
            tail.observe(frame=k, detail=tail.next_detail, sim_seconds=lat)

        assert tail.scale == full.scale
        assert tail.next_detail == full.next_detail
        assert tail.frames_observed == full.frames_observed
        assert tail.misses == full.misses

    def test_import_validates_state(self):
        from repro.stream import QoSControllerState

        ctrl = _controller(QoSPolicy(min_detail=0.5))
        with pytest.raises(ValidationError):
            ctrl.import_state(
                QoSControllerState(scale=0.25, frames_observed=1, misses=0)
            )
        with pytest.raises(ValidationError):
            ctrl.import_state(
                QoSControllerState(scale=1.0, frames_observed=1, misses=2)
            )

    def test_rejects_bad_inputs(self):
        ctrl = _controller()
        with pytest.raises(ValidationError):
            ctrl.observe(frame=0, detail=1.0, sim_seconds=0.0)
        with pytest.raises(ValidationError):
            QualityController(FrameDeadline(72.0), nominal_detail=0.0)


# ----------------------------------------------------------------------
# Adaptive FrameStream
# ----------------------------------------------------------------------
def _adaptive_stream(n_frames=10, scene="bicycle", keep_images=False,
                     cache=None, fps=TARGET_FPS):
    spec = CATALOG[scene]
    traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=n_frames)
    return FrameStream(
        spec,
        traj,
        keep_images=keep_images,
        controller=_controller(fps=fps),
        bundle_provider=None if cache is None else cache.get,
    )


class TestAdaptiveFrameStream:
    def test_controller_reduces_latency_below_fixed(self):
        """The heavy scene misses a 72 Hz budget fixed; QoS closes it."""
        spec = CATALOG["bicycle"]
        traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=10)
        fixed = FrameStream(spec, traj).run(10)
        deadline = 1.0 / TARGET_FPS
        assert fixed.deadline_miss_rate(deadline) == 1.0

        adaptive = _adaptive_stream(10)
        report = adaptive.run(10)
        assert report.deadline_miss_rate() < 0.5
        assert report.mean_detail < 1.0
        # Quality is traded, not abandoned.
        assert report.mean_detail >= 0.5

    def test_frames_carry_qos_records_and_detail(self):
        stream = _adaptive_stream(4)
        records = [stream.render_next() for _ in range(4)]
        for r in records:
            assert r.qos is not None
            assert r.qos.detail == r.detail
            assert r.qos.deadline_seconds == pytest.approx(1.0 / TARGET_FPS)
            assert r.qos.met == (r.sim_seconds <= r.qos.deadline_seconds)

    def test_detail_switch_rescales_resolution(self):
        stream = _adaptive_stream(6, keep_images=True)
        records = [stream.render_next() for _ in range(6)]
        details = {r.detail for r in records}
        assert len(details) > 1  # the controller actually moved
        spec = CATALOG["bicycle"]
        for r in records:
            width, height = spec.eval_resolution(r.detail)
            assert r.image.shape == (height, width, 3)

    def test_controller_nominal_must_match_stream_detail(self):
        spec = CATALOG["bicycle"]
        traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=2)
        with pytest.raises(ValidationError):
            FrameStream(
                spec, traj, detail=0.5, controller=_controller(nominal=1.0)
            )

    def test_detail_change_without_provider_raises(self):
        spec = CATALOG["bicycle"]
        traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=2)
        stream = FrameStream(spec, traj)
        with pytest.raises(ValidationError):
            stream.load_detail(0.5)

    def test_reset_restores_nominal_detail_and_controller(self):
        stream = _adaptive_stream(6)
        for _ in range(4):
            stream.render_next()
        assert stream.active_detail < 1.0
        stream.reset()
        assert stream.active_detail == 1.0
        assert stream.controller.frames_observed == 0
        first = stream.render_next()
        assert first.frame == 0 and first.detail == 1.0


class TestBundleCache:
    def test_capacity_cap_under_detail_sweep(self):
        cache = BundleCache(capacity=3)
        for detail in (1.0, 0.75, 0.5, 0.25, 0.35, 0.6, 0.75):
            cache.get("nerf_lego", detail)
            assert len(cache) <= 3
        assert cache.misses >= 6  # 0.75 was evicted and rebuilt

    def test_lru_eviction_order(self):
        cache = BundleCache(capacity=2)
        a = cache.get("nerf_lego", 0.5)
        cache.get("nerf_lego", 0.25)
        assert cache.get("nerf_lego", 0.5) is a  # hit refreshes recency
        cache.get("nerf_lego", 0.75)  # evicts 0.25, not 0.5
        assert cache.get("nerf_lego", 0.5) is a
        assert cache.hits == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValidationError):
            BundleCache(capacity=0)

    def test_worker_state_cache_stays_bounded_under_adaptive_session(self):
        """A detail-sweeping adaptive session never grows the worker's
        bundle cache beyond its cap."""
        spec = CATALOG["bicycle"]
        session = StreamSession(
            "sweep",
            "bicycle",
            CameraTrajectory.for_scene(spec, "orbit", n_frames=12),
            target_fps=TARGET_FPS,
            # Aggressive knobs so the controller sweeps many rungs.
            qos=QoSPolicy(decrease=0.6, increase=0.15, hysteresis=0.0),
        )
        state = _WorkerState(bundle_cache_size=2)
        rendered = []
        for _ in range(12):
            result = state.render_tick(
                [session if not state.streams else "sweep"]
            )
            rendered.extend(record for _, record in result.frames)
            assert len(state.bundles) <= 2
        assert state.streams["sweep"].frames_rendered == 12
        # The sweep really visited more rungs than the cache can hold.
        assert len({r.detail for r in rendered}) > 2


# ----------------------------------------------------------------------
# Checkpoint replay
# ----------------------------------------------------------------------
def _evidence(records):
    return [
        (
            r.frame,
            r.detail,
            r.sim_seconds,
            r.hit_rate,
            r.cache.cumulative_hit_rate,
            r.cache.carried_hit_rate,
            r.qos.met,
            r.qos.margin_seconds,
        )
        for r in records
    ]


class TestQoSCheckpointReplay:
    @pytest.mark.parametrize("cut", [2, 5])
    def test_replay_is_byte_identical_mid_adaptation(self, cut):
        cache = BundleCache()
        full_stream = _adaptive_stream(10, keep_images=True, cache=cache)
        full = [full_stream.render_next() for _ in range(10)]

        part = _adaptive_stream(10, keep_images=True, cache=cache)
        for _ in range(cut):
            part.render_next()
        ckpt = capture_checkpoint("client", part, detail=1.0)
        assert ckpt.qos is not None
        assert ckpt.active_detail == part.active_detail

        restored = _adaptive_stream(10, keep_images=True, cache=cache)
        restore_checkpoint(restored, ckpt)
        tail = [restored.render_next() for _ in range(10 - cut)]

        assert _evidence(tail) == _evidence(full[cut:])
        for expect, got in zip(full[cut:], tail):
            assert np.array_equal(expect.image, got.image)

    def test_restore_rejects_qos_mismatch(self):
        spec = CATALOG["bicycle"]
        traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=4)
        adaptive = _adaptive_stream(4)
        adaptive.render_next()
        ckpt = capture_checkpoint("client", adaptive, detail=1.0)
        plain = FrameStream(spec, traj)
        with pytest.raises(ValidationError):
            restore_checkpoint(plain, ckpt)

        plain.render_next()
        plain_ckpt = capture_checkpoint("client", plain, detail=1.0)
        fresh = _adaptive_stream(4)
        with pytest.raises(ValidationError):
            restore_checkpoint(fresh, plain_ckpt)

    def test_double_migration_replay_is_byte_identical(self):
        """migrate -> crash -> restore -> migrate again: the full relay
        of worker states reproduces the uninterrupted stream exactly,
        QoS controller state included."""
        spec = CATALOG["bicycle"]
        session = StreamSession(
            "relay",
            "bicycle",
            CameraTrajectory.for_scene(spec, "orbit", n_frames=12),
            keep_images=True,
            target_fps=TARGET_FPS,
        )

        solo = _WorkerState()
        baseline = []
        for _ in range(12):
            result = solo.render_tick([session if not baseline else "relay"])
            baseline.extend(record for _, record in result.frames)

        relay: list = []
        checkpoint = None
        # Four hops: initial worker, migration target, post-crash
        # respawn, second migration target.
        hops = [_WorkerState() for _ in range(4)]
        frames_per_hop = [3, 3, 3, 3]
        for state, n in zip(hops, frames_per_hop):
            state.restore_sessions([(session, checkpoint)])
            for _ in range(n):
                result = state.render_tick(["relay"])
                relay.extend(record for _, record in result.frames)
                checkpoint = result.checkpoints["relay"]
            # A crash between hop 2 and 3 loses the worker state; the
            # checkpoint alone must carry the session.

        assert _evidence(relay) == _evidence(baseline)
        for expect, got in zip(baseline, relay):
            assert np.array_equal(expect.image, got.image)
        # The controller genuinely moved across hops, so the replay
        # exercised checkpointed QoS state, not a constant ladder.
        assert len({r.detail for r in baseline}) > 1


# ----------------------------------------------------------------------
# Serving with QoS
# ----------------------------------------------------------------------
def _qos_sessions(n_frames=6):
    heavy = CATALOG["bicycle"]
    light = CATALOG["female_4"]
    return [
        StreamSession(
            "heavy",
            "bicycle",
            CameraTrajectory.for_scene(heavy, "orbit", n_frames=n_frames),
            target_fps=TARGET_FPS,
        ),
        StreamSession(
            "light",
            "female_4",
            CameraTrajectory.for_scene(light, "head_jitter", n_frames=n_frames, seed=3),
            target_fps=TARGET_FPS,
        ),
    ]


class TestQoSServing:
    def test_serve_matches_standalone_streams(self):
        sessions = _qos_sessions()
        with StreamServer(workers=0) as server:
            results = server.serve(sessions)
        for session, result in zip(sessions, results):
            solo = FrameStream(
                session.scene,
                session.trajectory,
                controller=QualityController(
                    FrameDeadline(session.target_fps),
                    session.qos,
                    nominal_detail=session.detail,
                ),
            ).run(session.frame_budget)
            assert _evidence(result.report.frames) == _evidence(solo.frames)

    def test_local_multiworker_matches_in_process(self):
        sessions = _qos_sessions()
        with StreamServer(workers=0) as server:
            a = server.serve(sessions)
        with StreamServer(workers=2, local=True) as server:
            b = server.serve(sessions)
        for x, y in zip(a, b):
            assert _evidence(x.report.frames) == _evidence(y.report.frames)

    def test_crash_recovery_preserves_qos_trace(self):
        sessions = _qos_sessions(n_frames=8)
        with StreamServer(workers=0) as server:
            baseline = server.serve(sessions)
        injector = lambda tick, w: tick == 3  # noqa: E731 - every worker
        with StreamServer(workers=2, local=True, fault_injector=injector) as server:
            recovered = server.serve(sessions)
            assert server.recoveries >= 1
        for before, after in zip(baseline, recovered):
            assert _evidence(before.report.frames) == _evidence(
                after.report.frames
            )
            assert (
                before.report.detail_trace == after.report.detail_trace
            )

    def test_miss_reduction_requires_both_modes(self):
        from repro.analysis.streaming import QoSComparison, QoSPoint

        point = QoSPoint(
            mode="adaptive", target_fps=72.0, workers=1, sessions=1,
            total_frames=1, deadline_misses=0, miss_rate=0.0,
            mean_detail=1.0, mean_scale=1.0, sim_makespan_seconds=0.1,
        )
        lopsided = QoSComparison(
            workers=1, target_fps=72.0, points={"adaptive": point}
        )
        with pytest.raises(ValidationError, match="fixed"):
            lopsided.miss_reduction

    def test_scheduler_sees_per_detail_estimates(self):
        """Adaptive sessions re-key the scheduler's estimate table."""
        sessions = _qos_sessions(n_frames=8)
        with StreamServer(workers=0, placement="load") as server:
            server.serve(sessions)
        # No direct hook into the internal scheduler after serve, but
        # dispatch accounting must show every frame was served.
        assert server.dispatch_counts == {"heavy": 8, "light": 8}


class TestShardEscalation:
    """Intra-frame shard escalation: the controller adds tile shards
    only after quality degradation is exhausted (consecutive misses at
    the detail floor), climbs one shard at a time, and releases shards
    after a sustained comfortable streak."""

    POLICY = QoSPolicy(
        min_detail=0.5, decrease=0.5, increase=0.1, hysteresis=0.1,
        max_shards=3, shard_after=2, shard_release=3,
    )

    def _miss(self, ctrl, frame):
        return ctrl.observe(
            frame=frame, detail=ctrl.next_detail,
            sim_seconds=2 * ctrl.deadline.deadline_seconds,
        )

    def _comfortable(self, ctrl, frame):
        return ctrl.observe(
            frame=frame, detail=ctrl.next_detail,
            sim_seconds=0.5 * ctrl.deadline.deadline_seconds,
        )

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            QoSPolicy(max_shards=0)
        with pytest.raises(ValidationError):
            QoSPolicy(shard_after=0)
        with pytest.raises(ValidationError):
            QoSPolicy(shard_release=0)

    def test_default_policy_never_shards(self):
        """max_shards=1 (the default) is the legacy detail-only loop:
        identical detail trace, next_shards pinned at 1."""
        legacy = _controller(QoSPolicy(min_detail=0.5, decrease=0.5))
        for frame in range(12):
            self._miss(legacy, frame)
            assert legacy.next_shards == 1

    def test_escalates_only_after_floor_misses(self):
        ctrl = _controller(self.POLICY)
        # Miss 0 drops detail to the floor but was observed above it.
        self._miss(ctrl, 0)
        assert ctrl.at_detail_floor and ctrl.next_shards == 1
        # Two consecutive misses *at* the floor trip the escalation.
        self._miss(ctrl, 1)
        assert ctrl.next_shards == 1
        self._miss(ctrl, 2)
        assert ctrl.next_shards == 2

    def test_climbs_one_shard_at_a_time_to_the_cap(self):
        ctrl = _controller(self.POLICY)
        shards_seen = []
        for frame in range(12):
            self._miss(ctrl, frame)
            shards_seen.append(ctrl.next_shards)
        assert shards_seen == [1, 1, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3]

    def test_met_frame_resets_floor_miss_streak(self):
        ctrl = _controller(self.POLICY)
        self._miss(ctrl, 0)
        self._miss(ctrl, 1)  # one floor miss accrued
        self._comfortable(ctrl, 2)  # streak broken
        self._miss(ctrl, 3)
        self._miss(ctrl, 4)
        assert ctrl.next_shards == 1  # needs shard_after consecutive again
        self._miss(ctrl, 5)
        assert ctrl.next_shards == 2

    def test_released_after_comfortable_streak(self):
        ctrl = _controller(self.POLICY)
        for frame in range(5):
            self._miss(ctrl, frame)
        assert ctrl.next_shards == 3
        frame = 5
        for _ in range(self.POLICY.shard_release):
            self._comfortable(ctrl, frame)
            frame += 1
        assert ctrl.next_shards == 2
        # A tight (non-comfortable) met frame resets the streak.
        for _ in range(self.POLICY.shard_release - 1):
            self._comfortable(ctrl, frame)
            frame += 1
        ctrl.observe(
            frame=frame, detail=ctrl.next_detail,
            sim_seconds=0.99 * ctrl.deadline.deadline_seconds,
        )
        frame += 1
        for _ in range(self.POLICY.shard_release - 1):
            self._comfortable(ctrl, frame)
            frame += 1
        assert ctrl.next_shards == 2  # streak restarted after the reset
        self._comfortable(ctrl, frame)
        assert ctrl.next_shards == 1

    def test_checkpoint_roundtrip_preserves_escalation(self):
        ctrl = _controller(self.POLICY)
        for frame in range(4):
            self._miss(ctrl, frame)
        clone = _controller(self.POLICY)
        clone.import_state(ctrl.export_state())
        assert clone.next_shards == ctrl.next_shards
        # Both continue identically from the restored counters.
        self._miss(ctrl, 4)
        self._miss(clone, 4)
        assert clone.next_shards == ctrl.next_shards == 3
        assert clone.export_state() == ctrl.export_state()

    def test_legacy_checkpoint_restores_unsharded(self):
        """Pre-escalation checkpoints (no shard fields) restore with
        the defaults: one shard, zeroed counters."""
        from repro.stream.qos import QoSControllerState

        state = QoSControllerState(scale=0.75, frames_observed=5, misses=2)
        ctrl = _controller(self.POLICY)
        ctrl.import_state(state)
        assert ctrl.next_shards == 1

    def test_import_validates_shard_state(self):
        from repro.stream.qos import QoSControllerState

        ctrl = _controller(self.POLICY)
        with pytest.raises(ValidationError, match="shard count"):
            ctrl.import_state(
                QoSControllerState(
                    scale=0.75, frames_observed=1, misses=0, shards=7
                )
            )
        with pytest.raises(ValidationError, match="shard-escalation"):
            ctrl.import_state(
                QoSControllerState(
                    scale=0.75, frames_observed=1, misses=0, floor_misses=-1
                )
            )

    def test_reset_returns_to_one_shard(self):
        ctrl = _controller(self.POLICY)
        for frame in range(5):
            self._miss(ctrl, frame)
        assert ctrl.next_shards > 1
        ctrl.reset()
        assert ctrl.next_shards == 1
        assert ctrl.export_state().floor_misses == 0
