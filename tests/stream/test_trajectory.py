"""Camera trajectories: determinism, shapes, validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians.camera import Camera, orbit_cameras
from repro.scenes.catalog import CATALOG
from repro.stream import CameraTrajectory


@pytest.fixture()
def base_camera():
    return Camera.look_at(
        eye=[2.0, 0.5, -1.5], target=[0, 0, 0], width=96, height=64
    )


def _same_camera(a: Camera, b: Camera) -> bool:
    return (
        a.width == b.width
        and a.height == b.height
        and np.array_equal(a.rotation, b.rotation)
        and np.array_equal(a.translation, b.translation)
        and (a.fx, a.fy, a.cx, a.cy) == (b.fx, b.fy, b.cx, b.cy)
    )


def test_head_jitter_is_seed_deterministic(base_camera):
    a = CameraTrajectory.head_jitter(base_camera, 8, seed=5)
    b = CameraTrajectory.head_jitter(base_camera, 8, seed=5)
    c = CameraTrajectory.head_jitter(base_camera, 8, seed=6)
    assert all(_same_camera(x, y) for x, y in zip(a, b))
    assert not all(_same_camera(x, y) for x, y in zip(a, c))


def test_orbit_full_circle_layers_on_orbit_cameras():
    traj = CameraTrajectory.orbit(6, radius=2.5, height=0.4, width=80, height_px=60)
    direct = orbit_cameras(6, 2.5, height=0.4, width=80, height_px=60)
    assert len(traj) == 6
    assert all(_same_camera(x, y) for x, y in zip(traj, direct))


def test_partial_arc_spans_requested_angles():
    traj = CameraTrajectory.orbit(5, radius=2.0, arc_deg=90.0)
    # Eye positions sweep a quarter circle: end points 90 degrees apart.
    p0 = traj.camera_at(0).position
    p4 = traj.camera_at(4).position
    cos = np.dot(p0[[0, 2]], p4[[0, 2]]) / (
        np.linalg.norm(p0[[0, 2]]) * np.linalg.norm(p4[[0, 2]])
    )
    assert cos == pytest.approx(0.0, abs=1e-9)


def test_dolly_moves_along_eye_target_ray(base_camera):
    traj = CameraTrajectory.dolly(base_camera, 4, factor_range=(1.0, 2.0))
    d0 = np.linalg.norm(traj.camera_at(0).position)
    d3 = np.linalg.norm(traj.camera_at(3).position)
    assert d3 == pytest.approx(2.0 * d0)


def test_frozen_repeats_and_wraps(base_camera):
    traj = CameraTrajectory.frozen(base_camera, 3)
    assert len(traj) == 3
    assert _same_camera(traj.camera_at(0), traj.camera_at(7))


def test_for_scene_kinds_and_resolution():
    spec = CATALOG["bonsai"]
    for kind in ("orbit", "dolly", "head_jitter", "frozen"):
        traj = CameraTrajectory.for_scene(spec, kind, n_frames=4, detail=0.25)
        assert traj.kind == kind
        assert traj.n_frames == 4
        cam = traj.camera_at(0)
        assert cam.width < spec.width  # detail-scaled


def test_validation(base_camera):
    with pytest.raises(ValidationError):
        CameraTrajectory.orbit(0)
    with pytest.raises(ValidationError):
        CameraTrajectory.dolly(base_camera, 3, factor_range=(0.0, 1.0))
    with pytest.raises(ValidationError):
        CameraTrajectory.head_jitter(base_camera, 3, amplitude=-0.1)
    with pytest.raises(ValidationError):
        CameraTrajectory.head_jitter(base_camera, 3, smoothing=1.0)
    with pytest.raises(ValidationError):
        CameraTrajectory.for_scene(CATALOG["bonsai"], "spiral")
    with pytest.raises(ValidationError):
        CameraTrajectory(kind="empty", cameras=())
