"""Shared serving reports: summaries, tick results, economics merge."""

import json
from dataclasses import replace

import pytest

from repro.core.reuse_cache import (
    CacheEconomics,
    CacheReport,
    FrameCacheSample,
)
from repro.stream import ServeSummary, SessionResult, TickResult
from repro.stream.binning import BinningStats
from repro.stream.pipeline import FrameRecord, StreamReport
from repro.stream.reporting import (
    ConnectionStats,
    frame_evidence,
    report_evidence,
)


def _record(frame, sim_seconds=0.5):
    report = CacheReport(
        accesses=10, hits=6, misses=4, capacity_lines=8, bytes_per_line=64
    )
    sample = FrameCacheSample(
        frame=frame,
        report=report,
        carried_hits=2,
        cumulative_accesses=10 * (frame + 1),
        cumulative_hits=6 * (frame + 1),
    )
    binning = BinningStats(
        total_instances=20,
        reused_instances=5,
        generated_instances=15,
        full_reuse=False,
    )
    return FrameRecord(
        frame=frame,
        n_visible=100,
        n_instances=20,
        sim_seconds=sim_seconds,
        wall_seconds=0.0,
        cache=sample,
        binning=binning,
    )


def _result(session_id="s0", worker=0, n_frames=3, sim_seconds=0.5):
    report = StreamReport(
        scene="bicycle",
        trajectory="orbit",
        frames=[_record(k, sim_seconds) for k in range(n_frames)],
    )
    return SessionResult(
        session_id=session_id, scene="bicycle", worker=worker, report=report
    )


def test_session_result_frames_view():
    result = _result(n_frames=4)
    assert result.frames is result.report.frames
    assert len(result.frames) == 4


def test_from_results_attributes_by_final_placement():
    results = [
        _result("a", worker=0, n_frames=2, sim_seconds=1.0),
        _result("b", worker=0, n_frames=1, sim_seconds=1.0),
        _result("c", worker=1, n_frames=2, sim_seconds=0.5),
    ]
    summary = ServeSummary.from_results(results, workers=2, wall_seconds=2.0)
    assert summary.sessions == 3
    assert summary.total_frames == 5
    # Worker 0 carries 3.0 busy seconds, worker 1 only 1.0.
    assert summary.sim_makespan_seconds == pytest.approx(3.0)
    assert summary.sim_frames_per_sec == pytest.approx(5 / 3.0)
    assert summary.wall_frames_per_sec == pytest.approx(2.5)


def test_from_results_prefers_scheduler_busy_accounting():
    results = [_result("a", worker=0, n_frames=2, sim_seconds=1.0)]
    summary = ServeSummary.from_results(
        results,
        workers=2,
        wall_seconds=1.0,
        recoveries=1,
        migrations=2,
        busy_seconds={0: 0.25, 1: 7.0},
    )
    # The explicit per-worker accounting wins over final placement.
    assert summary.sim_makespan_seconds == pytest.approx(7.0)
    assert summary.recoveries == 1 and summary.migrations == 2


def test_zero_denominator_throughputs():
    summary = ServeSummary.from_results([], workers=3, wall_seconds=0.0)
    assert summary.total_frames == 0
    assert summary.sim_frames_per_sec == 0.0
    assert summary.wall_frames_per_sec == 0.0


def test_merge_empty_is_identity_shaped():
    merged = ServeSummary.merge([])
    assert merged.workers == 0 and merged.sessions == 0
    assert merged.sim_makespan_seconds == 0.0


def test_merge_composes_node_summaries():
    a = ServeSummary(
        workers=2,
        sessions=3,
        total_frames=30,
        sim_makespan_seconds=4.0,
        wall_seconds=1.0,
        recoveries=1,
    )
    b = ServeSummary(
        workers=1,
        sessions=2,
        total_frames=10,
        sim_makespan_seconds=6.0,
        wall_seconds=0.5,
        migrations=2,
    )
    merged = ServeSummary.merge([a, b])
    assert merged.workers == 3 and merged.sessions == 5
    assert merged.total_frames == 40
    # Nodes serve concurrently: makespan and wall take the max.
    assert merged.sim_makespan_seconds == 6.0
    assert merged.wall_seconds == 1.0
    assert merged.recoveries == 1 and merged.migrations == 2


def test_tick_result_sim_seconds_sums_frames():
    tick = TickResult(
        frames=[("a", _record(0, 0.5)), ("b", _record(0, 0.25))]
    )
    assert tick.n_frames == 2
    assert tick.sim_seconds == pytest.approx(0.75)


def test_tick_result_merged_threads_economics():
    a = TickResult(
        frames=[("a", _record(0))],
        done=["a"],
        content={
            "session": CacheEconomics(
                accesses=4, hits=2, misses=2, miss_bytes=10.0, total_bytes=20.0
            )
        },
    )
    b = TickResult(
        frames=[("b", _record(1))],
        done=["b"],
        content={
            "session": CacheEconomics(
                accesses=2, hits=1, misses=1, miss_bytes=5.0, total_bytes=10.0
            ),
            "fleet": CacheEconomics(accesses=1, hits=1),
        },
    )
    merged = TickResult.merged([a, b])
    assert merged.n_frames == 2
    assert merged.done == ["a", "b"]
    session = merged.content["session"]
    assert session.accesses == 6 and session.hits == 3
    assert session.miss_bytes == pytest.approx(15.0)
    assert session.total_bytes == pytest.approx(30.0)
    assert merged.content["fleet"].hits == 1


# -- wall-clock exclusion from equality paths ---------------------------
def test_serve_summary_equality_ignores_wall_seconds():
    """Two serves with identical simulated output ARE equal even when
    host load made their wall clocks differ — golden comparisons and
    merge-path assertions must never flake on ``perf_counter``."""
    a = ServeSummary(
        workers=1,
        sessions=2,
        total_frames=8,
        sim_makespan_seconds=1.5,
        wall_seconds=0.1,
    )
    b = replace(a, wall_seconds=42.0)
    assert a == b
    assert replace(a, total_frames=9) != b  # simulated fields still count


def test_frame_record_equality_ignores_wall_seconds():
    a = _record(0)
    b = replace(a, wall_seconds=99.0)
    assert a == b
    assert replace(a, sim_seconds=123.0) != b


def test_frame_evidence_is_wall_free_and_json_safe():
    evidence = frame_evidence(_record(2, sim_seconds=0.5))
    assert "wall" not in json.dumps(evidence)  # no wall-clock leakage
    assert evidence["frame"] == 2
    assert evidence["sim_seconds"] == pytest.approx(0.5)
    assert evidence["deadline"] is None  # no QoS on this record
    assert "image_sha256" not in evidence  # no image kept
    # Every value survives a JSON round trip unchanged (numpy scalars
    # would not).
    assert json.loads(json.dumps(evidence)) == evidence


def test_report_evidence_covers_every_frame():
    result = _result(n_frames=3)
    evidence = report_evidence(result.report)
    assert evidence["scene"] == "bicycle"
    assert evidence["n_frames"] == 3
    assert [f["frame"] for f in evidence["frames"]] == [0, 1, 2]
    assert "wall" not in json.dumps(evidence)
    assert json.loads(json.dumps(evidence)) == evidence


def test_connection_stats_defaults():
    stats = ConnectionStats(peer="127.0.0.1:1")
    assert stats.session_id is None
    assert stats.frames_sent == 0 and stats.bytes_sent == 0
    assert stats.queue_peak == 0 and stats.pauses == 0
    assert not stats.resumed and not stats.clean_close
    assert stats.restore_seconds == 0.0
