"""Checkpoints: cache state export/import, stream capture/replay."""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.reuse_cache import TemporalReuseSimulator
from repro.errors import ValidationError
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    FrameStream,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    checkpoint_from_dict,
    checkpoint_to_dict,
)
from repro.stream.qos import FrameDeadline, QualityController

DETAIL = 0.25
FIXTURES = Path(__file__).parent / "fixtures"


def _frame_traces(n_frames=4, n_gaussians=40, seed=3):
    """Synthetic per-frame (trace, tile) pairs with cross-frame overlap."""
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(n_frames):
        trace = rng.integers(0, n_gaussians, size=120)
        tiles = np.sort(rng.integers(0, 16, size=120))
        frames.append((trace, tiles))
    return frames


@pytest.mark.parametrize("policy", ["reuse_distance", "lru", "fifo"])
def test_cache_state_roundtrip_continues_identically(policy):
    frames = _frame_traces()
    full = TemporalReuseSimulator(16, policy=policy)
    full_samples = [full.observe_frame(t, x) for t, x in frames]

    head = TemporalReuseSimulator(16, policy=policy)
    for trace, tiles in frames[:2]:
        head.observe_frame(trace, tiles)
    tail = TemporalReuseSimulator(16, policy=policy)
    tail.import_state(head.export_state())
    tail_samples = [tail.observe_frame(t, x) for t, x in frames[2:]]

    assert tail.frames_observed == full.frames_observed
    for expect, got in zip(full_samples[2:], tail_samples):
        assert got.frame == expect.frame
        assert got.report == expect.report
        assert got.carried_hits == expect.carried_hits
        assert got.cumulative_accesses == expect.cumulative_accesses
        assert got.cumulative_hits == expect.cumulative_hits
    assert tail.cumulative_hit_rate == full.cumulative_hit_rate


def test_cache_state_import_validates_compatibility():
    sim = TemporalReuseSimulator(8, policy="lru")
    state = sim.export_state()
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, policy="fifo").import_state(state)
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(4, policy="lru").import_state(state)
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, bytes_per_line=64, policy="lru").import_state(
            state
        )
    bad = replace(state, resident_ids=(1, 1))
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, policy="lru").import_state(bad)


def test_export_preserves_eviction_order():
    """LRU recency order must survive a round trip."""
    sim = TemporalReuseSimulator(3, policy="lru")
    trace = np.array([1, 2, 3, 1])  # recency order after frame: 2, 3, 1
    sim.observe_frame(trace, np.zeros_like(trace))
    clone = TemporalReuseSimulator(3, policy="lru")
    clone.import_state(sim.export_state())
    # One new id must evict 2 (least recent), keeping 3 and 1 resident.
    sample = clone.observe_frame(
        np.array([9, 3, 1]), np.zeros(3, dtype=np.int64)
    )
    assert sample.report.hits == 2


def _key_fields(records):
    return [
        (
            r.frame,
            r.sim_seconds,
            r.hit_rate,
            r.cache.cumulative_hit_rate,
            r.cache.carried_hit_rate,
        )
        for r in records
    ]


def test_stream_checkpoint_replay_is_byte_identical():
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=DETAIL)
    traj = CameraTrajectory.for_scene(
        spec, "orbit", n_frames=6, detail=DETAIL
    )

    uninterrupted = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    full = [uninterrupted.render_next() for _ in range(6)]

    original = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    for _ in range(3):
        original.render_next()
    ckpt = capture_checkpoint("client", original, detail=DETAIL)
    assert ckpt.next_frame == 3
    assert ckpt.scene == "bicycle"
    assert ckpt.resident_lines > 0

    recovered = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    restore_checkpoint(recovered, ckpt)
    tail = [recovered.render_next() for _ in range(3)]

    assert _key_fields(tail) == _key_fields(full[3:])
    for expect, got in zip(full[3:], tail):
        assert np.array_equal(expect.image, got.image)


def test_restore_rejects_wrong_scene():
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    stream = FrameStream(spec, traj, detail=DETAIL)
    stream.render_next()
    ckpt = capture_checkpoint("client", stream, detail=DETAIL)

    other_spec = CATALOG["bonsai"]
    other = FrameStream(
        other_spec,
        CameraTrajectory.for_scene(other_spec, "frozen", n_frames=2, detail=DETAIL),
        detail=DETAIL,
    )
    with pytest.raises(ValidationError):
        restore_checkpoint(other, ckpt)


def test_seek_rejects_negative_frames():
    spec = CATALOG["bonsai"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    stream = FrameStream(spec, traj, detail=DETAIL)
    with pytest.raises(ValidationError):
        stream.seek(-1)


# -- serialization format and backwards compatibility -------------------
def _qos_stream(bundle=None, traj=None):
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=DETAIL) if bundle is None else bundle
    traj = (
        CameraTrajectory.for_scene(spec, "orbit", n_frames=6, detail=DETAIL)
        if traj is None
        else traj
    )
    controller = QualityController(
        FrameDeadline(300.0), None, nominal_detail=DETAIL
    )
    return (
        FrameStream(
            spec,
            traj,
            detail=DETAIL,
            keep_images=True,
            bundle=bundle,
            controller=controller,
        ),
        bundle,
        traj,
    )


def test_checkpoint_dict_roundtrip_is_exact():
    """to_dict -> real JSON text -> from_dict restores the dataclass."""
    stream, _, _ = _qos_stream()
    for _ in range(3):
        stream.render_next()
    ckpt = capture_checkpoint("rt", stream, detail=DETAIL)
    blob = json.loads(json.dumps(checkpoint_to_dict(ckpt)))
    assert blob["version"] == CHECKPOINT_FORMAT_VERSION
    assert checkpoint_from_dict(blob) == ckpt


def test_numpy_integer_key_nodes_round_trip_as_int():
    """Numpy integer scalars inside frame keys must come back as
    Python ints — a float-coerced node would silently stop comparing
    equal to a freshly computed key, defeating cache-key matching
    after restore."""
    from repro.stream.checkpoint import _key_from_json, _key_to_json

    key = (
        np.int64(7),
        np.float32(0.5),
        np.bool_(True),
        (np.int32(-3), b"\x01\xff"),
    )
    restored = _key_from_json(json.loads(json.dumps(_key_to_json(key))))
    assert restored == (7, np.float32(0.5).item(), True, (-3, b"\x01\xff"))
    assert type(restored[0]) is int
    assert type(restored[1]) is float
    assert type(restored[2]) is bool
    assert type(restored[3][0]) is int


def test_pre_pr9_fixture_restores_cleanly():
    """A committed v1 blob (no version key, no shard counters, no
    active_detail) must deserialize with legacy defaults — never a
    KeyError — and drive a restored stream to completion."""
    blob = json.loads(
        (FIXTURES / "checkpoint_pre_pr9.json").read_text()
    )
    assert "version" not in blob  # the fixture really is pre-versioning
    assert "shards" not in blob["qos"]
    ckpt = checkpoint_from_dict(blob)
    assert ckpt.next_frame == 3
    assert ckpt.active_detail is None
    assert ckpt.qos.shards == 1
    assert ckpt.qos.floor_misses == 0
    assert ckpt.qos.comfortable_streak == 0

    stream, _, _ = _qos_stream()
    restore_checkpoint(stream, ckpt)
    tail = [stream.render_next() for _ in range(3)]
    assert [r.frame for r in tail] == [3, 4, 5]


def test_v1_blob_without_qos_continues_byte_identically():
    """Strip a fixed-quality checkpoint down to the v1 shape: the
    restored stream must still be byte-identical to an uninterrupted
    run (v1's missing fields only ever carried QoS escalation state)."""
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=DETAIL)
    traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=6, detail=DETAIL)

    uninterrupted = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    full = [uninterrupted.render_next() for _ in range(6)]

    original = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    for _ in range(3):
        original.render_next()
    blob = checkpoint_to_dict(capture_checkpoint("v1", original, detail=DETAIL))
    del blob["version"]
    del blob["active_detail"]
    blob = json.loads(json.dumps(blob))

    recovered = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    restore_checkpoint(recovered, checkpoint_from_dict(blob))
    tail = [recovered.render_next() for _ in range(3)]
    assert _key_fields(tail) == _key_fields(full[3:])
    for expect, got in zip(full[3:], tail):
        assert np.array_equal(expect.image, got.image)


def test_future_version_blob_is_rejected():
    stream, _, _ = _qos_stream()
    stream.render_next()
    blob = checkpoint_to_dict(capture_checkpoint("fut", stream, detail=DETAIL))
    blob["version"] = CHECKPOINT_FORMAT_VERSION + 1
    with pytest.raises(ValidationError, match="newer than this build"):
        checkpoint_from_dict(blob)


@pytest.mark.parametrize("version", [0, -1, "2", 1.5, True])
def test_malformed_version_is_rejected(version):
    stream, _, _ = _qos_stream()
    stream.render_next()
    blob = checkpoint_to_dict(capture_checkpoint("bad", stream, detail=DETAIL))
    blob["version"] = version
    with pytest.raises(ValidationError, match="invalid version"):
        checkpoint_from_dict(blob)


def test_missing_required_field_raises_validation_error():
    stream, _, _ = _qos_stream()
    stream.render_next()
    blob = checkpoint_to_dict(capture_checkpoint("mis", stream, detail=DETAIL))
    del blob["cache"]
    with pytest.raises(ValidationError, match="missing"):
        checkpoint_from_dict(blob)
    with pytest.raises(ValidationError, match="JSON object"):
        checkpoint_from_dict([1, 2, 3])
