"""Checkpoints: cache state export/import, stream capture/replay."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.reuse_cache import TemporalReuseSimulator
from repro.errors import ValidationError
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    FrameStream,
    capture_checkpoint,
    restore_checkpoint,
)

DETAIL = 0.25


def _frame_traces(n_frames=4, n_gaussians=40, seed=3):
    """Synthetic per-frame (trace, tile) pairs with cross-frame overlap."""
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(n_frames):
        trace = rng.integers(0, n_gaussians, size=120)
        tiles = np.sort(rng.integers(0, 16, size=120))
        frames.append((trace, tiles))
    return frames


@pytest.mark.parametrize("policy", ["reuse_distance", "lru", "fifo"])
def test_cache_state_roundtrip_continues_identically(policy):
    frames = _frame_traces()
    full = TemporalReuseSimulator(16, policy=policy)
    full_samples = [full.observe_frame(t, x) for t, x in frames]

    head = TemporalReuseSimulator(16, policy=policy)
    for trace, tiles in frames[:2]:
        head.observe_frame(trace, tiles)
    tail = TemporalReuseSimulator(16, policy=policy)
    tail.import_state(head.export_state())
    tail_samples = [tail.observe_frame(t, x) for t, x in frames[2:]]

    assert tail.frames_observed == full.frames_observed
    for expect, got in zip(full_samples[2:], tail_samples):
        assert got.frame == expect.frame
        assert got.report == expect.report
        assert got.carried_hits == expect.carried_hits
        assert got.cumulative_accesses == expect.cumulative_accesses
        assert got.cumulative_hits == expect.cumulative_hits
    assert tail.cumulative_hit_rate == full.cumulative_hit_rate


def test_cache_state_import_validates_compatibility():
    sim = TemporalReuseSimulator(8, policy="lru")
    state = sim.export_state()
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, policy="fifo").import_state(state)
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(4, policy="lru").import_state(state)
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, bytes_per_line=64, policy="lru").import_state(
            state
        )
    bad = replace(state, resident_ids=(1, 1))
    with pytest.raises(ValidationError):
        TemporalReuseSimulator(8, policy="lru").import_state(bad)


def test_export_preserves_eviction_order():
    """LRU recency order must survive a round trip."""
    sim = TemporalReuseSimulator(3, policy="lru")
    trace = np.array([1, 2, 3, 1])  # recency order after frame: 2, 3, 1
    sim.observe_frame(trace, np.zeros_like(trace))
    clone = TemporalReuseSimulator(3, policy="lru")
    clone.import_state(sim.export_state())
    # One new id must evict 2 (least recent), keeping 3 and 1 resident.
    sample = clone.observe_frame(
        np.array([9, 3, 1]), np.zeros(3, dtype=np.int64)
    )
    assert sample.report.hits == 2


def _key_fields(records):
    return [
        (
            r.frame,
            r.sim_seconds,
            r.hit_rate,
            r.cache.cumulative_hit_rate,
            r.cache.carried_hit_rate,
        )
        for r in records
    ]


def test_stream_checkpoint_replay_is_byte_identical():
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=DETAIL)
    traj = CameraTrajectory.for_scene(
        spec, "orbit", n_frames=6, detail=DETAIL
    )

    uninterrupted = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    full = [uninterrupted.render_next() for _ in range(6)]

    original = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    for _ in range(3):
        original.render_next()
    ckpt = capture_checkpoint("client", original, detail=DETAIL)
    assert ckpt.next_frame == 3
    assert ckpt.scene == "bicycle"
    assert ckpt.resident_lines > 0

    recovered = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    restore_checkpoint(recovered, ckpt)
    tail = [recovered.render_next() for _ in range(3)]

    assert _key_fields(tail) == _key_fields(full[3:])
    for expect, got in zip(full[3:], tail):
        assert np.array_equal(expect.image, got.image)


def test_restore_rejects_wrong_scene():
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    stream = FrameStream(spec, traj, detail=DETAIL)
    stream.render_next()
    ckpt = capture_checkpoint("client", stream, detail=DETAIL)

    other_spec = CATALOG["bonsai"]
    other = FrameStream(
        other_spec,
        CameraTrajectory.for_scene(other_spec, "frozen", n_frames=2, detail=DETAIL),
        detail=DETAIL,
    )
    with pytest.raises(ValidationError):
        restore_checkpoint(other, ckpt)


def test_seek_rejects_negative_frames():
    spec = CATALOG["bonsai"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    stream = FrameStream(spec, traj, detail=DETAIL)
    with pytest.raises(ValidationError):
        stream.seek(-1)
