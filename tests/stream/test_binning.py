"""Warm-started tile binning: exact parity with cold Step 2."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians import build_render_lists, project
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG
from repro.stream import CameraTrajectory, WarmBinner
from repro.stream.binning import camera_fingerprint


def _assert_lists_equal(warm, cold):
    assert warm.grid == cold.grid
    assert len(warm.per_tile) == len(cold.per_tile)
    for a, b in zip(warm.per_tile, cold.per_tile):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("kind", ["head_jitter", "orbit", "dolly"])
def test_warm_lists_match_cold_binning_on_static_scene(kind):
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=0.3)
    cloud, _, ids = bundle.frame_cloud_indexed(0)
    traj = CameraTrajectory.for_scene(spec, kind, n_frames=5, seed=2, detail=0.3)
    binner = WarmBinner(bundle.n_source_gaussians)
    for k in range(5):
        cam = traj.camera_at(k)
        projected = project(cloud, cam)
        warm, stats = binner.build(
            projected, frame_key=(camera_fingerprint(cam), 0), source_ids=ids
        )
        _assert_lists_equal(warm, build_render_lists(projected))
        assert stats.total_instances == warm.n_instances
        assert stats.reused_instances + stats.generated_instances == (
            stats.total_instances
        )


def test_warm_lists_match_cold_binning_on_dynamic_scene():
    spec = CATALOG["flame_steak"]
    bundle = build_scene(spec, detail=0.3)
    traj = CameraTrajectory.for_scene(
        spec, "head_jitter", n_frames=4, seed=3, detail=0.3
    )
    binner = WarmBinner(bundle.n_source_gaussians)
    for k in range(4):
        cam = traj.camera_at(k)
        cloud, _, ids = bundle.frame_cloud_indexed(k)
        projected = project(cloud, cam)
        warm, _ = binner.build(
            projected,
            frame_key=(camera_fingerprint(cam), bundle.frame_clock(k)),
            source_ids=ids,
        )
        _assert_lists_equal(warm, build_render_lists(projected))


def test_jitter_reuses_most_instances():
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=0.3)
    cloud, _, ids = bundle.frame_cloud_indexed(0)
    traj = CameraTrajectory.for_scene(
        spec, "head_jitter", n_frames=4, seed=1, detail=0.3
    )
    binner = WarmBinner(bundle.n_source_gaussians)
    fractions = []
    for k in range(4):
        cam = traj.camera_at(k)
        projected = project(cloud, cam)
        _, stats = binner.build(
            projected, frame_key=(camera_fingerprint(cam), 0), source_ids=ids
        )
        fractions.append(stats.reuse_fraction)
    assert fractions[0] == 0.0  # cold start
    assert all(f > 0.5 for f in fractions[1:])


def test_identical_frame_key_takes_full_reuse_fast_path():
    spec = CATALOG["bonsai"]
    bundle = build_scene(spec, detail=0.3)
    cloud, _, ids = bundle.frame_cloud_indexed(0)
    cam = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=0.3).camera_at(0)
    projected = project(cloud, cam)
    binner = WarmBinner(bundle.n_source_gaussians)
    key = (camera_fingerprint(cam), 0)
    first, s0 = binner.build(projected, frame_key=key, source_ids=ids)
    second, s1 = binner.build(projected, frame_key=key, source_ids=ids)
    assert not s0.full_reuse
    assert s1.full_reuse
    assert s1.reuse_fraction == 1.0
    assert second is first  # the cached object, no rebuild


def test_reset_and_resolution_change_start_cold():
    spec = CATALOG["bonsai"]
    bundle = build_scene(spec, detail=0.3)
    cloud, _, ids = bundle.frame_cloud_indexed(0)
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=0.3)
    cam = traj.camera_at(0)
    projected = project(cloud, cam)
    binner = WarmBinner(bundle.n_source_gaussians)
    binner.build(projected, frame_key=None, source_ids=ids)
    binner.reset()
    _, stats = binner.build(projected, frame_key=None, source_ids=ids)
    assert stats.reused_instances == 0
    # A resolution switch invalidates tile ids; state restarts cold.
    small = cam.with_resolution(cam.width // 2, cam.height // 2)
    projected_small = project(cloud, small)
    warm, stats = binner.build(projected_small, frame_key=None, source_ids=ids)
    assert stats.reused_instances == 0
    _assert_lists_equal(warm, build_render_lists(projected_small))


def test_foreign_projection_is_rejected():
    spec = CATALOG["bonsai"]
    bundle = build_scene(spec, detail=0.3)
    cloud, _, _ = bundle.frame_cloud_indexed(0)
    cam = CameraTrajectory.for_scene(spec, "frozen", n_frames=1, detail=0.3).camera_at(0)
    projected = project(cloud, cam)
    too_small = WarmBinner(3)
    with pytest.raises(ValidationError):
        too_small.build(projected)
