"""Scheduler: placement, admission control, estimation, rebalancing."""

import pytest

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    LoadAwareScheduler,
    RoundRobinScheduler,
    StreamSession,
    make_scheduler,
    static_frame_estimate,
)

DETAIL = 0.25


def _session(session_id, scene, n_frames, seed=0):
    spec = CATALOG[scene]
    return StreamSession(
        session_id,
        scene,
        CameraTrajectory.for_scene(
            spec, "head_jitter", n_frames=n_frames, seed=seed, detail=DETAIL
        ),
        detail=DETAIL,
    )


def _skewed_mix():
    """Heavy/light interleaved so round-robin stacks the heavies."""
    return [
        _session("heavy-0", "bicycle", 12, seed=0),
        _session("light-0", "female_4", 4, seed=1),
        _session("heavy-1", "bicycle", 12, seed=2),
        _session("light-1", "female_4", 4, seed=3),
    ]


def test_static_estimate_orders_scenes_by_size():
    assert static_frame_estimate("bicycle") > static_frame_estimate("female_4")
    assert static_frame_estimate("bicycle", 0.5) < static_frame_estimate(
        "bicycle", 1.0
    )


def test_round_robin_stacks_heavies_load_aware_spreads_them():
    sessions = _skewed_mix()
    rr = RoundRobinScheduler(sessions, workers=2)
    assert rr.worker_of("heavy-0") == rr.worker_of("heavy-1") == 0
    load = LoadAwareScheduler(sessions, workers=2)
    assert load.worker_of("heavy-0") != load.worker_of("heavy-1")


def test_load_aware_estimated_makespan_beats_round_robin():
    sessions = _skewed_mix()
    rr = RoundRobinScheduler(sessions, workers=2)
    load = LoadAwareScheduler(sessions, workers=2)
    assert max(load.remaining_cost().values()) < max(
        rr.remaining_cost().values()
    )


def test_admission_control_queues_beyond_max_inflight():
    sessions = _skewed_mix()
    scheduler = LoadAwareScheduler(sessions, workers=2, max_inflight=2)
    assert scheduler.inflight == 2
    assert len(scheduler.queued) == 2
    assignments = scheduler.tick_assignments()
    assert sum(len(v) for v in assignments.values()) == 2
    # Finishing one admitted session admits exactly one queued session.
    running = next(iter(assignments.values()))[0].session_id
    admitted = scheduler.mark_done(running)
    assert len(admitted) == 1
    assert scheduler.inflight == 2
    assert len(scheduler.queued) == 1


def test_completion_drops_session_from_ticks():
    sessions = _skewed_mix()
    scheduler = RoundRobinScheduler(sessions, workers=2)
    scheduler.mark_done("heavy-0")
    ids = {
        s.session_id
        for batch in scheduler.tick_assignments().values()
        for s in batch
    }
    assert "heavy-0" not in ids
    assert len(ids) == 3


def test_observation_replaces_static_estimate():
    sessions = _skewed_mix()
    scheduler = LoadAwareScheduler(sessions, workers=2)
    scheduler.observe_frame("heavy-0", 0.125)
    assert scheduler.frame_estimate(sessions[0]) == 0.125
    # Unobserved scenes are calibrated into the observed unit system.
    light = scheduler.frame_estimate(sessions[1])
    proxy_ratio = static_frame_estimate("female_4", DETAIL) / (
        static_frame_estimate("bicycle", DETAIL)
    )
    assert light == pytest.approx(0.125 * proxy_ratio)


def test_estimates_are_keyed_by_scene_and_detail():
    """An adaptive session's low-detail frames must not poison the
    estimate used for a full-detail session of the same scene."""
    sessions = _skewed_mix()
    scheduler = LoadAwareScheduler(sessions, workers=2)
    # heavy-0 adapted down to detail 0.1 and got cheap frames...
    scheduler.observe_frame("heavy-0", 0.001, detail=0.1)
    # ...heavy-1 still renders at the nominal detail and is observed
    # expensive there.
    scheduler.observe_frame("heavy-1", 0.125, detail=DETAIL)
    cheap = scheduler.frame_estimate(sessions[0])  # follows its rung
    nominal = scheduler.frame_estimate(sessions[2])
    assert cheap == 0.001
    assert nominal == 0.125
    # Explicit detail lookups hit their own keys.
    assert scheduler.frame_estimate(sessions[0], detail=DETAIL) == 0.125
    assert scheduler.frame_estimate(sessions[2], detail=0.1) == 0.001


def test_nearest_detail_fallback_rescales_by_proxy_ratio():
    sessions = _skewed_mix()
    scheduler = LoadAwareScheduler(sessions, workers=2)
    scheduler.observe_frame("heavy-0", 0.1, detail=0.2)
    # 0.25 was never observed; the 0.2 observation is the nearest rung
    # and is rescaled by the static proxy ratio (linear in detail).
    est = scheduler.frame_estimate(sessions[0], detail=0.25)
    ratio = static_frame_estimate("bicycle", 0.25) / static_frame_estimate(
        "bicycle", 0.2
    )
    assert est == pytest.approx(0.1 * ratio)


def test_mixed_detail_placement_uses_per_detail_costs():
    """Two same-scene sessions at different details are not the same
    workload: remaining-cost placement must spread a heavy pair whose
    third member is cheap at its low rung."""
    spec = CATALOG["bicycle"]

    def session(session_id, detail, n_frames):
        return StreamSession(
            session_id,
            "bicycle",
            CameraTrajectory.for_scene(
                spec, "head_jitter", n_frames=n_frames, seed=1, detail=detail
            ),
            detail=detail,
        )

    sessions = [
        session("full-a", 1.0, 8),
        session("full-b", 1.0, 8),
        session("tiny", 0.1, 8),
    ]
    scheduler = LoadAwareScheduler(sessions, workers=2)
    # Per-detail proxies already separate the two full sessions.
    assert scheduler.worker_of("full-a") != scheduler.worker_of("full-b")
    # The tiny session rides with one full session, not on a third
    # imaginary worker: its per-rung cost is a fraction of a full one.
    assert scheduler.frame_estimate(sessions[2]) < scheduler.frame_estimate(
        sessions[0]
    )


def test_rebalance_fires_on_misestimated_load():
    sessions = [
        _session("light-0", "female_4", 4, seed=1),
        _session("heavy-0", "bicycle", 12, seed=0),
        _session("heavy-1", "bicycle", 12, seed=2),
    ]
    # Lie: the heavy scene is estimated cheap, so both heavies land on
    # the same worker behind the "expensive" light session.
    lying = lambda scene, detail: 1.0 if scene == "bicycle" else 1000.0  # noqa: E731
    scheduler = LoadAwareScheduler(
        sessions, workers=2, estimator=lying, rebalance_threshold=0.25
    )
    assert scheduler.worker_of("heavy-0") == scheduler.worker_of("heavy-1")
    src = scheduler.worker_of("heavy-0")
    # Reality arrives: heavy frames are 100x the lights.
    scheduler.observe_frame("heavy-0", 1.0)
    scheduler.observe_frame("light-0", 0.01)
    migrations = scheduler.rebalance()
    assert len(migrations) == 1
    assert migrations[0].src == src
    assert scheduler.worker_of(migrations[0].session_id) == migrations[0].dst
    assert scheduler.migrations == migrations


def test_rebalance_quiet_when_balanced():
    sessions = _skewed_mix()
    scheduler = LoadAwareScheduler(sessions, workers=2)
    assert scheduler.rebalance() == []


def test_validation_errors():
    sessions = _skewed_mix()
    with pytest.raises(ValidationError):
        make_scheduler("bogus", sessions, 2)
    with pytest.raises(ValidationError):
        make_scheduler("load", sessions, 2, max_inflight=0)
    with pytest.raises(ValidationError):
        LoadAwareScheduler(sessions, workers=2, rebalance_threshold=0.0)


def test_compare_placements_moves_completion_not_render_latency():
    """Placement shifts queueing (completion times), never frame cost."""
    from repro.analysis.streaming import compare_placements, skewed_session_mix

    mix = skewed_session_mix(
        heavy_frames=6, light_frames=2, pairs=2, detail=DETAIL
    )
    comparison = compare_placements(sessions=mix, workers=2, detail=DETAIL)
    rr, load = comparison.points["rr"], comparison.points["load"]
    assert comparison.speedup > 1.0
    # Per-frame render latency is a property of the workload...
    assert rr.p50_frame_seconds == load.p50_frame_seconds
    # ...but the completion tail shrinks when the heavies are spread.
    assert load.p95_completion_seconds < rr.p95_completion_seconds


def test_factory_builds_both_policies():
    sessions = _skewed_mix()
    assert isinstance(make_scheduler("rr", sessions, 2), RoundRobinScheduler)
    assert isinstance(make_scheduler("load", sessions, 2), LoadAwareScheduler)
