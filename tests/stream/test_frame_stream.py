"""FrameStream: single-frame parity, cross-frame reuse behavior."""

import numpy as np
import pytest

from repro.core.gbu import GBUConfig, GBUDevice
from repro.errors import ValidationError
from repro.gaussians import build_render_lists, project
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG
from repro.stream import CameraTrajectory, FrameStream, streaming_config

DETAIL = 0.3


def test_stream_images_match_single_frame_renders():
    """Streamed frames are bitwise-identical to isolated renders."""
    spec = CATALOG["bicycle"]
    bundle = build_scene(spec, detail=DETAIL)
    traj = CameraTrajectory.for_scene(
        spec, "head_jitter", n_frames=3, seed=4, detail=DETAIL
    )
    stream = FrameStream(
        spec, traj, detail=DETAIL, keep_images=True, bundle=bundle
    )
    report = stream.run()

    single = GBUDevice(config=streaming_config())
    cloud, _ = bundle.frame_cloud(0)
    for record in report.frames:
        projected = project(cloud, traj.camera_at(record.frame))
        lists = build_render_lists(projected)
        isolated = single.render(projected, lists=lists)
        assert np.array_equal(record.image, isolated.image)
        assert record.n_instances == lists.n_instances


def test_frozen_camera_hit_rate_is_monotone():
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=5, detail=DETAIL)
    report = FrameStream(spec, traj, detail=DETAIL).run()
    rates = [f.hit_rate for f in report.frames]
    for earlier, later in zip(rates, rates[1:]):
        assert later >= earlier - 1e-12
    assert rates[1] > rates[0]  # warm beats cold immediately
    cumulative = [f.cache.cumulative_hit_rate for f in report.frames]
    for earlier, later in zip(cumulative, cumulative[1:]):
        assert later >= earlier - 1e-12
    # Frozen frames reuse the previous render lists outright.
    assert all(f.binning.full_reuse for f in report.frames[1:])


def test_orbit_warm_hit_rate_beats_cold():
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=8, detail=DETAIL)
    report = FrameStream(spec, traj, detail=DETAIL).run()
    assert report.warm_hit_rate > report.cold_hit_rate
    assert report.frames[0].cache.carried_hits == 0
    assert any(f.cache.carried_hits > 0 for f in report.frames[1:])


def test_dynamic_scene_streams_with_stable_identities():
    spec = CATALOG["flame_steak"]
    traj = CameraTrajectory.for_scene(
        spec, "head_jitter", n_frames=4, seed=2, detail=DETAIL
    )
    report = FrameStream(spec, traj, detail=DETAIL).run()
    assert report.n_frames == 4
    assert report.warm_hit_rate > report.cold_hit_rate
    assert report.binning_reuse > 0.3


def test_reset_restarts_cold():
    spec = CATALOG["bonsai"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=3, detail=DETAIL)
    stream = FrameStream(spec, traj, detail=DETAIL)
    first = stream.run()
    stream.reset()
    again = stream.run()
    assert [f.hit_rate for f in first.frames] == [f.hit_rate for f in again.frames]


def test_report_serialization_and_aggregates():
    spec = CATALOG["bonsai"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    report = FrameStream(spec, traj, detail=DETAIL).run()
    payload = report.to_dict()
    assert payload["scene"] == "bonsai"
    assert payload["n_frames"] == 2
    assert len(payload["frames"]) == 2
    assert report.wall_fps > 0
    assert report.mean_sim_fps > 0


def test_dnb_config_is_rejected():
    spec = CATALOG["bonsai"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=1, detail=DETAIL)
    with pytest.raises(ValidationError):
        FrameStream(spec, traj, config=GBUConfig(use_dnb=True), detail=DETAIL)
    with pytest.raises(ValidationError):
        FrameStream(
            spec,
            traj,
            config=streaming_config(),
            device=GBUDevice(config=streaming_config(cache_policy="lru")),
            detail=DETAIL,
        )
