"""Property-based invariants of the content-addressed render cache.

Two families, per the correctness contract in
:mod:`repro.stream.content_cache`:

* **Key stability** — for arbitrary lattice cells and pitches, any two
  eye positions inside one cell canonicalize to the *identical* camera
  and share one content address, while eyes in different cells never
  collide.  This is the dedup equivalence class: get it wrong in one
  direction and viewers see someone else's frame, in the other and
  dedup never fires.

* **Exact-backend byte identity** — for arbitrary trajectories and
  both exact backends, a dedup-served frame hashes byte-identical
  (SHA-256 over shape, dtype and buffer — the golden suite's hash) to
  a fresh render of the same frame, with bit-equal simulated timing.
  The cache must be a pure wall-clock optimization.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.camera import Camera
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    ContentCacheConfig,
    FrameStream,
    SessionContentView,
    canonical_camera,
    frame_content_key,
    streaming_config,
)
from repro.stream.content_cache import make_tier_chain, pose_cell, render_mode_key

pytestmark = pytest.mark.property

DETAIL = 0.25

_cells = st.tuples(
    st.integers(-4, 4), st.integers(-4, 4), st.integers(-4, 4)
)
# Offsets stay off the cell faces so float rounding cannot push an eye
# into a neighbour — the faces themselves are measure-zero ties the
# quantizer may assign to either side.
_offsets = st.tuples(
    st.floats(0.05, 0.95), st.floats(0.05, 0.95), st.floats(0.05, 0.95)
)
_pitches = st.floats(0.1, 2.0)


def _eye_camera(cell, offset, pitch):
    eye = (np.asarray(cell, dtype=np.float64) + np.asarray(offset)) * pitch
    return Camera.look_at(eye, np.zeros(3), width=64, height=48)


def _key(camera, pitch):
    mode = render_mode_key("vectorized", None, True, 1, False, False)
    return frame_content_key(CATALOG["bicycle"], camera, 0, DETAIL, mode, pitch)


@given(cell=_cells, off_a=_offsets, off_b=_offsets, pitch=_pitches)
@settings(max_examples=200, deadline=None)
def test_same_cell_means_same_canonical_pose_and_key(cell, off_a, off_b, pitch):
    """Sub-cell jitter is invisible: any two eyes in one lattice cell
    share the canonical camera (bit for bit) and the content address."""
    cam_a = _eye_camera(cell, off_a, pitch)
    cam_b = _eye_camera(cell, off_b, pitch)
    assert pose_cell(cam_a, pitch) == pose_cell(cam_b, pitch) == cell
    canon_a = canonical_camera(cam_a, pitch)
    canon_b = canonical_camera(cam_b, pitch)
    assert np.array_equal(canon_a.rotation, canon_b.rotation)
    assert np.array_equal(canon_a.translation, canon_b.translation)
    assert np.allclose(canon_a.rotation @ canon_a.rotation.T, np.eye(3))
    assert _key(cam_a, pitch) == _key(cam_b, pitch)


@given(cell_a=_cells, cell_b=_cells, offset=_offsets, pitch=_pitches)
@settings(max_examples=200, deadline=None)
def test_distinct_cells_never_collide(cell_a, cell_b, offset, pitch):
    cam_a = _eye_camera(cell_a, offset, pitch)
    cam_b = _eye_camera(cell_b, offset, pitch)
    if cell_a == cell_b:
        assert _key(cam_a, pitch) == _key(cam_b, pitch)
    else:
        assert _key(cam_a, pitch) != _key(cam_b, pitch)


def _image_hash(image) -> str:
    digest = hashlib.sha256()
    digest.update(str(image.shape).encode())
    digest.update(str(image.dtype).encode())
    digest.update(image.tobytes())
    return digest.hexdigest()


@given(
    backend=st.sampled_from(["reference", "vectorized"]),
    kind=st.sampled_from(["orbit", "head_jitter"]),
    seed=st.integers(0, 7),
)
@settings(max_examples=8, deadline=None)
def test_exact_backend_dedup_is_byte_identical(backend, kind, seed):
    """A frame served from the cache hashes identical to a fresh
    render of the same frame on the exact backends, with bit-equal
    simulated latency."""
    spec = CATALOG["female_4"]
    trajectory = CameraTrajectory.for_scene(
        spec, kind, n_frames=2, seed=seed, detail=DETAIL
    )
    cache_cfg = ContentCacheConfig()
    worker = make_tier_chain(cache_cfg, ("worker",))

    def stream(view):
        return FrameStream(
            "female_4",
            trajectory,
            config=streaming_config(backend=backend),
            detail=DETAIL,
            keep_images=True,
            content=view,
        )

    renderer = stream(
        SessionContentView(cache_cfg, make_tier_chain(cache_cfg, ("session",), worker))
    )
    follower = stream(
        SessionContentView(cache_cfg, make_tier_chain(cache_cfg, ("session",), worker))
    )
    fresh = FrameStream(
        "female_4",
        trajectory,
        config=streaming_config(backend=backend),
        detail=DETAIL,
        keep_images=True,
    )
    for _ in range(len(trajectory)):
        rendered = renderer.render_next()
        served = follower.render_next()
        baseline = fresh.render_next()
        assert rendered.served_from is None
        assert served.served_from == "worker"
        assert (
            _image_hash(served.image)
            == _image_hash(rendered.image)
            == _image_hash(baseline.image)
        )
        assert served.sim_seconds == baseline.sim_seconds
        assert served.cache.cumulative_hit_rate == baseline.cache.cumulative_hit_rate
