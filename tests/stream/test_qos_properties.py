"""Property-based invariants of the QoS quality controller.

For *arbitrary* policies and latency traces (not just the handful of
hand-picked traces in ``test_qos.py``), the controller must:

* only ever emit details on the quantized ladder, clamped to the
  policy band scaled by the nominal detail;
* back off *multiplicatively* on every miss (floored at the band);
* never recover while the latency margin sits inside the hysteresis
  band, and recover by exactly the additive step outside it;
* count frames/misses consistently and survive an export/import
  round-trip bit-exactly.

These are the invariants checkpoint replay and the serving layer lean
on; Hypothesis hunts the corners (tiny quanta, decrease=1.0, traces
hugging the deadline) that example-based tests miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.qos import FrameDeadline, QoSPolicy, QualityController

pytestmark = pytest.mark.property

# Keep floats well-conditioned: the controller is float-exact on its
# ladder, but degenerate magnitudes (1e-300 deadlines) only test the
# float format, not the control loop.
_detail = st.floats(0.05, 1.0)
_policies = st.builds(
    lambda lo, hi, dec, inc, hys, q: QoSPolicy(
        min_detail=min(lo, hi),
        max_detail=max(lo, hi),
        decrease=dec,
        increase=inc,
        hysteresis=hys,
        quantum=q,
    ),
    _detail,
    _detail,
    st.floats(0.1, 1.0),
    st.floats(0.0, 0.3),
    st.floats(0.0, 0.5),
    st.floats(0.01, 0.25),
)
_nominals = st.floats(0.1, 2.0)
_fps = st.floats(10.0, 500.0)
#: Latency traces as multiples of the deadline: values > 1 miss,
#: values in (1 - hysteresis, 1] sit inside the recovery dead band.
_traces = st.lists(st.floats(0.05, 4.0), min_size=1, max_size=40)


def _controller(policy, nominal, fps):
    return QualityController(
        FrameDeadline(fps), policy, nominal_detail=nominal
    )


@settings(max_examples=200, deadline=None)
@given(policy=_policies, nominal=_nominals, fps=_fps, trace=_traces)
def test_emitted_detail_stays_on_the_clamped_ladder(
    policy, nominal, fps, trace
):
    """Every emitted detail lies in [min, max] x nominal and is either
    a ladder rung (quantum multiple) or a band edge."""
    controller = _controller(policy, nominal, fps)
    deadline = controller.deadline.deadline_seconds
    # Dividing the emitted detail back by the nominal reintroduces one
    # ulp of float noise; the band/ladder checks tolerate exactly that.
    tol = 1e-9
    for k, factor in enumerate(trace):
        detail = controller.next_detail
        rung = detail / nominal
        assert (
            policy.min_detail * (1 - tol)
            <= rung
            <= policy.max_detail * (1 + tol)
            or detail == nominal
        )
        on_ladder = (
            abs(rung - round(rung / policy.quantum) * policy.quantum) < tol
        )
        at_edge = (
            abs(rung - policy.min_detail) < tol
            or abs(rung - policy.max_detail) < tol
        )
        assert on_ladder or at_edge
        # The internal scale itself always respects the band.
        assert policy.min_detail <= controller.scale <= policy.max_detail
        controller.observe(k, detail, factor * deadline)


@settings(max_examples=200, deadline=None)
@given(policy=_policies, nominal=_nominals, fps=_fps, n_misses=st.integers(1, 12))
def test_consecutive_misses_decrease_multiplicatively(
    policy, nominal, fps, n_misses
):
    """Scale after k misses is exactly max(start * decrease^k, min)."""
    controller = _controller(policy, nominal, fps)
    deadline = controller.deadline.deadline_seconds
    expected = controller.scale
    for k in range(n_misses):
        controller.observe(k, controller.next_detail, deadline * 2.0)
        expected = max(expected * policy.decrease, policy.min_detail)
        assert controller.scale == expected
        assert controller.misses == k + 1
    if policy.decrease < 1.0:
        assert controller.scale <= controller.policy.max_detail


@settings(max_examples=200, deadline=None)
@given(
    policy=_policies,
    nominal=_nominals,
    fps=_fps,
    margins=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20),
)
def test_no_recovery_inside_the_hysteresis_band(policy, nominal, fps, margins):
    """Met frames whose margin is within hysteresis x deadline leave
    the scale exactly where it was (the controller parks)."""
    controller = _controller(policy, nominal, fps)
    deadline = controller.deadline.deadline_seconds
    # Drop the scale off the ceiling first so recovery *could* happen.
    controller.observe(0, controller.next_detail, deadline * 2.0)
    parked = controller.scale
    for k, frac in enumerate(margins):
        # Latency that meets the deadline with margin <= hysteresis band.
        latency = deadline - frac * policy.hysteresis * deadline
        if latency <= 0:
            continue
        # `deadline - (deadline - h)` can exceed h by one ulp; judge
        # band membership by the margin the controller itself computes.
        if deadline - latency > policy.hysteresis * deadline:
            continue
        controller.observe(k + 1, controller.next_detail, latency)
        assert controller.scale == parked


@settings(max_examples=200, deadline=None)
@given(policy=_policies, nominal=_nominals, fps=_fps)
def test_comfortable_frames_recover_additively_to_the_cap(
    policy, nominal, fps
):
    controller = _controller(policy, nominal, fps)
    deadline = controller.deadline.deadline_seconds
    controller.observe(0, controller.next_detail, deadline * 3.0)
    before = controller.scale
    # Far inside the comfortable zone: margin strictly beyond hysteresis.
    latency = deadline * 1e-3
    if controller.deadline.margin(latency) <= policy.hysteresis * deadline:
        return  # hysteresis >= whole deadline: recovery is impossible
    controller.observe(1, controller.next_detail, latency)
    assert controller.scale == min(
        before + policy.increase, policy.max_detail
    )


@settings(max_examples=150, deadline=None)
@given(policy=_policies, nominal=_nominals, fps=_fps, trace=_traces)
def test_counters_and_checkpoint_roundtrip(policy, nominal, fps, trace):
    """Misses count exactly the over-deadline frames; export/import
    onto a fresh controller reproduces the emitted ladder bit-exactly."""
    controller = _controller(policy, nominal, fps)
    deadline = controller.deadline.deadline_seconds
    expected_misses = 0
    for k, factor in enumerate(trace):
        latency = factor * deadline
        if latency > deadline:
            expected_misses += 1
        controller.observe(k, controller.next_detail, latency)
    assert controller.frames_observed == len(trace)
    assert controller.misses == expected_misses
    assert controller.miss_rate == pytest.approx(expected_misses / len(trace))

    clone = _controller(policy, nominal, fps)
    clone.import_state(controller.export_state())
    assert clone.next_detail == controller.next_detail
    assert clone.scale == controller.scale
    assert clone.misses == controller.misses
    # Both walk the identical ladder afterwards.
    for k, factor in enumerate(trace[:10]):
        latency = factor * deadline
        a = controller.observe(100 + k, controller.next_detail, latency)
        b = clone.observe(100 + k, clone.next_detail, latency)
        assert a == b
        assert controller.scale == clone.scale
