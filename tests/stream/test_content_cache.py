"""Content-addressed render cache: tier mechanics, key derivation,
canonical poses, cross-session dedup byte-identity, per-tier economics,
the chaos matrix (crash / migration at every frame x cache
temperature), and the fleet-tier smoke.

The load-bearing invariant throughout: the content cache changes host
wall-clock only, never simulated physics.  A dedup-served frame must
carry the same image, sim_seconds, temporal-cache counters, detail and
QoS verdict as a fresh render — so every serve here is compared
against a cache-less (or uninterrupted) baseline with the same
evidence tuple the crash-chaos suite uses.  ``served_from`` is
provenance, not physics: it may legitimately differ between a baseline
run and a crash-replayed run (replay re-hits surviving tiers), so it
is asserted only on deterministic single-process serves.
"""

import numpy as np
import pytest

from repro.core.reuse_cache import CacheEconomics, CacheReport
from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG
from repro.stream import (
    TIER_LEVELS,
    BundleIntern,
    CachedFrame,
    CacheTier,
    CameraTrajectory,
    ContentCacheConfig,
    EdgeFleet,
    SessionContentView,
    StreamServer,
    StreamSession,
    canonical_camera,
    economics_to_dict,
    frame_content_key,
    merge_economics,
)
from repro.stream.content_cache import make_tier_chain, pose_cell, render_mode_key

DETAIL = 0.25
N_FRAMES = 6


# ----------------------------------------------------------------------
# Synthetic frames and tier-chain helpers
# ----------------------------------------------------------------------
def _frame(key, compute_seconds=1.0, nbytes=None):
    frame = CachedFrame(
        key=key,
        image=np.zeros((4, 4, 3), dtype=np.float32),
        trace=np.zeros(8, dtype=np.int64),
        tiles=np.zeros(8, dtype=np.int64),
        compute_seconds=compute_seconds,
        n_visible=1,
        n_instances=1,
        extra_flops=0.0,
    )
    if nbytes is not None:
        frame.nbytes = nbytes
    return frame


def test_config_validation():
    with pytest.raises(ValidationError):
        ContentCacheConfig(pose_quant=-0.1)
    with pytest.raises(ValidationError):
        ContentCacheConfig(worker_bytes=-1)
    cfg = ContentCacheConfig(session_bytes=1, worker_bytes=2, node_bytes=3,
                             fleet_bytes=4)
    assert [cfg.tier_bytes(level) for level in TIER_LEVELS] == [1, 2, 3, 4]


def test_tier_rejects_unknown_level():
    with pytest.raises(ValidationError):
        CacheTier("rack", 1024)


def test_tier_put_get_and_oversize_rejection():
    tier = CacheTier("worker", 100)
    assert tier.get("a") is None
    small = _frame("a", nbytes=40)
    tier.put(small)
    assert "a" in tier and len(tier) == 1 and tier.used_bytes == 40
    assert tier.get("a") is small
    # A frame larger than the whole tier is never stored.
    tier.put(_frame("big", nbytes=200))
    assert "big" not in tier and tier.used_bytes == 40
    # Re-inserting an existing key refreshes recency, not bytes.
    tier.put(_frame("a", nbytes=40))
    assert tier.used_bytes == 40 and len(tier) == 1


def test_eviction_is_greedy_dual_size():
    """Score = (1 + hits) * compute_seconds: cheap unpopular frames go
    first; ties break least-recently-used."""
    tier = CacheTier("node", 200)
    tier.put(_frame("cheap", compute_seconds=1.0, nbytes=100))
    tier.put(_frame("costly", compute_seconds=10.0, nbytes=100))
    tier.put(_frame("new", compute_seconds=5.0, nbytes=100))
    assert tier.evictions == 1
    assert "cheap" not in tier and "costly" in tier and "new" in tier

    tier = CacheTier("node", 200)
    tier.put(_frame("a", compute_seconds=1.0, nbytes=100))
    tier.put(_frame("b", compute_seconds=2.0, nbytes=100))
    tier.get("a")  # a: score (1+1)*1 == 2 ties b's (1+0)*2 but is fresher
    tier.put(_frame("c", compute_seconds=5.0, nbytes=100))
    assert "b" not in tier and "a" in tier and "c" in tier
    tier.clear()
    assert len(tier) == 0 and tier.used_bytes == 0 and tier.evictions == 0


def test_make_tier_chain_links_innermost_to_parent():
    cfg = ContentCacheConfig()
    fleet = CacheTier("fleet", cfg.fleet_bytes)
    session = make_tier_chain(cfg, levels=("session", "worker", "node"),
                              parent=fleet)
    levels = []
    tier = session
    while tier is not None:
        levels.append(tier.level)
        tier = tier.parent
    assert levels == list(TIER_LEVELS)


def test_view_write_through_fill_down_and_economics():
    """A miss write-through populates every tier up the chain; a peer
    session's hit fills back down into its own lower tiers — and every
    access / hit / miss / byte is attributed to the session that
    incurred it."""
    cfg = ContentCacheConfig(pose_quant=0.0)
    node = make_tier_chain(cfg, levels=("node",))
    worker = make_tier_chain(cfg, levels=("worker",), parent=node)
    first = SessionContentView(cfg, make_tier_chain(cfg, ("session",), worker))
    second = SessionContentView(cfg, make_tier_chain(cfg, ("session",), worker))

    frame = _frame("shared", nbytes=50)
    assert first.lookup("shared") is None
    first.insert(frame)
    assert "shared" in first.tier and "shared" in worker and "shared" in node

    hit = second.lookup("shared")
    assert hit == (frame, "worker")
    assert "shared" in second.tier  # filled down
    assert second.lookup("shared") == (frame, "session")

    econ_first = first.drain()
    assert econ_first["session"] == CacheEconomics(1, 0, 1, 50.0, 50.0)
    assert econ_first["worker"] == CacheEconomics(1, 0, 1, 50.0, 50.0)
    assert econ_first["node"] == CacheEconomics(1, 0, 1, 50.0, 50.0)
    econ_second = second.drain()
    assert econ_second["session"] == CacheEconomics(2, 1, 1, 50.0, 100.0)
    assert econ_second["worker"] == CacheEconomics(1, 1, 0, 0.0, 50.0)
    assert "node" not in econ_second  # the walk stopped at the hit
    assert second.drain() == {}  # drain is destructive


def test_merge_and_serialize_economics():
    a = {"worker": CacheEconomics(2, 1, 1, 10.0, 20.0)}
    b = {"worker": CacheEconomics(1, 1, 0, 0.0, 10.0),
         "session": CacheEconomics(1, 0, 1, 5.0, 5.0)}
    merged = merge_economics(a, b)
    assert merged is a
    assert merged["worker"] == CacheEconomics(3, 2, 1, 10.0, 30.0)
    assert merged["worker"].hit_rate == pytest.approx(2 / 3)
    assert merged["worker"].traffic_reduction == pytest.approx(2 / 3)
    as_dict = economics_to_dict(merged)
    assert list(as_dict) == ["session", "worker"]  # tier order
    assert as_dict["worker"]["hits"] == 2


def test_cache_report_economics_unification():
    """CacheReport's ratios are served by the same CacheEconomics
    arithmetic the content cache reports — one shape, bit-identical."""
    report = CacheReport(accesses=10, hits=7, misses=3, capacity_lines=4,
                         bytes_per_line=64)
    econ = report.economics
    assert econ == CacheEconomics(10, 7, 3, 3 * 64, 10 * 64)
    assert report.hit_rate == econ.hit_rate
    assert report.traffic_reduction == econ.traffic_reduction
    assert CacheEconomics().hit_rate == 0.0
    assert CacheEconomics().traffic_reduction == 0.0
    d = econ.to_dict()
    assert d["accesses"] == 10 and d["hit_rate"] == econ.hit_rate


# ----------------------------------------------------------------------
# Canonical poses and content keys
# ----------------------------------------------------------------------
def _camera(eye):
    from repro.gaussians.camera import Camera

    return Camera.look_at(
        np.asarray(eye, dtype=np.float64), np.zeros(3), width=64, height=48
    )


def test_canonical_camera_exact_mode_is_identity():
    camera = _camera([1.0, 2.0, 3.0])
    assert canonical_camera(camera, 0.0) is camera


def test_canonical_camera_snaps_to_cell_center():
    q = 0.5
    camera = _camera([1.13, -0.96, 2.71])
    snapped = canonical_camera(camera, q)
    cell = np.floor(camera.position / q)
    assert np.allclose(snapped.position, (cell + 0.5) * q)
    # Rebuilt via look_at: still a valid orthonormal rotation.
    assert np.allclose(snapped.rotation @ snapped.rotation.T, np.eye(3))
    assert (snapped.width, snapped.height) == (camera.width, camera.height)
    # Two eyes in the same cell canonicalize to the *identical* pose.
    twin = canonical_camera(_camera([1.02, -0.51, 2.99]), q)
    assert np.array_equal(snapped.rotation, twin.rotation)
    assert np.array_equal(snapped.translation, twin.translation)


def test_pose_cell_requires_quantization():
    with pytest.raises(ValidationError):
        pose_cell(_camera([0.0, 0.0, 1.0]), 0.0)
    assert pose_cell(_camera([1.2, -0.3, 0.4]), 0.5) == (2, -1, 0)


def test_frame_content_key_sensitivity():
    """The key must change with anything that changes pixels or cycles
    — and with nothing else."""
    spec = CATALOG["bicycle"]
    camera = _camera([1.0, 2.0, 3.0])
    mode = render_mode_key("vectorized", None, True, 1, False, False)
    base = frame_content_key(spec, camera, 0, DETAIL, mode, 0.0)
    assert base == frame_content_key(spec, camera, 0, DETAIL, mode, 0.0)
    assert base != frame_content_key(CATALOG["bonsai"], camera, 0, DETAIL,
                                     mode, 0.0)
    assert base != frame_content_key(spec, camera, 1, DETAIL, mode, 0.0)
    assert base != frame_content_key(spec, camera, 0, 0.5, mode, 0.0)
    for other_mode in [
        render_mode_key("reference", None, True, 1, False, False),
        render_mode_key("vectorized", 0.05, True, 1, False, False),
        render_mode_key("vectorized", None, False, 1, False, False),
        render_mode_key("vectorized", None, True, 4, False, False),
    ]:
        assert base != frame_content_key(spec, camera, 0, DETAIL, other_mode,
                                         0.0)
    # Exact mode: any eye movement changes the key.
    assert base != frame_content_key(spec, _camera([1.0, 2.0, 3.0001]), 0,
                                     DETAIL, mode, 0.0)
    # Quantized mode: same cell, same key; different cell, new key.
    q = 0.5
    in_cell = frame_content_key(spec, _camera([1.13, 2.13, 3.13]), 0, DETAIL,
                                mode, q)
    assert in_cell == frame_content_key(spec, _camera([1.24, 2.01, 3.18]), 0,
                                        DETAIL, mode, q)
    assert in_cell != frame_content_key(spec, _camera([1.63, 2.13, 3.13]), 0,
                                        DETAIL, mode, q)


def test_bundle_intern_shares_one_build():
    intern = BundleIntern()
    first = intern.build(CATALOG["female_4"], detail=DETAIL)
    again = intern.build("female_4", detail=DETAIL)
    assert again is first
    assert (intern.hits, intern.misses) == (1, 1)
    other = intern.build("female_4", detail=0.5)
    assert other is not first and intern.misses == 2
    intern.clear()
    assert intern.build("female_4", detail=DETAIL) is not first


# ----------------------------------------------------------------------
# Serving-path dedup: byte identity, economics, transparency
# ----------------------------------------------------------------------
def _twin_sessions(n_frames=N_FRAMES):
    """Two co-located viewers on the identical orbit — the dedup case."""
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "orbit", n_frames=n_frames,
                                      detail=DETAIL)
    return [
        StreamSession(f"viewer-{tag}", "bicycle", traj, detail=DETAIL,
                      keep_images=True)
        for tag in ("a", "b")
    ]


def _evidence(report):
    """What dedup must preserve bit-for-bit (binning stats excluded:
    a served frame reports a synthetic full-reuse BinningStats)."""
    return [
        (
            f.frame,
            f.sim_seconds,
            f.hit_rate,
            f.cache.cumulative_hit_rate,
            f.cache.carried_hit_rate,
            f.detail,
            None if f.qos is None else (f.qos.met, f.qos.margin_seconds),
        )
        for f in report.frames
    ]


@pytest.fixture(scope="module")
def twin_baseline():
    """The twin serve without any content cache."""
    with StreamServer(workers=0) as server:
        return server.serve(_twin_sessions())


def test_dedup_serves_identical_frames_and_counts_them(twin_baseline):
    """The second viewer is served from the worker tier: identical
    image, identical simulated timing, and the per-tier counters say
    exactly where every frame came from."""
    with StreamServer(workers=0, content_cache=ContentCacheConfig()) as server:
        results = server.serve(_twin_sessions())
        totals = dict(server.content_totals)
    viewer_a, viewer_b = results
    assert [f.served_from for f in viewer_a.report.frames] == [None] * N_FRAMES
    assert [f.served_from for f in viewer_b.report.frames] == ["worker"] * N_FRAMES
    for fa, fb in zip(viewer_a.report.frames, viewer_b.report.frames):
        assert np.array_equal(fa.image, fb.image)
        assert fa.sim_seconds == fb.sim_seconds

    # The cache is invisible to simulated physics: both viewers match
    # the cache-less baseline exactly.
    for ref, got in zip(twin_baseline, results):
        assert _evidence(ref.report) == _evidence(got.report)
        for fr, fg in zip(ref.report.frames, got.report.frames):
            assert np.array_equal(fr.image, fg.image)

    # Exact economics: viewer-a misses everywhere (6 frames x 3 tiers),
    # viewer-b misses its session tier and hits the shared worker tier,
    # so the node tier never sees its lookups.
    assert {k: (v.accesses, v.hits, v.misses) for k, v in totals.items()} == {
        "session": (12, 0, 12),
        "worker": (12, 6, 6),
        "node": (6, 0, 6),
    }
    assert totals["worker"].hit_rate == 0.5
    assert 0.0 < totals["worker"].miss_bytes < totals["worker"].total_bytes
    assert totals["node"].hit_rate == 0.0


def test_tick_results_carry_economics_that_sum_to_totals():
    sessions = _twin_sessions(n_frames=3)
    with StreamServer(workers=0, content_cache=ContentCacheConfig()) as server:
        server.begin(sessions)
        folded = {}
        saw_tick_economics = False
        while server.n_active:
            tick = server.step()
            if tick.content:
                saw_tick_economics = True
            merge_economics(folded, tick.content)
        server.finish()
        assert saw_tick_economics
        assert folded == server.content_totals


def test_served_from_appears_only_on_dedup_frames_in_to_dict():
    with StreamServer(workers=0, content_cache=ContentCacheConfig()) as server:
        viewer_a, viewer_b = server.serve(_twin_sessions(n_frames=2))
    for frame_dict in viewer_a.report.to_dict()["frames"]:
        assert "served_from" not in frame_dict
    for frame_dict in viewer_b.report.to_dict()["frames"]:
        assert frame_dict["served_from"] == "worker"


def test_pose_quantization_dedups_within_a_session():
    """With a lattice pitch wider than the whole orbit, every frame of
    a static scene shares one content address: frame 0 renders, the
    rest are served from the session tier with frame 0's image."""
    quant = 1e6
    session = _twin_sessions(n_frames=4)[0]
    # Predict the dedup pattern from the lattice itself: a frame is
    # served from cache iff its eye's cell was already rendered.
    seen: dict[tuple, int] = {}
    expected = []
    for k in range(4):
        cell = pose_cell(session.trajectory.camera_at(k), quant)
        expected.append("session" if cell in seen else None)
        seen.setdefault(cell, k)
    assert "session" in expected  # the orbit revisits at least one cell

    cfg = ContentCacheConfig(pose_quant=quant)
    with StreamServer(workers=0, content_cache=cfg) as server:
        (result,) = server.serve([session])
        totals = dict(server.content_totals)
    frames = result.report.frames
    assert [f.served_from for f in frames] == expected
    for k, frame in enumerate(frames):
        cell = pose_cell(session.trajectory.camera_at(k), quant)
        assert np.array_equal(frame.image, frames[seen[cell]].image)
    hits = sum(1 for tag in expected if tag == "session")
    assert (totals["session"].accesses, totals["session"].hits) == (4, hits)


def test_subprocess_workers_dedup_within_their_tier():
    """Process-pool workers carry session+worker tiers on their side of
    the boundary (no shared node tier), and still match the in-process
    serve byte for byte."""
    sessions = _twin_sessions(n_frames=3)
    with StreamServer(workers=0, content_cache=ContentCacheConfig()) as server:
        baseline = server.serve(sessions)
    with StreamServer(workers=1, content_cache=ContentCacheConfig()) as server:
        remote = server.serve(sessions)
        totals = dict(server.content_totals)
    for ref, got in zip(baseline, remote):
        assert _evidence(ref.report) == _evidence(got.report)
    assert totals["worker"].hits == 3
    assert "node" not in totals  # the chain ends at the process boundary


# ----------------------------------------------------------------------
# Chaos matrix: crash / migration at every frame x cache temperature
# ----------------------------------------------------------------------
CHAOS_FRAMES = 4
TEMPERATURES = ("warm", "cold", "mid_eviction")


def _content_cfg(temperature: str) -> ContentCacheConfig:
    if temperature == "warm":
        return ContentCacheConfig()
    if temperature == "cold":
        # Zero-capacity tiers: every put is rejected, every lookup
        # misses — the serve must not care.
        return ContentCacheConfig(session_bytes=0, worker_bytes=0,
                                  node_bytes=0, fleet_bytes=0)
    # Room for roughly two frames per tier: inserts evict mid-serve.
    return ContentCacheConfig(session_bytes=600_000, worker_bytes=600_000,
                              node_bytes=600_000, fleet_bytes=600_000)


@pytest.fixture(scope="module")
def chaos_content_baselines():
    """Uninterrupted single-process twin serves, one per temperature."""
    out = {}
    for temperature in TEMPERATURES:
        with StreamServer(
            workers=0, content_cache=_content_cfg(temperature)
        ) as server:
            out[temperature] = server.serve(_twin_sessions(CHAOS_FRAMES))
    return out


def test_cache_temperature_is_invisible_to_physics(chaos_content_baselines):
    """Warm, cold and thrashing caches all serve the same bytes as no
    cache at all — and the thrashing configuration really evicts."""
    with StreamServer(workers=0) as server:
        reference = {
            r.session_id: r.report
            for r in server.serve(_twin_sessions(CHAOS_FRAMES))
        }
    for temperature in TEMPERATURES:
        for result in chaos_content_baselines[temperature]:
            ref = reference[result.session_id]
            assert _evidence(result.report) == _evidence(ref)
            for fr, fg in zip(ref.frames, result.report.frames):
                assert np.array_equal(fr.image, fg.image)
    with StreamServer(
        workers=0, content_cache=_content_cfg("mid_eviction")
    ) as server:
        server.serve(_twin_sessions(CHAOS_FRAMES))
        assert server._node_tier.evictions > 0


@pytest.mark.chaos
@pytest.mark.parametrize("crash_tick", range(CHAOS_FRAMES))
@pytest.mark.parametrize("temperature", TEMPERATURES)
def test_chaos_crash_replay_of_dedup_served_sessions(
    crash_tick, temperature, chaos_content_baselines
):
    """Kill every worker at every frame index of a dedup-served twin
    stream, at every cache temperature: recovery replays images, timing
    and cache counters byte for byte.  The crash loses worker and
    session tiers (the node tier survives), so replayed frames may be
    re-served from different tiers — the physics must not notice."""
    injector = lambda tick, w: tick == crash_tick  # noqa: E731 - all workers
    with StreamServer(
        workers=2,
        local=True,
        content_cache=_content_cfg(temperature),
        fault_injector=injector,
        max_respawns=4,
    ) as server:
        recovered = server.serve(_twin_sessions(CHAOS_FRAMES))
        assert server.recoveries >= 1
    for before, after in zip(chaos_content_baselines[temperature], recovered):
        assert _evidence(before.report) == _evidence(after.report)
        assert before.report.detail_trace == after.report.detail_trace
        for fb, fa in zip(before.report.frames, after.report.frames):
            assert np.array_equal(fb.image, fa.image)


@pytest.mark.chaos
@pytest.mark.parametrize("migrate_tick", range(CHAOS_FRAMES))
@pytest.mark.parametrize("temperature", TEMPERATURES)
def test_chaos_migration_of_dedup_served_session(
    migrate_tick, temperature, chaos_content_baselines
):
    """Extract the dedup-served viewer at every frame boundary and
    resume it on a second server whose tiers are stone cold: the
    combined stream must equal the uninterrupted baseline at every
    cache temperature."""
    cfg = _content_cfg(temperature)
    src = StreamServer(workers=0, content_cache=cfg)
    dst = StreamServer(workers=0, content_cache=cfg)
    try:
        src.begin(_twin_sessions(CHAOS_FRAMES))
        for _ in range(migrate_tick):
            src.step()
        moved, checkpoint, report = src.extract_session("viewer-b")
        assert report.n_frames == migrate_tick
        dst.begin([])
        dst.inject_session(moved, checkpoint, report)
        while src.n_active:
            src.step()
        while dst.n_active:
            dst.step()
        results = {r.session_id: r for r in src.finish() + dst.finish()}
    finally:
        src.close()
        dst.close()
    for before in chaos_content_baselines[temperature]:
        after = results[before.session_id]
        assert _evidence(before.report) == _evidence(after.report)
        for fb, fa in zip(before.report.frames, after.report.frames):
            assert np.array_equal(fb.image, fa.image)


# ----------------------------------------------------------------------
# Fleet tier
# ----------------------------------------------------------------------
@pytest.mark.fleet
def test_fleet_tier_dedups_across_nodes():
    """Two viewers split across two nodes by the least-loaded router:
    the second node's lookups miss session/worker/node and hit the
    fleet tier, and the shared bundle intern builds the scene once.
    (This is the CI content-cache smoke.)"""
    sessions = _twin_sessions(n_frames=8)
    with StreamServer(workers=0) as server:
        baseline = {r.session_id: r.report for r in server.serve(sessions)}
    with EdgeFleet(
        nodes=2,
        node_capacity=1,
        router="least",
        migration=False,
        content_cache=ContentCacheConfig(),
    ) as fleet:
        result = fleet.serve_sessions(sessions)
    assert result.content["fleet"].hits >= 1
    assert result.content["fleet"].accesses > 0
    assert result.bundle_intern_hits >= 1
    assert result.bundle_intern_misses >= 1
    served_from = {
        f.served_from
        for r in result.results
        for f in r.report.frames
        if f.served_from is not None
    }
    assert "fleet" in served_from
    for r in result.results:
        assert _evidence(r.report) == _evidence(baseline[r.session_id])
        for fb, fa in zip(baseline[r.session_id].frames, r.report.frames):
            assert np.array_equal(fb.image, fa.image)
