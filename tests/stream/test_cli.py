"""The repro-stream CLI: argument validation, clean error exits, QoS
flags, JSON output."""

import json

import pytest

from repro.stream.cli import build_parser, main

SMALL = [
    "--scene",
    "nerf_lego",
    "--trajectory",
    "frozen",
    "--frames",
    "2",
    "--detail",
    "0.25",
]


class TestErrorExits:
    """Invalid arguments exit 2 with a one-line error, no traceback."""

    def test_unknown_scene(self, capsys):
        assert main(["--scene", "garden_of_eden"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "garden_of_eden" in err

    def test_non_positive_detail(self, capsys):
        assert main(SMALL[:-1] + ["-0.5"]) == 2
        assert "--detail" in capsys.readouterr().err

    def test_non_positive_target_fps(self, capsys):
        assert main(SMALL + ["--target-fps", "0"]) == 2
        assert "--target-fps" in capsys.readouterr().err

    def test_non_positive_frames(self, capsys):
        assert main(["--frames", "0"]) == 2
        assert "--frames" in capsys.readouterr().err

    def test_non_positive_sessions(self, capsys):
        assert main(["--sessions", "-1"]) == 2
        assert "--sessions" in capsys.readouterr().err

    def test_negative_workers(self, capsys):
        assert main(SMALL + ["--workers", "-2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_max_inflight(self, capsys):
        assert main(SMALL + ["--max-inflight", "0"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_invalid_placement_is_argparse_choice_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--placement", "chaotic"])
        assert exc.value.code == 2
        assert "chaotic" in capsys.readouterr().err

    def test_invalid_qos_mode_is_argparse_choice_error(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--qos", "psychic"])
        assert exc.value.code == 2


class TestServing:
    def test_small_serve_prints_table(self, capsys):
        assert main(SMALL) == 0
        out = capsys.readouterr().out
        assert "warm hit" in out
        assert "served 2 frames" in out

    def test_qos_serve_reports_misses_and_detail(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        argv = SMALL + [
            "--frames",
            "3",
            "--target-fps",
            "30",
            "--json",
            str(path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out and "mean detail" in out
        assert "QoS (adaptive, 30 Hz)" in out
        payload = json.loads(path.read_text())
        assert payload["target_fps"] == 30
        assert payload["qos"] == "adaptive"
        frames = payload["sessions"][0]["frames"]
        assert all("deadline_met" in f and "detail" in f for f in frames)

    def test_fixed_qos_mode_keeps_detail(self, capsys):
        argv = SMALL + ["--target-fps", "1000", "--qos", "fixed", "--json", "-"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["qos"] == "fixed"
        assert payload["sessions"][0]["mean_detail"] == pytest.approx(0.25)
