"""The repro-stream CLI: argument validation, clean error exits, QoS
flags, JSON output."""

import json

import pytest

from repro.stream.cli import build_parser, main

SMALL = [
    "--scene",
    "nerf_lego",
    "--trajectory",
    "frozen",
    "--frames",
    "2",
    "--detail",
    "0.25",
]


class TestErrorExits:
    """Invalid arguments exit 2 with a one-line error, no traceback."""

    def test_unknown_scene(self, capsys):
        assert main(["--scene", "garden_of_eden"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "garden_of_eden" in err

    def test_non_positive_detail(self, capsys):
        assert main(SMALL[:-1] + ["-0.5"]) == 2
        assert "--detail" in capsys.readouterr().err

    def test_non_positive_target_fps(self, capsys):
        assert main(SMALL + ["--target-fps", "0"]) == 2
        assert "--target-fps" in capsys.readouterr().err

    def test_non_positive_frames(self, capsys):
        assert main(["--frames", "0"]) == 2
        assert "--frames" in capsys.readouterr().err

    def test_non_positive_sessions(self, capsys):
        assert main(["--sessions", "-1"]) == 2
        assert "--sessions" in capsys.readouterr().err

    def test_negative_workers(self, capsys):
        assert main(SMALL + ["--workers", "-2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_max_inflight(self, capsys):
        assert main(SMALL + ["--max-inflight", "0"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_invalid_placement_is_argparse_choice_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--placement", "chaotic"])
        assert exc.value.code == 2
        assert "chaotic" in capsys.readouterr().err

    def test_invalid_qos_mode_is_argparse_choice_error(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--qos", "psychic"])
        assert exc.value.code == 2


class TestServing:
    def test_small_serve_prints_table(self, capsys):
        assert main(SMALL) == 0
        out = capsys.readouterr().out
        assert "warm hit" in out
        assert "served 2 frames" in out

    def test_qos_serve_reports_misses_and_detail(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        argv = SMALL + [
            "--frames",
            "3",
            "--target-fps",
            "30",
            "--json",
            str(path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out and "mean detail" in out
        assert "QoS (adaptive, 30 Hz)" in out
        payload = json.loads(path.read_text())
        assert payload["target_fps"] == 30
        assert payload["qos"] == "adaptive"
        frames = payload["sessions"][0]["frames"]
        assert all("deadline_met" in f and "detail" in f for f in frames)

    def test_fixed_qos_mode_keeps_detail(self, capsys):
        argv = SMALL + ["--target-fps", "1000", "--qos", "fixed", "--json", "-"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["qos"] == "fixed"
        assert payload["sessions"][0]["mean_detail"] == pytest.approx(0.25)


FLEET_SMALL = [
    "fleet",
    "--nodes",
    "2",
    "--mix",
    "light",
    "--rate",
    "30",
    "--duration",
    "0.2",
    "--detail",
    "0.25",
    "--seed",
    "4",
]


class TestFleetSubcommand:
    """The `fleet` subcommand: generated traffic over a node fleet."""

    def test_fleet_serve_prints_node_table_and_summary(self, capsys):
        assert main(FLEET_SMALL) == 0
        out = capsys.readouterr().out
        assert "node" in out and "sessions" in out
        assert "fleet served" in out
        assert "light mix" in out
        assert "router 'least'" in out

    def test_fleet_json_report(self, capsys, tmp_path):
        path = tmp_path / "fleet.json"
        assert main(FLEET_SMALL + ["--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["mix"] == "light"
        assert payload["nodes"] == 2
        assert payload["total_frames"] > 0
        assert payload["sim_frames_per_sec"] > 0
        assert set(payload["node_summaries"]) <= {"0", "1"}

    def test_fleet_autoscale_flags(self, capsys):
        argv = FLEET_SMALL + [
            "--nodes",
            "1",
            "--max-nodes",
            "2",
            "--node-capacity",
            "1",
            "--rate",
            "80",
            "--json",
            "-",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["peak_nodes"] >= 1

    def test_fleet_error_exits(self, capsys):
        assert main(["fleet", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err
        assert main(["fleet", "--nodes", "0"]) == 2
        assert "--nodes" in capsys.readouterr().err
        assert main(["fleet", "--duration", "-1"]) == 2
        assert "--duration" in capsys.readouterr().err
        assert main(["fleet", "--nodes", "2", "--max-nodes", "1"]) == 2
        assert "--max-nodes" in capsys.readouterr().err
        assert main(["fleet", "--nodes", "2", "--min-nodes", "3"]) == 2
        assert "--min-nodes" in capsys.readouterr().err
        assert main(["fleet", "--detail", "0"]) == 2
        assert "--detail" in capsys.readouterr().err
        assert main(["fleet", "--seed", "-1"]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_negative_seed_is_clean_error_in_both_commands(self, capsys):
        assert main(SMALL + ["--seed", "-1"]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_fleet_bad_choices_are_argparse_errors(self, capsys):
        from repro.stream.cli import build_fleet_parser

        for argv in (["--mix", "rush-hour"], ["--router", "hash-ring"]):
            with pytest.raises(SystemExit) as exc:
                build_fleet_parser().parse_args(argv)
            assert exc.value.code == 2


class TestRenderModeAndShards:
    """The approx render mode and intra-frame sharding flags."""

    def test_invalid_render_mode_is_argparse_choice_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--render-mode", "sloppy"])
        assert exc.value.code == 2
        assert "sloppy" in capsys.readouterr().err

    def test_unknown_backend_lists_registered_names(self, capsys):
        assert main(SMALL + ["--backend", "quantum"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "quantum" in err
        # The clean exit names the valid choices.
        assert "vectorized" in err and "reference" in err

    def test_tolerance_requires_approx_mode(self, capsys):
        assert main(SMALL + ["--tolerance", "0.3"]) == 2
        assert "--render-mode approx" in capsys.readouterr().err

    def test_tolerance_band_enforced(self, capsys):
        args = SMALL + ["--render-mode", "approx", "--tolerance", "1.5"]
        assert main(args) == 2
        assert "--tolerance" in capsys.readouterr().err

    def test_non_positive_shards_rejected(self, capsys):
        assert main(SMALL + ["--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_approx_serve_smoke(self, capsys):
        args = SMALL + ["--render-mode", "approx", "--tolerance", "0.4"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "frames" in out

    def test_static_shard_serve_smoke(self, capsys, tmp_path):
        """Without adaptive QoS, --shards N shards every frame; the
        serve completes and reports all frames."""
        report = tmp_path / "sharded.json"
        args = SMALL + ["--shards", "2", "--json", str(report)]
        assert main(args) == 0
        body = json.loads(report.read_text())
        frames = body["sessions"][0]["frames"]
        assert len(frames) == 2


class TestModelsErrorRouting:
    """--models failures are argument-shaped: exit 2 with an `error:`
    line, never a FileNotFoundError/JSONDecodeError traceback."""

    def test_missing_models_file_main_command(self, capsys):
        argv = SMALL + ["--pipeline", "digest", "--models", "/no/such.json"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "/no/such.json" in err

    def test_missing_models_file_fleet_command(self, capsys):
        argv = FLEET_SMALL + ["--pipeline", "digest", "--models", "/no/such.json"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "/no/such.json" in err

    def test_malformed_models_json(self, capsys, tmp_path):
        bad = tmp_path / "models.json"
        bad.write_text("{this is not json")
        argv = SMALL + ["--pipeline", "digest", "--models", str(bad)]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err

    def test_wrong_shape_models_json(self, capsys, tmp_path):
        bad = tmp_path / "models.json"
        bad.write_text(json.dumps({"surprise": []}))
        argv = SMALL + ["--pipeline", "digest", "--models", str(bad)]
        assert main(argv) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_models_without_digest_pipeline(self, capsys, tmp_path):
        table = tmp_path / "models.json"
        table.write_text("{}")
        assert main(SMALL + ["--models", str(table)]) == 2
        assert "--pipeline digest" in capsys.readouterr().err


class TestServeSubcommand:
    """Argument validation for `repro-stream serve` (the gateway's
    live behavior is covered in tests/stream/test_gateway.py)."""

    def test_bad_port(self, capsys):
        assert main(["serve", "--port", "70000"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_bad_http_port(self, capsys):
        assert main(["serve", "--http-port", "-1"]) == 2
        assert "--http-port" in capsys.readouterr().err

    def test_bad_queue_frames(self, capsys):
        assert main(["serve", "--queue-frames", "1"]) == 2
        assert "--queue-frames" in capsys.readouterr().err

    def test_bad_exit_after_sessions(self, capsys):
        assert main(["serve", "--exit-after-sessions", "0"]) == 2
        assert "--exit-after-sessions" in capsys.readouterr().err

    def test_bad_drain_timeout(self, capsys):
        assert main(["serve", "--drain-timeout", "0"]) == 2
        assert "--drain-timeout" in capsys.readouterr().err

    def test_digest_serve_requires_models(self, capsys):
        assert main(["serve", "--pipeline", "digest"]) == 2
        assert "--models" in capsys.readouterr().err

    def test_serve_missing_models_file_is_clean_error(self, capsys):
        argv = ["serve", "--pipeline", "digest", "--models", "/no/such.json"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "/no/such.json" in err
