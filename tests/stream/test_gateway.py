"""Asyncio serving gateway: wire protocol, checkpoint-backed
reconnects, bounded-queue backpressure, graceful drain.

Everything runs on loopback inside the test process — the suite never
opens a non-local socket.  The reconnect chaos matrix mirrors the
worker-crash matrix of ``test_stream_server.py``: killing the
connection at *every* frame index and resuming must reproduce the
uninterrupted serve byte-for-byte (image hashes, detail traces, cache
counters), because the gateway parks sessions as checkpoints and
checkpoint replay is exact.
"""

import asyncio
import json
import struct

import pytest

from repro.errors import ValidationError
from repro.stream.fleet import EdgeFleet
from repro.stream.gateway import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    GatewayClient,
    StreamGateway,
    encode_message,
    read_message,
    session_from_payload,
)
from repro.stream.reporting import report_evidence
from repro.stream.server import StreamServer

DETAIL = 0.25
N_FRAMES = 5


def _desc(session_id, scene="bicycle", frames=N_FRAMES, **overrides):
    base = {
        "session_id": session_id,
        "scene": scene,
        "frames": frames,
        "detail": DETAIL,
        "keep_images": True,
        "target_fps": 300.0,
    }
    base.update(overrides)
    return base


def _baseline(descs):
    """Uninterrupted single-server evidence for the same descriptors."""
    with StreamServer(workers=0) as server:
        results = server.serve([session_from_payload(d) for d in descs])
    return {r.session_id: report_evidence(r.report) for r in results}


async def _with_gateway(scenario, backend=None, **gateway_kwargs):
    """Run ``scenario(gateway)`` against a started gateway; always stop."""
    backend = StreamServer(workers=0) if backend is None else backend
    gateway = StreamGateway(backend, **gateway_kwargs)
    await gateway.start()
    try:
        value = await scenario(gateway)
    except BaseException:
        await gateway.stop(drain=False)
        raise
    results = await gateway.stop()
    return value, results, gateway


def run(coro):
    return asyncio.run(coro)


async def _resume_with_retry(gateway, session_id, last_frame, attempts=100):
    """Resume with a fresh connection per attempt.

    The gateway needs a beat to notice an abort and park the session,
    and an ``error`` reply closes the connection — so each retry must
    reconnect, not reuse the refused socket.
    """
    for attempt in range(attempts):
        client = GatewayClient(gateway.host, gateway.port)
        await client.connect()
        try:
            welcome = await client.resume(session_id, last_frame)
            return client, welcome
        except ValidationError:
            await client.close()
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(0.02)


# ----------------------------------------------------------------------
# Framing and descriptor validation (no sockets needed)
# ----------------------------------------------------------------------
class TestFraming:
    def test_encode_roundtrip(self):
        data = encode_message({"type": "hello", "n": 3})
        (length,) = struct.unpack("!I", data[:4])
        assert length == len(data) - 4
        assert json.loads(data[4:]) == {"type": "hello", "n": 3}

    def test_encode_rejects_oversized_message(self):
        with pytest.raises(ValidationError, match="wire limit"):
            encode_message({"type": "x", "pad": "a" * (MAX_MESSAGE_BYTES + 1)})

    def test_read_rejects_oversized_prefix(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack("!I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ValidationError, match="wire limit"):
                await read_message(reader)

        run(scenario())

    def test_read_rejects_non_json_body(self):
        async def scenario():
            reader = asyncio.StreamReader()
            body = b"\xff\xfenot json"
            reader.feed_data(struct.pack("!I", len(body)) + body)
            with pytest.raises(ValidationError, match="JSON"):
                await read_message(reader)

        run(scenario())

    def test_read_rejects_untyped_object(self):
        async def scenario():
            reader = asyncio.StreamReader()
            body = json.dumps(["a", "list"]).encode()
            reader.feed_data(struct.pack("!I", len(body)) + body)
            with pytest.raises(ValidationError, match="'type'"):
                await read_message(reader)

        run(scenario())

    def test_read_returns_none_on_eof(self):
        async def scenario():
            clean = asyncio.StreamReader()
            clean.feed_eof()
            assert await read_message(clean) is None
            midframe = asyncio.StreamReader()
            midframe.feed_data(b"\x00\x00")  # half a header, then EOF
            midframe.feed_eof()
            assert await read_message(midframe) is None

        run(scenario())


class TestSessionFromPayload:
    def test_builds_full_descriptor(self):
        session = session_from_payload(
            _desc(
                "s",
                trajectory={"kind": "head_jitter", "n_frames": 7, "seed": 4},
                qos="fixed",
            )
        )
        assert session.session_id == "s"
        assert session.frame_budget == 7
        assert session.keep_images
        assert session.target_fps == 300.0
        assert session.qos is not None  # fixed policy object
        assert session.pipeline == "exact"

    def test_default_pipeline_applies_when_omitted(self):
        session = session_from_payload(_desc("s"), default_pipeline="digest")
        assert session.pipeline == "digest"
        explicit = session_from_payload(
            _desc("s", pipeline="exact"), default_pipeline="digest"
        )
        assert explicit.pipeline == "exact"

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"scene": "atlantis"}, "unknown scene"),
            ({"session_id": ""}, "session_id"),
            ({"session_id": 7}, "session_id"),
            ({"frames": 0}, "at least one frame"),
            ({"trajectory": {"kind": "warp"}}, "trajectory kind"),
            ({"trajectory": "orbit"}, "JSON object"),
            ({"pipeline": "quantum"}, "unknown pipeline"),
            ({"qos": "psychic"}, "'qos'"),
            # Malformed numerics must surface as ValidationError (the
            # wire replies with an error frame), never a raw
            # ValueError/TypeError that drops the connection.
            ({"detail": "x"}, "'detail'"),
            ({"frames": "x"}, "'n_frames'"),
            ({"target_fps": "fast"}, "'target_fps'"),
            ({"trajectory": {"seed": "x"}}, "'seed'"),
            ({"trajectory": {"phase_deg": []}}, "'phase_deg'"),
        ],
    )
    def test_invalid_descriptors_raise(self, mutation, match):
        payload = _desc("s")
        payload.update(mutation)
        with pytest.raises(ValidationError, match=match):
            session_from_payload(payload)

    def test_non_object_payload_raises(self):
        with pytest.raises(ValidationError, match="'session'"):
            session_from_payload(None)


class TestConstruction:
    def test_queue_bound_floor(self):
        with pytest.raises(ValidationError, match="at least 2"):
            StreamGateway(StreamServer(workers=0), send_queue_frames=1)

    def test_unknown_default_pipeline(self):
        with pytest.raises(ValidationError, match="pipeline"):
            StreamGateway(StreamServer(workers=0), pipeline="quantum")

    def test_port_requires_start(self):
        gateway = StreamGateway(StreamServer(workers=0))
        with pytest.raises(ValidationError, match="not started"):
            gateway.port


# ----------------------------------------------------------------------
# Live serving over loopback
# ----------------------------------------------------------------------
class TestServing:
    def test_single_session_matches_uninterrupted_serve(self):
        desc = _desc("solo")

        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            welcome = await client.hello(desc)
            assert welcome["resumed"] is False
            assert welcome["next_frame"] == 0
            frames, end = await client.stream()
            await client.bye()
            await client.close()
            assert [f["frame"] for f in frames] == list(range(N_FRAMES))
            assert all(not f["replayed"] for f in frames)
            assert all("image_sha256" in f for f in frames)
            return end["report"]

        report, results, gateway = run(_with_gateway(scenario))
        assert report == _baseline([desc])["solo"]
        assert len(results) == 1 and results[0].report.n_frames == N_FRAMES
        (stats,) = gateway.connection_stats
        assert stats.session_id == "solo"
        assert stats.frames_sent == N_FRAMES
        assert stats.clean_close
        assert stats.bytes_sent > 0
        assert stats.messages_sent == N_FRAMES + 2  # welcome + frames + end

    def test_two_concurrent_clients_both_match_baseline(self):
        descs = [_desc("a"), _desc("b", scene="bonsai")]

        async def one(gateway, desc):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.hello(desc)
            _, end = await client.stream()
            await client.bye()
            await client.close()
            return end["report"]

        async def scenario(gateway):
            return await asyncio.gather(
                *(one(gateway, d) for d in descs)
            )

        reports, results, _ = run(_with_gateway(scenario))
        want = _baseline(descs)
        assert reports[0] == want["a"]
        assert reports[1] == want["b"]
        assert len(results) == 2

    def test_duplicate_session_id_is_refused(self):
        async def scenario(gateway):
            first = GatewayClient(gateway.host, gateway.port)
            await first.connect()
            await first.hello(_desc("dup", frames=3))
            second = GatewayClient(gateway.host, gateway.port)
            await second.connect()
            with pytest.raises(ValidationError, match="already in use"):
                await second.hello(_desc("dup", frames=3))
            await second.close()
            _, end = await first.stream()
            await first.bye()
            await first.close()
            return end

        end, results, _ = run(_with_gateway(scenario))
        assert end is not None and len(results) == 1

    def test_invalid_hello_gets_error_reply(self):
        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            with pytest.raises(ValidationError, match="unknown scene"):
                await client.hello(_desc("bad", scene="atlantis"))
            await client.close()

        _, results, _ = run(_with_gateway(scenario))
        assert results == []

    def test_first_message_must_be_hello(self):
        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.send({"type": "bye"})
            reply = await client.recv()
            assert reply["type"] == "error"
            assert "hello" in reply["message"]
            await client.close()

        run(_with_gateway(scenario))

    def test_unsupported_protocol_version_is_refused(self):
        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.send(
                {
                    "type": "hello",
                    "protocol": PROTOCOL_VERSION + 1,
                    "session": _desc("v"),
                }
            )
            reply = await client.recv()
            assert reply["type"] == "error"
            assert "protocol" in reply["message"]
            await client.close()

        run(_with_gateway(scenario))

    def test_malformed_resume_last_frame_gets_error_reply(self):
        """A non-numeric ``last_frame`` answers with an ``error`` frame
        (not an unhandled-task-exception connection drop)."""

        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            with pytest.raises(ValidationError, match="last_frame"):
                await client.resume("whoever", last_frame="x")
            await client.close()

        run(_with_gateway(scenario))

    def test_resume_of_unknown_session_is_refused(self):
        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            with pytest.raises(ValidationError, match="no detached session"):
                await client.resume("ghost", last_frame=-1)
            await client.close()

        run(_with_gateway(scenario))

    def test_mid_stream_chatter_is_a_protocol_error(self):
        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.hello(_desc("chatty", frames=3))
            await client.send({"type": "hello", "session": _desc("again")})
            # An error eventually arrives (frames may precede it).
            while True:
                message = await client.recv()
                if message is None or message["type"] == "error":
                    break
            assert message is not None
            assert "unexpected message" in message["message"]
            await client.close()

        run(_with_gateway(scenario))


# ----------------------------------------------------------------------
# Reconnect chaos matrix — byte identity at every kill point
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestReconnectChaos:
    @pytest.mark.parametrize("kill_after", list(range(N_FRAMES + 1)))
    def test_kill_and_resume_at_every_frame_is_byte_identical(
        self, kill_after
    ):
        """Abort the connection after ``kill_after`` delivered frames,
        resume, and require the full stream to equal the uninterrupted
        serve — frames, hashes, detail trace, cache counters."""
        desc = _desc("phoenix")

        async def scenario(gateway):
            first = GatewayClient(gateway.host, gateway.port)
            await first.connect()
            await first.hello(desc)
            head, _ = await first.stream(limit=kill_after)
            first.abort()

            last = head[-1]["frame"] if head else -1
            second, welcome = await _resume_with_retry(
                gateway, desc["session_id"], last
            )
            assert welcome["resumed"] is True
            tail, end = await second.stream()
            await second.bye()
            await second.close()
            return head, tail, end["report"]

        (head, tail, report), results, gateway = run(_with_gateway(scenario))
        # Replayed + live frames reassemble the full stream in order.
        frames = head + tail
        assert [f["frame"] for f in frames] == list(range(N_FRAMES))
        assert report == _baseline([desc])["phoenix"]
        # Exactly one reconnect happened and was recorded.
        resumed = [s for s in gateway.connection_stats if s.resumed]
        assert len(resumed) == 1
        assert resumed[0].restore_seconds >= 0.0
        assert len(results) == 1 and results[0].report.n_frames == N_FRAMES

    def test_bye_detach_is_resumable_and_clean(self):
        """A polite ``bye`` parks the session exactly like a crash,
        but records a clean close."""
        desc = _desc("polite")

        async def scenario(gateway):
            first = GatewayClient(gateway.host, gateway.port)
            await first.connect()
            await first.hello(desc)
            head, _ = await first.stream(limit=2)
            await first.bye()
            await first.close()

            second, _ = await _resume_with_retry(
                gateway, desc["session_id"], head[-1]["frame"]
            )
            tail, end = await second.stream()
            await second.bye()
            await second.close()
            return head, tail, end["report"]

        (head, tail, report), _, gateway = run(_with_gateway(scenario))
        assert [f["frame"] for f in head + tail] == list(range(N_FRAMES))
        assert report == _baseline([desc])["polite"]
        first_stats = gateway.connection_stats[0]
        assert first_stats.clean_close and not first_stats.resumed

    def test_replay_covers_frames_lost_in_flight(self):
        """Frames rendered but never delivered (lost with the dropped
        connection) come back as replayed messages."""
        desc = _desc("lossy")

        async def scenario(gateway):
            first = GatewayClient(gateway.host, gateway.port)
            await first.connect()
            await first.hello(desc)
            head, _ = await first.stream(limit=1)
            first.abort()

            second, welcome = await _resume_with_retry(
                gateway, desc["session_id"], head[-1]["frame"]
            )
            tail, end = await second.stream()
            await second.close()
            return welcome, head, tail

        (welcome, head, tail), _, _ = run(_with_gateway(scenario))
        # Whatever was rendered beyond the last delivered frame arrived
        # flagged as replayed, then the stream continued live.
        replayed = [f for f in tail if f["replayed"]]
        live = [f for f in tail if not f["replayed"]]
        assert welcome["replayed"] == len(replayed)
        assert [f["frame"] for f in head + replayed + live] == list(
            range(N_FRAMES)
        )

    def test_detached_session_without_reconnect_is_reported(self):
        """A session whose client vanished and never came back still
        appears in the final results, reported as far as it streamed,
        with worker -1 (parked, not placed)."""
        desc = _desc("ghosted")

        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.hello(desc)
            head, _ = await client.stream(limit=2)
            client.abort()
            # Wait for the gateway to park the session.
            for _ in range(100):
                if gateway.stats()["sessions_detached"]:
                    break
                await asyncio.sleep(0.02)
            return head

        head, results, _ = run(_with_gateway(scenario))
        assert len(results) == 1
        assert results[0].worker == -1
        # Parked with at least the delivered frames rendered.
        assert results[0].report.n_frames >= len(head)


# ----------------------------------------------------------------------
# Dead peers: a vanished client can never hang the server
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestDeadPeer:
    """A peer that vanishes while its bounded replay is in flight used
    to deadlock the handler: the writer died on the reset socket but
    the replay loop kept waiting for queue space nobody would ever
    free, pinning the session as connected and wedging drain shutdown.
    Now the dead writer closes the send path, blocked sends raise, and
    the session parks like any other disconnect."""

    BOUND = 2
    KERNEL_BUF = 4096
    FRAMES = 8

    def test_vanishing_mid_replay_parks_the_session_again(self):
        desc = _desc("houdini", frames=self.FRAMES)

        async def scenario(gateway):
            first = GatewayClient(gateway.host, gateway.port)
            await first.connect(rcvbuf=self.KERNEL_BUF)
            await first.hello(desc, deliver_images=True)
            # Stream well past the queue bound so the replay below has
            # more frames than send-queue slots — a dead writer then
            # leaves the replay's bounded send with no space to wait
            # for (the original deadlock).
            head, _ = await first.stream(limit=5)
            first.abort()

            # Resume with a client that asks for the bulky image
            # replay, reads none of it, and dies immediately — the
            # replay's bounded sends run into the dead writer.
            second = None
            for attempt in range(100):
                second = GatewayClient(gateway.host, gateway.port)
                await second.connect(rcvbuf=self.KERNEL_BUF)
                try:
                    await second.resume(
                        desc["session_id"], -1, deliver_images=True
                    )
                    break
                except ValidationError:
                    await second.close()
                    assert attempt < 99
                    await asyncio.sleep(0.02)
            second.abort()

            # The handler falls through to teardown and parks the
            # session promptly (pre-fix it stayed connected forever).
            for _ in range(250):
                if gateway.stats()["sessions_connected"] == 0:
                    break
                await asyncio.sleep(0.02)
            assert gateway.stats()["sessions_connected"] == 0

            # A healthy third client still finishes the stream.
            third, _ = await _resume_with_retry(
                gateway, desc["session_id"], head[-1]["frame"]
            )
            tail, end = await third.stream()
            await third.close()
            return head, tail, end["report"]

        async def guarded(gateway):
            # Bound the whole scenario so a regression of the old
            # deadlock fails fast instead of hanging the suite.
            return await asyncio.wait_for(scenario(gateway), timeout=60)

        (head, tail, report), results, _ = run(
            _with_gateway(
                guarded,
                send_queue_frames=self.BOUND,
                sndbuf=self.KERNEL_BUF,
            )
        )
        assert [f["frame"] for f in head + tail] == list(range(self.FRAMES))
        assert report == _baseline([desc])["houdini"]
        assert len(results) == 1
        assert results[0].report.n_frames == self.FRAMES


# ----------------------------------------------------------------------
# Backpressure: bounded queues pause dispatch, never overflow
# ----------------------------------------------------------------------
class TestBackpressure:
    BOUND = 3
    SLOW_FRAMES = 10
    #: Pinned kernel buffers (server SO_SNDBUF / client SO_RCVBUF):
    #: loopback TCP autotuning otherwise absorbs megabytes, and a
    #: non-reading client would never stall the writer.
    KERNEL_BUF = 16384

    def test_slow_client_is_paused_not_buffered(self):
        desc = _desc("tortoise", frames=self.SLOW_FRAMES)

        async def scenario(gateway):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect(rcvbuf=self.KERNEL_BUF)
            # deliver_images makes every frame message carry real pixel
            # payloads — heavy enough that a non-reading client stalls
            # the writer (metadata alone fits in kernel socket buffers
            # and would never exert backpressure).
            await client.hello(desc, deliver_images=True)
            # Let the pump render against a non-reading client until
            # backpressure must have engaged.
            for _ in range(200):
                if gateway.stats()["sessions_paused"]:
                    break
                await asyncio.sleep(0.02)
            assert gateway.stats()["sessions_paused"] == 1
            # Now drain: the stream resumes and completes in order.
            frames, end = await client.stream()
            await client.bye()
            await client.close()
            return frames, end

        (frames, end), results, gateway = run(
            _with_gateway(
                scenario,
                send_queue_frames=self.BOUND,
                sndbuf=self.KERNEL_BUF,
            )
        )
        assert [f["frame"] for f in frames] == list(range(self.SLOW_FRAMES))
        assert all("image" in f for f in frames)  # pixels were shipped
        assert end is not None
        (stats,) = gateway.connection_stats
        assert stats.pauses >= 1
        assert stats.queue_peak <= self.BOUND  # the hard bound held
        assert results[0].report.n_frames == self.SLOW_FRAMES

    def test_slow_client_does_not_stall_fast_client(self):
        slow = _desc("slow", frames=self.SLOW_FRAMES)
        fast = _desc("fast", frames=3, scene="bonsai")

        async def scenario(gateway):
            tortoise = GatewayClient(gateway.host, gateway.port)
            await tortoise.connect(rcvbuf=self.KERNEL_BUF)
            await tortoise.hello(slow, deliver_images=True)

            hare = GatewayClient(gateway.host, gateway.port)
            await hare.connect()
            await hare.hello(fast)
            # The fast client streams to completion while the slow one
            # refuses to read a single frame.
            fast_frames, fast_end = await hare.stream()
            await hare.bye()
            await hare.close()

            slow_frames, slow_end = await tortoise.stream()
            await tortoise.bye()
            await tortoise.close()
            return fast_frames, fast_end, slow_frames, slow_end

        (fast_frames, fast_end, slow_frames, slow_end), results, gateway = (
            run(
                _with_gateway(
                    scenario,
                    send_queue_frames=self.BOUND,
                    sndbuf=self.KERNEL_BUF,
                )
            )
        )
        assert len(fast_frames) == 3 and fast_end is not None
        assert len(slow_frames) == self.SLOW_FRAMES and slow_end is not None
        assert all(
            s.queue_peak <= self.BOUND for s in gateway.connection_stats
        )
        assert {r.session_id for r in results} == {"slow", "fast"}


# ----------------------------------------------------------------------
# Fleet backend and drain shutdown
# ----------------------------------------------------------------------
@pytest.mark.fleet
class TestFleetBackend:
    def test_gateway_over_fleet_matches_baseline(self):
        descs = [_desc(f"f{i}", scene=s) for i, s in enumerate(
            ["bicycle", "bonsai", "bicycle"]
        )]

        async def one(gateway, desc):
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.hello(desc)
            _, end = await client.stream()
            await client.bye()
            await client.close()
            return end["report"]

        async def scenario(gateway):
            return await asyncio.gather(*(one(gateway, d) for d in descs))

        fleet = EdgeFleet(nodes=2, node_capacity=4)
        reports, results, _ = run(_with_gateway(scenario, backend=fleet))
        want = _baseline(descs)
        for desc, report in zip(descs, reports):
            assert report == want[desc["session_id"]]
        assert len(results) == len(descs)

    def test_fleet_reconnect_is_byte_identical(self):
        desc = _desc("nomad")

        async def scenario(gateway):
            first = GatewayClient(gateway.host, gateway.port)
            await first.connect()
            await first.hello(desc)
            head, _ = await first.stream(limit=2)
            first.abort()

            second, _ = await _resume_with_retry(
                gateway, desc["session_id"], head[-1]["frame"]
            )
            tail, end = await second.stream()
            await second.close()
            return head, tail, end["report"]

        fleet = EdgeFleet(nodes=2, node_capacity=4)
        (head, tail, report), results, _ = run(
            _with_gateway(scenario, backend=fleet)
        )
        assert [f["frame"] for f in head + tail] == list(range(N_FRAMES))
        assert report == _baseline([desc])["nomad"]
        assert len(results) == 1


class TestShutdown:
    def test_drain_finishes_connected_sessions(self):
        """stop(drain=True) keeps serving until connected sessions
        complete: the client still gets every frame and the end."""
        desc = _desc("finisher", frames=6)

        async def main():
            server = StreamServer(workers=0)
            gateway = StreamGateway(server)
            await gateway.start()
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect()
            await client.hello(desc)
            await client.stream(limit=1)
            stopper = asyncio.create_task(gateway.stop())
            frames, end = await client.stream()
            await client.close()
            results = await stopper
            return frames, end, results

        frames, end, results = run(main())
        assert end is not None
        assert len(frames) == 5  # the remaining frames all arrived
        assert results[0].report.n_frames == 6

    def test_drain_timeout_force_detaches_stalled_client(self):
        """A client that stays connected but stops reading cannot pin
        shutdown: past the drain deadline its session is checkpointed
        and parked exactly like a disconnect, and stop() returns."""
        desc = _desc("statue", frames=10)

        async def main():
            server = StreamServer(workers=0)
            gateway = StreamGateway(
                server, send_queue_frames=3, sndbuf=16384
            )
            await gateway.start()
            client = GatewayClient(gateway.host, gateway.port)
            await client.connect(rcvbuf=16384)
            await client.hello(desc, deliver_images=True)
            # Wait until backpressure paused the non-reading client,
            # the state that used to stall the drain indefinitely.
            for _ in range(200):
                if gateway.stats()["sessions_paused"]:
                    break
                await asyncio.sleep(0.02)
            assert gateway.stats()["sessions_paused"] == 1
            results = await asyncio.wait_for(
                gateway.stop(drain_timeout=0.5), timeout=30
            )
            await client.close()
            return results

        results = run(main())
        assert len(results) == 1
        assert results[0].worker == -1  # parked mid-stream, not completed
        assert 0 < results[0].report.n_frames < 10

    def test_new_sessions_refused_while_draining(self):
        async def main():
            server = StreamServer(workers=0)
            gateway = StreamGateway(server)
            await gateway.start()
            results = await gateway.stop()
            # The listener is closed: connecting again must fail.
            with pytest.raises(OSError):
                await asyncio.open_connection(gateway.host, gateway.port)
            return results

        assert run(main()) == []

    def test_double_start_and_unstarted_stop_raise(self):
        async def main():
            server = StreamServer(workers=0)
            gateway = StreamGateway(server)
            with pytest.raises(ValidationError, match="not started"):
                await gateway.stop()
            await gateway.start()
            with pytest.raises(ValidationError, match="already started"):
                await gateway.start()
            await gateway.stop()

        run(main())


# ----------------------------------------------------------------------
# HTTP shim
# ----------------------------------------------------------------------
class TestHttpShim:
    @staticmethod
    async def _get(host, port, path):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.decode().splitlines()[0], json.loads(body)

    def test_healthz_stats_and_404(self):
        async def scenario(gateway):
            port = await gateway.start_http()
            status, body = await self._get(gateway.host, port, "/healthz")
            assert status.endswith("200 OK")
            assert body == {"status": "ok"}
            status, stats = await self._get(gateway.host, port, "/stats")
            assert status.endswith("200 OK")
            assert stats["sessions_connected"] == 0
            assert stats["draining"] is False
            status, _ = await self._get(gateway.host, port, "/missing")
            assert status.endswith("404 Not Found")
            with pytest.raises(ValidationError, match="already started"):
                await gateway.start_http()

        run(_with_gateway(scenario))
