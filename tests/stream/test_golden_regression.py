"""Golden end-to-end serving regression: an exact committed snapshot.

A 2-session x 6-frame serve is snapshotted into
``tests/stream/golden_serve.json``: the ServeSummary scalars plus, per
frame, the simulated latency, cache counters, instance counts and a
SHA-256 of the rendered image bytes.  Both render backends must
reproduce the snapshot *exactly* — the backends are bit-identical by
contract, and the serving pipeline on top of them is deterministic —
so any refactor that silently drifts images, latencies or cache
behaviour fails here first, with a per-field diff instead of a distant
downstream symptom.

When a change *intentionally* alters serving output, regenerate with:

    REPRO_GOLDEN_REGEN=1 PYTHONPATH=src python \\
        tests/stream/test_golden_regression.py

and commit the updated fixture alongside the change that explains it.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    ContentCacheConfig,
    StreamServer,
    StreamSession,
    economics_to_dict,
    streaming_config,
)

pytestmark = pytest.mark.golden

FIXTURE = Path(__file__).parent / "golden_serve.json"

BACKENDS = ("reference", "vectorized")
DETAIL = 0.25
N_FRAMES = 6


def _sessions(backend: str) -> list[StreamSession]:
    config = streaming_config(backend=backend)
    heavy, light = CATALOG["bicycle"], CATALOG["female_4"]
    return [
        StreamSession(
            "golden-orbit",
            "bicycle",
            CameraTrajectory.for_scene(
                heavy, "orbit", n_frames=N_FRAMES, detail=DETAIL
            ),
            detail=DETAIL,
            keep_images=True,
            config=config,
        ),
        StreamSession(
            "golden-jitter",
            "female_4",
            CameraTrajectory.for_scene(
                light, "head_jitter", n_frames=N_FRAMES, seed=5, detail=DETAIL
            ),
            detail=DETAIL,
            keep_images=True,
            config=config,
        ),
    ]


def _image_hash(image) -> str:
    digest = hashlib.sha256()
    digest.update(str(image.shape).encode())
    digest.update(str(image.dtype).encode())
    digest.update(image.tobytes())
    return digest.hexdigest()


def _snapshot(backend: str) -> dict:
    """Serve the golden scenario and flatten it to JSON-safe values."""
    with StreamServer(workers=0) as server:
        results, summary = server.serve_timed(_sessions(backend))
    return {
        "summary": {
            "workers": summary.workers,
            "sessions": summary.sessions,
            "total_frames": summary.total_frames,
            "sim_makespan_seconds": summary.sim_makespan_seconds,
            "recoveries": summary.recoveries,
            "migrations": summary.migrations,
        },
        "sessions": {
            r.session_id: [
                {
                    "frame": f.frame,
                    "n_visible": f.n_visible,
                    "n_instances": f.n_instances,
                    "sim_seconds": f.sim_seconds,
                    "hit_rate": f.hit_rate,
                    "cumulative_hit_rate": f.cache.cumulative_hit_rate,
                    "carried_hit_rate": f.cache.carried_hit_rate,
                    "binning_reuse": f.binning.reuse_fraction,
                    "detail": f.detail,
                    "image_sha256": _image_hash(f.image),
                }
                for f in r.report.frames
            ]
            for r in results
        },
    }


def _content_sessions(backend: str) -> list[StreamSession]:
    """Two viewers on the identical orbit — the dedup-path scenario."""
    config = streaming_config(backend=backend)
    spec = CATALOG["bicycle"]
    trajectory = CameraTrajectory.for_scene(
        spec, "orbit", n_frames=N_FRAMES, detail=DETAIL
    )
    return [
        StreamSession(
            f"golden-viewer-{tag}",
            "bicycle",
            trajectory,
            detail=DETAIL,
            keep_images=True,
            config=config,
        )
        for tag in ("a", "b")
    ]


def _content_snapshot(backend: str) -> dict:
    """Serve two co-located viewers through the content cache and pin
    the dedup path: which tier served every frame, the exact per-tier
    hit/miss/byte counters, and the served images' hashes (which must
    equal the renderer's)."""
    with StreamServer(workers=0, content_cache=ContentCacheConfig()) as server:
        results = server.serve(_content_sessions(backend))
        economics = economics_to_dict(server.content_totals)
    return {
        "economics": economics,
        "sessions": {
            r.session_id: [
                {
                    "frame": f.frame,
                    "served_from": f.served_from,
                    "sim_seconds": f.sim_seconds,
                    "hit_rate": f.hit_rate,
                    "cumulative_hit_rate": f.cache.cumulative_hit_rate,
                    "image_sha256": _image_hash(f.image),
                }
                for f in r.report.frames
            ]
            for r in results
        },
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_serve_matches_golden_snapshot(backend):
    assert FIXTURE.exists(), (
        f"golden fixture {FIXTURE} is missing; regenerate it with "
        "REPRO_GOLDEN_REGEN=1 PYTHONPATH=src python "
        "tests/stream/test_golden_regression.py"
    )
    golden = json.loads(FIXTURE.read_text())
    snapshot = _snapshot(backend)
    assert snapshot["summary"] == golden["summary"], (
        f"[{backend}] serve summary drifted from the golden snapshot; "
        "if intentional, regenerate the fixture (see module docstring)"
    )
    assert set(snapshot["sessions"]) == set(golden["sessions"])
    for session_id, frames in snapshot["sessions"].items():
        for mine, ref in zip(frames, golden["sessions"][session_id]):
            assert mine == ref, (
                f"[{backend}] {session_id} frame {mine['frame']} drifted "
                f"from the golden snapshot: {mine} != {ref}"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_content_dedup_matches_golden_snapshot(backend):
    """The dedup serve is pinned end to end: tier provenance, per-tier
    economics counters, timing and image hashes must all replay the
    committed snapshot exactly."""
    golden = json.loads(FIXTURE.read_text())
    assert "content" in golden, (
        f"golden fixture {FIXTURE} predates the content-cache section; "
        "regenerate it (see module docstring)"
    )
    snapshot = _content_snapshot(backend)
    assert snapshot["economics"] == golden["content"]["economics"], (
        f"[{backend}] content-cache economics drifted from the golden "
        "snapshot; if intentional, regenerate the fixture"
    )
    assert set(snapshot["sessions"]) == set(golden["content"]["sessions"])
    for session_id, frames in snapshot["sessions"].items():
        for mine, ref in zip(frames, golden["content"]["sessions"][session_id]):
            assert mine == ref, (
                f"[{backend}] {session_id} frame {mine['frame']} drifted "
                f"from the golden content snapshot: {mine} != {ref}"
            )
    # The dedup-served viewer must re-emit the renderer's exact bytes.
    viewer_a, viewer_b = (
        snapshot["sessions"][f"golden-viewer-{tag}"] for tag in ("a", "b")
    )
    for fa, fb in zip(viewer_a, viewer_b):
        assert fb["served_from"] == "worker"
        assert fa["image_sha256"] == fb["image_sha256"]


def _regenerate() -> None:  # pragma: no cover - maintenance entry point
    import sys

    snapshots = {backend: _snapshot(backend) for backend in BACKENDS}
    contents = {backend: _content_snapshot(backend) for backend in BACKENDS}
    first = snapshots[BACKENDS[0]]
    first_content = contents[BACKENDS[0]]
    for backend in BACKENDS:
        if snapshots[backend] != first or contents[backend] != first_content:
            sys.exit(
                f"backend '{backend}' disagrees with '{BACKENDS[0]}'; "
                "fix backend parity before committing a golden fixture"
            )
    first["content"] = first_content
    FIXTURE.write_text(json.dumps(first, indent=2) + "\n")
    print(f"wrote {FIXTURE} ({first['summary']['total_frames']} frames)")


if __name__ == "__main__":  # pragma: no cover
    if os.environ.get("REPRO_GOLDEN_REGEN") != "1":
        raise SystemExit(
            "set REPRO_GOLDEN_REGEN=1 to confirm fixture regeneration"
        )
    _regenerate()
