"""StreamServer: isolation, batching, the busy protocol, scheduling,
admission control, worker-crash recovery, the incremental serving
protocol, and the chaos matrix (crash at every frame index x placement
x QoS mode)."""

import numpy as np
import pytest

from repro.core.gbu import GBUDevice
from repro.errors import SimulationError, ValidationError
from repro.gaussians import build_render_lists, project
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    FrameStream,
    RoundRobinScheduler,
    StreamServer,
    StreamSession,
    streaming_config,
)
from repro.stream.server import _WorkerState

DETAIL = 0.25


def _sessions(n_frames=4, keep_images=False, budgets=None):
    spec = CATALOG["bicycle"]
    return [
        StreamSession(
            "jitter",
            "bicycle",
            CameraTrajectory.for_scene(
                spec, "head_jitter", n_frames=n_frames, seed=9, detail=DETAIL
            ),
            n_frames=None if budgets is None else budgets[0],
            detail=DETAIL,
            keep_images=keep_images,
        ),
        StreamSession(
            "orbit",
            "bicycle",
            CameraTrajectory.for_scene(
                spec, "orbit", n_frames=n_frames, detail=DETAIL
            ),
            n_frames=None if budgets is None else budgets[1],
            detail=DETAIL,
            keep_images=keep_images,
        ),
    ]


def _key_fields(report):
    return [
        (f.frame, f.n_visible, f.n_instances, f.hit_rate,
         f.cache.cumulative_hit_rate, f.binning.reuse_fraction)
        for f in report.frames
    ]


def test_concurrent_sessions_do_not_bleed_state():
    """Serving two sessions together equals serving each alone."""
    sessions = _sessions()
    with StreamServer(workers=0) as server:
        results = server.serve(sessions)
    for session, result in zip(sessions, results):
        solo = FrameStream(
            session.scene, session.trajectory, detail=session.detail
        ).run()
        assert _key_fields(result.report) == _key_fields(solo)


def test_multiprocess_serving_matches_in_process():
    sessions = _sessions(n_frames=3)
    with StreamServer(workers=0) as server:
        local = server.serve(sessions)
    with StreamServer(workers=2) as server:
        remote = server.serve(sessions)
    for a, b in zip(local, remote):
        assert _key_fields(a.report) == _key_fields(b.report)
    assert {r.worker for r in remote} == {0, 1}


def test_serve_summary_counts_every_frame():
    sessions = _sessions(n_frames=3)
    with StreamServer(workers=0) as server:
        results, summary = server.serve_timed(sessions)
    assert summary.total_frames == sum(r.report.n_frames for r in results) == 6
    assert summary.sim_frames_per_sec > 0
    assert summary.wall_frames_per_sec > 0


def test_round_robin_placement_and_same_scene_batching():
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=1, detail=DETAIL)
    sessions = [
        StreamSession(f"s{i}", scene, traj, detail=DETAIL)
        for i, scene in enumerate(["bicycle", "bicycle", "bonsai", "bicycle"])
    ]
    scheduler = RoundRobinScheduler(sessions, workers=2)
    assert [scheduler.worker_of(s.session_id) for s in sessions] == [0, 1, 0, 1]
    assignments = scheduler.tick_assignments()
    # Worker 0 hosts s0 (bicycle) and s2 (bonsai): two one-session
    # batches; worker 1 hosts s1 and s3, both bicycle: one batch of 2.
    batches0 = StreamServer._scene_batches(assignments[0])
    batches1 = StreamServer._scene_batches(assignments[1])
    assert sorted(len(b) for b in batches0) == [1, 1]
    assert [len(b) for b in batches1] == [2]
    assert {s.session_id for s in batches1[0]} == {"s1", "s3"}


def test_duplicate_session_ids_rejected():
    sessions = _sessions()
    twin = [sessions[0], sessions[0]]
    with StreamServer(workers=0) as server:
        with pytest.raises(ValidationError):
            server.serve(twin)
    with pytest.raises(ValidationError):
        StreamServer(workers=-1)


def test_finished_sessions_stop_being_dispatched():
    """A budget-exhausted session costs no further tick round-trips."""
    sessions = _sessions(n_frames=6, budgets=[2, 6])
    with StreamServer(workers=0) as server:
        results = server.serve(sessions)
        counts = dict(server.dispatch_counts)
    assert [r.report.n_frames for r in results] == [2, 6]
    # One dispatch per rendered frame: completion rides back with the
    # final frame, so the short session is never named again.
    assert counts == {"jitter": 2, "orbit": 6}


def test_stale_session_id_raises_validation_error():
    """A session id surviving a reset (or a half-registered stream) is a
    ValidationError, never a bare KeyError."""
    session = _sessions(n_frames=2)[0]
    state = _WorkerState()
    state.render_tick([session])
    state.reset()
    with pytest.raises(ValidationError):
        state.render_tick([session.session_id])
    # Half-registered: the stream survived but its budget did not (the
    # recovery-path hazard) — same error, routed through registration.
    state.render_tick([session])
    state.budgets.pop(session.session_id)
    with pytest.raises(ValidationError):
        state.render_tick([session.session_id])


def test_serve_failure_leaves_no_live_executors():
    """An unrecoverable serve tears the pool down before raising."""
    sessions = _sessions(n_frames=3)
    server = StreamServer(
        workers=2, fault_injector=lambda tick, w: w == 0, max_respawns=0
    )
    with pytest.raises(SimulationError):
        server.serve(sessions)
    assert server._executors == []
    assert server._local_states == []
    # The server recovers on the next serve with the injector removed.
    server.fault_injector = None
    try:
        results = server.serve(sessions)
    finally:
        server.close()
    assert [r.report.n_frames for r in results] == [3, 3]


def _frame_evidence(report):
    """What byte-identical recovery must preserve per frame."""
    return [
        (
            f.frame,
            f.sim_seconds,
            f.hit_rate,
            f.cache.cumulative_hit_rate,
            f.cache.carried_hit_rate,
        )
        for f in report.frames
    ]


@pytest.mark.parametrize("crash_tick", [1, 7])
def test_worker_crash_recovery_matches_uninterrupted_run(crash_tick):
    """Kill a worker mid-stream; recovered frames must be identical."""
    sessions = _sessions(n_frames=16, keep_images=True)
    with StreamServer(workers=0) as server:
        baseline = server.serve(sessions)

    injector = lambda tick, w: tick == crash_tick  # noqa: E731 - every worker
    with StreamServer(
        workers=2, local=True, fault_injector=injector
    ) as server:
        recovered = server.serve(sessions)
        assert server.recoveries >= 1

    for before, after in zip(baseline, recovered):
        assert _frame_evidence(before.report) == _frame_evidence(after.report)
        for fb, fa in zip(before.report.frames, after.report.frames):
            assert np.array_equal(fb.image, fa.image)


def test_process_worker_crash_recovery_matches_uninterrupted_run():
    """Same invariant through a real BrokenProcessPool respawn."""
    sessions = _sessions(n_frames=5)
    with StreamServer(workers=0) as server:
        baseline = server.serve(sessions)
    injector = lambda tick, w: tick == 2 and w == 0  # noqa: E731
    with StreamServer(workers=2, fault_injector=injector) as server:
        recovered = server.serve(sessions)
        assert server.recoveries == 1
    for before, after in zip(baseline, recovered):
        assert _frame_evidence(before.report) == _frame_evidence(after.report)


def test_migrate_crash_restore_migrate_is_byte_identical():
    """Double migration with a crash in between: migrate -> crash ->
    restore -> migrate again must replay byte-identically, including
    the QoS controller state of adaptive sessions."""
    spec_heavy, spec_light = CATALOG["bicycle"], CATALOG["female_4"]
    sessions = [
        StreamSession(
            "light",
            "female_4",
            CameraTrajectory.for_scene(
                spec_light, "head_jitter", n_frames=10, seed=1, detail=DETAIL
            ),
            detail=DETAIL,
            keep_images=True,
            target_fps=300.0,
        ),
        StreamSession(
            "heavy-a",
            "bicycle",
            CameraTrajectory.for_scene(
                spec_heavy, "head_jitter", n_frames=10, seed=2, detail=DETAIL
            ),
            detail=DETAIL,
            keep_images=True,
            target_fps=300.0,
        ),
        StreamSession(
            "heavy-b",
            "bicycle",
            CameraTrajectory.for_scene(
                spec_heavy, "head_jitter", n_frames=10, seed=3, detail=DETAIL
            ),
            detail=DETAIL,
            keep_images=True,
            target_fps=300.0,
        ),
    ]
    with StreamServer(workers=0) as server:
        baseline = server.serve(sessions)

    # The lying estimator stacks both heavies, so observed latencies
    # keep proposing migrations; the crash at tick 4 forces a restore
    # between them.
    lying = lambda scene, detail: 1.0 if scene == "bicycle" else 1000.0  # noqa: E731
    injector = lambda tick, w: tick == 4  # noqa: E731 - every worker
    with StreamServer(
        workers=2,
        local=True,
        placement="load",
        estimator=lying,
        rebalance_threshold=0.2,
        fault_injector=injector,
    ) as server:
        relayed = server.serve(sessions)
        assert len(server.migrations) >= 2
        assert server.recoveries >= 1

    for before, after in zip(baseline, relayed):
        assert _frame_evidence(before.report) == _frame_evidence(after.report)
        assert before.report.detail_trace == after.report.detail_trace
        for fb, fa in zip(before.report.frames, after.report.frames):
            assert np.array_equal(fb.image, fa.image)


def test_rebalance_migration_preserves_results():
    """A checkpoint migration changes placement, never output."""
    spec_heavy, spec_light = CATALOG["bicycle"], CATALOG["female_4"]
    sessions = [
        StreamSession(
            "light",
            "female_4",
            CameraTrajectory.for_scene(
                spec_light, "head_jitter", n_frames=8, seed=1, detail=DETAIL
            ),
            detail=DETAIL,
        ),
        StreamSession(
            "heavy-a",
            "bicycle",
            CameraTrajectory.for_scene(
                spec_heavy, "head_jitter", n_frames=8, seed=2, detail=DETAIL
            ),
            detail=DETAIL,
        ),
        StreamSession(
            "heavy-b",
            "bicycle",
            CameraTrajectory.for_scene(
                spec_heavy, "head_jitter", n_frames=8, seed=3, detail=DETAIL
            ),
            detail=DETAIL,
        ),
    ]
    with StreamServer(workers=0) as server:
        baseline = server.serve(sessions)

    # Lie about the heavy scene so both heavies stack on one worker;
    # observed latencies then trigger a rebalance migration.
    lying = lambda scene, detail: 1.0 if scene == "bicycle" else 1000.0  # noqa: E731
    with StreamServer(
        workers=2,
        local=True,
        placement="load",
        estimator=lying,
        rebalance_threshold=0.5,
    ) as server:
        rebalanced = server.serve(sessions)
        assert len(server.migrations) >= 1

    for before, after in zip(baseline, rebalanced):
        assert _frame_evidence(before.report) == _frame_evidence(after.report)


def test_admission_control_backpressure_preserves_results():
    sessions = _sessions(n_frames=4)
    with StreamServer(workers=0) as server:
        unlimited = server.serve(sessions)
    with StreamServer(workers=0, max_inflight=1) as server:
        throttled = server.serve(sessions)
    for a, b in zip(unlimited, throttled):
        assert _frame_evidence(a.report) == _frame_evidence(b.report)
    with pytest.raises(ValidationError):
        StreamServer(workers=0, max_inflight=0).serve(sessions)


def test_serve_summary_reports_recoveries():
    sessions = _sessions(n_frames=4)
    injector = lambda tick, w: tick == 1 and w == 0  # noqa: E731
    with StreamServer(
        workers=2, local=True, fault_injector=injector
    ) as server:
        _, summary = server.serve_timed(sessions)
    assert summary.recoveries == 1
    assert summary.migrations == 0


def test_unknown_placement_is_rejected():
    sessions = _sessions(n_frames=1)
    server = StreamServer(workers=0, placement="bogus")
    with pytest.raises(ValidationError):
        server.serve(sessions)


def test_incremental_protocol_matches_serve():
    """begin / submit / step / finish reproduces serve() exactly."""
    sessions = _sessions(n_frames=3)
    with StreamServer(workers=0) as server:
        baseline = server.serve(sessions)
    with StreamServer(workers=0) as server:
        server.begin([])
        for s in sessions:
            server.submit(s)
        ticks = 0
        while True:
            result = server.step()
            if result.n_frames == 0 and not result.done:
                break
            ticks += 1
            assert result.sim_seconds >= 0.0
        incremental = server.finish()
        assert not server.serving
    assert ticks >= 3
    for a, b in zip(baseline, incremental):
        assert a.session_id == b.session_id
        assert _frame_evidence(a.report) == _frame_evidence(b.report)


def test_extract_inject_moves_a_session_byte_identically():
    """Mid-stream extract on one server, inject on another: the stream
    resumes exactly where it left off, report riding along."""
    sessions = _sessions(n_frames=6)
    with StreamServer(workers=0) as server:
        baseline = server.serve(sessions)

    src = StreamServer(workers=0)
    dst = StreamServer(workers=0)
    try:
        src.begin(sessions)
        for _ in range(2):
            src.step()
        moved, ckpt, report = src.extract_session("jitter")
        assert moved.session_id == "jitter"
        assert ckpt is not None and ckpt.next_frame == 2
        assert report.n_frames == 2
        dst.begin([])
        dst.inject_session(moved, ckpt, report)
        while src.n_active:
            src.step()
        while dst.n_active:
            dst.step()
        results = {r.session_id: r for r in src.finish() + dst.finish()}
    finally:
        src.close()
        dst.close()
    assert set(results) == {"jitter", "orbit"}
    for ref in baseline:
        assert _frame_evidence(ref.report) == _frame_evidence(
            results[ref.session_id].report
        )


def test_incremental_protocol_validation():
    sessions = _sessions(n_frames=1)
    server = StreamServer(workers=0)
    with pytest.raises(ValidationError):
        server.step()
    with pytest.raises(ValidationError):
        server.finish()
    with pytest.raises(ValidationError):
        server.submit(sessions[0])
    try:
        server.begin(sessions)
        with pytest.raises(ValidationError):
            server.begin([])
        with pytest.raises(ValidationError):
            server.submit(sessions[0])
        with pytest.raises(ValidationError):
            server.extract_session("nobody")
        with pytest.raises(ValidationError):
            server.inject_session(sessions[1])  # id already being served
        # A mistaken serve() must refuse *without* destroying the open
        # serve: the incremental run continues and drains normally.
        with pytest.raises(ValidationError):
            server.serve(_sessions(n_frames=1))
        assert server.serving
        while server.n_active:
            server.step()
        results = server.finish()
        assert [r.report.n_frames for r in results] == [1, 1]
    finally:
        server.close()


# ----------------------------------------------------------------------
# Chaos matrix: crash at every frame index x placement x QoS mode
# ----------------------------------------------------------------------
CHAOS_FRAMES = 4


def _chaos_sessions(qos_mode: str):
    """Two mixed-weight sessions, optionally under deadline control."""
    target_fps = None if qos_mode == "none" else 300.0
    from repro.stream import QoSPolicy

    policy = QoSPolicy.fixed() if qos_mode == "fixed" else None
    spec_heavy, spec_light = CATALOG["bicycle"], CATALOG["female_4"]
    return [
        StreamSession(
            "heavy",
            "bicycle",
            CameraTrajectory.for_scene(
                spec_heavy, "head_jitter", n_frames=CHAOS_FRAMES, seed=2,
                detail=DETAIL,
            ),
            detail=DETAIL,
            keep_images=True,
            target_fps=target_fps,
            qos=policy,
        ),
        StreamSession(
            "light",
            "female_4",
            CameraTrajectory.for_scene(
                spec_light, "orbit", n_frames=CHAOS_FRAMES, detail=DETAIL
            ),
            detail=DETAIL,
            keep_images=True,
            target_fps=target_fps,
            qos=policy,
        ),
    ]


@pytest.fixture(scope="module")
def chaos_baselines():
    """Uninterrupted single-process reference runs, one per QoS mode."""
    out = {}
    for qos_mode in ("adaptive", "fixed"):
        with StreamServer(workers=0) as server:
            out[qos_mode] = server.serve(_chaos_sessions(qos_mode))
    return out


def _chaos_evidence(report):
    """Everything recovery must reproduce: timing, cache counters
    (per-frame and cumulative), QoS verdicts and the detail trace."""
    return [
        (
            f.frame,
            f.sim_seconds,
            f.hit_rate,
            f.cache.cumulative_hit_rate,
            f.cache.carried_hit_rate,
            f.detail,
            None if f.qos is None else (f.qos.met, f.qos.margin_seconds),
        )
        for f in report.frames
    ]


@pytest.mark.chaos
@pytest.mark.parametrize("crash_tick", range(CHAOS_FRAMES))
@pytest.mark.parametrize("placement", ["rr", "load"])
@pytest.mark.parametrize("qos_mode", ["adaptive", "fixed"])
def test_chaos_matrix_recovery_is_byte_identical(
    crash_tick, placement, qos_mode, chaos_baselines
):
    """Kill every worker at every frame index under every placement and
    QoS mode; recovery must replay images, detail traces and cache
    counters byte for byte."""
    injector = lambda tick, w: tick == crash_tick  # noqa: E731 - all workers
    with StreamServer(
        workers=2,
        local=True,
        placement=placement,
        fault_injector=injector,
        max_respawns=4,
    ) as server:
        recovered = server.serve(_chaos_sessions(qos_mode))
        assert server.recoveries >= 1
    for before, after in zip(chaos_baselines[qos_mode], recovered):
        assert _chaos_evidence(before.report) == _chaos_evidence(after.report)
        assert before.report.detail_trace == after.report.detail_trace
        for fb, fa in zip(before.report.frames, after.report.frames):
            assert np.array_equal(fb.image, fa.image)


def test_tick_result_composition():
    """TickResult.merged folds batches; counters compose."""
    from repro.stream import FrameRecord, TickResult

    sessions = _sessions(n_frames=2)
    with StreamServer(workers=0) as server:
        server.begin(sessions)
        merged = server.step()
        rest = server.step()
        server.finish()
    assert merged.n_frames == 2
    assert merged.sim_seconds == pytest.approx(
        sum(record.sim_seconds for _, record in merged.frames)
    )
    refolded = TickResult.merged([merged, rest])
    assert refolded.n_frames == merged.n_frames + rest.n_frames
    assert all(isinstance(r, FrameRecord) for _, r in refolded.frames)


def test_serve_summary_merge():
    from repro.stream import ServeSummary

    a = ServeSummary(
        workers=1, sessions=2, total_frames=10,
        sim_makespan_seconds=2.0, wall_seconds=1.0, recoveries=1,
    )
    b = ServeSummary(
        workers=2, sessions=3, total_frames=20,
        sim_makespan_seconds=3.0, wall_seconds=0.5, migrations=2,
    )
    merged = ServeSummary.merge([a, b])
    assert merged.workers == 3
    assert merged.sessions == 5
    assert merged.total_frames == 30
    assert merged.sim_makespan_seconds == 3.0
    assert merged.wall_seconds == 1.0
    assert merged.recoveries == 1 and merged.migrations == 2
    assert merged.sim_frames_per_sec == pytest.approx(10.0)
    empty = ServeSummary.merge([])
    assert empty.total_frames == 0 and empty.sim_frames_per_sec == 0.0


def test_device_busy_protocol_is_honored():
    """A frame left in flight on the shared device is drained, not fatal."""
    spec = CATALOG["bonsai"]
    bundle = build_scene(spec, detail=DETAIL)
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    device = GBUDevice(config=streaming_config())

    # Another "session" leaves a frame in flight on the worker device.
    cloud, _ = bundle.frame_cloud(0)
    projected = project(cloud, traj.camera_at(0))
    lists = build_render_lists(projected)
    width, height = projected.image_size
    stale = np.empty((height, width, 3))
    device.GBU_render_image(height, width, projected, lists, stale)
    assert device.GBU_check_status() == 1  # busy

    stream = FrameStream(
        spec, traj, detail=DETAIL, bundle=bundle, device=device
    )
    record = stream.render_next()
    assert record.frame == 0
    assert device.GBU_check_status() == 0  # drained and completed
