"""StreamServer: session isolation, batching, the busy protocol."""

import numpy as np
import pytest

from repro.core.gbu import GBUDevice
from repro.errors import ValidationError
from repro.gaussians import build_render_lists, project
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    FrameStream,
    StreamServer,
    StreamSession,
    streaming_config,
)

DETAIL = 0.25


def _sessions(n_frames=4):
    spec = CATALOG["bicycle"]
    return [
        StreamSession(
            "jitter",
            "bicycle",
            CameraTrajectory.for_scene(
                spec, "head_jitter", n_frames=n_frames, seed=9, detail=DETAIL
            ),
            detail=DETAIL,
        ),
        StreamSession(
            "orbit",
            "bicycle",
            CameraTrajectory.for_scene(
                spec, "orbit", n_frames=n_frames, detail=DETAIL
            ),
            detail=DETAIL,
        ),
    ]


def _key_fields(report):
    return [
        (f.frame, f.n_visible, f.n_instances, f.hit_rate,
         f.cache.cumulative_hit_rate, f.binning.reuse_fraction)
        for f in report.frames
    ]


def test_concurrent_sessions_do_not_bleed_state():
    """Serving two sessions together equals serving each alone."""
    sessions = _sessions()
    with StreamServer(workers=0) as server:
        results = server.serve(sessions)
    for session, result in zip(sessions, results):
        solo = FrameStream(
            session.scene, session.trajectory, detail=session.detail
        ).run()
        assert _key_fields(result.report) == _key_fields(solo)


def test_multiprocess_serving_matches_in_process():
    sessions = _sessions(n_frames=3)
    with StreamServer(workers=0) as server:
        local = server.serve(sessions)
    with StreamServer(workers=2) as server:
        remote = server.serve(sessions)
    for a, b in zip(local, remote):
        assert _key_fields(a.report) == _key_fields(b.report)
    assert {r.worker for r in remote} == {0, 1}


def test_serve_summary_counts_every_frame():
    sessions = _sessions(n_frames=3)
    with StreamServer(workers=0) as server:
        results, summary = server.serve_timed(sessions)
    assert summary.total_frames == sum(r.report.n_frames for r in results) == 6
    assert summary.sim_frames_per_sec > 0
    assert summary.wall_frames_per_sec > 0


def test_round_robin_placement_and_same_scene_batching():
    spec = CATALOG["bicycle"]
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=1, detail=DETAIL)
    sessions = [
        StreamSession(f"s{i}", scene, traj, detail=DETAIL)
        for i, scene in enumerate(["bicycle", "bicycle", "bonsai", "bicycle"])
    ]
    placement = StreamServer.assign_workers(sessions, 2)
    assert placement == [0, 1, 0, 1]
    batches = StreamServer._batches(sessions, placement, 2)
    # Worker 0 hosts s0 (bicycle) and s2 (bonsai): two one-session
    # batches; worker 1 hosts s1 and s3, both bicycle: one batch of 2.
    assert sorted(len(b) for b in batches[0]) == [1, 1]
    assert [len(b) for b in batches[1]] == [2]
    assert {s.session_id for s in batches[1][0]} == {"s1", "s3"}


def test_duplicate_session_ids_rejected():
    sessions = _sessions()
    twin = [sessions[0], sessions[0]]
    with StreamServer(workers=0) as server:
        with pytest.raises(ValidationError):
            server.serve(twin)
    with pytest.raises(ValidationError):
        StreamServer(workers=-1)


def test_device_busy_protocol_is_honored():
    """A frame left in flight on the shared device is drained, not fatal."""
    spec = CATALOG["bonsai"]
    bundle = build_scene(spec, detail=DETAIL)
    traj = CameraTrajectory.for_scene(spec, "frozen", n_frames=2, detail=DETAIL)
    device = GBUDevice(config=streaming_config())

    # Another "session" leaves a frame in flight on the worker device.
    cloud, _ = bundle.frame_cloud(0)
    projected = project(cloud, traj.camera_at(0))
    lists = build_render_lists(projected)
    width, height = projected.image_size
    stale = np.empty((height, width, 3))
    device.GBU_render_image(height, width, projected, lists, stale)
    assert device.GBU_check_status() == 1  # busy

    stream = FrameStream(
        spec, traj, detail=DETAIL, bundle=bundle, device=device
    )
    record = stream.render_next()
    assert record.frame == 0
    assert device.GBU_check_status() == 0  # drained and completed
