"""TrafficGenerator: seeded open-loop arrivals, mixes, rate profiles."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stream.traffic import (
    MIXES,
    RateProfile,
    SessionArchetype,
    TrafficGenerator,
)


def _gen(**kwargs):
    defaults = dict(mix="mixed", rate=8.0, duration=2.0, seed=11, detail=0.25)
    defaults.update(kwargs)
    return TrafficGenerator(**defaults)


def _fingerprint(arrivals):
    return [
        (
            a.time,
            a.session_id,
            a.session.scene,
            a.session.frame_budget,
            a.session.detail,
            a.session.target_fps,
            tuple(
                tuple(np.asarray(c.position)) for c in a.session.trajectory
            ),
        )
        for a in arrivals
    ]


def test_same_seed_is_bitwise_identical():
    a = _gen().generate()
    b = _gen().generate()
    assert _fingerprint(a) == _fingerprint(b)


def test_different_seeds_differ():
    a = _gen(seed=1).generate()
    b = _gen(seed=2).generate()
    assert _fingerprint(a) != _fingerprint(b)


def test_arrivals_sorted_and_inside_window():
    arrivals = _gen(rate=20.0).generate()
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    assert all(0.0 < t < 2.0 for t in times)


def test_session_ids_unique_and_archetype_tagged():
    arrivals = _gen(rate=20.0).generate()
    ids = [a.session_id for a in arrivals]
    assert len(set(ids)) == len(ids)
    names = {a.name for a in MIXES["mixed"]}
    assert all(i.rsplit("-", 1)[0] in names for i in ids)


def test_frame_budgets_and_details_follow_archetypes():
    arrivals = _gen(rate=30.0).generate()
    by_name = {a.name: a for a in MIXES["mixed"]}
    assert arrivals, "high-rate window must generate sessions"
    for arrival in arrivals:
        arch = by_name[arrival.session_id.rsplit("-", 1)[0]]
        lo, hi = arch.frames
        assert lo <= arrival.session.frame_budget <= hi
        assert arrival.session.detail == pytest.approx(arch.detail * 0.25)
        if arch.target_fps is None:
            assert arrival.session.target_fps is None
        else:
            assert arrival.session.target_fps in arch.target_fps


def test_mixed_mix_samples_qos_sessions():
    arrivals = _gen(rate=40.0, duration=3.0).generate()
    assert any(a.session.target_fps is not None for a in arrivals)
    assert any(a.session.target_fps is None for a in arrivals)


def test_rate_scales_expected_arrival_count():
    slow = len(_gen(rate=5.0, duration=4.0, seed=0).generate())
    fast = len(_gen(rate=50.0, duration=4.0, seed=0).generate())
    assert fast > 2 * slow


def test_max_sessions_caps_generation():
    arrivals = _gen(rate=50.0, max_sessions=5).generate()
    assert len(arrivals) == 5


def test_profiles_shape_the_rate():
    """Diurnal concentrates arrivals mid-window; ramp toward the end."""
    constant = RateProfile("constant")
    diurnal = RateProfile("diurnal", floor=0.1)
    ramp = RateProfile("ramp", floor=0.1)
    assert constant.multiplier(0.3) == 1.0
    assert diurnal.multiplier(0.5) == pytest.approx(1.0)
    assert diurnal.multiplier(0.0) == pytest.approx(0.1)
    assert ramp.multiplier(0.0) == pytest.approx(0.1)
    assert ramp.multiplier(1.0) == pytest.approx(1.0)
    # Statistically: the ramp's second half holds most arrivals.
    arrivals = _gen(
        rate=60.0, duration=4.0, seed=5, profile=ramp
    ).generate()
    late = sum(1 for a in arrivals if a.time > 2.0)
    assert late > len(arrivals) - late


def test_generate_sessions_matches_generate():
    gen = _gen()
    assert [a.session_id for a in gen.generate()] == [
        s.session_id for s in gen.generate_sessions()
    ]


def test_compact_mode_is_bitwise_equivalent():
    """Compact generation (digest-scale) must change nothing observable
    except the trajectory's materialized pose count."""
    full = _gen(rate=40.0, duration=3.0, pipeline="digest").generate()
    compact = _gen(
        rate=40.0, duration=3.0, pipeline="digest", compact=True
    ).generate()
    assert len(full) == len(compact)
    for a, b in zip(full, compact):
        assert a.time == b.time
        assert a.session_id == b.session_id
        assert a.session.scene == b.session.scene
        assert a.session.frame_budget == b.session.frame_budget
        assert a.session.detail == b.session.detail
        assert a.session.target_fps == b.session.target_fps
        assert b.session.trajectory.n_frames == 1
        assert np.array_equal(
            np.asarray(a.session.trajectory.camera_at(0).position),
            np.asarray(b.session.trajectory.camera_at(0).position),
        )


def test_compact_sessions_ride_the_digest_pipeline():
    arrivals = _gen(pipeline="digest", compact=True).generate()
    assert all(a.session.pipeline == "digest" for a in arrivals)


@pytest.mark.parametrize(
    "profile",
    [None, RateProfile("diurnal", floor=0.2), RateProfile("ramp", floor=0.2)],
)
def test_arrival_counts_match_analytic_expectation(profile):
    """At 10^4-session scale the thinned-Poisson arrival count must sit
    within a few standard deviations of rate x duration x mean
    multiplier (the 10^5-rate variant runs in the scale benchmark)."""
    gen = _gen(
        rate=2500.0,
        duration=4.0,
        seed=3,
        profile=profile,
        pipeline="digest",
        compact=True,
    )
    expected = gen.expected_sessions()
    mult = 1.0 if profile is None else profile.mean_multiplier
    assert expected == pytest.approx(2500.0 * 4.0 * mult)
    n = len(gen.generate())
    # Poisson-dominated spread; 5 sigma keeps the test seed-robust.
    assert abs(n - expected) < 5.0 * np.sqrt(expected)


def test_expected_sessions_respects_cap():
    gen = _gen(rate=50.0, duration=2.0, max_sessions=10)
    assert gen.expected_sessions() == 10.0


def test_multiplier_array_matches_scalar():
    phases = np.linspace(0.0, 1.0, 33)
    for profile in (
        RateProfile("constant"),
        RateProfile("diurnal", floor=0.15),
        RateProfile("ramp", floor=0.3),
    ):
        scalar = np.array([profile.multiplier(p) for p in phases])
        assert np.allclose(profile.multiplier_array(phases), scalar)


def test_uncapped_overflow_rate_is_rejected():
    with pytest.raises(ValidationError, match="generation budget"):
        _gen(rate=1e6, duration=10.0, max_sessions=None)
    # The same rate with a cap is fine: candidates are bounded.
    _gen(rate=1e6, duration=10.0, max_sessions=100)


def test_validation_errors():
    with pytest.raises(ValidationError):
        TrafficGenerator(mix="rush-hour")
    with pytest.raises(ValidationError):
        TrafficGenerator(mix=())
    with pytest.raises(ValidationError):
        _gen(rate=0.0)
    with pytest.raises(ValidationError):
        _gen(duration=-1.0)
    with pytest.raises(ValidationError):
        _gen(detail=0.0)
    with pytest.raises(ValidationError):
        _gen(max_sessions=0)
    with pytest.raises(ValidationError):
        _gen(seed=-1)
    with pytest.raises(ValidationError):
        RateProfile("tidal")
    with pytest.raises(ValidationError):
        RateProfile("diurnal", floor=0.0)
    with pytest.raises(ValidationError):
        SessionArchetype("x", "no_such_scene")
    with pytest.raises(ValidationError):
        SessionArchetype("x", "bicycle", frames=(4, 2))
    with pytest.raises(ValidationError):
        SessionArchetype("x", "bicycle", weight=0.0)
    with pytest.raises(ValidationError):
        SessionArchetype("x", "bicycle", target_fps=(0.0,))
