"""EdgeFleet: routing, admission, cross-node migration, autoscaling.

The fleet invariant mirrors the server's: *where* a session renders —
which node, after how many migrations, through how many autoscale
events — must never change *what* it renders.  Every test here
compares fleet output against a single plain server serving the same
sessions.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG
from repro.stream.fleet import EdgeFleet, FleetResult
from repro.stream.server import ServeSummary, StreamServer, StreamSession
from repro.stream.traffic import SessionArrival, TrafficGenerator
from repro.stream.trajectory import CameraTrajectory

pytestmark = pytest.mark.fleet

DETAIL = 0.25


def _traffic(rate=60.0, duration=0.25, seed=3, mix="heavy"):
    return TrafficGenerator(
        mix=mix, rate=rate, duration=duration, seed=seed, detail=DETAIL
    ).generate()


def _evidence(report):
    """What byte-identical fleet serving must preserve per frame."""
    return [
        (
            f.frame,
            f.sim_seconds,
            f.hit_rate,
            f.cache.cumulative_hit_rate,
            f.cache.carried_hit_rate,
            f.detail,
        )
        for f in report.frames
    ]


@pytest.fixture(scope="module")
def burst():
    """A saturating generated burst plus its single-server baseline."""
    arrivals = _traffic()
    sessions = [a.session for a in arrivals]
    with StreamServer(workers=0) as server:
        baseline = {r.session_id: r.report for r in server.serve(sessions)}
    return arrivals, baseline


def _assert_matches_baseline(result: FleetResult, baseline) -> None:
    assert {r.session_id for r in result.results} == set(baseline)
    for r in result.results:
        assert _evidence(r.report) == _evidence(baseline[r.session_id])


def test_fleet_serve_matches_single_server(burst):
    arrivals, baseline = burst
    with EdgeFleet(nodes=2, node_capacity=4) as fleet:
        result = fleet.serve(arrivals)
    _assert_matches_baseline(result, baseline)
    # Every session reported exactly once, in arrival order.
    assert [r.session_id for r in result.results] == [
        a.session_id for a in arrivals
    ]


def test_fleet_serve_is_deterministic(burst):
    arrivals, _ = burst
    with EdgeFleet(nodes=2, node_capacity=4) as fleet:
        a = fleet.serve(arrivals)
    with EdgeFleet(nodes=2, node_capacity=4) as fleet:
        b = fleet.serve(arrivals)
    assert a.summary.sim_makespan_seconds == b.summary.sim_makespan_seconds
    assert [m.session_id for m in a.migrations] == [
        m.session_id for m in b.migrations
    ]
    assert a.queue_depth_trace == b.queue_depth_trace


def test_more_nodes_cut_the_makespan(burst):
    arrivals, _ = burst
    makespans = {}
    for nodes in (1, 2):
        with EdgeFleet(nodes=nodes, node_capacity=4) as fleet:
            makespans[nodes] = fleet.serve(arrivals).summary.sim_makespan_seconds
    assert makespans[2] < makespans[1]


def test_cross_node_migration_is_byte_identical(burst):
    """Affinity routing stacks same-scene sessions on one node; the
    rebalancer must spread them by checkpoint replay without changing
    a single frame."""
    arrivals, baseline = burst
    with EdgeFleet(
        nodes=2, node_capacity=8, router="affinity",
        migration=True, migration_threshold=0.3,
    ) as fleet:
        result = fleet.serve(arrivals)
    assert len(result.migrations) >= 1
    _assert_matches_baseline(result, baseline)
    # Migrations move sessions between distinct live nodes.
    for m in result.migrations:
        assert m.src != m.dst


def test_migration_can_be_disabled(burst):
    arrivals, baseline = burst
    with EdgeFleet(
        nodes=2, node_capacity=8, router="affinity", migration=False
    ) as fleet:
        result = fleet.serve(arrivals)
    assert result.migrations == []
    _assert_matches_baseline(result, baseline)


def test_node_capacity_backpressure(burst):
    """Sessions beyond capacity wait in the router queue (and still
    come out identical)."""
    arrivals, baseline = burst
    with EdgeFleet(nodes=1, node_capacity=1, migration=False) as fleet:
        result = fleet.serve(arrivals)
    assert result.max_queue_depth >= 1
    assert any(d > 0 for d in result.admission_delays.values())
    _assert_matches_baseline(result, baseline)


def test_autoscale_spawns_and_drains(burst):
    arrivals, baseline = burst
    with EdgeFleet(
        nodes=1,
        node_capacity=2,
        max_nodes=4,
        min_nodes=1,
        scale_up_queue=2,
        sustain=2,
        scale_down_idle=3,
    ) as fleet:
        result = fleet.serve(arrivals)
    assert len(result.spawns) >= 1
    # peak_nodes is *concurrent* aliveness; total_nodes counts churn.
    assert 1 < result.peak_nodes <= 4
    assert result.total_nodes >= result.peak_nodes
    assert result.summary.workers == result.peak_nodes
    # Reaction time: a spawn lands within the sustain window of the
    # queue first breaching the threshold.
    assert all(e.reaction_ticks <= 2 for e in result.spawns)
    # Scale-down happens once the burst drains (idle node retired).
    assert len(result.drains) >= 1
    # One queue-depth sample per tick, spawns included; event clocks
    # never run backwards (spawned nodes are horizon-anchored).
    assert len(result.queue_depth_trace) == result.ticks + 1
    stamps = [e.sim_time for e in result.autoscale_events]
    assert stamps == sorted(stamps)
    _assert_matches_baseline(result, baseline)


def test_fleet_chaos_worker_crash_recovers(burst):
    """A worker crash inside a fleet node replays checkpoints there."""
    arrivals, baseline = burst
    injector = lambda node, tick, w: node == 0 and tick == 2  # noqa: E731
    with EdgeFleet(
        nodes=2, node_capacity=8, fault_injector=injector
    ) as fleet:
        result = fleet.serve(arrivals)
    assert result.summary.recoveries >= 1
    _assert_matches_baseline(result, baseline)


def test_node_summaries_compose(burst):
    arrivals, _ = burst
    with EdgeFleet(nodes=2, node_capacity=4) as fleet:
        result = fleet.serve(arrivals)
    merged = ServeSummary.merge(list(result.node_summaries.values()))
    assert merged.total_frames == result.summary.total_frames
    assert merged.sessions == result.summary.sessions == len(arrivals)
    assert merged.sim_makespan_seconds == max(
        s.sim_makespan_seconds for s in result.node_summaries.values()
    )
    assert result.summary.sim_makespan_seconds == merged.sim_makespan_seconds
    # Per-session frame counts survive aggregation.
    assert result.summary.total_frames == sum(
        r.report.n_frames for r in result.results
    )


def test_arrivals_after_idle_gap_overlap_across_nodes():
    """An idle gap must not serialize later concurrent arrivals: node
    busy ledgers re-anchor to the present when the clock jumps, so two
    sessions arriving together after the gap spread over both nodes."""
    from repro.scenes.catalog import CATALOG
    from repro.stream import CameraTrajectory, StreamSession

    heavy, light = CATALOG["bicycle"], CATALOG["female_4"]

    def _session(sid, spec, scene, frames, seed):
        return StreamSession(
            sid,
            scene,
            CameraTrajectory.for_scene(
                spec, "head_jitter", n_frames=frames, seed=seed, detail=DETAIL
            ),
            detail=DETAIL,
        )

    arrivals = [
        SessionArrival(0.0, _session("early", light, "female_4", 2, 1)),
        SessionArrival(5.0, _session("late-a", heavy, "bicycle", 10, 2)),
        SessionArrival(5.001, _session("late-b", heavy, "bicycle", 10, 3)),
    ]
    with EdgeFleet(nodes=2, node_capacity=4, migration=False) as fleet:
        result = fleet.serve(arrivals)
    served = sorted(s.sessions for s in result.node_summaries.values())
    assert served == [1, 2]
    # Both late arrivals were admitted at (essentially) their arrival
    # time, not after the first one drained.
    assert result.admission_delays["late-b"] < 0.01


def test_sparse_arrivals_jump_the_clock():
    """Arrivals far apart in sim time serve back-to-back on one node
    (the fleet clock jumps over idle gaps, open-loop)."""
    arrivals = _traffic(rate=4.0, duration=3.0, seed=7, mix="light")
    assert len(arrivals) >= 2
    with EdgeFleet(nodes=2, node_capacity=4) as fleet:
        result = fleet.serve(arrivals)
    assert result.summary.sessions == len(arrivals)
    assert result.max_queue_depth == 0
    assert all(d == 0.0 for d in result.admission_delays.values())


def test_validation_errors(burst):
    arrivals, _ = burst
    with pytest.raises(ValidationError):
        EdgeFleet(nodes=0)
    with pytest.raises(ValidationError):
        EdgeFleet(router="hash-ring")
    with pytest.raises(ValidationError):
        EdgeFleet(node_capacity=0)
    with pytest.raises(ValidationError):
        EdgeFleet(nodes=2, max_nodes=1)
    with pytest.raises(ValidationError):
        EdgeFleet(nodes=2, min_nodes=3)
    with pytest.raises(ValidationError):
        EdgeFleet(sustain=0)
    with pytest.raises(ValidationError):
        EdgeFleet(migration_threshold=0.0)
    twin = [arrivals[0], SessionArrival(0.1, arrivals[0].session)]
    with EdgeFleet(nodes=1) as fleet:
        with pytest.raises(ValidationError):
            fleet.serve(twin)


def test_empty_traffic_serves_nothing():
    with EdgeFleet(nodes=1) as fleet:
        result = fleet.serve([])
    assert result.results == []
    assert result.total_frames == 0
    assert result.summary.sessions == 0


def test_keep_images_rides_through_migration():
    """Pixel-level byte identity across forced migration."""
    arrivals = _traffic(rate=80.0, duration=0.1, seed=9)
    sessions = [
        a.session.__class__(**{**a.session.__dict__, "keep_images": True})
        for a in arrivals
    ]
    arrivals = [
        SessionArrival(a.time, s) for a, s in zip(arrivals, sessions)
    ]
    with StreamServer(workers=0) as server:
        baseline = {r.session_id: r.report for r in server.serve(sessions)}
    with EdgeFleet(
        nodes=2, node_capacity=8, router="affinity", migration_threshold=0.3
    ) as fleet:
        result = fleet.serve(arrivals)
    for r in result.results:
        for mine, ref in zip(r.report.frames, baseline[r.session_id].frames):
            assert np.array_equal(mine.image, ref.image)


# -- router-queue FIFO invariants ---------------------------------------
def _session(session_id, scene):
    spec = CATALOG[scene]
    trajectory = CameraTrajectory.for_scene(
        spec, "frozen", n_frames=2, detail=DETAIL
    )
    return StreamSession(
        session_id=session_id, scene=scene, trajectory=trajectory, detail=DETAIL
    )


def _arrival(session_id, scene, time=0.0):
    return SessionArrival(time, _session(session_id, scene))


class TestRouteInvariants:
    """Pin `_route`'s contract: `_select_node` returns None only when
    every node is saturated, and the first-unplaceable-breaks-FIFO
    shortcut must never strand a placeable arrival behind an
    unplaceable one (see the `_route` docstring)."""

    def test_saturated_fleet_requeues_whole_queue_in_order(self):
        with EdgeFleet(nodes=2, node_capacity=1, router="affinity") as fleet:
            fleet.begin()
            fleet._nodes[0].server.submit(_session("a0", "bicycle"))
            fleet._nodes[1].server.submit(_session("a1", "bonsai"))
            queue = [
                _arrival("q0", "bicycle"),
                _arrival("q1", "bonsai"),
                _arrival("q2", "bicycle"),
            ]
            delays = {}
            still = fleet._route(list(queue), 0.0, delays)
            # Mixed scenes, affinity router, zero capacity: nothing is
            # admitted and FIFO order survives untouched.
            assert [a.session_id for a in still] == ["q0", "q1", "q2"]
            assert delays == {}

    def test_single_slot_admits_fifo_head_regardless_of_affinity(self):
        with EdgeFleet(nodes=2, node_capacity=1, router="affinity") as fleet:
            fleet.begin()
            # Node 1 serves bonsai; node 0 is the only open slot.
            fleet._nodes[1].server.submit(_session("a1", "bonsai"))
            queue = [
                _arrival("q0", "bicycle"),
                _arrival("q1", "bonsai"),  # affinity points at full node 1
                _arrival("q2", "bicycle"),
            ]
            delays = {}
            still = fleet._route(list(queue), 2.5, delays)
            # The head takes the slot — a later arrival must not jump
            # the queue because of scene affinity.
            assert [a.session_id for a in still] == ["q1", "q2"]
            assert set(delays) == {"q0"}
            assert delays["q0"] == pytest.approx(2.5)
            assert fleet._nodes[0].server.n_active == 1

    def test_refused_arrival_does_not_strand_placeable_ones(self, monkeypatch):
        """If selection ever refuses one session while capacity
        remains, only that arrival may park — the scan continues."""
        with EdgeFleet(nodes=1, node_capacity=4) as fleet:
            fleet.begin()
            original = fleet._select_node

            def picky(session):
                if session.session_id == "poison":
                    return None
                return original(session)

            monkeypatch.setattr(fleet, "_select_node", picky)
            queue = [
                _arrival("poison", "bicycle"),
                _arrival("ok0", "bicycle"),
                _arrival("ok1", "bonsai"),
            ]
            delays = {}
            still = fleet._route(list(queue), 0.0, delays)
            assert [a.session_id for a in still] == ["poison"]
            assert set(delays) == {"ok0", "ok1"}


# -- gateway flow-control stalls vs. the tick budget ----------------------
def test_paused_stall_ticks_do_not_trip_the_tick_budget():
    """Gateway backpressure can idle an open serve indefinitely (every
    admitted session paused by a slow client); those empty ticks must
    not count against the drain budget, or the serving pump dies with
    SimulationError mid-serve instead of waiting the client out."""
    with EdgeFleet(nodes=1, node_capacity=2) as fleet:
        fleet.begin()
        fleet.submit(_session("stall", "bicycle"))
        first = fleet.step()
        assert [sid for sid, _ in first.frames] == ["stall"]
        fleet.pause_session("stall")
        budget = fleet._open.max_ticks
        # Far past the budget: every tick is an excused flow stall.
        for _ in range(budget + 8):
            tick = fleet.step()
            assert not tick.frames and not tick.done
        fleet.resume_session("stall")
        second = fleet.step()
        assert [sid for sid, _ in second.frames] == ["stall"]
        assert second.done == ["stall"]  # the 2-frame session drained
        result = fleet.finish()
    assert result.results[0].report.n_frames == 2
