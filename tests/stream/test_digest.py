"""Digest pipeline: workload models, determinism, checkpoint
byte-identity, digest-vs-exact fidelity, and serving integration.

Everything here runs under the ``digest`` marker (the ISSUE-level
fidelity contract lives in the ``test_fidelity_*`` grid; the
Hypothesis properties pin determinism and checkpoint replay).
"""

import dataclasses
import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    DigestFrameStream,
    EdgeFleet,
    FramePipeline,
    FrameStream,
    StreamServer,
    StreamSession,
    WorkloadModelTable,
    assert_trace_agreement,
    capture_checkpoint,
    restore_checkpoint,
    streaming_config,
    trace_agreement,
)
from repro.stream.content_cache import (
    CacheTier,
    ContentCacheConfig,
    SessionContentView,
)
from repro.stream.digest import WorkloadModel
from repro.stream.qos import FrameDeadline, QoSPolicy, QualityController

pytestmark = pytest.mark.digest

DETAIL = 0.25
N_CAL_FRAMES = 8


@functools.lru_cache(maxsize=None)
def _table(scene="bicycle", kind="orbit", detail=DETAIL):
    """Calibrated model table, built once per configuration."""
    return WorkloadModelTable.calibrate(
        [scene],
        details=(detail,),
        trajectories=(kind,),
        n_frames=N_CAL_FRAMES,
        config=streaming_config(),
        seed=0,
    )


def _trajectory(scene="bicycle", kind="orbit", n_frames=8, seed=0):
    return CameraTrajectory.for_scene(
        CATALOG[scene], kind, n_frames=n_frames, seed=seed, detail=DETAIL
    )


def _records(report):
    return [dataclasses.astuple(f) for f in report.frames]


# ----------------------------------------------------------------------
# Workload models
# ----------------------------------------------------------------------
def test_model_table_json_round_trip():
    table = _table()
    clone = WorkloadModelTable.from_json(table.to_json())
    assert [m.key for m in clone.models] == [m.key for m in table.models]
    assert clone.models == table.models
    assert clone.to_json() == table.to_json()


def test_model_table_rejects_bad_payloads():
    with pytest.raises(ValidationError):
        WorkloadModelTable.from_json("not json")
    with pytest.raises(ValidationError):
        WorkloadModelTable.from_json("[]")
    with pytest.raises(ValidationError):
        WorkloadModelTable.from_json('{"version": 999, "models": []}')


def test_model_from_dict_rejects_unknown_fields():
    payload = _table().models[0].to_dict()
    payload["surprise"] = 1
    with pytest.raises(ValidationError):
        WorkloadModel.from_dict(payload)


def test_lookup_exact_rung_and_nearest_fallback():
    table = _table()
    model = table.models[0]
    hit, scale = table.lookup("bicycle", DETAIL, "orbit", model.mode)
    assert hit is model and scale == 1.0
    near, scale = table.lookup("bicycle", DETAIL / 2, "orbit", model.mode)
    assert near is model
    assert scale == pytest.approx(0.5)


def test_lookup_unknown_scene_raises():
    with pytest.raises(ValidationError, match="no workload model"):
        _table().lookup("kitchen", 1.0, "orbit", ())


# ----------------------------------------------------------------------
# Determinism + checkpoint byte-identity (Hypothesis)
# ----------------------------------------------------------------------
@pytest.mark.property
@settings(max_examples=25, deadline=None)
@given(
    n_frames=st.integers(1, 10),
    seed=st.integers(0, 3),
    jitter=st.sampled_from([0.0, 0.05, 0.3]),
)
def test_digest_is_deterministic(n_frames, seed, jitter):
    """Same seed + config => identical digest traces, bit for bit."""
    table = _table().with_jitter(jitter)
    trajectory = _trajectory(n_frames=max(n_frames, 1), seed=seed)

    def run():
        stream = DigestFrameStream(
            CATALOG["bicycle"], trajectory, table, detail=DETAIL
        )
        return _records(stream.run(n_frames)), list(stream.key_trace)

    assert run() == run()


@pytest.mark.property
@settings(max_examples=25, deadline=None)
@given(
    split=st.integers(1, 9),
    jitter=st.sampled_from([0.0, 0.2]),
)
def test_checkpoint_restore_is_byte_identical(split, jitter):
    """Capture mid-digest, replay on a fresh stream: the continuation
    and every subsequent checkpoint must match the uninterrupted run."""
    total = 10
    table = _table().with_jitter(jitter)
    trajectory = _trajectory(n_frames=total)
    spec = CATALOG["bicycle"]

    original = DigestFrameStream(spec, trajectory, table, detail=DETAIL)
    original.run(split)
    checkpoint = capture_checkpoint("s", original)

    restored = DigestFrameStream(spec, trajectory, table, detail=DETAIL)
    restore_checkpoint(restored, checkpoint)
    assert restored.frames_rendered == original.frames_rendered
    assert restored.frame_key == original.frame_key

    tail_a = _records(original.run(total - split))
    tail_b = _records(restored.run(total - split))
    assert tail_a == tail_b
    assert capture_checkpoint("s", original) == capture_checkpoint(
        "s", restored
    )


def test_digest_stream_satisfies_pipeline_protocol():
    stream = DigestFrameStream(
        CATALOG["bicycle"], _trajectory(), _table(), detail=DETAIL
    )
    assert isinstance(stream, FramePipeline)
    assert isinstance(
        FrameStream(CATALOG["bicycle"], _trajectory()), FramePipeline
    )


def test_digest_rejects_keep_images():
    with pytest.raises(ValidationError, match="images"):
        DigestFrameStream(
            CATALOG["bicycle"],
            _trajectory(),
            _table(),
            detail=DETAIL,
            keep_images=True,
        )


def test_model_validation_rejects_malformed_sequences():
    model = _table().models[0]
    with pytest.raises(ValidationError, match="at least one"):
        dataclasses.replace(
            model,
            frame_seconds=(),
            n_visible=(),
            n_instances=(),
            accesses=(),
            hits=(),
            carried_hits=(),
            binning_reused=(),
            full_reuse=(),
            frame_nbytes=(),
        )
    with pytest.raises(ValidationError, match="entries"):
        dataclasses.replace(model, n_visible=model.n_visible + (1,))
    with pytest.raises(ValidationError, match="jitter"):
        dataclasses.replace(model, jitter=1.5)


def test_calibrate_rejects_zero_frames():
    with pytest.raises(ValidationError, match="at least one frame"):
        WorkloadModelTable.calibrate(["bicycle"], n_frames=0)


def test_table_len_counts_models():
    assert len(_table()) == 1


def test_digest_reset_replays_from_scratch():
    stream = DigestFrameStream(
        CATALOG["bicycle"], _trajectory(), _table(), detail=DETAIL
    )
    first = _records(stream.run(6))
    assert stream.cache_state.frames_observed == 6
    stream.reset()
    assert stream.frames_rendered == 0
    assert stream.cache_state.frames_observed == 0
    assert _records(stream.run(6)) == first


def test_digest_seek_and_run_validation():
    stream = DigestFrameStream(
        CATALOG["bicycle"], _trajectory(), _table(), detail=DETAIL
    )
    with pytest.raises(ValidationError, match="negative"):
        stream.seek(-1)
    with pytest.raises(ValidationError, match="at least one frame"):
        stream.run(0)


def test_digest_rejects_mismatched_controller_detail():
    controller = QualityController(
        FrameDeadline(72.0), QoSPolicy.fixed(), nominal_detail=0.5
    )
    with pytest.raises(ValidationError, match="nominal detail"):
        DigestFrameStream(
            CATALOG["bicycle"],
            _trajectory(),
            _table(),
            detail=DETAIL,
            controller=controller,
        )


def test_digest_cache_state_rejects_foreign_geometry():
    stream = DigestFrameStream(
        CATALOG["bicycle"], _trajectory(), _table(), detail=DETAIL
    )
    stream.run(2)
    state = stream.cache_state.export_state()
    other = DigestFrameStream(
        CATALOG["bicycle"], _trajectory(), _table(), detail=DETAIL
    )
    with pytest.raises(ValidationError, match="policy"):
        other.cache_state.import_state(
            dataclasses.replace(state, policy="no-such-policy")
        )
    with pytest.raises(ValidationError, match="geometry"):
        other.cache_state.import_state(
            dataclasses.replace(state, capacity_lines=state.capacity_lines + 1)
        )


# ----------------------------------------------------------------------
# Digest-vs-exact fidelity grid
# ----------------------------------------------------------------------
def _fidelity_pair(n_frames=8, controller_factory=None, content=False):
    spec = CATALOG["bicycle"]
    trajectory = _trajectory(n_frames=n_frames)
    table = _table()

    def view():
        if not content:
            return None
        config = ContentCacheConfig()
        tier = CacheTier("session", config.session_bytes)
        return SessionContentView(config, tier)

    exact = FrameStream(
        spec,
        trajectory,
        detail=DETAIL,
        controller=controller_factory() if controller_factory else None,
        content=view(),
    )
    digest = DigestFrameStream(
        spec,
        trajectory,
        table,
        detail=DETAIL,
        controller=controller_factory() if controller_factory else None,
        content=view(),
    )
    return exact, digest


@pytest.mark.parametrize(
    "config",
    ["plain", "fixed_qos", "content_cache"],
)
def test_fidelity_grid(config):
    """The ISSUE contract on small configs: identical detail-ladder
    decisions and cache-key sequences, sim_seconds within tolerance
    (exactly zero error here — the models were calibrated on the same
    seeded workload the streams replay)."""
    controller_factory = None
    if config == "fixed_qos":
        controller_factory = lambda: QualityController(  # noqa: E731
            FrameDeadline(72.0), QoSPolicy.fixed(), nominal_detail=DETAIL
        )
    exact, digest = _fidelity_pair(
        controller_factory=controller_factory,
        content=config == "content_cache",
    )
    exact_report = exact.run(8)
    digest_report = digest.run(8)
    agreement = trace_agreement(
        exact_report,
        digest_report,
        exact_keys=exact.key_trace,
        digest_keys=digest.key_trace,
    )
    assert agreement.ok, agreement.mismatches
    assert agreement.max_sim_rel_err == 0.0
    assert agreement.details_match and agreement.keys_match
    assert_trace_agreement(
        exact_report,
        digest_report,
        exact_keys=exact.key_trace,
        digest_keys=digest.key_trace,
    )
    if config == "content_cache":
        assert exact.key_trace  # the grid actually exercised the keys


def test_fidelity_assertion_rejects_divergence():
    exact, digest = _fidelity_pair()
    exact_report = exact.run(4)
    digest_report = digest.run(4)
    broken = dataclasses.replace(
        digest_report.frames[2],
        sim_seconds=digest_report.frames[2].sim_seconds * 10.0,
    )
    digest_report.frames[2] = broken
    with pytest.raises(ValidationError, match="sim_seconds diverges"):
        assert_trace_agreement(exact_report, digest_report)


def test_trace_agreement_reports_every_divergence_kind():
    exact, digest = _fidelity_pair()
    exact_report = exact.run(4)
    digest_report = digest.run(4)
    frames = digest_report.frames
    frames[1] = dataclasses.replace(frames[1], detail=frames[1].detail / 2)
    frames[2] = dataclasses.replace(frames[2], shards=4)
    frames[3] = dataclasses.replace(frames[3], served_from="fleet")
    digest_report.frames = frames[:4] + [frames[3]]
    agreement = trace_agreement(
        exact_report,
        digest_report,
        exact_keys=["k1"],
        digest_keys=["k2"],
    )
    assert not agreement.ok
    joined = "; ".join(agreement.mismatches)
    assert "frame counts differ" in joined
    assert "detail-ladder traces differ" in joined
    assert "shard-escalation traces differ" in joined
    assert "served_from traces differ" in joined
    assert "key sequences differ" in joined
    round_trip = agreement.to_dict()
    assert round_trip["mismatches"] == agreement.mismatches
    assert round_trip["n_frames"] == 4


def test_digest_content_hits_on_shared_view():
    """Two digest viewers on one session tier: the second replay is
    served from the cache, with provenance recorded."""
    config = ContentCacheConfig()
    view = SessionContentView(config, CacheTier("session", config.session_bytes))
    spec = CATALOG["bicycle"]
    trajectory = _trajectory(n_frames=4)

    def run():
        stream = DigestFrameStream(
            spec, trajectory, _table(), detail=DETAIL, content=view
        )
        return stream.run(4)

    cold = run()
    warm = run()
    assert all(f.served_from is None for f in cold.frames)
    assert all(f.served_from == "session" for f in warm.frames)


def test_adaptive_qos_digest_is_deterministic():
    """Adaptive controllers ride the digest path deterministically
    (rung fidelity vs exact is only asserted for fixed QoS — adaptive
    warm-up after a rung switch is a documented approximation)."""

    def run():
        controller = QualityController(
            FrameDeadline(5000.0), None, nominal_detail=DETAIL
        )
        stream = DigestFrameStream(
            CATALOG["bicycle"],
            _trajectory(n_frames=8),
            _table(),
            detail=DETAIL,
            controller=controller,
        )
        report = stream.run(8)
        return _records(report), report.detail_trace

    assert run() == run()


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
def _digest_sessions(n=4, n_frames=6):
    return [
        StreamSession(
            f"d{i}",
            "bicycle",
            _trajectory(n_frames=n_frames, seed=i),
            detail=DETAIL,
            pipeline="digest",
        )
        for i in range(n)
    ]


def test_server_requires_models_for_digest():
    with StreamServer(workers=0) as server:
        with pytest.raises(ValidationError, match="workload models"):
            server.serve(_digest_sessions(n=1))


def test_server_serves_mixed_pipelines():
    sessions = _digest_sessions(n=2)
    sessions.append(
        StreamSession(
            "exact0",
            "bicycle",
            _trajectory(n_frames=3, seed=9),
            detail=DETAIL,
        )
    )
    with StreamServer(workers=0, models=_table()) as server:
        results = server.serve(sessions)
    by_id = {r.session_id: r for r in results}
    assert by_id["d0"].report.n_frames == 6
    assert by_id["exact0"].report.n_frames == 3
    # Digest frames cost no host wall time by construction.
    assert all(
        f.wall_seconds == 0.0 for f in by_id["d0"].report.frames
    )
    assert any(f.wall_seconds > 0.0 for f in by_id["exact0"].report.frames)


def test_digest_crash_recovery_replay_is_byte_identical():
    """Kill a worker mid-serve in digest mode; checkpoint replay must
    reproduce the uninterrupted reports bit for bit."""
    sessions = _digest_sessions(n=3, n_frames=8)
    with StreamServer(workers=0, models=_table()) as server:
        baseline = server.serve(sessions)

    injector = lambda tick, w: tick == 2 and w == 0  # noqa: E731
    with StreamServer(
        workers=2, local=True, fault_injector=injector, models=_table()
    ) as server:
        recovered = server.serve(sessions)
        assert server.recoveries >= 1

    for before, after in zip(baseline, recovered):
        assert before.report.to_dict() == after.report.to_dict()
        assert _records(before.report) == _records(after.report)


@pytest.mark.fleet
def test_fleet_migration_preserves_digest_reports():
    """Cross-node checkpoint-replay migration of digest sessions never
    changes what a session streamed, only where."""
    sessions = _digest_sessions(n=6, n_frames=8)
    with StreamServer(workers=0, models=_table()) as server:
        baseline = {r.session_id: r.report for r in server.serve(sessions)}

    fleet = EdgeFleet(
        nodes=2,
        node_capacity=3,
        migration=True,
        migration_threshold=0.01,
        models=_table(),
    )
    with fleet:
        result = fleet.serve_sessions(_digest_sessions(n=6, n_frames=8))
    assert result.summary.sessions == 6
    for r in result.results:
        assert r.report.to_dict() == baseline[r.session_id].to_dict()


@pytest.mark.fleet
def test_fleet_active_router_tracks_peak_concurrency():
    fleet = EdgeFleet(
        nodes=2,
        router="active",
        node_capacity=4,
        placement="rr",
        migration=False,
        models=_table(),
    )
    with fleet:
        result = fleet.serve_sessions(_digest_sessions(n=8, n_frames=4))
    assert result.peak_active == 8
    assert max(result.active_trace) == result.peak_active
    assert len(result.active_trace) == len(result.queue_depth_trace)
