"""Tests for the GPU SIMT kernel models and frame timing."""

import pytest

from repro.errors import CalibrationError, ValidationError
from repro.gpu.calibration import GPUCalibration
from repro.gpu.memory import bandwidth_fraction_for_fps, frame_traffic, roofline_seconds
from repro.gpu.sm import irss_kernel, pfs_kernel
from repro.gpu.specs import ORIN_NX
from repro.gpu.timing import GPUTimingModel
from repro.gpu.workload import FrameWorkload


def _workload(**overrides) -> FrameWorkload:
    defaults = dict(
        n_gaussians=1e6,
        step1_extra_flops_per_gaussian=0.0,
        n_instances=5e6,
        pfs_fragments=1e9,
        irss_fragments=1e8,
        irss_segments=2e7,
        irss_serial_slots=5e7,
        pixels=1e6,
        feature_bytes=5e6 * 128,
    )
    defaults.update(overrides)
    return FrameWorkload(**defaults)


class TestKernels:
    def test_pfs_utilization_is_significance(self):
        workload = _workload()
        est = pfs_kernel(workload, ORIN_NX)
        assert est.utilization == pytest.approx(0.1)

    def test_irss_kernel_faster_when_skip_high(self):
        workload = _workload()
        pfs = pfs_kernel(workload, ORIN_NX)
        irss = irss_kernel(workload, ORIN_NX)
        assert irss.seconds < pfs.seconds

    def test_irss_utilization_bounds(self):
        est = irss_kernel(_workload(), ORIN_NX)
        assert 0.0 < est.utilization <= 1.0

    def test_kernel_time_linear_in_fragments(self):
        small = pfs_kernel(_workload(pfs_fragments=1e8), ORIN_NX)
        large = pfs_kernel(_workload(pfs_fragments=2e8), ORIN_NX)
        assert large.seconds == pytest.approx(2 * small.seconds)


class TestMemoryModel:
    def test_roofline_takes_max(self):
        compute = 0.01
        bytes_ = 10e9  # far beyond bandwidth for 10 ms
        assert roofline_seconds(compute, bytes_, ORIN_NX) > compute
        assert roofline_seconds(compute, 1.0, ORIN_NX) == compute

    def test_traffic_components(self):
        traffic = frame_traffic(_workload())
        assert traffic.step1_bytes > 0
        assert traffic.step2_bytes > 0
        assert traffic.step3_bytes > traffic.step1_bytes
        assert traffic.total_bytes == pytest.approx(
            traffic.step1_bytes + traffic.step2_bytes + traffic.step3_bytes
        )

    def test_bandwidth_fraction(self):
        # 1.06e9 bytes/frame at 60 FPS over 102.4 GB/s ~ 62%.
        assert bandwidth_fraction_for_fps(1.06e9, ORIN_NX, 60.0) == pytest.approx(
            0.621, abs=0.01
        )


class TestFrameTiming:
    def test_breakdown_fractions_sum_to_one(self):
        breakdown = GPUTimingModel().frame_pfs(_workload())
        assert sum(breakdown.fractions) == pytest.approx(1.0)
        assert breakdown.fps == pytest.approx(1.0 / breakdown.total_s)

    def test_irss_frame_faster_than_pfs(self):
        model = GPUTimingModel()
        workload = _workload()
        assert model.frame_irss(workload).total_s < model.frame_pfs(workload).total_s

    def test_step1_extra_flops_slow_step1(self):
        model = GPUTimingModel()
        plain = model.step1_seconds(_workload())
        heavy = model.step1_seconds(
            _workload(step1_extra_flops_per_gaussian=1500.0)
        )
        assert heavy > plain

    def test_depth_sort_cheaper_than_full_step2(self):
        model = GPUTimingModel()
        workload = _workload()
        full = model.step2_seconds(workload)
        depth_only = model.step2_seconds(
            workload, keys=workload.n_gaussians, depth_sort_only=True
        )
        assert depth_only < full

    def test_negative_keys_rejected(self):
        with pytest.raises(ValidationError):
            GPUTimingModel().step2_seconds(_workload(), keys=-1.0)


class TestCalibrationValidation:
    def test_invalid_efficiency(self):
        with pytest.raises(CalibrationError):
            GPUCalibration(step1_efficiency=0.0)

    def test_invalid_cycle_cost(self):
        with pytest.raises(CalibrationError):
            GPUCalibration(pfs_fragment_cycles=-1.0)
