"""Tests for device specs and the workload/scale layer."""

import pytest

from repro.errors import ValidationError
from repro.gpu.specs import GBU_SPEC, ORIN_NX, GPUSpec
from repro.gpu.workload import FrameWorkload, ScaleFactors, duplication_estimate


class TestOrinSpec:
    def test_peak_matches_paper_implication(self):
        # Challenge 1: 1.1 TFLOPs is 58% of peak -> peak ~ 1.9 TFLOPs.
        assert 1.7 < ORIN_NX.peak_tflops < 2.1

    def test_lane_rate(self):
        assert ORIN_NX.lane_rate == pytest.approx(8 * 128 * 918e6)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValidationError):
            GPUSpec(
                name="bad", sm_count=0, lanes_per_sm=128, clock_hz=1e9,
                dram_bandwidth=1e9, busy_power_w=1, idle_power_w=1,
                sram_bytes=1, area_mm2=1, technology_nm=8,
            )


class TestGbuSpec:
    def test_tab2_values(self):
        assert GBU_SPEC.area_mm2 == pytest.approx(0.90, abs=1e-9)
        assert GBU_SPEC.power_w == pytest.approx(0.22, abs=1e-9)
        assert GBU_SPEC.sram_bytes == 63 * 1024

    def test_cache_lines(self):
        assert GBU_SPEC.cache_lines == 32 * 1024 // 32

    def test_rows_per_tile(self):
        assert GBU_SPEC.rows_per_tile == 16

    def test_module_lookup(self):
        assert GBU_SPEC.module("Row PEs").area_mm2 == pytest.approx(0.36)
        with pytest.raises(ValidationError):
            GBU_SPEC.module("Tensor Cores")


class TestScaleFactors:
    def test_uniform(self):
        scales = ScaleFactors.uniform(3.0)
        assert scales.gaussian == scales.fragment == scales.instance == 3.0

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ScaleFactors.uniform(0.0)

    def test_for_scene_reads_catalog(self):
        from repro.scenes.catalog import CATALOG

        spec = CATALOG["bonsai"]
        scales = ScaleFactors.for_scene(spec)
        assert scales.gaussian == spec.workload_scale

    def test_duplication_estimate(self):
        assert duplication_estimate(0.0) == pytest.approx(1.0)
        assert duplication_estimate(256.0) == pytest.approx(4.0)
        with pytest.raises(ValidationError):
            duplication_estimate(-1.0)


class TestFrameWorkload:
    def test_from_renders_counts(self, reference_render, irss_render,
                                 small_lists, small_projected):
        workload = FrameWorkload.from_renders(
            reference_render, irss_render, small_lists, len(small_projected)
        )
        assert workload.pfs_fragments == reference_render.stats.fragments_shaded
        assert workload.irss_fragments == irss_render.stats.fragments_shaded
        assert workload.n_instances == small_lists.n_instances
        assert workload.n_gaussians == len(small_projected)

    def test_uniform_scaling_preserves_ratios(self, reference_render,
                                              irss_render, small_lists,
                                              small_projected):
        base = FrameWorkload.from_renders(
            reference_render, irss_render, small_lists, len(small_projected)
        )
        scaled = FrameWorkload.from_renders(
            reference_render, irss_render, small_lists, len(small_projected),
            scales=ScaleFactors.uniform(7.0),
        )
        assert scaled.pfs_fragments / base.pfs_fragments == pytest.approx(7.0)
        assert scaled.irss_fragments / base.irss_fragments == pytest.approx(7.0)
        # Ratios between counters are scale-invariant.
        assert (
            scaled.irss_fragments / scaled.pfs_fragments
            == pytest.approx(base.irss_fragments / base.pfs_fragments)
        )
