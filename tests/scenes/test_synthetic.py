"""Tests for the procedural scene generators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenes.synthetic import (
    ground_and_objects,
    ground_plane,
    indoor_room,
    object_cluster,
    surface_shell,
)


class TestGenerators:
    @pytest.mark.parametrize("generator", [surface_shell, object_cluster])
    def test_counts_and_validity(self, generator):
        cloud = generator(100, np.random.default_rng(1))
        assert len(cloud) == 100
        cloud.validate()

    def test_ground_plane_flat(self):
        cloud = ground_plane(50, np.random.default_rng(2))
        spread_y = cloud.means[:, 1].std()
        spread_x = cloud.means[:, 0].std()
        assert spread_y < 0.1 * spread_x

    def test_shell_points_on_surface(self):
        cloud = surface_shell(
            200, np.random.default_rng(3), radii=(2.0, 1.0, 2.0)
        )
        # Implicit ellipsoid equation ~ 1 for all means.
        q = (
            (cloud.means[:, 0] / 2.0) ** 2
            + (cloud.means[:, 1] / 1.0) ** 2
            + (cloud.means[:, 2] / 2.0) ** 2
        )
        np.testing.assert_allclose(q, 1.0, atol=1e-9)

    def test_shell_splats_tangent_aligned(self):
        """The smallest principal axis points along the normal."""
        cloud = surface_shell(
            50, np.random.default_rng(4), radii=(1.0, 1.0, 1.0), flatness=0.1
        )
        rots = cloud.rotations()
        normals = cloud.means / np.linalg.norm(cloud.means, axis=1, keepdims=True)
        # Local z-axis (third row of R^T = third column of R... here the
        # rotation maps local to world via R^T; check smallest-scale
        # axis alignment through the covariance instead.
        covs = cloud.covariances()
        for c, n in zip(covs[:10], normals[:10]):
            # The normal direction should have near-minimal variance.
            normal_var = n @ c @ n
            eigenvalues = np.linalg.eigvalsh(c)
            assert normal_var < 3.0 * eigenvalues[0] + 1e-9

    def test_composite_scenes_build(self):
        outdoor = ground_and_objects(400, np.random.default_rng(5))
        indoor = indoor_room(400, np.random.default_rng(6))
        assert abs(len(outdoor) - 400) <= 5
        assert abs(len(indoor) - 400) <= 5
        outdoor.validate()
        indoor.validate()

    def test_deterministic(self):
        a = indoor_room(120, np.random.default_rng(7))
        b = indoor_room(120, np.random.default_rng(7))
        np.testing.assert_array_equal(a.means, b.means)

    def test_zero_count_rejected(self):
        with pytest.raises(ValidationError):
            object_cluster(0, np.random.default_rng(0))
