"""Tests for the evaluation-scene catalog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.gaussians import GaussianCloud
from repro.scenes.catalog import (
    CATALOG,
    EVALUATION_SCENES,
    AppType,
    SceneSpec,
    build_scene,
    scenes_of_type,
)


class TestCatalogStructure:
    def test_twelve_evaluation_scenes(self):
        assert len(EVALUATION_SCENES) == 12
        assert all(name in CATALOG for name in EVALUATION_SCENES)

    def test_app_type_partition(self):
        static = scenes_of_type(AppType.STATIC)
        dynamic = scenes_of_type(AppType.DYNAMIC)
        avatar = scenes_of_type(AppType.AVATAR)
        assert len(static) == 6 and len(dynamic) == 3 and len(avatar) == 3

    def test_spec_properties(self):
        spec = CATALOG["bicycle"]
        assert spec.sim_pixels == spec.width * spec.height
        assert spec.paper_pixels == 1245 * 825
        assert spec.gaussian_scale > 100
        assert spec.paper_fragment_ratio == 541.0
        assert spec.workload_scale > 1.0

    def test_nerf_synthetic_present(self):
        assert "nerf_lego" in CATALOG
        assert CATALOG["nerf_lego"].app_type is AppType.STATIC


class TestEvalResolution:
    """The detail->resolution ladder the QoS controller walks: the
    32-px floor must never distort aspect ratio (shared scale factor)
    and pixel count must be monotone in detail."""

    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(sorted(CATALOG)),
        detail=st.floats(min_value=1e-4, max_value=4.0),
    )
    def test_aspect_ratio_preserved_at_any_detail(self, name, detail):
        spec = CATALOG[name]
        width, height = spec.eval_resolution(detail)
        assert width >= 32 and height >= 32
        # Shared-scale clamping: truncation is the only ratio error,
        # so the cross product stays within one rounding step.
        assert abs(width * spec.height - height * spec.width) < max(
            spec.width, spec.height
        )

    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(sorted(CATALOG)),
        lo=st.floats(min_value=1e-4, max_value=4.0),
        hi=st.floats(min_value=1e-4, max_value=4.0),
    )
    def test_pixel_count_monotone_in_detail(self, name, lo, hi):
        lo, hi = sorted((lo, hi))
        spec = CATALOG[name]
        w_lo, h_lo = spec.eval_resolution(lo)
        w_hi, h_hi = spec.eval_resolution(hi)
        assert w_lo <= w_hi and h_lo <= h_hi
        assert w_lo * h_lo <= w_hi * h_hi

    def test_floor_regime_keeps_aspect(self):
        """The old per-axis clamp squared off bicycle (256x168) at low
        detail; the shared scale keeps its 1.52 ratio."""
        spec = CATALOG["bicycle"]
        width, height = spec.eval_resolution(0.01)
        assert height == 32
        assert width / height == pytest.approx(
            spec.width / spec.height, rel=0.05
        )

    def test_unclamped_regime_unchanged(self):
        """Details above the floor keep the historical truncation."""
        spec = CATALOG["bicycle"]
        for detail in (0.25, 0.5, 1.0):
            expected = (
                int(spec.width * np.sqrt(detail)),
                int(spec.height * np.sqrt(detail)),
            )
            assert spec.eval_resolution(detail) == expected

    def test_rejects_non_positive_detail(self):
        with pytest.raises(ValidationError):
            CATALOG["bicycle"].eval_resolution(0.0)


class TestBuildScene:
    @pytest.mark.parametrize("name", ["bonsai", "flame_steak", "male_3"])
    def test_builds_each_app_type(self, name):
        bundle = build_scene(name, detail=0.3)
        cloud, extra = bundle.frame_cloud(0)
        assert isinstance(cloud, GaussianCloud)
        assert len(cloud) > 10
        if bundle.spec.app_type is AppType.STATIC:
            assert extra == 0
        else:
            assert extra > 0

    def test_detail_scales_size(self):
        small = build_scene("bonsai", detail=0.25)
        full = build_scene("bonsai", detail=1.0)
        assert len(small.frame_cloud(0)[0]) < len(full.frame_cloud(0)[0])
        assert small.camera.width < full.camera.width

    def test_dynamic_frames_differ(self):
        bundle = build_scene("flame_steak", detail=0.3)
        a, _ = bundle.frame_cloud(0)
        b, _ = bundle.frame_cloud(3)
        assert not np.array_equal(a.means[: len(b)], b.means[: len(a)])

    def test_avatar_frames_differ(self):
        bundle = build_scene("male_3", detail=0.3)
        a, _ = bundle.frame_cloud(0)
        b, _ = bundle.frame_cloud(2)
        assert not np.allclose(a.means, b.means)

    def test_static_frames_identical(self):
        bundle = build_scene("bonsai", detail=0.3)
        a, _ = bundle.frame_cloud(0)
        b, _ = bundle.frame_cloud(5)
        np.testing.assert_array_equal(a.means, b.means)

    def test_deterministic_build(self):
        a = build_scene("kitchen", detail=0.3)
        b = build_scene("kitchen", detail=0.3)
        np.testing.assert_array_equal(
            a.frame_cloud(0)[0].means, b.frame_cloud(0)[0].means
        )

    def test_invalid_detail_rejected(self):
        with pytest.raises(ValidationError):
            build_scene("bonsai", detail=0.0)

    def test_unknown_generator_rejected(self):
        spec = SceneSpec(
            name="broken", app_type=AppType.STATIC, width=64, height=64,
            n_gaussians=100, generator="hologram",
        )
        with pytest.raises(ValidationError):
            build_scene(spec)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_scene("garden_of_eden")
