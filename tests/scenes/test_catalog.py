"""Tests for the evaluation-scene catalog."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gaussians import GaussianCloud
from repro.scenes.catalog import (
    CATALOG,
    EVALUATION_SCENES,
    AppType,
    SceneSpec,
    build_scene,
    scenes_of_type,
)


class TestCatalogStructure:
    def test_twelve_evaluation_scenes(self):
        assert len(EVALUATION_SCENES) == 12
        assert all(name in CATALOG for name in EVALUATION_SCENES)

    def test_app_type_partition(self):
        static = scenes_of_type(AppType.STATIC)
        dynamic = scenes_of_type(AppType.DYNAMIC)
        avatar = scenes_of_type(AppType.AVATAR)
        assert len(static) == 6 and len(dynamic) == 3 and len(avatar) == 3

    def test_spec_properties(self):
        spec = CATALOG["bicycle"]
        assert spec.sim_pixels == spec.width * spec.height
        assert spec.paper_pixels == 1245 * 825
        assert spec.gaussian_scale > 100
        assert spec.paper_fragment_ratio == 541.0
        assert spec.workload_scale > 1.0

    def test_nerf_synthetic_present(self):
        assert "nerf_lego" in CATALOG
        assert CATALOG["nerf_lego"].app_type is AppType.STATIC


class TestBuildScene:
    @pytest.mark.parametrize("name", ["bonsai", "flame_steak", "male_3"])
    def test_builds_each_app_type(self, name):
        bundle = build_scene(name, detail=0.3)
        cloud, extra = bundle.frame_cloud(0)
        assert isinstance(cloud, GaussianCloud)
        assert len(cloud) > 10
        if bundle.spec.app_type is AppType.STATIC:
            assert extra == 0
        else:
            assert extra > 0

    def test_detail_scales_size(self):
        small = build_scene("bonsai", detail=0.25)
        full = build_scene("bonsai", detail=1.0)
        assert len(small.frame_cloud(0)[0]) < len(full.frame_cloud(0)[0])
        assert small.camera.width < full.camera.width

    def test_dynamic_frames_differ(self):
        bundle = build_scene("flame_steak", detail=0.3)
        a, _ = bundle.frame_cloud(0)
        b, _ = bundle.frame_cloud(3)
        assert not np.array_equal(a.means[: len(b)], b.means[: len(a)])

    def test_avatar_frames_differ(self):
        bundle = build_scene("male_3", detail=0.3)
        a, _ = bundle.frame_cloud(0)
        b, _ = bundle.frame_cloud(2)
        assert not np.allclose(a.means, b.means)

    def test_static_frames_identical(self):
        bundle = build_scene("bonsai", detail=0.3)
        a, _ = bundle.frame_cloud(0)
        b, _ = bundle.frame_cloud(5)
        np.testing.assert_array_equal(a.means, b.means)

    def test_deterministic_build(self):
        a = build_scene("kitchen", detail=0.3)
        b = build_scene("kitchen", detail=0.3)
        np.testing.assert_array_equal(
            a.frame_cloud(0)[0].means, b.frame_cloud(0)[0].means
        )

    def test_invalid_detail_rejected(self):
        with pytest.raises(ValidationError):
            build_scene("bonsai", detail=0.0)

    def test_unknown_generator_rejected(self):
        spec = SceneSpec(
            name="broken", app_type=AppType.STATIC, width=64, height=64,
            n_gaussians=100, generator="hologram",
        )
        with pytest.raises(ValidationError):
            build_scene(spec)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_scene("garden_of_eden")
