"""Fig. 17: Gaussian Reuse Cache hit rate vs capacity.

Paper shape: hit rate climbs with size and saturates around 32 KB
(59.7% / 47.4% / 37.7% at 64 KB across static / dynamic / avatar).
"""

from conftest import show
from repro.harness import run_experiment


def test_fig17_cache(benchmark, experiments):
    output = experiments("fig17")
    show(output)
    for app, curve in output.data.items():
        sizes = sorted(curve)
        rates = [curve[s] for s in sizes]
        assert rates[0] == 0.0
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:])), app
        # Saturation: 32 KB within 3 points of 64 KB.
        assert curve[64 * 1024] - curve[32 * 1024] < 0.03, app
        assert 0.3 < curve[64 * 1024] < 0.9, app
    benchmark.pedantic(
        lambda: run_experiment("fig17", detail=0.3), rounds=1, iterations=1
    )
