"""Fig. 16: rendering-resolution scaling on the dynamic scenes.

Paper shape: the GBU's speedup grows with resolution (3.7-4.1x at
676x507 up to 9.5-13.2x at 2704x2028) because fragments dominate.
"""

from conftest import show
from repro.harness import run_experiment


def test_fig16_resolution(benchmark, experiments):
    output = experiments("fig16")
    show(output)
    for scene, points in output.data.items():
        speedups = [p.speedup for p in points]
        assert speedups[-1] > speedups[0], scene  # grows with resolution
        assert points[-1].baseline_fps < points[0].baseline_fps, scene
    benchmark.pedantic(
        lambda: run_experiment("fig16", detail=0.3), rounds=1, iterations=1
    )
