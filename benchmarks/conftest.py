"""Shared benchmark infrastructure.

Each benchmark file regenerates one table/figure of the paper: it
prints the measured rows (run with ``-s`` to see them) and registers a
pytest-benchmark measurement of the experiment (a reduced-detail run
for the heavy multi-scene experiments, so ``--benchmark-only`` stays
responsive while the printed tables use full detail).

Experiment outputs are cached per session because several figures
share the same underlying sweep (Fig. 4/5, Fig. 14/15, Tab. VI/VII).

The rendering engine behind every experiment is selectable:

    pytest benchmarks --render-backend=vectorized

(or the ``REPRO_RENDER_BACKEND`` environment variable).  All backends
are pixel-exact, so the printed tables are identical — only the
wall-clock changes.
"""

from __future__ import annotations

import pytest

from repro.harness import run_experiment
from repro.render import set_default_backend


def pytest_addoption(parser):
    parser.addoption(
        "--render-backend",
        action="store",
        default=None,
        help="rendering engine for all experiments "
        "(reference, vectorized; default: process default)",
    )


@pytest.fixture(scope="session", autouse=True)
def render_backend(request):
    """Apply --render-backend to the whole benchmark session."""
    name = request.config.getoption("--render-backend")
    if name is None:
        yield None
        return
    previous = set_default_backend(name)
    yield name
    set_default_backend(previous)


@pytest.fixture(scope="session")
def experiments():
    cache: dict[tuple[str, float], object] = {}

    def get(name: str, detail: float = 1.0):
        key = (name, detail)
        if key not in cache:
            cache[key] = run_experiment(name, detail=detail)
        return cache[key]

    return get


def show(output) -> None:
    """Print an experiment table under a header."""
    print(f"\n=== {output.experiment} ===")
    print(output.table)
