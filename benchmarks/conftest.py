"""Shared benchmark infrastructure.

Each benchmark file regenerates one table/figure of the paper: it
prints the measured rows (run with ``-s`` to see them) and registers a
pytest-benchmark measurement of the experiment (a reduced-detail run
for the heavy multi-scene experiments, so ``--benchmark-only`` stays
responsive while the printed tables use full detail).

Experiment outputs are cached per session because several figures
share the same underlying sweep (Fig. 4/5, Fig. 14/15, Tab. VI/VII).
"""

from __future__ import annotations

import pytest

from repro.harness import run_experiment


@pytest.fixture(scope="session")
def experiments():
    cache: dict[tuple[str, float], object] = {}

    def get(name: str, detail: float = 1.0):
        key = (name, detail)
        if key not in cache:
            cache[key] = run_experiment(name, detail=detail)
        return cache[key]

    return get


def show(output) -> None:
    """Print an experiment table under a header."""
    print(f"\n=== {output.experiment} ===")
    print(output.table)
