"""Stream-serving throughput: sessions x workers over the default scene.

Serves N concurrent orbit sessions through the
:class:`~repro.stream.server.StreamServer` at several worker-pool
sizes and writes ``BENCH_stream_throughput.json`` at the repo root:
per worker count, the *simulated* aggregate serving throughput (each
worker is one simulated GBU+GPU unit; makespan = busiest worker) and
the host wall-clock throughput of the simulation itself, plus the
cross-frame reuse summary of the streamed sessions.

Two acceptance bars are asserted:

* **Worker scaling** — simulated frames/sec must improve by
  ``REPRO_BENCH_STREAM_MIN_SCALING`` (default 2.0x) from 1 worker to
  the largest pool.  Simulated throughput is the deployment-scaling
  metric: it is derived from measured per-frame paper-scale latencies
  and is independent of how many *host* cores run the simulation
  (wall-clock numbers are recorded but not asserted — this container
  may have a single core).
* **Cross-frame reuse** — the warm (cumulative) reuse-cache hit rate
  over a 16-frame orbit must be strictly above the single-frame
  cold-cache rate (frame 0 of the same stream, which starts empty).

Smoke knobs (used by CI): ``REPRO_BENCH_STREAM_SESSIONS``,
``REPRO_BENCH_STREAM_FRAMES``, ``REPRO_BENCH_STREAM_WORKERS``
(comma-separated pool sizes), ``REPRO_BENCH_STREAM_MIN_SCALING``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    FrameStream,
    StreamServer,
    StreamSession,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_stream_throughput.json"

DEFAULT_SCENE = os.environ.get("REPRO_BENCH_STREAM_SCENE", "bicycle")
N_SESSIONS = int(os.environ.get("REPRO_BENCH_STREAM_SESSIONS", "4"))
N_FRAMES = int(os.environ.get("REPRO_BENCH_STREAM_FRAMES", "16"))
WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_BENCH_STREAM_WORKERS", "1,2,4").split(",")
    if w.strip()
]
MIN_SCALING = float(os.environ.get("REPRO_BENCH_STREAM_MIN_SCALING", "2.0"))


def _make_sessions(scene: str, n_sessions: int, n_frames: int) -> list[StreamSession]:
    """Same-scene orbit sessions, phase-shifted per client."""
    spec = CATALOG[scene]
    return [
        StreamSession(
            session_id=f"{scene}-{i}",
            scene=scene,
            trajectory=CameraTrajectory.for_scene(
                spec,
                kind="orbit",
                n_frames=n_frames,
                phase_deg=i * 360.0 / n_sessions,
            ),
        )
        for i in range(n_sessions)
    ]


def test_stream_throughput(benchmark):
    rows = []
    reuse = None
    for workers in WORKER_COUNTS:
        sessions = _make_sessions(DEFAULT_SCENE, N_SESSIONS, N_FRAMES)
        with StreamServer(workers=workers) as server:
            server.warm_up()
            results, summary = server.serve_timed(sessions)
        rows.append(
            {
                "workers": summary.workers,
                "sessions": summary.sessions,
                "total_frames": summary.total_frames,
                "sim_makespan_seconds": summary.sim_makespan_seconds,
                "sim_frames_per_sec": summary.sim_frames_per_sec,
                "wall_seconds": summary.wall_seconds,
                "wall_frames_per_sec": summary.wall_frames_per_sec,
            }
        )
        if reuse is None:
            # Reuse summary from the first pool's first session: frame 0
            # of the stream *is* the cold single-frame baseline.
            rep = results[0].report
            reuse = {
                "trajectory": rep.trajectory,
                "n_frames": rep.n_frames,
                "cold_hit_rate": rep.cold_hit_rate,
                "warm_hit_rate": rep.warm_hit_rate,
                "per_frame_hit_rates": [f.hit_rate for f in rep.frames],
                "binning_reuse": rep.binning_reuse,
                "mean_sim_fps": rep.mean_sim_fps,
            }

    sim_by_workers = {r["workers"]: r["sim_frames_per_sec"] for r in rows}
    lo, hi = min(sim_by_workers), max(sim_by_workers)
    scaling = sim_by_workers[hi] / sim_by_workers[lo] if sim_by_workers[lo] else 0.0

    payload = {
        "benchmark": "stream_throughput",
        "methodology": (
            "N phase-shifted orbit sessions served to completion per pool "
            "size; sim throughput = total frames / busiest worker's summed "
            "paper-scale frame latencies (deployment scaling); wall "
            "throughput = host wall-clock of the simulation (informational, "
            f"host has {os.cpu_count()} core(s))"
        ),
        "scene": DEFAULT_SCENE,
        "sessions": N_SESSIONS,
        "frames_per_session": N_FRAMES,
        "host_cores": os.cpu_count(),
        "summary": {
            "worker_counts": sorted(sim_by_workers),
            "sim_scaling": scaling,
            "sim_scaling_span": [lo, hi],
        },
        "reuse": reuse,
        "pools": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== stream throughput ({DEFAULT_SCENE}) -> {OUTPUT.name} ===")
    print(f"{'workers':>8}{'sim f/s':>10}{'wall f/s':>10}")
    for r in rows:
        print(
            f"{r['workers']:>8}{r['sim_frames_per_sec']:>10.1f}"
            f"{r['wall_frames_per_sec']:>10.2f}"
        )
    print(
        f"scaling {lo}->{hi} workers: {scaling:.2f}x (floor {MIN_SCALING}x); "
        f"reuse cold {reuse['cold_hit_rate']:.3f} -> warm "
        f"{reuse['warm_hit_rate']:.3f}"
    )

    assert scaling >= MIN_SCALING, (
        f"simulated serving throughput must scale >= {MIN_SCALING}x from "
        f"{lo} to {hi} workers, measured {scaling:.2f}x"
    )
    assert reuse["warm_hit_rate"] > reuse["cold_hit_rate"], (
        "cross-frame reuse-cache hit rate "
        f"({reuse['warm_hit_rate']:.3f}) must beat the single-frame "
        f"cold-cache rate ({reuse['cold_hit_rate']:.3f})"
    )

    # pytest-benchmark bookkeeping: a short in-process 2-frame stream.
    spec = CATALOG[DEFAULT_SCENE]
    trajectory = CameraTrajectory.for_scene(spec, kind="orbit", n_frames=2)
    benchmark.pedantic(
        lambda: FrameStream(DEFAULT_SCENE, trajectory).run(),
        rounds=3,
        iterations=1,
    )
