"""Fig. 5: per-stage latency breakdown on all 12 scenes.

Paper bands: Step 3 takes 70-78% (static), 62-65% (dynamic),
48-51% (avatar); sorting 14-24%.
"""

from conftest import show
from repro.harness import run_experiment
from repro.scenes.catalog import AppType

BANDS = {
    AppType.STATIC: (0.65, 0.85),
    AppType.DYNAMIC: (0.55, 0.75),
    AppType.AVATAR: (0.45, 0.68),
}


def test_fig05_breakdown(benchmark, experiments):
    output = experiments("fig4_fig5")
    show(output)
    for profile in output.data:
        lo, hi = BANDS[profile.app_type]
        f3 = profile.breakdown.fractions[2]
        assert lo <= f3 <= hi, (profile.scene, f3)
    benchmark.pedantic(
        lambda: run_experiment("fig4_fig5", detail=0.3), rounds=1, iterations=1
    )
