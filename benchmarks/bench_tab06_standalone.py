"""Tab. VI: GBU-Standalone vs GS-Core on area and power."""

from conftest import show
from repro.analysis.literature import GSCORE
from repro.harness import run_experiment


def test_tab06_standalone(benchmark, experiments):
    output = experiments("tab6_tab7")
    show(output)
    measured = output.data
    assert measured.area_mm2 < GSCORE.area_mm2
    assert measured.power_w < GSCORE.power_w
    assert measured.step3_area_mm2 < GSCORE.step3_area_mm2
    assert measured.step3_power_w < GSCORE.step3_power_w
    benchmark.pedantic(
        lambda: run_experiment("tab6_tab7", detail=0.3), rounds=1, iterations=1
    )
