"""Tab. VII: GBU-Standalone vs NeRF accelerators on NeRF-Synthetic.

Paper: 172 FPS at 1.78 mm2 / 0.78 W — faster and smaller than ICARUS,
RT-NeRF and Instant-3D.
"""

from conftest import show
from repro.analysis.literature import NERF_ACCELERATORS
from repro.harness import run_experiment


def test_tab07_nerf_accelerators(benchmark, experiments):
    output = experiments("tab6_tab7")
    show(output)
    measured = output.data
    for accelerator in NERF_ACCELERATORS:
        assert measured.fps > accelerator.fps, accelerator.name
    assert measured.fps > 60.0
    benchmark.pedantic(
        lambda: run_experiment("tab6_tab7", detail=0.3), rounds=1, iterations=1
    )
