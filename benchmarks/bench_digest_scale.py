"""Digest-pipeline scale: 10^5+ concurrent sessions through the fleet.

The exact pipeline renders pixels, which caps fleet benchmarks at tens
of concurrent sessions; the digest pipeline
(:class:`~repro.stream.digest.DigestFrameStream`) advances sessions
from calibrated workload models, so the *serving* layers — scheduler,
QoS, router, admission control, autoscaler — can be driven at the
paper's deployment scale.  This benchmark calibrates models, proves
the digest agrees with the full render, then writes
``BENCH_digest_scale.json`` at the repo root:

* **Fidelity** — every calibrated (scene, detail rung, trajectory
  class) combination replayed through both pipelines and checked with
  :func:`~repro.stream.digest.assert_trace_agreement` (identical
  detail-ladder decisions, ``sim_seconds`` exact on the calibration
  trajectory).
* **Speedup** — wall-clock per frame, exact vs digest, on the same
  session (floor ``REPRO_BENCH_DIGEST_MIN_SPEEDUP``, default 50x).
* **Arrival analytics** — generated arrival counts vs the analytic
  ``rate x duration x mean multiplier`` expectation at 10^5-scale
  rates for constant, diurnal and ramp profiles (within 5 sigma of
  the Poisson spread).
* **Thundering herd** — one compact digest trace of ~1.3x the fleet's
  admission capacity served on ``REPRO_BENCH_DIGEST_NODES`` nodes
  behind the O(nodes) ``active`` router with round-robin placement:
  peak concurrent sessions must reach
  ``REPRO_BENCH_DIGEST_MIN_SESSIONS`` (default 10^5) and the router
  queue must actually back up (the herd is real, not absorbed).
* **Rebalance oscillation** — a 10^4-session probe with cross-node
  checkpoint migration enabled, surfacing sessions that migrate more
  than once (oscillation) and the per-tick migration cadence.

Every asserted number is a simulated metric (peak concurrency, queue
depths, event counts) or a host-ratio (speedup) derived from one
seeded trace; wall-clock totals are recorded for information only.

Smoke knobs (used by CI): ``REPRO_BENCH_DIGEST_RATE``,
``REPRO_BENCH_DIGEST_DURATION``, ``REPRO_BENCH_DIGEST_NODES``,
``REPRO_BENCH_DIGEST_CAPACITY``, ``REPRO_BENCH_DIGEST_MIN_SESSIONS``,
``REPRO_BENCH_DIGEST_MIX``, ``REPRO_BENCH_DIGEST_SEED``,
``REPRO_BENCH_DIGEST_DETAIL``, ``REPRO_BENCH_DIGEST_MIN_SPEEDUP``,
``REPRO_BENCH_DIGEST_PROFILE_DURATION``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.scenes.catalog import CATALOG
from repro.stream.digest import (
    DigestFrameStream,
    WorkloadModelTable,
    assert_trace_agreement,
)
from repro.stream.fleet import EdgeFleet
from repro.stream.pipeline import FrameStream, streaming_config
from repro.stream.traffic import MIXES, RateProfile, TrafficGenerator
from repro.stream.trajectory import CameraTrajectory

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_digest_scale.json"

MIX = os.environ.get("REPRO_BENCH_DIGEST_MIX", "light")
RATE = float(os.environ.get("REPRO_BENCH_DIGEST_RATE", "45000.0"))
DURATION = float(os.environ.get("REPRO_BENCH_DIGEST_DURATION", "3.0"))
DETAIL = float(os.environ.get("REPRO_BENCH_DIGEST_DETAIL", "0.25"))
SEED = int(os.environ.get("REPRO_BENCH_DIGEST_SEED", "7"))
NODES = int(os.environ.get("REPRO_BENCH_DIGEST_NODES", "30"))
CAPACITY = int(os.environ.get("REPRO_BENCH_DIGEST_CAPACITY", "4000"))
MIN_SESSIONS = int(
    os.environ.get("REPRO_BENCH_DIGEST_MIN_SESSIONS", "100000")
)
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_DIGEST_MIN_SPEEDUP", "50.0"))
#: Window for the diurnal/ramp analytic checks — same 10^5-scale rate
#: as the herd, shorter window so generation stays a side dish.
PROFILE_DURATION = float(
    os.environ.get("REPRO_BENCH_DIGEST_PROFILE_DURATION", "0.6")
)
CAL_FRAMES = 8


def _mix_grid():
    """The (scenes, details, trajectories) the mix's sessions draw."""
    archetypes = MIXES[MIX]
    scenes = sorted({a.scene for a in archetypes})
    details = sorted({a.detail * DETAIL for a in archetypes})
    trajectories = sorted({a.trajectory for a in archetypes})
    return scenes, details, trajectories


def test_digest_scale(benchmark):
    scenes, details, trajectories = _mix_grid()

    # -- calibration --------------------------------------------------
    t0 = time.perf_counter()
    models = WorkloadModelTable.calibrate(
        scenes,
        details=details,
        trajectories=trajectories,
        n_frames=CAL_FRAMES,
        config=streaming_config(),
        seed=SEED,
    )
    calibration_wall = time.perf_counter() - t0

    # -- fidelity: digest vs full render on every calibrated combo ----
    fidelity_rows = []
    for model in models.models:
        spec = CATALOG[model.scene]
        trajectory = CameraTrajectory.for_scene(
            spec,
            model.trajectory,
            n_frames=CAL_FRAMES,
            seed=SEED,
            detail=model.detail,
        )
        exact = FrameStream(spec, trajectory, detail=model.detail)
        digest = DigestFrameStream(
            spec, trajectory, models, detail=model.detail
        )
        agreement = assert_trace_agreement(
            exact.run(CAL_FRAMES), digest.run(CAL_FRAMES)
        )
        fidelity_rows.append(
            {
                "scene": model.scene,
                "detail": model.detail,
                "trajectory": model.trajectory,
                **agreement.to_dict(),
            }
        )
    max_rel_err = max(r["max_sim_rel_err"] for r in fidelity_rows)

    # -- speedup: wall clock per frame, exact vs digest ---------------
    spec = CATALOG[scenes[0]]
    trajectory = CameraTrajectory.for_scene(
        spec, trajectories[0], n_frames=CAL_FRAMES, seed=SEED, detail=details[0]
    )
    t0 = time.perf_counter()
    FrameStream(spec, trajectory, detail=details[0]).run(CAL_FRAMES)
    exact_per_frame = (time.perf_counter() - t0) / CAL_FRAMES
    reps = 50
    t0 = time.perf_counter()
    for _ in range(reps):
        DigestFrameStream(spec, trajectory, models, detail=details[0]).run(
            CAL_FRAMES
        )
    digest_per_frame = (time.perf_counter() - t0) / (reps * CAL_FRAMES)
    speedup = exact_per_frame / digest_per_frame

    # -- arrival analytics at 10^5-scale rates ------------------------
    analytic_rows = []
    for name, profile, duration in (
        ("constant", None, DURATION),
        ("diurnal", RateProfile("diurnal", floor=0.2), PROFILE_DURATION),
        ("ramp", RateProfile("ramp", floor=0.2), PROFILE_DURATION),
    ):
        gen = TrafficGenerator(
            mix=MIX,
            rate=RATE,
            duration=duration,
            seed=SEED,
            detail=DETAIL,
            profile=profile,
            pipeline="digest",
            compact=True,
        )
        arrivals = gen.generate()
        expected = gen.expected_sessions()
        z = (len(arrivals) - expected) / max(np.sqrt(expected), 1e-9)
        analytic_rows.append(
            {
                "profile": name,
                "rate": RATE,
                "duration": duration,
                "expected": expected,
                "generated": len(arrivals),
                "z_score": float(z),
            }
        )
        if name == "constant":
            herd_sessions = [a.session for a in arrivals]

    # -- thundering herd: ~1.3x fleet capacity, one burst -------------
    # All sessions connect at t=0 (a reconnect storm after an outage):
    # the router must admit to capacity in one tick and queue the rest.
    # Open-loop timed arrivals at these frame latencies reach a small
    # steady state instead — the burst is what stresses admission.
    t0 = time.perf_counter()
    with EdgeFleet(
        nodes=NODES,
        node_capacity=CAPACITY,
        router="active",
        placement="rr",
        migration=False,
        models=models,
    ) as fleet:
        herd = fleet.serve_sessions(herd_sessions)
    herd_wall = time.perf_counter() - t0

    # -- rebalance oscillation probe at 10^4 --------------------------
    probe_sessions = [
        a.session
        for a in TrafficGenerator(
            mix=MIX,
            rate=4000.0,
            duration=2.5,
            seed=SEED,
            detail=DETAIL,
            pipeline="digest",
            compact=True,
        ).generate()
    ]
    # The affinity router deliberately stacks same-scene sessions, so
    # the rebalancer has real skew to fight — the probe surfaces how
    # often it moves sessions and whether any session bounces (moves
    # twice or more: rebalance oscillation).
    with EdgeFleet(
        nodes=8,
        node_capacity=2000,
        router="affinity",
        placement="rr",
        migration=True,
        migration_threshold=0.3,
        models=models,
    ) as fleet:
        probe = fleet.serve_sessions(probe_sessions)
    moves_per_session: dict[str, int] = {}
    for m in probe.migrations:
        moves_per_session[m.session_id] = (
            moves_per_session.get(m.session_id, 0) + 1
        )
    oscillating = sum(1 for n in moves_per_session.values() if n >= 2)

    payload = {
        "benchmark": "digest_scale",
        "methodology": (
            "workload models calibrated by one exact render per (scene, "
            "detail rung, trajectory class); digest fidelity asserted "
            "against the full render on every combo (identical detail "
            "ladders, sim_seconds exact on the calibration trajectory); "
            "one compact digest trace of ~1.3x fleet admission capacity "
            "served through scheduler + admission + 'active' router at "
            "round-robin placement; peak concurrent sessions, queue "
            "backup, migration oscillation and analytic arrival counts "
            "are simulated metrics from the seeded trace "
            "(host-independent); speedup is a host wall-clock ratio."
        ),
        "traffic": {
            "mix": MIX,
            "rate": RATE,
            "duration": DURATION,
            "seed": SEED,
            "detail": DETAIL,
            "sessions": len(herd_sessions),
        },
        "summary": {
            "peak_active": herd.peak_active,
            "floor_sessions": MIN_SESSIONS,
            "fleet_capacity": NODES * CAPACITY,
            "max_queue_depth": herd.max_queue_depth,
            "fidelity_max_sim_rel_err": max_rel_err,
            "speedup_per_frame": speedup,
            "speedup_floor": MIN_SPEEDUP,
            "oscillating_sessions": oscillating,
            "probe_migrations": len(probe.migrations),
        },
        "calibration": {
            "models": len(models.models),
            "n_frames": CAL_FRAMES,
            "wall_seconds": calibration_wall,
        },
        "fidelity": fidelity_rows,
        "speedup": {
            "exact_seconds_per_frame": exact_per_frame,
            "digest_seconds_per_frame": digest_per_frame,
            "speedup": speedup,
        },
        "arrival_analytics": analytic_rows,
        "herd": {
            "nodes": NODES,
            "node_capacity": CAPACITY,
            "router": "active",
            "placement": "rr",
            "sessions": len(herd_sessions),
            "total_frames": herd.total_frames,
            "peak_active": herd.peak_active,
            "active_trace": herd.active_trace,
            "queue_depth_trace": herd.queue_depth_trace,
            "ticks": herd.ticks,
            "sim_makespan_seconds": herd.summary.sim_makespan_seconds,
            "sim_frames_per_sec": herd.sim_frames_per_sec,
            "wall_seconds": herd_wall,
            "wall_frames_per_sec": (
                herd.total_frames / herd_wall if herd_wall > 0 else 0.0
            ),
        },
        "oscillation_probe": {
            "sessions": len(probe_sessions),
            "nodes": 8,
            "node_capacity": 2000,
            "migrations": len(probe.migrations),
            "oscillating_sessions": oscillating,
            "max_moves_per_session": max(
                moves_per_session.values(), default=0
            ),
            "ticks": probe.ticks,
            "max_queue_depth": probe.max_queue_depth,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== digest scale ({MIX} mix, seed {SEED}) -> {OUTPUT.name} ===")
    print(
        f"{len(herd_sessions)} sessions on {NODES}x{CAPACITY} slots: "
        f"peak {herd.peak_active} concurrent (floor {MIN_SESSIONS}), "
        f"queue backed up to {herd.max_queue_depth}, "
        f"{herd.total_frames} frames in {herd_wall:.1f}s wall "
        f"({herd.ticks} ticks)"
    )
    print(
        f"fidelity max rel err {max_rel_err:.4f} over "
        f"{len(fidelity_rows)} combos; digest {speedup:.0f}x faster per "
        f"frame (floor {MIN_SPEEDUP:.0f}x); oscillation probe: "
        f"{len(probe.migrations)} migration(s), {oscillating} "
        f"session(s) moved twice+"
    )
    for row in analytic_rows:
        print(
            f"  {row['profile']:>8}: {row['generated']} generated vs "
            f"{row['expected']:.0f} expected (z={row['z_score']:+.2f})"
        )

    # Acceptance bars.
    assert herd.peak_active >= MIN_SESSIONS, (
        f"the digest fleet must hold >= {MIN_SESSIONS} concurrent "
        f"sessions, measured {herd.peak_active}"
    )
    if len(herd_sessions) > NODES * CAPACITY:
        assert herd.max_queue_depth > 0, (
            "a herd exceeding fleet capacity must back up the router "
            "queue"
        )
    assert herd.summary.sessions == len(herd_sessions), (
        "every generated session must eventually be served"
    )
    for row in fidelity_rows:
        assert not row["mismatches"], (
            f"digest trace diverged on {row['scene']}: {row['mismatches']}"
        )
    assert max_rel_err == 0.0, (
        "digest sim_seconds must replay the calibration trajectory "
        f"exactly, measured max rel err {max_rel_err}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"the digest pipeline must be >= {MIN_SPEEDUP}x faster per "
        f"frame than the exact render, measured {speedup:.1f}x"
    )
    for row in analytic_rows:
        assert abs(row["z_score"]) < 5.0, (
            f"{row['profile']} arrivals must match the analytic "
            f"expectation within 5 sigma, measured z={row['z_score']:.2f}"
        )
    assert probe.summary.sessions == len(probe_sessions)

    # pytest-benchmark bookkeeping: a small compact digest fleet serve.
    small = [
        a.session
        for a in TrafficGenerator(
            mix=MIX,
            rate=200.0,
            duration=1.0,
            seed=SEED,
            detail=DETAIL,
            pipeline="digest",
            compact=True,
        ).generate()
    ]

    def _small():
        with EdgeFleet(
            nodes=2,
            node_capacity=200,
            router="active",
            placement="rr",
            migration=False,
            models=models,
        ) as fleet:
            return fleet.serve_sessions(small)

    benchmark.pedantic(_small, rounds=3, iterations=1)
