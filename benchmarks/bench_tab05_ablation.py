"""Tab. V: adding the techniques one by one on static scenes.

Paper: 12.8 -> 22.0 -> 66.1 -> 80.6 -> 91.5 FPS; energy 1x -> 10.8x;
quality flat until the fp16 Tile Engine enters (-0.06 dB).
"""

from conftest import show
from repro.harness import run_experiment


def test_tab05_ablation(benchmark, experiments):
    output = experiments("tab5")
    show(output)
    rows = output.data
    fps = [r.fps for r in rows]
    # Monotonic FPS and energy-efficiency as techniques stack.
    assert all(b >= a * 0.98 for a, b in zip(fps, fps[1:]))
    assert rows[-1].fps > 60.0
    assert rows[-1].energy_efficiency > 5.0
    # Quality unchanged by IRSS (the transform is exact: >100 dB is
    # floating-point noise); the only real drop comes from the fp16
    # Tile Engine, and it stays far above visible thresholds.
    assert rows[0].psnr > 100.0 and rows[1].psnr > 100.0
    assert rows[2].psnr < rows[1].psnr  # fp16 enters here
    assert rows[-1].psnr > 50.0
    benchmark.pedantic(
        lambda: run_experiment("tab5", detail=0.25), rounds=1, iterations=1
    )
