"""Fig. 4: end-to-end baseline rendering time on all 12 scenes.

Paper shape: no scene reaches 60 FPS on the edge GPU alone; static
frames take 60-130 ms, dynamic ~55 ms, avatars ~25 ms.
"""

from conftest import show
from repro.harness import run_experiment


def test_fig04_render_time(benchmark, experiments):
    output = experiments("fig4_fig5")
    show(output)
    for profile in output.data:
        assert profile.breakdown.fps < 60.0, profile.scene
    benchmark.pedantic(
        lambda: run_experiment("fig4_fig5", detail=0.3), rounds=1, iterations=1
    )
