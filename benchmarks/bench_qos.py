"""QoS benchmark: fixed-detail vs deadline-adaptive stream serving.

Serves the mixed heavy/light session load of
:func:`repro.analysis.streaming.qos_session_mix` — heavy outdoor
sessions that blow a 72 Hz frame budget at full detail, light avatar
sessions that meet it easily — in both quality modes at equal worker
count and writes ``BENCH_qos.json`` at the repo root: per mode the
deadline-miss count/rate, mean delivered detail (absolute and relative
to the requested detail), and makespan, plus the fixed-over-adaptive
miss-rate reduction.

Acceptance bar: the adaptive controller must cut the deadline-miss
rate by ``REPRO_BENCH_QOS_MIN_MISS_REDUCTION`` (default 2x) versus
fixed detail on the default mix, while the mean delivered detail stays
at or above ``REPRO_BENCH_QOS_MIN_MEAN_SCALE`` (default 0.5) of the
requested detail — quality is traded, not given away.  Both serves run
in the server's deterministic in-process ``local`` mode, so the
numbers are stable on any machine.

Smoke knobs (used by CI): ``REPRO_BENCH_QOS_WORKERS``,
``REPRO_BENCH_QOS_DETAIL``, ``REPRO_BENCH_QOS_FRAMES``,
``REPRO_BENCH_QOS_HEAVY``, ``REPRO_BENCH_QOS_LIGHT``,
``REPRO_BENCH_QOS_TARGET_FPS``, ``REPRO_BENCH_QOS_MIN_MISS_REDUCTION``,
``REPRO_BENCH_QOS_MIN_MEAN_SCALE``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.streaming import compare_qos, qos_session_mix

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_qos.json"

WORKERS = int(os.environ.get("REPRO_BENCH_QOS_WORKERS", "2"))
DETAIL = float(os.environ.get("REPRO_BENCH_QOS_DETAIL", "1.0"))
FRAMES = int(os.environ.get("REPRO_BENCH_QOS_FRAMES", "16"))
HEAVY = int(os.environ.get("REPRO_BENCH_QOS_HEAVY", "2"))
LIGHT = int(os.environ.get("REPRO_BENCH_QOS_LIGHT", "2"))
TARGET_FPS = float(os.environ.get("REPRO_BENCH_QOS_TARGET_FPS", "72"))
MIN_MISS_REDUCTION = float(
    os.environ.get("REPRO_BENCH_QOS_MIN_MISS_REDUCTION", "2.0")
)
MIN_MEAN_SCALE = float(os.environ.get("REPRO_BENCH_QOS_MIN_MEAN_SCALE", "0.5"))


def test_qos_adaptive_vs_fixed(benchmark):
    sessions = qos_session_mix(
        heavy=HEAVY, light=LIGHT, n_frames=FRAMES, detail=DETAIL
    )
    comparison = compare_qos(
        sessions=sessions, workers=WORKERS, target_fps=TARGET_FPS
    )

    rows = []
    for mode, point in comparison.points.items():
        rows.append(
            {
                "mode": mode,
                "target_fps": point.target_fps,
                "workers": point.workers,
                "sessions": point.sessions,
                "total_frames": point.total_frames,
                "deadline_misses": point.deadline_misses,
                "miss_rate": point.miss_rate,
                "mean_detail": point.mean_detail,
                "mean_scale": point.mean_scale,
                "sim_makespan_seconds": point.sim_makespan_seconds,
            }
        )

    reduction = comparison.miss_reduction
    adaptive = comparison.points["adaptive"]
    payload = {
        "benchmark": "qos_adaptive_vs_fixed",
        "methodology": (
            "mixed heavy/light session load served to completion per "
            "quality mode in deterministic local mode at equal worker "
            "count; a frame misses when its paper-scale latency exceeds "
            "1/target_fps; mean_scale = delivered detail / requested "
            "detail"
        ),
        "workers": WORKERS,
        "detail": DETAIL,
        "target_fps": TARGET_FPS,
        "mix": {
            "heavy": {"scene": "bicycle", "sessions": HEAVY, "frames": FRAMES},
            "light": {"scene": "female_4", "sessions": LIGHT, "frames": FRAMES},
        },
        "summary": {
            "miss_rate_reduction_fixed_over_adaptive": reduction,
            "reduction_floor": MIN_MISS_REDUCTION,
            "adaptive_mean_scale": adaptive.mean_scale,
            "mean_scale_floor": MIN_MEAN_SCALE,
        },
        "modes": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n=== QoS fixed vs adaptive ({WORKERS} workers, "
        f"{TARGET_FPS:g} Hz) -> {OUTPUT.name} ==="
    )
    print(
        f"{'mode':>10}{'misses':>10}{'miss rate':>12}{'mean detail':>13}"
        f"{'mean scale':>12}{'makespan':>12}"
    )
    for row in rows:
        print(
            f"{row['mode']:>10}"
            f"{row['deadline_misses']:>7}/{row['total_frames']:<3}"
            f"{row['miss_rate']:>11.3f}{row['mean_detail']:>13.3f}"
            f"{row['mean_scale']:>12.3f}{row['sim_makespan_seconds']:>12.4f}"
        )
    print(
        f"adaptive cuts deadline misses {reduction:.1f}x "
        f"(floor {MIN_MISS_REDUCTION}x) at mean scale "
        f"{adaptive.mean_scale:.3f} (floor {MIN_MEAN_SCALE})"
    )

    assert reduction >= MIN_MISS_REDUCTION, (
        f"adaptive QoS must cut the deadline-miss rate by "
        f">= {MIN_MISS_REDUCTION}x vs fixed detail, measured {reduction:.2f}x"
    )
    assert adaptive.mean_scale >= MIN_MEAN_SCALE, (
        f"adaptive QoS must keep mean delivered detail >= "
        f"{MIN_MEAN_SCALE} of requested, measured {adaptive.mean_scale:.3f}"
    )

    # pytest-benchmark bookkeeping: one small two-mode comparison.
    benchmark.pedantic(
        lambda: compare_qos(
            sessions=qos_session_mix(heavy=1, light=1, n_frames=4, detail=0.5),
            workers=2,
            target_fps=150.0,
        ),
        rounds=3,
        iterations=1,
    )
