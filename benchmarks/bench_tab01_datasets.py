"""Tab. I: the evaluation-scene catalog."""

from conftest import show


def test_tab01_datasets(benchmark, experiments):
    output = experiments("tab1")
    show(output)
    benchmark(lambda: experiments("tab1"))
    assert len(output.data) == 12
