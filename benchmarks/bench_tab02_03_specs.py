"""Tab. II/III: GBU and Orin NX specifications."""

from conftest import show


def test_tab02_03_specs(benchmark, experiments):
    output = experiments("tab2_tab3")
    show(output)
    benchmark(lambda: experiments("tab2_tab3"))
    specs, modules = output.data
    assert len(modules) == 4
