"""Shared timing / JSON-emit helpers for the ``bench_*`` files.

Every perf benchmark in this directory ends the same way: a payload
with a ``benchmark`` name and a ``methodology`` string is serialized to
``BENCH_<name>.json`` at the repo root so the perf trajectory is
tracked across PRs.  Several of them also share the same wall-clock
discipline — best-of-N with the compared configurations *interleaved*
within each repeat, so a load transient on a shared runner hits every
configuration of that repeat symmetrically and cancels out of the
asserted ratios.  This module is that shared boilerplate, extracted so
each ``bench_*.py`` file holds only its experiment.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable

#: Repository root — where every BENCH_*.json lands.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default repeat count for :func:`interleaved_best`.
DEFAULT_REPEATS = 5


def bench_output_path(name: str) -> Path:
    """The repo-root path of ``BENCH_<name>.json``."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench_json(
    name: str, methodology: str, payload: dict, path: Path | None = None
) -> Path:
    """Serialize one benchmark's payload to ``BENCH_<name>.json``.

    The ``benchmark`` and ``methodology`` keys are stamped first so
    every emitted file self-describes how its numbers were measured.
    """
    out = bench_output_path(name) if path is None else path
    body = {"benchmark": name, "methodology": methodology, **payload}
    out.write_text(json.dumps(body, indent=2) + "\n")
    return out


def interleaved_best(
    fns: dict[str, Callable[[], object]], repeats: int = DEFAULT_REPEATS
) -> dict[str, float]:
    """Best-of-N seconds per configuration, interleaved within repeats.

    Interleaving makes the ratio of two minima robust to load
    transients on shared runners: a slow repeat slows every
    configuration of that repeat, and the best-of filter drops it for
    all of them.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def scene_list(default: list[str] | tuple[str, ...]) -> list[str]:
    """Scenes to benchmark: ``REPRO_BENCH_SCENES`` or the given default.

    The environment variable takes a comma-separated list; CI smoke
    runs use it to narrow multi-scene benchmarks to one scene.
    """
    env = os.environ.get("REPRO_BENCH_SCENES")
    if env:
        return [s.strip() for s in env.split(",") if s.strip()]
    return list(default)
