"""Serving gateway: sustained loopback serving and reconnect storms.

Drives :class:`~repro.stream.gateway.StreamGateway` with real asyncio
clients over 127.0.0.1 and writes ``BENCH_gateway.json`` at the repo
root:

* **Sustained serve** — ``REPRO_BENCH_GATEWAY_SESSIONS`` concurrent
  clients (default 120, floor 100) each stream a digest-pipeline
  session end to end through one gateway.  Asserted: every session
  completes with its full frame budget and the gateway's final results
  cover every session.  Recorded: wall-clock frames/sec and
  messages/sec at the wire.
* **Reconnect storm** — ``REPRO_BENCH_GATEWAY_STORM`` sessions
  (default 40) are killed mid-stream simultaneously (the post-outage
  herd), then all resume at once.  Asserted: every resumed stream
  completes with the full frame sequence intact (replay + live).
  Recorded: p50/p95 server-side checkpoint-restore latency from
  :class:`~repro.stream.reporting.ConnectionStats.restore_seconds`.

Correctness bars (session counts, frame completeness) are
deterministic; wall-clock numbers (throughput, restore percentiles)
are recorded for trajectory tracking, not asserted — hosts vary.

Smoke knobs (used by CI): ``REPRO_BENCH_GATEWAY_SESSIONS``,
``REPRO_BENCH_GATEWAY_STORM``, ``REPRO_BENCH_GATEWAY_FRAMES``,
``REPRO_BENCH_GATEWAY_SEED``, ``REPRO_BENCH_GATEWAY_DETAIL``.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro.stream.digest import WorkloadModelTable
from repro.stream.gateway import GatewayClient, StreamGateway
from repro.stream.pipeline import streaming_config
from repro.stream.server import StreamServer

from _harness import write_bench_json

SESSIONS = int(os.environ.get("REPRO_BENCH_GATEWAY_SESSIONS", "120"))
STORM = int(os.environ.get("REPRO_BENCH_GATEWAY_STORM", "40"))
FRAMES = int(os.environ.get("REPRO_BENCH_GATEWAY_FRAMES", "16"))
SEED = int(os.environ.get("REPRO_BENCH_GATEWAY_SEED", "11"))
DETAIL = float(os.environ.get("REPRO_BENCH_GATEWAY_DETAIL", "0.25"))

SCENES = ("bicycle", "bonsai")
CAL_FRAMES = 8

METHODOLOGY = (
    "Real asyncio clients over loopback TCP against one StreamGateway "
    "fronting a digest-pipeline StreamServer (calibrated workload "
    "models, so per-frame cost is paper-faithful but wall-cheap). "
    "Sustained serve: all sessions stream concurrently end to end; "
    "asserted on completeness, throughput recorded. Reconnect storm: "
    "connections aborted mid-stream simultaneously, then resumed "
    "simultaneously; restore latency percentiles come from the "
    "gateway's per-connection restore_seconds telemetry."
)


def _calibrate() -> WorkloadModelTable:
    return WorkloadModelTable.calibrate(
        list(SCENES),
        details=[DETAIL],
        trajectories=["orbit"],
        n_frames=CAL_FRAMES,
        config=streaming_config(),
        seed=SEED,
    )


def _desc(i: int) -> dict:
    return {
        "session_id": f"g{i}",
        "scene": SCENES[i % len(SCENES)],
        "frames": FRAMES,
        "detail": DETAIL,
        "trajectory": {"kind": "orbit", "seed": SEED + i},
        "pipeline": "digest",
        "target_fps": 300.0,
    }


async def _stream_one(gateway: StreamGateway, desc: dict) -> int:
    client = GatewayClient(gateway.host, gateway.port)
    await client.connect()
    await client.hello(desc, timeout=120.0)
    frames, end = await client.stream(timeout=120.0)
    await client.bye()
    await client.close()
    assert end is not None, f"{desc['session_id']} never saw its end"
    assert [f["frame"] for f in frames] == list(range(FRAMES))
    return len(frames)


async def _sustained(models: WorkloadModelTable) -> dict:
    gateway = StreamGateway(StreamServer(workers=0, models=models))
    await gateway.start()
    t0 = time.perf_counter()
    counts = await asyncio.gather(
        *(_stream_one(gateway, _desc(i)) for i in range(SESSIONS))
    )
    wall = time.perf_counter() - t0
    results = await gateway.stop()
    assert len(results) == SESSIONS
    assert all(r.report.n_frames == FRAMES for r in results)
    total_frames = sum(counts)
    messages = sum(s.messages_sent for s in gateway.connection_stats)
    return {
        "sessions": SESSIONS,
        "frames_per_session": FRAMES,
        "total_frames": total_frames,
        "wall_seconds": wall,
        "wall_frames_per_sec": total_frames / wall,
        "wire_messages": messages,
        "wire_messages_per_sec": messages / wall,
    }


async def _storm_one(gateway: StreamGateway, desc: dict, barrier) -> float:
    """Stream half, abort, wait for the herd, resume, finish."""
    first = GatewayClient(gateway.host, gateway.port)
    await first.connect()
    await first.hello(desc, timeout=120.0)
    head, _ = await first.stream(limit=FRAMES // 2, timeout=120.0)
    first.abort()
    await barrier.wait()  # the whole herd reconnects together
    last = head[-1]["frame"] if head else -1
    for attempt in range(600):
        second = GatewayClient(gateway.host, gateway.port)
        await second.connect()
        try:
            await second.resume(desc["session_id"], last, timeout=120.0)
            break
        except Exception:
            await second.close()
            if attempt == 599:
                raise
            await asyncio.sleep(0.01)
    tail, end = await second.stream(timeout=120.0)
    await second.close()
    assert end is not None
    frames = [f["frame"] for f in head + tail]
    assert frames == list(range(FRAMES)), (
        f"{desc['session_id']} reassembled {frames}"
    )
    return 1.0


async def _storm(models: WorkloadModelTable) -> dict:
    gateway = StreamGateway(StreamServer(workers=0, models=models))
    await gateway.start()
    barrier = asyncio.Barrier(STORM)
    t0 = time.perf_counter()
    await asyncio.gather(
        *(_storm_one(gateway, _desc(i), barrier) for i in range(STORM))
    )
    wall = time.perf_counter() - t0
    results = await gateway.stop()
    assert len(results) == STORM
    restores = sorted(
        s.restore_seconds for s in gateway.connection_stats if s.resumed
    )
    assert len(restores) == STORM, (
        f"expected {STORM} resumed connections, saw {len(restores)}"
    )
    return {
        "sessions": STORM,
        "wall_seconds": wall,
        "restore_p50_seconds": float(np.percentile(restores, 50)),
        "restore_p95_seconds": float(np.percentile(restores, 95)),
        "restore_max_seconds": restores[-1],
    }


def test_gateway_bench(benchmark):
    assert SESSIONS >= 1 and STORM >= 2 and FRAMES >= 2
    models = _calibrate()

    sustained = _run(_sustained(models))
    storm = _run(_storm(models))

    print(
        f"\ngateway sustained: {sustained['sessions']} sessions, "
        f"{sustained['wall_frames_per_sec']:.0f} frames/s wall"
    )
    print(
        f"gateway storm: {storm['sessions']} reconnects, restore "
        f"p50 {storm['restore_p50_seconds'] * 1e3:.2f} ms, "
        f"p95 {storm['restore_p95_seconds'] * 1e3:.2f} ms"
    )

    write_bench_json(
        "gateway",
        METHODOLOGY,
        {"sustained": sustained, "reconnect_storm": storm},
    )

    # pytest-benchmark bookkeeping: a small end-to-end gateway serve.
    async def _small():
        gateway = StreamGateway(StreamServer(workers=0, models=models))
        await gateway.start()
        await asyncio.gather(
            *(_stream_one(gateway, _desc(i)) for i in range(4))
        )
        await gateway.stop()

    benchmark.pedantic(lambda: _run(_small()), rounds=3, iterations=1)


def _run(coro):
    return asyncio.run(coro)
