"""Render-engine speed: reference loops vs. the vectorized backend.

Times both rasterizer dataflows (PFS and IRSS) under each registered
backend on the catalog's evaluation scenes and writes
``BENCH_render_speed.json`` at the repo root (instances/sec,
pixels/sec, per-dataflow and combined speedups), so the perf
trajectory is tracked across PRs.

Methodology (also documented in README.md):

* Per scene, Step 1 (projection) and Step 2 (binning + depth sort)
  run once; both backends rasterize from the *same* render lists, so
  the comparison isolates the Step-3 blending engine.
* Every (scene, backend, dataflow) cell is timed as best-of-N
  wall-clock with the two backends *interleaved* within each repeat:
  a load transient on a shared runner hits both backends of a repeat
  symmetrically, so the asserted speedup — a same-host *ratio* —
  cancels it instead of flaking on it.
* Backends are pixel-exact (property-tested in
  ``tests/render/test_backend_parity.py``) and bit-identity is also
  asserted here per scene — the deterministic half of the acceptance
  bar, independent of host load.

Scene subset can be narrowed for smoke runs:
``REPRO_BENCH_SCENES=bicycle pytest benchmarks/bench_render_speed.py``.

The default synthetic scene ("bicycle", the first catalog entry) must
show a >= 5x combined speedup — the acceptance bar for the vectorized
engine.
"""

from __future__ import annotations

import math
import os

from _harness import (
    DEFAULT_REPEATS as REPEATS,
    bench_output_path,
    interleaved_best,
    scene_list,
    write_bench_json,
)
from repro.core.irss import render_irss
from repro.gaussians import build_render_lists, project, render_reference
from repro.scenes.catalog import EVALUATION_SCENES, build_scene

OUTPUT = bench_output_path("render_speed")

#: The catalog's first scene: the acceptance measurement.
DEFAULT_SCENE = "bicycle"
#: Acceptance bar for the default scene.  CI smoke runs on shared
#: runners with unknown hardware, so it lowers the bar via
#: REPRO_BENCH_MIN_SPEEDUP (the committed BENCH_render_speed.json
#: records the real measurement either way).
MIN_DEFAULT_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


BACKENDS = ("reference", "vectorized")


def _bench_scene(name: str) -> tuple[dict, object, object]:
    """Benchmark one scene; also return its (projected, lists) handles."""
    bundle = build_scene(name)
    cloud, _ = bundle.frame_cloud(0)
    projected = project(cloud, bundle.camera)
    lists = build_render_lists(projected)
    instances = lists.n_instances
    width, height = projected.image_size
    pixels = width * height

    # Deterministic half of the acceptance bar: the engines must be
    # bit-identical before their speeds are worth comparing.
    pfs_images = {
        b: render_reference(projected, lists, backend=b).image for b in BACKENDS
    }
    irss_images = {
        b: render_irss(projected, lists, backend=b).image for b in BACKENDS
    }
    for images in (pfs_images, irss_images):
        ref = images[BACKENDS[0]]
        for backend in BACKENDS[1:]:
            assert (images[backend] == ref).all(), (
                f"backend '{backend}' is not bit-identical on {name}"
            )

    row: dict = {
        "scene": name,
        "instances": int(instances),
        "pixels": int(pixels),
        "resolution": f"{width}x{height}",
        "backends": {},
    }
    pfs_best = interleaved_best(
        {
            b: (lambda b=b: render_reference(projected, lists, backend=b))
            for b in BACKENDS
        }
    )
    irss_best = interleaved_best(
        {
            b: (lambda b=b: render_irss(projected, lists, backend=b))
            for b in BACKENDS
        }
    )
    for backend in BACKENDS:
        pfs_s = pfs_best[backend]
        irss_s = irss_best[backend]
        combined = pfs_s + irss_s
        row["backends"][backend] = {
            "pfs_ms": pfs_s * 1e3,
            "irss_ms": irss_s * 1e3,
            "combined_ms": combined * 1e3,
            "pfs_instances_per_sec": instances / pfs_s,
            "irss_instances_per_sec": instances / irss_s,
            "pfs_pixels_per_sec": pixels / pfs_s,
            "irss_pixels_per_sec": pixels / irss_s,
        }
    ref = row["backends"]["reference"]
    vec = row["backends"]["vectorized"]
    row["speedup"] = {
        "pfs": ref["pfs_ms"] / vec["pfs_ms"],
        "irss": ref["irss_ms"] / vec["irss_ms"],
        "combined": ref["combined_ms"] / vec["combined_ms"],
    }
    return row, projected, lists


def test_render_speed(benchmark):
    scenes = scene_list(EVALUATION_SCENES)
    rows = []
    handles = {}
    for name in scenes:
        row, projected, lists = _bench_scene(name)
        rows.append(row)
        handles[name] = (projected, lists)

    summary = {
        "scenes": len(rows),
        "geomean_speedup_combined": float(
            math.exp(
                sum(math.log(r["speedup"]["combined"]) for r in rows) / len(rows)
            )
        ),
    }
    default_row = next((r for r in rows if r["scene"] == DEFAULT_SCENE), None)
    if default_row is not None:
        summary["default_scene"] = DEFAULT_SCENE
        summary["default_scene_speedup"] = default_row["speedup"]

    write_bench_json(
        "render_speed",
        f"best-of-{REPEATS} wall-clock per cell, backends "
        "interleaved within each repeat (load transients cancel in the "
        "asserted ratio); shared Step-2 lists; backends asserted "
        "bit-identical per scene",
        {"summary": summary, "scenes": rows},
    )

    print(f"\n=== render speed ({len(rows)} scenes) -> {OUTPUT.name} ===")
    print(f"{'scene':<14}{'instances':>10}{'PFS x':>8}{'IRSS x':>8}{'combined x':>12}")
    for r in rows:
        s = r["speedup"]
        print(
            f"{r['scene']:<14}{r['instances']:>10}"
            f"{s['pfs']:>8.1f}{s['irss']:>8.1f}{s['combined']:>12.1f}"
        )

    if default_row is not None:
        assert default_row["speedup"]["combined"] >= MIN_DEFAULT_SPEEDUP, (
            f"vectorized backend must be >= {MIN_DEFAULT_SPEEDUP}x on "
            f"{DEFAULT_SCENE}, measured {default_row['speedup']['combined']:.2f}x"
        )

    # pytest-benchmark bookkeeping: one vectorized frame on the default
    # (or first requested) scene, reusing the handles built above.
    name = DEFAULT_SCENE if default_row is not None else scenes[0]
    projected, lists = handles[name]
    benchmark.pedantic(
        lambda: render_reference(projected, lists, backend="vectorized"),
        rounds=3,
        iterations=1,
    )
