"""Sec. VI-F: distant cameras erode the IRSS advantage.

Paper: 4x camera distance drops the static speedup from 10.8x to 4.7x.
"""

from conftest import show
from repro.harness import run_experiment


def test_sec6f_distance(benchmark, experiments):
    output = experiments("sec6f")
    show(output)
    points = output.data
    assert points[-1].factor == 4.0
    assert points[-1].speedup < points[0].speedup  # advantage shrinks
    assert points[-1].speedup > 1.0  # but never inverts
    benchmark.pedantic(
        lambda: run_experiment("sec6f", detail=0.3), rounds=1, iterations=1
    )
