"""Fig. 14: end-to-end FPS, baseline vs GBU-enhanced, all 12 scenes.

Paper shape: every scene clears 60 FPS with the GBU (averages
91.5 / 80 / 102 across static / dynamic / avatar vs 12.8 / 18 / 41).
"""

import numpy as np

from conftest import show
from repro.harness import run_experiment


def test_fig14_fps(benchmark, experiments):
    output = experiments("fig14_fig15")
    show(output)
    for scene, results in output.data.items():
        assert results["gbu_full"].fps > 60.0, scene
        assert results["gbu_full"].fps > 1.5 * results["gpu_pfs"].fps, scene
    static = [
        output.data[s]["gpu_pfs"].fps
        for s in ("bicycle", "bonsai", "counter", "kitchen", "room", "stump")
    ]
    assert 7 <= np.mean(static) <= 17  # Fig. 4's baseline band
    benchmark.pedantic(
        lambda: run_experiment("fig14_fig15", detail=0.25), rounds=1, iterations=1
    )
