"""Fleet serving: node scaling, migration, and autoscaling on
generated traffic.

Serves one seeded open-loop Poisson trace
(:class:`~repro.stream.traffic.TrafficGenerator`) on fleets of
increasing node count (:class:`~repro.stream.fleet.EdgeFleet`) and
writes ``BENCH_fleet.json`` at the repo root:

* **Scaling** — simulated serving throughput per fleet size; the
  acceptance bar is ``REPRO_BENCH_FLEET_MIN_SCALING`` (default 1.5x)
  from 1 node to the largest fleet on the same arrivals.
* **Migration** — the same trace on 2 nodes behind the *affinity*
  router (which deliberately stacks same-scene sessions) with
  cross-node checkpoint migration on vs. off: migration count and the
  makespan benefit.  Replay byte-identity is asserted in
  ``tests/stream/test_fleet.py``, not here.
* **Autoscaling** — a 1-node fleet allowed to grow to 4 under the
  same burst: spawn/drain events and the reaction time (ticks between
  the queue breaching the threshold and the node coming up).

Every asserted number is a *simulated* metric — paper-scale busy
seconds, tick counts, event counters — derived from the seeded trace,
so the bars hold on any host at any load (wall-clock is recorded for
information only).

Smoke knobs (used by CI): ``REPRO_BENCH_FLEET_DETAIL``,
``REPRO_BENCH_FLEET_RATE``, ``REPRO_BENCH_FLEET_DURATION``,
``REPRO_BENCH_FLEET_NODES`` (comma-separated counts),
``REPRO_BENCH_FLEET_MIN_SCALING``, ``REPRO_BENCH_FLEET_MIX``,
``REPRO_BENCH_FLEET_SEED``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.streaming import fleet_scaling_study
from repro.stream.fleet import EdgeFleet
from repro.stream.traffic import TrafficGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fleet.json"

MIX = os.environ.get("REPRO_BENCH_FLEET_MIX", "heavy")
RATE = float(os.environ.get("REPRO_BENCH_FLEET_RATE", "60.0"))
DURATION = float(os.environ.get("REPRO_BENCH_FLEET_DURATION", "0.25"))
DETAIL = float(os.environ.get("REPRO_BENCH_FLEET_DETAIL", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_FLEET_SEED", "3"))
NODE_COUNTS = [
    int(n)
    for n in os.environ.get("REPRO_BENCH_FLEET_NODES", "1,2,4").split(",")
    if n.strip()
]
MIN_SCALING = float(os.environ.get("REPRO_BENCH_FLEET_MIN_SCALING", "1.5"))
CAPACITY = int(os.environ.get("REPRO_BENCH_FLEET_CAPACITY", "4"))


def _arrivals():
    return TrafficGenerator(
        mix=MIX, rate=RATE, duration=DURATION, seed=SEED, detail=DETAIL
    ).generate()


def test_fleet_serving(benchmark):
    # -- scaling ------------------------------------------------------
    comparison = fleet_scaling_study(
        node_counts=tuple(NODE_COUNTS),
        mix=MIX,
        rate=RATE,
        duration=DURATION,
        detail=DETAIL,
        seed=SEED,
        node_capacity=CAPACITY,
    )
    scaling_rows = [
        {
            "nodes": p.nodes,
            "sessions": p.sessions,
            "total_frames": p.total_frames,
            "sim_makespan_seconds": p.sim_makespan_seconds,
            "sim_frames_per_sec": p.sim_frames_per_sec,
            "migrations": p.migrations,
            "max_queue_depth": p.max_queue_depth,
            "mean_admission_delay": p.mean_admission_delay,
            "ticks": p.ticks,
        }
        for p in comparison.points.values()
    ]
    lo, hi = comparison.scaling_span

    # -- migration: affinity stacking, rebalancing on vs. off ---------
    migration_points = {}
    for enabled in (False, True):
        with EdgeFleet(
            nodes=2,
            node_capacity=max(CAPACITY, 8),
            router="affinity",
            migration=enabled,
            migration_threshold=0.3,
        ) as fleet:
            result = fleet.serve(_arrivals())
        migration_points[enabled] = {
            "migrations": len(result.migrations),
            "sim_makespan_seconds": result.summary.sim_makespan_seconds,
            "sim_frames_per_sec": result.sim_frames_per_sec,
            "total_frames": result.total_frames,
        }
    moved = migration_points[True]
    pinned = migration_points[False]
    migration_benefit = (
        pinned["sim_makespan_seconds"] / moved["sim_makespan_seconds"]
        if moved["sim_makespan_seconds"] > 0
        else 0.0
    )

    # -- autoscaling: 1 node allowed to grow to 4 under the burst -----
    sustain = 2
    with EdgeFleet(
        nodes=1,
        node_capacity=2,
        max_nodes=4,
        scale_up_queue=2,
        sustain=sustain,
        scale_down_idle=4,
        min_nodes=1,
    ) as fleet:
        scaled = fleet.serve(_arrivals())
    spawns = scaled.spawns
    reaction_ticks = [e.reaction_ticks for e in spawns]

    payload = {
        "benchmark": "fleet_serving",
        "methodology": (
            "one seeded open-loop Poisson trace served per fleet size "
            "(identical arrivals); throughput = total frames / busiest "
            "node's summed paper-scale busy seconds; migration compared "
            "on 2 affinity-routed nodes with rebalancing on vs off; "
            "autoscale reaction = ticks from sustained queue breach to "
            "node spawn.  All asserted numbers are simulated metrics "
            "derived from the seeded trace (host-independent)."
        ),
        "traffic": {
            "mix": MIX,
            "rate": RATE,
            "duration": DURATION,
            "seed": SEED,
            "detail": DETAIL,
            "sessions": scaling_rows[0]["sessions"],
        },
        "summary": {
            "node_counts": sorted(comparison.points),
            "scaling": comparison.scaling,
            "scaling_span": [lo, hi],
            "floor": MIN_SCALING,
            "migration_benefit_makespan": migration_benefit,
            "migrations": moved["migrations"],
            "autoscale_spawns": len(spawns),
            "autoscale_drains": len(scaled.drains),
            "autoscale_reaction_ticks": reaction_ticks,
            "autoscale_peak_nodes": scaled.peak_nodes,
        },
        "scaling": scaling_rows,
        "migration": {
            "pinned": pinned,
            "migrated": moved,
        },
        "autoscale": {
            "events": [
                {
                    "action": e.action,
                    "node": e.node,
                    "tick": e.tick,
                    "sim_time": e.sim_time,
                    "queue_depth": e.queue_depth,
                    "reaction_ticks": e.reaction_ticks,
                }
                for e in scaled.autoscale_events
            ],
            "max_queue_depth": scaled.max_queue_depth,
            "mean_admission_delay": scaled.mean_admission_delay,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== fleet serving ({MIX} mix, seed {SEED}) -> {OUTPUT.name} ===")
    print(f"{'nodes':>6}{'sessions':>10}{'frames':>8}{'sim f/s':>10}{'moves':>7}")
    for row in scaling_rows:
        print(
            f"{row['nodes']:>6}{row['sessions']:>10}{row['total_frames']:>8}"
            f"{row['sim_frames_per_sec']:>10.1f}{row['migrations']:>7}"
        )
    print(
        f"scaling {lo}->{hi} nodes: {comparison.scaling:.2f}x "
        f"(floor {MIN_SCALING}x); migration benefit "
        f"{migration_benefit:.2f}x makespan over pinned affinity; "
        f"{len(spawns)} spawn(s), reaction {reaction_ticks} tick(s)"
    )

    # Acceptance bars — all simulated/deterministic.
    assert comparison.scaling >= MIN_SCALING, (
        f"fleet throughput must scale >= {MIN_SCALING}x from {lo} to {hi} "
        f"nodes on the generated mix, measured {comparison.scaling:.2f}x"
    )
    frames = {row["total_frames"] for row in scaling_rows}
    assert len(frames) == 1, (
        f"every fleet size must serve the identical generated workload, "
        f"saw frame totals {sorted(frames)}"
    )
    assert moved["migrations"] >= 1, (
        "the affinity-stacked trace must trigger cross-node migration"
    )
    assert migration_benefit >= 1.0, (
        f"checkpoint migration must not worsen the simulated makespan, "
        f"measured {migration_benefit:.2f}x"
    )
    assert len(spawns) >= 1, "the burst must trigger at least one scale-up"
    assert all(r <= sustain for r in reaction_ticks), (
        f"autoscale must react within the sustain window ({sustain} "
        f"ticks), measured {reaction_ticks}"
    )

    # pytest-benchmark bookkeeping: a small 2-node generated serve.
    def _small():
        with EdgeFleet(nodes=2, node_capacity=4) as fleet:
            return fleet.serve(
                TrafficGenerator(
                    mix=MIX, rate=RATE, duration=DURATION, seed=SEED, detail=0.25
                ).generate()
            )

    benchmark.pedantic(_small, rounds=3, iterations=1)
