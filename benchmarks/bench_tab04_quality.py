"""Tab. IV: rendering quality parity between 3D-GS and the GBU.

Paper shape: the fp16 Tile PE costs < 0.1 dB PSNR and < 0.01 LPIPS.
"""

from conftest import show
from repro.harness import run_experiment


def test_tab04_quality(benchmark, experiments):
    output = experiments("tab4")
    show(output)
    for app, result in output.data.items():
        assert abs(result.psnr_delta) < 0.5, app
        assert abs(result.lpips_delta) < 0.02, app
        assert result.reference_psnr > 20.0, app
    benchmark.pedantic(
        lambda: run_experiment("tab4", detail=0.3), rounds=1, iterations=1
    )
