"""Content-addressed render cache: co-located-viewer dedup sweep.

N viewers stream the *identical* orbit over one scene — the SplatBus
scenario the content cache exists for.  With the cache off, every
viewer renders every frame; with it on, one viewer renders and the
rest are served from the worker tier.  Writes
``BENCH_content_cache.json`` at the repo root with, per viewer count:

* **dedup throughput multiple** — host wall-clock of the cache-off
  serve over the cache-on serve (interleaved best-of-N via the shared
  harness, so runner load transients cancel out of the ratio);
* **per-tier hit rates** — the session/worker/node economics of the
  cache-on serve.  These are simulated-exact, so they are asserted
  exactly: V viewers over F frames must produce ``(V - 1) * F``
  worker-tier hits out of ``V * F`` lookups.

A second section serves the largest sweep point on a two-node
:class:`~repro.stream.fleet.EdgeFleet` (least-loaded router, so the
viewers split across nodes) to exercise the fleet tier: lookups that
miss a whole node's chain are served from the fleet tier instead of
re-rendering, and the shared bundle intern builds the scene once per
fleet rather than once per node.

Acceptance bar: ``REPRO_BENCH_CONTENT_MIN_DEDUP`` (default 2x) dedup
throughput at the largest viewer count, and at least one fleet-tier
hit on the two-node serve.  Byte-identity of the dedup path is proven
in ``tests/stream/test_content_cache.py`` and the property suite —
this file only quantifies the wall-clock economics.

Smoke knobs (used by CI): ``REPRO_BENCH_CONTENT_VIEWERS``
(comma-separated counts), ``REPRO_BENCH_CONTENT_FRAMES``,
``REPRO_BENCH_CONTENT_DETAIL``, ``REPRO_BENCH_CONTENT_REPEATS``,
``REPRO_BENCH_CONTENT_MIN_DEDUP``, ``REPRO_BENCH_CONTENT_SCENE``.
"""

from __future__ import annotations

import os

from _harness import interleaved_best, write_bench_json
from repro.scenes.catalog import CATALOG
from repro.stream import (
    CameraTrajectory,
    ContentCacheConfig,
    EdgeFleet,
    StreamServer,
    StreamSession,
    economics_to_dict,
)

SCENE = os.environ.get("REPRO_BENCH_CONTENT_SCENE", "bicycle")
N_FRAMES = int(os.environ.get("REPRO_BENCH_CONTENT_FRAMES", "8"))
DETAIL = float(os.environ.get("REPRO_BENCH_CONTENT_DETAIL", "0.25"))
REPEATS = int(os.environ.get("REPRO_BENCH_CONTENT_REPEATS", "3"))
MIN_DEDUP = float(os.environ.get("REPRO_BENCH_CONTENT_MIN_DEDUP", "2.0"))
VIEWER_COUNTS = [
    int(v)
    for v in os.environ.get("REPRO_BENCH_CONTENT_VIEWERS", "1,2,4,8").split(",")
    if v.strip()
]

METHODOLOGY = (
    "N co-located viewers stream the identical orbit over one scene "
    "through StreamServer(workers=0), content cache off vs on "
    "(pose_quant=0: only bit-identical poses dedup). Wall seconds are "
    "interleaved best-of-N; the dedup multiple is off/on wall time. "
    "Per-tier hit rates come from the serve's exact economics "
    "counters. The fleet section serves the largest point on a "
    "two-node EdgeFleet (least-loaded router) to exercise the fleet "
    "tier across nodes."
)


def _viewers(count: int) -> list[StreamSession]:
    spec = CATALOG[SCENE]
    trajectory = CameraTrajectory.for_scene(
        spec, "orbit", n_frames=N_FRAMES, detail=DETAIL
    )
    return [
        StreamSession(f"viewer-{i:02d}", SCENE, trajectory, detail=DETAIL)
        for i in range(count)
    ]


def _serve(count: int, cached: bool) -> dict:
    content = ContentCacheConfig() if cached else None
    with StreamServer(workers=0, content_cache=content) as server:
        server.serve(_viewers(count))
        return dict(server.content_totals)


def _sweep_point(count: int) -> dict:
    walls = interleaved_best(
        {
            "cache_off": lambda: _serve(count, cached=False),
            "cache_on": lambda: _serve(count, cached=True),
        },
        repeats=REPEATS,
    )
    totals = _serve(count, cached=True)
    worker = totals["worker"]
    expected = ((count * N_FRAMES), (count - 1) * N_FRAMES)
    assert (worker.accesses, worker.hits) == expected, (
        f"{count} viewers: worker tier saw {worker.hits}/{worker.accesses} "
        f"hits, expected {expected[1]}/{expected[0]}"
    )
    return {
        "viewers": count,
        "frames_per_viewer": N_FRAMES,
        "wall_seconds_cache_off": walls["cache_off"],
        "wall_seconds_cache_on": walls["cache_on"],
        "dedup_throughput_multiple": walls["cache_off"] / walls["cache_on"],
        "economics": economics_to_dict(totals),
    }


def _fleet_point(count: int) -> dict:
    with EdgeFleet(
        nodes=2,
        node_capacity=max(1, count // 2),
        router="least",
        migration=False,
        content_cache=ContentCacheConfig(),
    ) as fleet:
        result = fleet.serve_sessions(_viewers(count))
    assert result.content["fleet"].hits >= 1, (
        "two-node fleet served identical viewers without a single "
        "fleet-tier hit"
    )
    return {
        "nodes": 2,
        "viewers": count,
        "economics": economics_to_dict(result.content),
        "bundle_intern_hits": result.bundle_intern_hits,
        "bundle_intern_misses": result.bundle_intern_misses,
    }


def test_content_cache_dedup(benchmark):
    sweep = [_sweep_point(count) for count in VIEWER_COUNTS]
    fleet = _fleet_point(VIEWER_COUNTS[-1])
    payload = {
        "scene": SCENE,
        "detail": DETAIL,
        "frames_per_viewer": N_FRAMES,
        "repeats": REPEATS,
        "min_dedup_multiple": MIN_DEDUP,
        "sweep": sweep,
        "fleet": fleet,
    }
    out = write_bench_json("content_cache", METHODOLOGY, payload)

    print(f"\n=== content-cache dedup sweep ({SCENE}) -> {out.name} ===")
    print(
        f"{'viewers':>8}{'off (s)':>10}{'on (s)':>10}{'dedup x':>9}"
        f"{'worker hits':>13}"
    )
    for point in sweep:
        econ = point["economics"]["worker"]
        print(
            f"{point['viewers']:>8}"
            f"{point['wall_seconds_cache_off']:>10.3f}"
            f"{point['wall_seconds_cache_on']:>10.3f}"
            f"{point['dedup_throughput_multiple']:>9.2f}"
            f"{econ['hits']:>7}/{econ['accesses']:<5}"
        )
    fleet_econ = fleet["economics"]["fleet"]
    print(
        f"fleet tier on 2 nodes: {fleet_econ['hits']}/{fleet_econ['accesses']}"
        f" hits, bundle intern {fleet['bundle_intern_hits']} hit(s) / "
        f"{fleet['bundle_intern_misses']} build(s)"
    )

    largest = sweep[-1]
    assert largest["dedup_throughput_multiple"] >= MIN_DEDUP, (
        f"{largest['viewers']} co-located viewers reached only "
        f"{largest['dedup_throughput_multiple']:.2f}x dedup throughput "
        f"(floor {MIN_DEDUP}x)"
    )

    # pytest-benchmark bookkeeping: one small cached twin serve.
    benchmark.pedantic(
        lambda: _serve(2, cached=True), rounds=3, iterations=1
    )
