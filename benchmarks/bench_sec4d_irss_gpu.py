"""Sec. IV-D: IRSS deployed directly on the GPU.

Paper: 13 -> 22 FPS (1.71x), Step-3 latency -59%, utilization 18.9%.
"""

from conftest import show
from repro.harness import run_experiment


def test_sec4d_irss_gpu(benchmark, experiments):
    output = experiments("sec4d")
    show(output)
    result = output.data
    assert 1.4 < result.speedup < 2.8
    assert 0.45 < result.step3_reduction < 0.80
    assert result.irss_fps < 60.0  # still short of real time
    benchmark.pedantic(
        lambda: run_experiment("sec4d", detail=0.3), rounds=1, iterations=1
    )
