"""Fig. 6 + Challenge 1/2: per-fragment FLOPs and redundancy.

Paper shape: 11 PFS FLOPs vs 2-3 IRSS FLOPs per fragment (up to 5.5x),
skip rates approaching 92.3%, significant fractions near 7.6-13.7%.
"""

from conftest import show
from repro.harness import run_experiment


def test_fig06_flops(benchmark, experiments):
    output = experiments("fig6")
    show(output)
    for profile in output.data:
        comp = profile.comparison
        assert comp.fragment_skip_rate > 0.75, profile.scene
        assert comp.per_fragment_reduction > 2.5, profile.scene
        assert 0.03 < profile.significant_fraction < 0.25, profile.scene
    benchmark.pedantic(
        lambda: run_experiment("fig6", detail=0.3), rounds=1, iterations=1
    )
