"""Sec. V-A: DRAM pressure of Rendering Step 3 and the reuse cache.

Paper: Step 3 needs 62.1% of DRAM bandwidth at 60 FPS; the cache cuts
off-chip feature accesses by 44.9%, avoiding a 13.5% slowdown.
"""

from conftest import show
from repro.harness import run_experiment


def test_sec5a_memory(benchmark, experiments):
    output = experiments("sec5a")
    show(output)
    data = output.data
    assert 0.3 < data["dram"] < 1.0
    assert 0.25 < data["reduction"] < 0.8
    assert data["slowdown"] >= 0.0
    benchmark.pedantic(
        lambda: run_experiment("sec5a", detail=0.3), rounds=1, iterations=1
    )
