"""Fig. 1: rendering quality vs speed landscape (reported values)."""

from conftest import show


def test_fig01_landscape(benchmark, experiments):
    output = experiments("fig1")
    show(output)
    result = benchmark(lambda: experiments("fig1"))
    assert len(output.data) == 9
