"""Fig. 9: per-row workload imbalance that motivates the Row-Centric
Tile Engine."""

from conftest import show
from repro.harness import run_experiment


def test_fig09_row_workload(benchmark, experiments):
    output = experiments("fig9")
    show(output)
    assert output.data["imbalance"] > 1.5
    benchmark.pedantic(
        lambda: run_experiment("fig9", detail=0.3), rounds=1, iterations=1
    )
