"""Fig. 15: energy-efficiency improvement per scene.

Paper shape: static >> dynamic > avatar (10.8x / 4.4x / 2.5x), because
avatar frames keep the GPU busy with preprocessing.
"""

import numpy as np

from conftest import show
from repro.harness import run_experiment
from repro.metrics.energy import EnergyModel
from repro.scenes.catalog import CATALOG, AppType


def test_fig15_energy(benchmark, experiments):
    output = experiments("fig14_fig15")
    show(output)
    per_app = {app: [] for app in AppType}
    for scene, results in output.data.items():
        eff = EnergyModel.efficiency_improvement(
            results["gpu_pfs"].energy, results["gbu_full"].energy
        )
        per_app[CATALOG[scene].app_type].append(eff)
    static = np.mean(per_app[AppType.STATIC])
    dynamic = np.mean(per_app[AppType.DYNAMIC])
    avatar = np.mean(per_app[AppType.AVATAR])
    print(f"\nenergy efficiency: static={static:.1f}x dynamic={dynamic:.1f}x "
          f"avatar={avatar:.1f}x (paper: 10.8 / 4.4 / 2.5)")
    assert static > dynamic > avatar > 1.5
    benchmark.pedantic(
        lambda: run_experiment("fig14_fig15", detail=0.25), rounds=1, iterations=1
    )
