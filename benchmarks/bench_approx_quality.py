"""Approx-backend quality/speed ladder and the shard-scaling curve.

The approx backend trades quality for latency through one scalar
tolerance (see ``repro/render/approx.py``).  This benchmark *measures*
that trade on the default scene instead of assuming it, and writes
``BENCH_approx.json`` at the repo root:

* **Tolerance ladder** — for every QoS detail rung (the tolerances
  :func:`repro.render.approx.tolerance_for_rung` actually emits, plus
  the process default), PSNR/SSIM of the approx render against the
  exact vectorized backend, the culled-instance fraction, and the
  wall-clock speedup.  Each rung has an asserted quality floor, so a
  change that silently degrades a rung below its band fails here.
* **Headline acceptance** — at the default tolerance the approx
  backend must clear PSNR >= 35 dB and SSIM >= 0.95 while rendering
  >= 2x faster (combined PFS+IRSS) than exact ``vectorized``.  The
  quality floors are deterministic and always asserted; the speedup
  bar can be lowered for CI smoke runs on unknown shared hardware via
  ``REPRO_BENCH_MIN_APPROX_SPEEDUP`` (the committed JSON records the
  real measurement either way).
* **Shard-scaling curve** — wall-clock of one frame under
  :class:`repro.render.sharding.ShardedRenderer` with a process pool
  at 1/2/4 shards, for the exact and approx backends (recorded, not
  asserted: the curve depends on host core count).

Timing follows the harness discipline: best-of-N with every
configuration interleaved within each repeat, so load transients on
shared runners cancel out of the reported ratios.
"""

from __future__ import annotations

import os

from _harness import (
    DEFAULT_REPEATS as REPEATS,
    bench_output_path,
    interleaved_best,
    write_bench_json,
)
from repro.core.irss import render_irss
from repro.gaussians import build_render_lists, project, render_reference
from repro.metrics.image import psnr, ssim
from repro.render.approx import (
    DEFAULT_TOLERANCE,
    ApproxPolicy,
    cull_render_lists,
    tolerance_for_rung,
    use_approx_policy,
)
from repro.render.sharding import ShardedRenderer
from repro.scenes.catalog import build_scene

OUTPUT = bench_output_path("approx")

#: The catalog's first scene: where the floors are asserted.
DEFAULT_SCENE = "bicycle"

#: Headline acceptance floors at the default tolerance.
MIN_PSNR_DB = 35.0
MIN_SSIM = 0.95
MIN_APPROX_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_APPROX_SPEEDUP", "2.0")
)

#: QoS detail rungs the ladder measures (relative scale, 1.0 = full
#: detail) -> the tolerances the serving stack actually renders with.
RUNG_SCALES = (1.0, 0.75, 0.5, 0.25, 1e-9)

#: Per-tolerance quality floors (min over the two dataflows), set one
#: comfortable notch below the values measured at calibration time so
#: the ladder catches regressions without flaking on host noise (the
#: renders are deterministic; the margin absorbs future scene/knob
#: recalibration, not randomness).
QUALITY_FLOORS = {
    0.15: (40.0, 0.970),
    0.25: (38.0, 0.960),
    0.35: (36.5, 0.955),
    0.45: (35.5, 0.950),
    0.55: (35.0, 0.950),
}

SHARD_COUNTS = (1, 2, 4)


def _quality(exact_pfs, exact_irss, appr_pfs, appr_irss) -> dict:
    """Min-over-dataflows PSNR/SSIM of approx vs exact renders."""
    return {
        "psnr_db": min(
            psnr(appr_pfs.image, exact_pfs.image),
            psnr(appr_irss.image, exact_irss.image),
        ),
        "ssim": min(
            ssim(appr_pfs.image, exact_pfs.image),
            ssim(appr_irss.image, exact_irss.image),
        ),
    }


def test_approx_quality(benchmark):
    bundle = build_scene(DEFAULT_SCENE)
    cloud, _ = bundle.frame_cloud(0)
    projected = project(cloud, bundle.camera)
    lists = build_render_lists(projected)

    exact_pfs = render_reference(projected, lists, backend="vectorized")
    exact_irss = render_irss(projected, lists, backend="vectorized")

    tolerances = sorted(
        {round(tolerance_for_rung(s), 6) for s in RUNG_SCALES}
        | {DEFAULT_TOLERANCE}
    )

    # One interleaved timing block covering exact + every rung: every
    # repeat times all configurations back to back, so the asserted
    # speedup ratios share each repeat's load conditions.
    fns = {
        "exact/pfs": lambda: render_reference(
            projected, lists, backend="vectorized"
        ),
        "exact/irss": lambda: render_irss(
            projected, lists, backend="vectorized"
        ),
    }

    def approx_pair(tol):
        def run_pfs(tol=tol):
            with use_approx_policy(tol):
                return render_reference(projected, lists, backend="approx")

        def run_irss(tol=tol):
            with use_approx_policy(tol):
                return render_irss(projected, lists, backend="approx")

        return run_pfs, run_irss

    for tol in tolerances:
        fns[f"approx@{tol}/pfs"], fns[f"approx@{tol}/irss"] = approx_pair(tol)
    best = interleaved_best(fns, repeats=REPEATS)
    exact_s = best["exact/pfs"] + best["exact/irss"]

    ladder = []
    for tol in tolerances:
        with use_approx_policy(tol) as policy:
            appr_pfs = render_reference(projected, lists, backend="approx")
            appr_irss = render_irss(projected, lists, backend="approx")
        _, cull = cull_render_lists(projected, lists, policy)
        approx_s = best[f"approx@{tol}/pfs"] + best[f"approx@{tol}/irss"]
        row = {
            "tolerance": tol,
            "is_default": tol == DEFAULT_TOLERANCE,
            **_quality(exact_pfs, exact_irss, appr_pfs, appr_irss),
            "culled_fraction": cull.culled_fraction,
            "pfs_ms": best[f"approx@{tol}/pfs"] * 1e3,
            "irss_ms": best[f"approx@{tol}/irss"] * 1e3,
            "speedup_combined": exact_s / approx_s,
        }
        ladder.append(row)

        floor = QUALITY_FLOORS.get(round(tol, 6))
        if floor is not None:
            floor_psnr, floor_ssim = floor
            assert row["psnr_db"] >= floor_psnr, (
                f"tolerance {tol}: PSNR {row['psnr_db']:.2f} dB below "
                f"its {floor_psnr} dB rung floor"
            )
            assert row["ssim"] >= floor_ssim, (
                f"tolerance {tol}: SSIM {row['ssim']:.4f} below "
                f"its {floor_ssim} rung floor"
            )

    default_row = next(r for r in ladder if r["is_default"])
    assert default_row["psnr_db"] >= MIN_PSNR_DB, (
        f"default tolerance PSNR {default_row['psnr_db']:.2f} dB "
        f"< {MIN_PSNR_DB} dB"
    )
    assert default_row["ssim"] >= MIN_SSIM, (
        f"default tolerance SSIM {default_row['ssim']:.4f} < {MIN_SSIM}"
    )
    assert default_row["speedup_combined"] >= MIN_APPROX_SPEEDUP, (
        f"approx backend must be >= {MIN_APPROX_SPEEDUP}x over exact "
        f"vectorized on {DEFAULT_SCENE} at the default tolerance, "
        f"measured {default_row['speedup_combined']:.2f}x"
    )

    # Shard-scaling curve: one frame over a process pool.  Recorded
    # only — wall-clock scaling depends on the host's core count.
    shard_fns = {}
    for backend in ("vectorized", "approx"):
        for n in SHARD_COUNTS:
            renderer = ShardedRenderer(n, backend=backend, processes=n > 1)
            shard_fns[f"{backend}/shards={n}"] = (
                lambda r=renderer: r.render_pfs(projected, lists)
            )
    shard_best = interleaved_best(shard_fns, repeats=3)
    shards = {
        backend: [
            {
                "n_shards": n,
                "pfs_ms": shard_best[f"{backend}/shards={n}"] * 1e3,
                "speedup_vs_1": (
                    shard_best[f"{backend}/shards=1"]
                    / shard_best[f"{backend}/shards={n}"]
                ),
            }
            for n in SHARD_COUNTS
        ]
        for backend in ("vectorized", "approx")
    }

    write_bench_json(
        "approx",
        f"best-of-{REPEATS} wall-clock, exact and every tolerance rung "
        "interleaved within each repeat (load transients cancel in the "
        "asserted ratios); PSNR/SSIM are min over the PFS and IRSS "
        "dataflows vs the exact vectorized render; shard curve is "
        "best-of-3 over a shared process pool",
        {
            "scene": DEFAULT_SCENE,
            "exact_pfs_ms": best["exact/pfs"] * 1e3,
            "exact_irss_ms": best["exact/irss"] * 1e3,
            "floors": {
                "default_psnr_db": MIN_PSNR_DB,
                "default_ssim": MIN_SSIM,
                "default_min_speedup": MIN_APPROX_SPEEDUP,
                "per_rung": {
                    str(t): {"psnr_db": p, "ssim": s}
                    for t, (p, s) in sorted(QUALITY_FLOORS.items())
                },
            },
            "ladder": ladder,
            "shard_scaling": shards,
        },
    )

    print(f"\n=== approx quality ladder ({DEFAULT_SCENE}) -> {OUTPUT.name} ===")
    print(f"{'tol':>6}{'PSNR dB':>9}{'SSIM':>8}{'culled':>8}{'speedup':>9}")
    for r in ladder:
        mark = "*" if r["is_default"] else " "
        print(
            f"{r['tolerance']:>6.2f}{r['psnr_db']:>9.2f}{r['ssim']:>8.4f}"
            f"{r['culled_fraction']:>8.1%}{r['speedup_combined']:>8.2f}x{mark}"
        )
    for backend, rows in shards.items():
        curve = ", ".join(
            f"{row['n_shards']}:{row['speedup_vs_1']:.2f}x" for row in rows
        )
        print(f"shard scaling [{backend}]: {curve}")

    # pytest-benchmark bookkeeping: one approx frame at the default
    # tolerance.
    def one_frame():
        with use_approx_policy(ApproxPolicy.for_tolerance(DEFAULT_TOLERANCE)):
            return render_reference(projected, lists, backend="approx")

    benchmark.pedantic(one_frame, rounds=3, iterations=1)
