"""Scheduler benchmark: load-aware vs round-robin placement.

Serves the skewed session mix of
:func:`repro.analysis.streaming.skewed_session_mix` — heavy long
streams interleaved with light short ones, arrival order chosen so
round-robin stacks the heavy sessions — under both placement policies
and writes ``BENCH_scheduler.json`` at the repo root: per policy the
simulated makespan (busiest worker's summed paper-scale frame
latencies), p50/p95 per-frame render latency (the workload profile),
p50/p95 per-frame *completion* latency (simulated response time
including queueing — the number placement actually moves), and the
resulting load-aware-over-round-robin makespan speedup.

Acceptance bar: load-aware placement must beat round-robin makespan by
``REPRO_BENCH_SCHED_MIN_SPEEDUP`` (default 1.3x) on the default mix.
Both serves run in the server's deterministic in-process ``local``
mode — the simulated makespan depends only on placement, not on host
cores, so the number is stable on any machine.

Smoke knobs (used by CI): ``REPRO_BENCH_SCHED_WORKERS``,
``REPRO_BENCH_SCHED_DETAIL``, ``REPRO_BENCH_SCHED_HEAVY_FRAMES``,
``REPRO_BENCH_SCHED_LIGHT_FRAMES``, ``REPRO_BENCH_SCHED_MIN_SPEEDUP``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.streaming import compare_placements, skewed_session_mix

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_scheduler.json"

WORKERS = int(os.environ.get("REPRO_BENCH_SCHED_WORKERS", "2"))
DETAIL = float(os.environ.get("REPRO_BENCH_SCHED_DETAIL", "1.0"))
HEAVY_FRAMES = int(os.environ.get("REPRO_BENCH_SCHED_HEAVY_FRAMES", "12"))
LIGHT_FRAMES = int(os.environ.get("REPRO_BENCH_SCHED_LIGHT_FRAMES", "4"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SCHED_MIN_SPEEDUP", "1.3"))


def test_scheduler_placement(benchmark):
    sessions = skewed_session_mix(
        heavy_frames=HEAVY_FRAMES,
        light_frames=LIGHT_FRAMES,
        pairs=WORKERS,
        detail=DETAIL,
    )
    comparison = compare_placements(
        sessions=sessions, workers=WORKERS, detail=DETAIL
    )

    rows = []
    for placement, point in comparison.points.items():
        rows.append(
            {
                "placement": placement,
                "workers": point.workers,
                "sessions": point.sessions,
                "total_frames": point.total_frames,
                "sim_makespan_seconds": point.sim_makespan_seconds,
                "p50_frame_seconds": point.p50_frame_seconds,
                "p95_frame_seconds": point.p95_frame_seconds,
                "p50_completion_seconds": point.p50_completion_seconds,
                "p95_completion_seconds": point.p95_completion_seconds,
                "migrations": point.migrations,
            }
        )

    payload = {
        "benchmark": "scheduler_placement",
        "methodology": (
            "skewed mix (heavy long + light short sessions, arrival order "
            "adversarial for round-robin) served to completion per policy "
            "in deterministic local mode; makespan = busiest worker's "
            "summed paper-scale frame latencies; latency percentiles over "
            "every session frame"
        ),
        "workers": WORKERS,
        "detail": DETAIL,
        "mix": {
            "heavy": {"scene": "bicycle", "frames": HEAVY_FRAMES},
            "light": {"scene": "female_4", "frames": LIGHT_FRAMES},
            "pairs": WORKERS,
        },
        "summary": {
            "makespan_speedup_load_over_rr": comparison.speedup,
            "floor": MIN_SPEEDUP,
        },
        "placements": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== scheduler placement ({WORKERS} workers) -> {OUTPUT.name} ===")
    print(
        f"{'policy':>8}{'makespan':>12}{'p50 frame':>12}{'p95 frame':>12}"
        f"{'p50 compl':>12}{'p95 compl':>12}"
    )
    for row in rows:
        print(
            f"{row['placement']:>8}{row['sim_makespan_seconds']:>12.4f}"
            f"{row['p50_frame_seconds']:>12.5f}{row['p95_frame_seconds']:>12.5f}"
            f"{row['p50_completion_seconds']:>12.4f}"
            f"{row['p95_completion_seconds']:>12.4f}"
        )
    print(f"load-aware over round-robin: {comparison.speedup:.2f}x "
          f"(floor {MIN_SPEEDUP}x)")

    assert comparison.speedup >= MIN_SPEEDUP, (
        f"load-aware placement must beat round-robin makespan by "
        f">= {MIN_SPEEDUP}x on the skewed mix, measured "
        f"{comparison.speedup:.2f}x"
    )

    # pytest-benchmark bookkeeping: one small two-policy comparison.
    benchmark.pedantic(
        lambda: compare_placements(workers=2, detail=0.25),
        rounds=3,
        iterations=1,
    )
