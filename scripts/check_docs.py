#!/usr/bin/env python
"""Offline documentation gate.

Two checks, both dependency-free so they run in CI and offline
environments alike (``tests/test_docs.py`` wires them into the tier-1
suite):

1. **Module docstrings** — every module under ``src/repro/`` must open
   with a docstring (the modules are the API reference; an
   undocumented module is a dead end for readers).
2. **No dead paths** — every repository path referenced from
   ``README.md`` and ``docs/*.md`` must exist.  References are
   harvested from markdown link targets, inline code spans and fenced
   code blocks; a token counts as a repository path when it lives
   under a known top-level directory (``src/``, ``docs/``, ``tests/``,
   ``benchmarks/``, ``examples/``, ``scripts/``, ``.github/``) or is a
   root-level file name with a documentation-ish extension.  Glob
   patterns (e.g. ``BENCH_*.json``) pass when they match at least one
   file.  Literal (non-glob) ``.gitignore`` entries also pass: they
   name *generated* artifacts (coverage reports, build outputs) that
   the docs may legitimately describe even though a fresh checkout
   does not contain them.

Usage: python scripts/check_docs.py   (from anywhere; paths resolve
against the repository root).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose prefixed tokens are treated as repository paths.
PATH_ROOTS = ("src", "docs", "tests", "benchmarks", "examples", "scripts", ".github")

#: Extensions a bare root-level file reference may have.
ROOT_FILE_EXTENSIONS = (".md", ".json", ".toml", ".py", ".yml", ".cfg", ".txt")

#: Markdown files whose path references are verified.
DOC_FILES = ("README.md", "docs")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
_FENCE_RE = re.compile(r"```.*?\n(.*?)```", re.DOTALL)
_TOKEN_RE = re.compile(r"^[\w.*/-]+$")


def check_module_docstrings(src_root: Path) -> list[str]:
    """Every module under ``src_root`` must have a module docstring."""
    messages = []
    for path in sorted(src_root.rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - tree must parse
            messages.append(f"{path.relative_to(REPO_ROOT)}: syntax error: {exc.msg}")
            continue
        if ast.get_docstring(tree) is None:
            messages.append(
                f"{path.relative_to(REPO_ROOT)}:1: missing module docstring"
            )
    return messages


def _looks_like_path(token: str) -> bool:
    token = token.strip()
    if not token or not _TOKEN_RE.match(token):
        return False
    if "/" in token:
        head = token.split("/", 1)[0]
        return head in PATH_ROOTS
    return token.endswith(ROOT_FILE_EXTENSIONS)


def _generated_artifacts() -> frozenset[str]:
    """Literal (non-glob) ``.gitignore`` entries.

    These name generated artifacts — coverage reports, build outputs —
    that the docs may describe even though a fresh checkout does not
    contain them.  Patterns, comments and negations are skipped: only
    an exactly-named artifact vouches for a doc reference.
    """
    path = REPO_ROOT / ".gitignore"
    if not path.exists():
        return frozenset()
    names = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith(("#", "!")):
            continue
        if any(ch in line for ch in "*?["):
            continue
        names.add(line.strip("/"))
    return frozenset(names)


def _exists(token: str, doc_dir: Path) -> bool:
    """Resolve a referenced path.

    Tokens with a directory component resolve against the repo root
    (with the doc's own directory as fallback, so relative markdown
    links between docs work).  Bare file names — ``camera.py`` named
    inside a table row about its package — may live anywhere in the
    tree.  Glob patterns pass when they match at least one file, and
    known generated artifacts (see :func:`_generated_artifacts`) pass
    by name.
    """
    token = token.rstrip("/")
    if "/" in token:
        if "*" in token:
            found = any(REPO_ROOT.glob(token)) or any(doc_dir.glob(token))
        else:
            found = (REPO_ROOT / token).exists() or (doc_dir / token).exists()
    elif "*" in token:
        found = any(REPO_ROOT.rglob(token))
    else:
        found = (
            (REPO_ROOT / token).exists()
            or (doc_dir / token).exists()
            or any(REPO_ROOT.rglob(token))
        )
    if found:
        return True
    generated = _generated_artifacts()
    return token in generated or token.rsplit("/", 1)[-1] in generated


def referenced_paths(text: str) -> set[str]:
    """Repository-path tokens referenced by one markdown document."""
    tokens: set[str] = set()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        tokens.add(target.split("#", 1)[0])
    for regex in (_CODE_SPAN_RE, _FENCE_RE):
        for match in regex.finditer(text):
            for word in match.group(1).split():
                tokens.add(word.strip(",;:()'\""))
    return {t for t in tokens if _looks_like_path(t)}


def check_doc_paths(doc_files: list[Path]) -> list[str]:
    """Every repository path referenced in the docs must exist."""
    messages = []
    for doc in doc_files:
        text = doc.read_text()
        for token in sorted(referenced_paths(text)):
            if not _exists(token, doc.parent):
                messages.append(
                    f"{doc.relative_to(REPO_ROOT)}: dead path '{token}'"
                )
    return messages


def collect_doc_files() -> list[Path]:
    files = []
    for entry in DOC_FILES:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def main() -> int:
    failures = check_module_docstrings(REPO_ROOT / "src" / "repro")
    failures += check_doc_paths(collect_doc_files())
    for message in failures:
        print(message)
    if failures:
        print(f"{len(failures)} documentation error(s)")
        return 1
    n_docs = len(collect_doc_files())
    print(f"docs OK: all modules docstringed, no dead paths in {n_docs} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
