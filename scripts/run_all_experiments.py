"""Regenerate every table/figure of the paper in one run.

Usage:
    python scripts/run_all_experiments.py [--detail D] [key ...]

Without arguments, runs the full registry at full detail (several
minutes) and prints each experiment's table — the same output the
benchmarks show, without the pytest-benchmark machinery.  Pass
experiment keys (e.g. ``fig14_fig15 tab5``) to run a subset, or
``--detail 0.3`` for a quick reduced-fidelity pass.
"""

from __future__ import annotations

import argparse
import time

from repro.harness import EXPERIMENTS, run_experiment

# Cheap-first ordering so early output appears immediately.
DEFAULT_ORDER = [
    "fig1", "tab1", "tab2_tab3", "fig9", "fig6", "fig4_fig5", "sec4d",
    "fig17", "sec6f", "fig16", "tab4", "sec5a", "tab6_tab7",
    "fig14_fig15", "tab5",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("keys", nargs="*", default=None,
                        help="experiment keys (default: all)")
    parser.add_argument("--detail", type=float, default=1.0,
                        help="scene detail multiplier (default 1.0)")
    args = parser.parse_args()

    keys = args.keys or DEFAULT_ORDER
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment keys: {unknown}")

    total_start = time.time()
    for key in keys:
        start = time.time()
        output = run_experiment(key, detail=args.detail)
        print(f"===== {key} ({time.time() - start:.1f}s) =====")
        print(output.table)
        print()
    print(f"all experiments done in {time.time() - total_start:.0f}s")


if __name__ == "__main__":
    main()
