#!/usr/bin/env python
"""Offline lint pass: unused imports (F401).

Thin shim over the static-analysis framework (``repro.analyze``): the
F401 check now lives there as rule ``IMP001``, next to the mutable-
default (``IMP002``), determinism, checkpoint-completeness and
shared-state rules — run ``scripts/analyze.py`` for the full gate.
This script keeps the historical interface (same output format, same
default paths, exit 1 on any unused import) so CI's "offline lint
mirror" step and ``tests/test_lint.py`` are unchanged.

The CI workflow also runs the real ``ruff check`` (configured in
``ruff.toml``, covering F811/F821/E401/E703/B006 as well); this shim
is the part that still works in offline environments without ruff.

Usage: python scripts/lint.py [paths...]   (default: src benchmarks
scripts tests examples)
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analyze.project import ModuleInfo  # noqa: E402
from repro.analyze.rules_imports import unused_imports  # noqa: E402


def check_file(path: Path) -> list[str]:
    """Return F401 lint messages for one python file."""
    try:
        mod = ModuleInfo.from_source(str(path), path.read_text())
    except Exception as exc:  # pragma: no cover - lint target must parse
        return [f"{path}: syntax error: {exc}"]
    return [
        f"{path}:{lineno}: F401 '{display}' imported but unused"
        for lineno, _bound, display in unused_imports(mod.tree)
    ]


def main(argv: list[str]) -> int:
    roots = [
        Path(p)
        for p in (argv or ["src", "benchmarks", "scripts", "tests", "examples"])
    ]
    failures = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            failures.extend(check_file(path))
    for message in failures:
        print(message)
    if failures:
        print(f"{len(failures)} lint error(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
