#!/usr/bin/env python
"""Offline lint pass: unused imports (F401).

The CI workflow runs the real ``ruff check`` (configured in
``ruff.toml``, which also covers F811/F821/E401/E703); this script
mirrors the unused-import check with the standard library only, so
that part of the lint gate also runs in offline environments where
ruff is not installed (``tests/test_lint.py``).

Usage: python scripts/lint.py [paths...]   (default: src benchmarks
scripts tests examples)
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def _imported_names(node: ast.Import | ast.ImportFrom) -> list[tuple[str, str]]:
    """(bound name, display name) pairs introduced by an import node."""
    names = []
    for alias in node.names:
        if alias.name == "*":
            continue
        if alias.asname:
            names.append((alias.asname, alias.name))
        else:
            # "import a.b" binds "a"; "from m import x" binds "x".
            bound = alias.name.split(".")[0]
            names.append((bound, alias.name))
    return names


def check_file(path: Path) -> list[str]:
    """Return lint messages for one python file."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - lint target must parse
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]

    imports: dict[str, tuple[int, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for bound, display in _imported_names(node):
                imports[bound] = (node.lineno, display)

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "a.b.c" uses "a"; ast.Name covers it, nothing extra needed.
            pass

    # Names re-exported via __all__ strings count as used.
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        used.add(elt.value)

    messages = []
    for bound, (lineno, display) in sorted(imports.items(), key=lambda kv: kv[1][0]):
        if bound not in used:
            messages.append(f"{path}:{lineno}: F401 '{display}' imported but unused")
    return messages


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in (argv or ["src", "benchmarks", "scripts", "tests", "examples"])]
    failures = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            failures.extend(check_file(path))
    for message in failures:
        print(message)
    if failures:
        print(f"{len(failures)} lint error(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
