"""Calibration driver: print per-scene workload stats, stage fractions
and baseline FPS at unit workload scale, then the workload_scale each
scene needs to hit its Fig. 4 frame-time anchor.

Usage:  python scripts/calibrate.py [scene ...]
"""

from __future__ import annotations

import sys
import time

from repro.core.irss import render_irss
from repro.gaussians import build_render_lists, project, render_reference
from repro.gpu import FrameWorkload, GPUTimingModel, ScaleFactors
from repro.scenes import build_scene
from repro.scenes.catalog import EVALUATION_SCENES

# Fig. 4 anchors: paper baseline FPS per scene (read off the figure).
TARGET_BASELINE_FPS = {
    "bicycle": 8.0, "bonsai": 16.0, "counter": 14.0, "kitchen": 12.0,
    "room": 15.0, "stump": 10.5,
    "flame_steak": 18.0, "sear_steak": 19.0, "cut_beef": 17.0,
    "female_4": 40.0, "male_3": 42.0, "male_4": 41.0,
}


def main() -> None:
    names = sys.argv[1:] or EVALUATION_SCENES
    model = GPUTimingModel()
    for name in names:
        t0 = time.time()
        bundle = build_scene(name)
        cloud, extra = bundle.frame_cloud(0)
        proj = project(cloud, bundle.camera)
        lists = build_render_lists(proj)
        ref = render_reference(proj, lists)
        ir = render_irss(proj, lists)
        wl = FrameWorkload.from_renders(
            ref, ir, lists, len(proj), extra, ScaleFactors.identity()
        )
        pfs = model.frame_pfs(wl)
        irss = model.frame_irss(wl)
        dup = lists.n_instances / max(len(proj), 1)
        ratio = ir.stats.fragments_shaded / max(len(proj), 1)
        target = TARGET_BASELINE_FPS.get(name)
        scale = 1.0 / (target * pfs.total_s) if target else float("nan")
        print(
            f"{name:12s} vis={len(proj):5d} inst={lists.n_instances:6d} "
            f"dup={dup:5.1f} ratio={ratio:6.1f} "
            f"sig={ref.stats.significant_fraction:.3f} "
            f"skip={ir.stats.skip_rate:.3f}"
        )
        print(
            f"   PFS  frac=({pfs.fractions[0]:.2f} {pfs.fractions[1]:.2f} "
            f"{pfs.fractions[2]:.2f}) util={pfs.step3_utilization:.3f}  "
            f"IRSS frac=({irss.fractions[0]:.2f} {irss.fractions[1]:.2f} "
            f"{irss.fractions[2]:.2f}) util={irss.step3_utilization:.3f}  "
            f"irss_speedup={pfs.total_s / irss.total_s:.2f} "
            f"step3x={pfs.step3_s / irss.step3_s:.2f}"
        )
        print(
            f"   scale={scale:9.1f}  ({time.time() - t0:.1f}s)"
        )


if __name__ == "__main__":
    main()
