#!/usr/bin/env python
"""Invariant static-analysis gate (CLI for ``repro.analyze``).

Runs the registered rule families — determinism (DET1xx), checkpoint
completeness (CKPT2xx), shared-state races (RACE3xx), import hygiene
(IMP0xx) — over the repository and fails on findings that are neither
inline-suppressed (``# analyze: allow[RULE] reason``) nor covered by a
justified entry in ``analyze_baseline.json``.

Usage::

    PYTHONPATH=src python scripts/analyze.py [paths...] [options]

    --json               machine-readable report on stdout
    --baseline PATH      baseline file (default: analyze_baseline.json)
    --update-baseline    rewrite the baseline to accept current findings
                         (entries get a TODO justification to fill in)
    --rules ID[,ID...]   run only these rules
    --list-rules         print the rule catalog and exit

Default paths: src benchmarks scripts tests examples (those that
exist).  Exit status: 0 when there are no new findings, 1 otherwise.
Rule catalog and suppression syntax: ``docs/static-analysis.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analyze import (  # noqa: E402
    Baseline,
    all_rules,
    get_rule,
    run_analysis,
)
from repro.analyze.baseline import BASELINE_FILENAME  # noqa: E402


def _print_table(findings, label: str) -> None:
    if not findings:
        return
    print(f"\n{label}:")
    width = max(len(f.location()) for f in findings)
    for f in findings:
        print(
            f"  {f.location():<{width}}  {f.rule_id}  "
            f"[{f.severity.value}]  {f.message}"
        )
        if f.hint:
            print(f"  {'':<{width}}  ↳ {f.hint}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[1],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: src benchmarks "
        "scripts tests examples)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / BASELINE_FILENAME),
        help=f"baseline file (default: {BASELINE_FILENAME})",
    )
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in all_rules():
            print(f"{r.rule_id}  [{r.severity.value:7}]  {r.title}")
            print(f"        {r.description}")
        return 0

    rules = None
    if args.rules:
        rules = [get_rule(rid.strip()) for rid in args.rules.split(",")]

    baseline_path = Path(args.baseline)
    baseline = Baseline.load(baseline_path)
    report = run_analysis(
        root=REPO_ROOT,
        paths=args.paths or None,
        rules=rules,
        baseline=baseline,
    )

    if args.update_baseline:
        Baseline.from_findings(
            report.new + report.baselined,
            justification="TODO: justify this suppression",
        ).save(baseline_path)
        print(
            f"baseline updated: {len(report.new) + len(report.baselined)} "
            f"entr(ies) written to {baseline_path}"
        )
        return 0

    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1

    _print_table(report.new, "NEW findings (fail the gate)")
    _print_table(report.baselined, "baselined findings")
    _print_table(report.suppressed, "inline-suppressed findings")
    if report.stale_entries:
        print("\nstale baseline entries (matched nothing — delete them):")
        for entry in report.stale_entries:
            where = entry.path if entry.line is None else f"{entry.path}:{entry.line}"
            print(f"  {entry.rule} at {where}: {entry.justification}")
    counts = (
        f"{len(report.new)} new, {len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    if report.ok:
        print(f"analyze OK: {counts} ({len(report.rules)} rule(s))")
        return 0
    print(f"analyze FAILED: {counts}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
