#!/usr/bin/env python
"""Dependency-free line-coverage gate for the serving stack.

Runs a pytest subset under a ``sys.settrace`` line tracer restricted to
one source subtree and enforces a minimum line-coverage floor — no
``coverage``/``pytest-cov`` install required, so the gate behaves
identically in CI and in offline/sandboxed environments (where those
packages may not exist).  When ``coverage.py`` *is* available it will
happily run alongside; this gate never imports it.

Executable lines are derived from the AST: every statement's first
line, minus module/class/function docstrings, ``global``/``nonlocal``
declarations (no runtime line event), ``if __name__ == "__main__"``
bodies, and anything marked ``# pragma: no cover`` (a marked compound
header excludes its whole suite — the same convention coverage.py
uses, so worker-subprocess-only code is excluded consistently).

Usage (defaults shown):

    PYTHONPATH=src python scripts/coverage_gate.py \\
        --target src/repro/stream --tests tests/stream \\
        --min 85 --report coverage_stream.json

``--min-file PATH:PCT`` (repeatable) additionally enforces a per-file
floor on files inside the target, so a new hot module cannot hide
behind the directory average.

Exit status: 0 when total coverage >= the floor, every per-file floor
holds, and the test run passed; 1 otherwise.  The JSON report (per-file covered/missed lines)
is written either way, so CI can upload it as an artifact.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

PRAGMA = "pragma: no cover"


def executable_lines(path: Path) -> set[int]:
    """Statement lines of ``path`` that a complete run should execute."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    source_lines = source.splitlines()
    pragma_lines = {
        i + 1 for i, line in enumerate(source_lines) if PRAGMA in line
    }

    excluded: set[int] = set()

    def exclude_subtree(node: ast.AST) -> None:
        end = getattr(node, "end_lineno", node.lineno)
        excluded.update(range(node.lineno, end + 1))

    lines: set[int] = set()

    def visit(node: ast.AST) -> None:
        body = getattr(node, "body", None)
        docstring = None
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and body:
            first = body[0]
            if isinstance(first, ast.Expr) and isinstance(
                first.value, ast.Constant
            ) and isinstance(first.value.value, str):
                docstring = first
        for child in ast.iter_child_nodes(node):
            if child is docstring:
                continue
            if isinstance(child, ast.stmt):
                if child.lineno in pragma_lines:
                    exclude_subtree(child)
                    continue
                if _is_main_guard(child):
                    lines.add(child.lineno)  # the `if` itself runs on import
                    for stmt in child.body:
                        exclude_subtree(stmt)
                    continue
                if not isinstance(child, (ast.Global, ast.Nonlocal)):
                    lines.add(child.lineno)
            visit(child)

    def _is_main_guard(node: ast.stmt) -> bool:
        if not isinstance(node, ast.If):
            return False
        test = node.test
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and any(
                isinstance(c, ast.Constant) and c.value == "__main__"
                for c in test.comparators
            )
        )

    visit(tree)
    return lines - excluded


class LineTracer:
    """Global trace hook recording executed lines under one subtree."""

    def __init__(self, root: Path) -> None:
        self.root = str(root)
        self.executed: dict[str, set[int]] = {}

    def __call__(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.root):
            return None
        return self._local

    def _local(self, frame, event, arg):
        if event == "line":
            self.executed.setdefault(
                frame.f_code.co_filename, set()
            ).add(frame.f_lineno)
        return self._local

    def install(self) -> None:
        threading.settrace(self)
        sys.settrace(self)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target",
        default="src/repro/stream",
        help="source subtree to measure (default: src/repro/stream)",
    )
    parser.add_argument(
        "--tests",
        default="tests/stream",
        help="pytest path to run under the tracer (default: tests/stream)",
    )
    parser.add_argument(
        "--min",
        type=float,
        default=85.0,
        help="minimum total line coverage in percent (default: 85)",
    )
    parser.add_argument(
        "--report",
        default="coverage_stream.json",
        help="JSON report path, repo-root relative (default: "
        "coverage_stream.json)",
    )
    parser.add_argument(
        "--min-file",
        action="append",
        default=[],
        metavar="PATH:PCT",
        help="per-file floor, repeatable (e.g. "
        "src/repro/stream/content_cache.py:85); the path is repo-root "
        "relative and must lie inside --target",
    )
    args = parser.parse_args(argv)

    file_floors: dict[str, float] = {}
    for spec in args.min_file:
        path_part, sep, pct_part = spec.rpartition(":")
        try:
            if not sep:
                raise ValueError
            file_floors[path_part] = float(pct_part)
        except ValueError:
            print(
                f"error: --min-file '{spec}' is not PATH:PCT",
                file=sys.stderr,
            )
            return 1

    target = (REPO_ROOT / args.target).resolve()
    if not target.is_dir():
        print(f"error: target '{target}' is not a directory", file=sys.stderr)
        return 1

    tracer = LineTracer(target)
    tracer.install()
    try:
        import pytest

        status = pytest.main([str(REPO_ROOT / args.tests), "-q", "-x"])
    finally:
        tracer.uninstall()
    if status != 0:
        print(f"error: test run failed (pytest exit {status})", file=sys.stderr)
        return 1

    rows = []
    total_exec = 0
    total_hit = 0
    for path in sorted(target.rglob("*.py")):
        expected = executable_lines(path)
        hit = tracer.executed.get(str(path), set()) & expected
        missed = sorted(expected - hit)
        total_exec += len(expected)
        total_hit += len(hit)
        rows.append(
            {
                "file": str(path.relative_to(REPO_ROOT)),
                "executable": len(expected),
                "covered": len(hit),
                "percent": (
                    100.0 * len(hit) / len(expected) if expected else 100.0
                ),
                "missed_lines": missed,
            }
        )
    total = 100.0 * total_hit / total_exec if total_exec else 100.0

    by_file = {r["file"]: r for r in rows}
    unknown = sorted(set(file_floors) - set(by_file))
    if unknown:
        print(
            f"error: --min-file path(s) not under --target: "
            f"{', '.join(unknown)}",
            file=sys.stderr,
        )
        return 1

    report = {
        "target": args.target,
        "tests": args.tests,
        "floor_percent": args.min,
        "file_floors": file_floors,
        "total_percent": total,
        "total_executable": total_exec,
        "total_covered": total_hit,
        "files": rows,
    }
    report_path = REPO_ROOT / args.report
    report_path.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(r["file"]) for r in rows) if rows else 10
    print(f"\n{'file':<{width}}  {'lines':>6}  {'hit':>6}  {'cover':>7}")
    for r in rows:
        print(
            f"{r['file']:<{width}}  {r['executable']:>6}  {r['covered']:>6}"
            f"  {r['percent']:>6.1f}%"
        )
    print(
        f"{'TOTAL':<{width}}  {total_exec:>6}  {total_hit:>6}  {total:>6.1f}%"
        f"  (floor {args.min:.0f}%) -> {report_path.name}"
    )
    failed = False
    for file, floor in sorted(file_floors.items()):
        row = by_file[file]
        if row["percent"] < floor:
            print(
                f"error: {file} coverage {row['percent']:.1f}% is below "
                f"its {floor:.0f}% floor "
                f"(missed lines {row['missed_lines'][:10]}...)",
                file=sys.stderr,
            )
            failed = True
    if total < args.min:
        worst = sorted(rows, key=lambda r: r["percent"])[:3]
        for r in worst:
            print(
                f"  lowest: {r['file']} {r['percent']:.1f}% "
                f"(missed lines {r['missed_lines'][:10]}...)",
                file=sys.stderr,
            )
        print(
            f"error: coverage {total:.1f}% is below the {args.min:.0f}% floor",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
