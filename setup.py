"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim
enables the legacy editable path:

    pip install -e . --no-build-isolation --no-use-pep517

Installation also registers the ``repro-stream`` console script; the
uninstalled equivalent is ``PYTHONPATH=src python -m repro.stream``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-gbu",
    version="1.0.0",
    description=(
        "Python reproduction of 'Gaussian Blending Unit: An Edge GPU "
        "Plug-in for Real-Time Gaussian-Based Rendering in AR/VR'"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-stream=repro.stream.cli:main",
        ]
    },
)
