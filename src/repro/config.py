"""Global constants and render settings shared across the library.

The values here mirror the conventions of the 3D Gaussian Splatting
reference implementation (Kerbl et al., 2023) that the paper builds on,
plus the hardware constants of the Gaussian Blending Unit (GBU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Tile edge length in pixels.  Both the 3DGS CUDA rasterizer and the GBU
# render in units of 16 x 16 pixel tiles (Sec. II-B, Sec. V-C).
TILE_SIZE = 16

# Alpha below which a fragment is treated as not contributing (1/255 in
# the 3DGS reference implementation; the paper's "predefined threshold").
ALPHA_MIN = 1.0 / 255.0

# Alpha is clamped from above to keep (1 - alpha) bounded away from zero,
# exactly as in the 3DGS reference rasterizer.
ALPHA_MAX = 0.99

# Per-pixel blending stops once accumulated transmittance drops below
# this value (early termination in the 3DGS reference rasterizer).
TRANSMITTANCE_EPS = 1e-4

# Hard cap on the Mahalanobis-squared truncation threshold.  Corresponds
# to the classic 3-sigma footprint bound used for tile binning.
MAX_MAHALANOBIS_SQ = 9.0

# Low-pass dilation added to the diagonal of every projected 2D
# covariance (EWA splatting anti-aliasing term used by 3DGS).
COV2D_DILATION = 0.3

# Minimum camera-space depth for a Gaussian to be considered visible.
NEAR_PLANE = 0.2

# DRAM bytes moved per (tile, Gaussian) feature fetch in Rendering
# Step 3: the fp32 record (2D mean, conic/Cholesky coefficients,
# color, opacity, threshold, index) padded to DRAM burst granularity.
# This value makes Step 3 demand ~62% of the Orin NX's bandwidth at
# 60 FPS on static scenes, matching the paper's Sec. V-A measurement.
FEATURE_BYTES = 128

# Default number of Gaussians per chunk in the two-level pipeline
# between the Decomposition & Binning engine and the Tile PE (Fig. 13).
# Sized for the simulated (reduced-scale) scenes so that a frame spans
# roughly the same number of chunks as the paper's full-size scenes.
DEFAULT_CHUNK_SIZE = 128


@dataclass(frozen=True)
class RenderSettings:
    """Settings shared by every rasterizer implementation in the repo.

    Attributes
    ----------
    alpha_min:
        Fragments with blended alpha below this value are discarded;
        this is the truncation threshold of Sec. II-B.
    alpha_max:
        Upper clamp applied to fragment alpha before blending.
    transmittance_eps:
        Early-termination threshold on accumulated transmittance.
    max_mahalanobis_sq:
        Hard cap for the per-Gaussian truncation threshold ``Th``.
    background:
        RGB background color composited behind the splats.
    sh_degree:
        Active spherical-harmonics degree used for view-dependent color.
    """

    alpha_min: float = ALPHA_MIN
    alpha_max: float = ALPHA_MAX
    transmittance_eps: float = TRANSMITTANCE_EPS
    max_mahalanobis_sq: float = MAX_MAHALANOBIS_SQ
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)
    sh_degree: int = 2

    def background_array(self) -> np.ndarray:
        """Return the background color as a float64 array of shape (3,)."""
        return np.asarray(self.background, dtype=np.float64)


DEFAULT_SETTINGS = RenderSettings()


@dataclass(frozen=True)
class FlopConvention:
    """FLOP-counting convention used throughout the paper.

    The paper counts only the cost of evaluating the Mahalanobis
    quadratic form of Eq. 7 when comparing dataflows (Fig. 6):

    * PFS evaluates ``(P - mu)^T Sigma^-1 (P - mu)`` from scratch for
      every fragment: 2 subs + 4 muls + 2 adds (mat-vec) + 2 muls +
      1 add (dot) = 11 FLOPs.
    * IRSS shares intermediates along a row: after the two-step
      transform, each new fragment needs one multiply (``x''^2``) and
      one add (``x''^2 + y''^2``) = 2 FLOPs; the coordinate increment
      is treated as index bookkeeping, matching the paper's "2 FLOPs
      per fragment" claim.
    * The first fragment of each (Gaussian, row) segment pays the full
      setup, equivalent to the 11-FLOP direct evaluation.
    """

    pfs_flops_per_fragment: int = 11
    irss_flops_per_fragment: int = 2
    irss_flops_first_fragment: int = 11
    # 1-step transform (P -> P' only) still recomputes both squared
    # coordinates each step: 3 FLOPs per fragment (Sec. IV-B).
    irss_flops_per_fragment_one_step: int = 3


FLOPS = FlopConvention()
