"""4D (temporal) Gaussians for dynamic scenes.

Follows the structure of 4D Gaussian Splatting (Yang et al., 2024,
ref. [51] in the paper): a dynamic scene is a set of 4D Gaussian
kernels; sampling them at a timestep ``t`` yields a set of 3D
Gaussians whose means have moved and whose opacities are modulated by
a temporal Gaussian window:

    mu_i(t)  = mu_i + v_i t + A_i sin(2 pi f_i t + phi_i)
    o_i(t)   = o_i * exp(-(t - tc_i)^2 / (2 sigma_t_i^2))

The linear + sinusoidal motion model captures both steady motion
(camera-relative flow) and oscillatory deformation (flames, cloth);
the temporal window reproduces kernels that exist only for part of
the sequence.  Per-Gaussian slicing cost is what makes Rendering
Step 1 heavier for dynamic scenes (Fig. 5's larger Step-1 share).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.gaussian import GaussianCloud


@dataclass
class TemporalGaussianModel:
    """A dynamic scene as temporally-parameterized Gaussians.

    Attributes
    ----------
    base:
        The canonical 3D Gaussians at ``t = 0``.
    velocities:
        (N, 3) linear velocity per Gaussian (world units / unit time).
    amplitudes:
        (N, 3) oscillation amplitude vectors.
    frequencies:
        (N,) oscillation frequency (cycles / unit time).
    phases:
        (N,) oscillation phase offsets.
    time_centers:
        (N,) center of each kernel's temporal support window.
    time_sigmas:
        (N,) temporal window widths; ``inf`` means always active.
    """

    base: GaussianCloud
    velocities: np.ndarray
    amplitudes: np.ndarray
    frequencies: np.ndarray
    phases: np.ndarray
    time_centers: np.ndarray
    time_sigmas: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.base)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.amplitudes = np.ascontiguousarray(self.amplitudes, dtype=np.float64)
        self.frequencies = np.ascontiguousarray(self.frequencies, dtype=np.float64)
        self.phases = np.ascontiguousarray(self.phases, dtype=np.float64)
        self.time_centers = np.ascontiguousarray(self.time_centers, dtype=np.float64)
        self.time_sigmas = np.ascontiguousarray(self.time_sigmas, dtype=np.float64)
        for name, arr, shape in (
            ("velocities", self.velocities, (n, 3)),
            ("amplitudes", self.amplitudes, (n, 3)),
            ("frequencies", self.frequencies, (n,)),
            ("phases", self.phases, (n,)),
            ("time_centers", self.time_centers, (n,)),
            ("time_sigmas", self.time_sigmas, (n,)),
        ):
            if arr.shape != shape:
                raise ValidationError(f"{name} must have shape {shape}, got {arr.shape}")
        if np.any(self.time_sigmas <= 0):
            raise ValidationError("time_sigmas must be positive")

    def __len__(self) -> int:
        return len(self.base)

    def at_time(self, t: float, opacity_floor: float = 1e-3) -> GaussianCloud:
        """Slice the 4D kernels at timestep ``t`` (Rendering Step 1a).

        Returns a 3D :class:`GaussianCloud` containing every kernel
        whose temporally-modulated opacity clears ``opacity_floor``.
        """
        return self.at_time_indexed(t, opacity_floor=opacity_floor)[0]

    def at_time_indexed(
        self, t: float, opacity_floor: float = 1e-3
    ) -> tuple[GaussianCloud, np.ndarray]:
        """Slice at ``t`` and also return the surviving kernel indices.

        The index array maps each row of the returned cloud back to
        its 4D kernel, giving streaming layers a frame-stable Gaussian
        identity even as transient kernels appear and disappear.
        """
        phase = 2.0 * np.pi * self.frequencies * t + self.phases
        offset = (
            self.velocities * t + self.amplitudes * np.sin(phase)[:, None]
        )
        window = np.exp(
            -0.5 * ((t - self.time_centers) / self.time_sigmas) ** 2
        )
        opacities = np.clip(self.base.opacities * window, 0.0, 1.0)
        keep = opacities > opacity_floor
        if not np.any(keep):
            # Empty frame is legal (e.g. sampling far outside the clip).
            empty = np.zeros(0, dtype=np.int64)
            return self.base.subset(empty), empty
        idx = np.nonzero(keep)[0]
        cloud = GaussianCloud(
            means=self.base.means[idx] + offset[idx],
            scales=self.base.scales[idx],
            quats=self.base.quats[idx],
            opacities=opacities[idx],
            sh=self.base.sh[idx],
        )
        return cloud, idx

    def mean_displacement(self, t0: float, t1: float) -> float:
        """Mean kernel-center motion between two timesteps (world units).

        A scene-level motion magnitude used by the streaming analysis
        to correlate cross-frame reuse with how much the scene moved.
        """
        def offsets(t: float) -> np.ndarray:
            phase = 2.0 * np.pi * self.frequencies * t + self.phases
            return self.velocities * t + self.amplitudes * np.sin(phase)[:, None]

        delta = offsets(t1) - offsets(t0)
        if delta.shape[0] == 0:
            return 0.0
        return float(np.mean(np.linalg.norm(delta, axis=1)))

    def slice_flops_per_gaussian(self) -> int:
        """Effective Step-1a GPU cost per kernel per frame.

        Raw slicing arithmetic is ~24 FLOPs (linear + sinusoidal motion
        plus the temporal window), but the 4D-GS preprocessing also
        re-derives covariances and streams time-conditioned parameters;
        the effective lane-work is calibrated against the dynamic rows
        of Fig. 5 (Step 1 near 15-20% of frame time).
        """
        return 1420

    @staticmethod
    def synthetic(
        base: GaussianCloud,
        rng: np.random.Generator,
        moving_fraction: float = 0.35,
        velocity_scale: float = 0.15,
        oscillation_scale: float = 0.05,
        frequency_range: tuple[float, float] = (0.5, 2.0),
        transient_fraction: float = 0.2,
        clip_length: float = 1.0,
    ) -> "TemporalGaussianModel":
        """Attach plausible motion to a static cloud.

        ``moving_fraction`` of kernels get linear+oscillatory motion
        (the dynamic foreground: flames, hands, steam), the rest stay
        still (the static background — most of a Neural-3D-Video scene
        is static, which is what makes feature reuse profitable even
        in dynamic scenes).
        """
        n = len(base)
        moving = rng.random(n) < moving_fraction
        velocities = np.where(
            moving[:, None], rng.normal(0.0, velocity_scale, (n, 3)), 0.0
        )
        amplitudes = np.where(
            moving[:, None], np.abs(rng.normal(0.0, oscillation_scale, (n, 3))), 0.0
        )
        frequencies = rng.uniform(*frequency_range, n) * moving
        phases = rng.uniform(0.0, 2.0 * np.pi, n)
        transient = rng.random(n) < transient_fraction
        time_centers = np.where(transient, rng.uniform(0.0, clip_length, n), 0.5 * clip_length)
        time_sigmas = np.where(
            transient, rng.uniform(0.1, 0.3, n) * clip_length, np.full(n, 1e6)
        )
        return TemporalGaussianModel(
            base=base,
            velocities=velocities,
            amplitudes=amplitudes,
            frequencies=frequencies,
            phases=phases,
            time_centers=time_centers,
            time_sigmas=time_sigmas,
        )
