"""Dynamic-scene and avatar extensions of 3D Gaussians (Sec. II-C).

These are the application-specific Rendering Step 1 variants: 4D
Gaussian slicing for dynamic scenes (4D-GS) and pose-driven linear
blend skinning for human avatars (SplattingAvatar-style).  Both
produce an ordinary :class:`~repro.gaussians.gaussian.GaussianCloud`,
after which Rendering Steps 2 and 3 are identical across applications
— the observation the GBU design rests on (Sec. II-D).
"""

from repro.dynamics.temporal import TemporalGaussianModel
from repro.dynamics.avatar import AvatarModel, Skeleton, walking_pose

__all__ = [
    "TemporalGaussianModel",
    "AvatarModel",
    "Skeleton",
    "walking_pose",
]
