"""Pose-driven human avatars with Gaussian splats.

A SplattingAvatar-style (ref. [46]) animatable human: Gaussians are
bound to the bones of a kinematic skeleton and deformed by linear
blend skinning (LBS).  Given pose parameters ``theta`` (per-joint
rotation angles), Rendering Step 1a poses the skeleton with forward
kinematics, skins every Gaussian (means move, orientations rotate),
and hands an ordinary 3D :class:`GaussianCloud` to Steps 1b/2/3.

The per-Gaussian skinning cost is what makes avatar Step 1 the
heaviest of the three application types (48-51% Step-3 share in
Fig. 5 because Step 1 takes a larger slice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.gaussian import GaussianCloud
from repro.scenes.synthetic import _quat_multiply, _random_sh


@dataclass(frozen=True)
class Skeleton:
    """A kinematic tree of joints.

    Attributes
    ----------
    names:
        Joint names, index-aligned with the other arrays.
    parents:
        Parent index per joint (-1 for the root).
    rest_positions:
        (J, 3) world-space joint positions in the rest pose.
    rotation_axes:
        (J, 3) unit axis each joint rotates about (a 1-DoF model —
        sufficient to generate realistic deformation workloads).
    """

    names: tuple[str, ...]
    parents: tuple[int, ...]
    rest_positions: np.ndarray
    rotation_axes: np.ndarray

    def __post_init__(self) -> None:
        j = len(self.names)
        rest = np.asarray(self.rest_positions, dtype=np.float64)
        axes = np.asarray(self.rotation_axes, dtype=np.float64)
        if len(self.parents) != j or rest.shape != (j, 3) or axes.shape != (j, 3):
            raise ValidationError("skeleton arrays must be index-aligned with names")
        for i, p in enumerate(self.parents):
            if p >= i:
                raise ValidationError("parents must precede children (topological order)")
        object.__setattr__(self, "rest_positions", rest)
        object.__setattr__(
            self,
            "rotation_axes",
            axes / np.maximum(np.linalg.norm(axes, axis=1, keepdims=True), 1e-12),
        )

    @property
    def n_joints(self) -> int:
        return len(self.names)

    def forward_kinematics(self, theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pose the skeleton.

        Parameters
        ----------
        theta:
            (J,) rotation angle (radians) per joint about its axis.

        Returns
        -------
        (rotations, translations):
            (J, 3, 3) and (J, 3) world transforms per joint such that a
            rest-pose point ``p`` bound to joint ``j`` moves to
            ``rotations[j] @ p + translations[j]``.
        """
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (self.n_joints,):
            raise ValidationError(
                f"theta must have shape ({self.n_joints},), got {theta.shape}"
            )
        rotations = np.empty((self.n_joints, 3, 3))
        translations = np.empty((self.n_joints, 3))
        for j in range(self.n_joints):
            local = _axis_angle_matrix(self.rotation_axes[j], float(theta[j]))
            pivot = self.rest_positions[j]
            # Local transform: rotate about the joint pivot.
            local_t = pivot - local @ pivot
            p = self.parents[j]
            if p < 0:
                rotations[j] = local
                translations[j] = local_t
            else:
                rotations[j] = rotations[p] @ local
                translations[j] = rotations[p] @ local_t + translations[p]
        return rotations, translations

    @staticmethod
    def humanoid() -> "Skeleton":
        """A 15-joint humanoid (pelvis-rooted) used by the avatar scenes."""
        names = (
            "pelvis", "spine", "chest", "neck", "head",
            "l_shoulder", "l_elbow", "l_hand",
            "r_shoulder", "r_elbow", "r_hand",
            "l_hip", "l_knee",
            "r_hip", "r_knee",
        )
        parents = (-1, 0, 1, 2, 3, 2, 5, 6, 2, 8, 9, 0, 11, 0, 13)
        rest = np.array(
            [
                [0.0, 0.0, 0.0],     # pelvis
                [0.0, 0.15, 0.0],    # spine
                [0.0, 0.35, 0.0],    # chest
                [0.0, 0.5, 0.0],     # neck
                [0.0, 0.62, 0.0],    # head
                [-0.18, 0.45, 0.0],  # l_shoulder
                [-0.42, 0.45, 0.0],  # l_elbow
                [-0.65, 0.45, 0.0],  # l_hand
                [0.18, 0.45, 0.0],   # r_shoulder
                [0.42, 0.45, 0.0],   # r_elbow
                [0.65, 0.45, 0.0],   # r_hand
                [-0.1, -0.05, 0.0],  # l_hip
                [-0.1, -0.45, 0.0],  # l_knee
                [0.1, -0.05, 0.0],   # r_hip
                [0.1, -0.45, 0.0],   # r_knee
            ]
        )
        axes = np.tile(np.array([0.0, 0.0, 1.0]), (len(names), 1))
        # Arms swing about z, legs about x, head nods about x.
        for i, name in enumerate(names):
            if "hip" in name or "knee" in name or name == "head":
                axes[i] = np.array([1.0, 0.0, 0.0])
        return Skeleton(names=names, parents=parents, rest_positions=rest,
                        rotation_axes=axes)


def _axis_angle_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix for a unit axis and angle."""
    c, s = np.cos(angle), np.sin(angle)
    x, y, z = axis
    cross = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return c * np.eye(3) + s * cross + (1.0 - c) * np.outer(axis, axis)


def _matrix_to_quat(mat: np.ndarray) -> np.ndarray:
    """Rotation matrix -> quaternion (w, x, y, z), robust branch-free-ish."""
    m = mat
    trace = m[0, 0] + m[1, 1] + m[2, 2]
    if trace > 0.0:
        s = np.sqrt(trace + 1.0) * 2.0
        return np.array(
            [0.25 * s, (m[2, 1] - m[1, 2]) / s, (m[0, 2] - m[2, 0]) / s,
             (m[1, 0] - m[0, 1]) / s]
        )
    i = int(np.argmax([m[0, 0], m[1, 1], m[2, 2]]))
    if i == 0:
        s = np.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2]) * 2.0
        return np.array(
            [(m[2, 1] - m[1, 2]) / s, 0.25 * s, (m[0, 1] + m[1, 0]) / s,
             (m[0, 2] + m[2, 0]) / s]
        )
    if i == 1:
        s = np.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2]) * 2.0
        return np.array(
            [(m[0, 2] - m[2, 0]) / s, (m[0, 1] + m[1, 0]) / s, 0.25 * s,
             (m[1, 2] + m[2, 1]) / s]
        )
    s = np.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1]) * 2.0
    return np.array(
        [(m[1, 0] - m[0, 1]) / s, (m[0, 2] + m[2, 0]) / s,
         (m[1, 2] + m[2, 1]) / s, 0.25 * s]
    )


@dataclass
class AvatarModel:
    """An animatable Gaussian avatar (skeleton + bound splats).

    Attributes
    ----------
    skeleton:
        The kinematic tree.
    rest_cloud:
        Gaussians in the rest pose.
    bone_indices:
        (N, 2) the two nearest bones each Gaussian is bound to.
    bone_weights:
        (N, 2) convex skinning weights for those bones.
    """

    skeleton: Skeleton
    rest_cloud: GaussianCloud
    bone_indices: np.ndarray
    bone_weights: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.rest_cloud)
        self.bone_indices = np.ascontiguousarray(self.bone_indices, dtype=np.int64)
        self.bone_weights = np.ascontiguousarray(self.bone_weights, dtype=np.float64)
        if self.bone_indices.shape != (n, 2) or self.bone_weights.shape != (n, 2):
            raise ValidationError("skinning arrays must be (N, 2)")
        if not np.allclose(self.bone_weights.sum(axis=1), 1.0, atol=1e-9):
            raise ValidationError("skinning weights must sum to 1")

    def __len__(self) -> int:
        return len(self.rest_cloud)

    def at_pose(self, theta: np.ndarray) -> GaussianCloud:
        """Skin the avatar into pose ``theta`` (Rendering Step 1a).

        Means are blended linearly (classic LBS); orientations follow
        the dominant bone's rotation (blending quaternions of two
        bones with a normalized lerp).
        """
        rotations, translations = self.skeleton.forward_kinematics(theta)
        means = self.rest_cloud.means
        i0 = self.bone_indices[:, 0]
        i1 = self.bone_indices[:, 1]
        w0 = self.bone_weights[:, 0][:, None]
        w1 = self.bone_weights[:, 1][:, None]
        p0 = np.einsum("nij,nj->ni", rotations[i0], means) + translations[i0]
        p1 = np.einsum("nij,nj->ni", rotations[i1], means) + translations[i1]
        new_means = w0 * p0 + w1 * p1

        quats = np.empty_like(self.rest_cloud.quats)
        bone_quats = np.stack([_matrix_to_quat(r) for r in rotations])
        q0 = bone_quats[i0]
        q1 = bone_quats[i1]
        # Normalized lerp with hemisphere alignment.
        dots = np.sum(q0 * q1, axis=1, keepdims=True)
        q1 = np.where(dots < 0.0, -q1, q1)
        blended = w0 * q0 + w1 * q1
        blended /= np.maximum(np.linalg.norm(blended, axis=1, keepdims=True), 1e-12)
        quats = _quat_multiply(blended, self.rest_cloud.quats)

        return GaussianCloud(
            means=new_means,
            scales=self.rest_cloud.scales,
            quats=quats,
            opacities=self.rest_cloud.opacities,
            sh=self.rest_cloud.sh,
        )

    def skinning_flops_per_gaussian(self) -> int:
        """Effective Step-1a GPU cost per splat per frame.

        The raw arithmetic (two bone transforms, weighted blend,
        quaternion blend) is ~60 FLOPs, but the scattered per-bone
        gathers make the kernel memory-bound: the *effective*
        lane-work charged by the timing model is calibrated against
        the avatar rows of Fig. 5, where Step 1 takes ~30% of frame
        time (vs ~8% for static scenes).
        """
        return 1620

    @staticmethod
    def synthetic(
        n: int,
        rng: np.random.Generator,
        sh_degree: int = 2,
        splat_scale: float = 0.018,
    ) -> "AvatarModel":
        """Build a humanoid avatar with splats on capsule-like limbs."""
        skeleton = Skeleton.humanoid()
        bones = _limb_segments(skeleton)
        counts = _distribute(n, len(bones), rng)
        parts = []
        bone_idx = []
        positions = []
        for (j0, j1, radius), count in zip(bones, counts):
            if count == 0:
                continue
            a = skeleton.rest_positions[j0]
            b = skeleton.rest_positions[j1]
            t = rng.uniform(0.0, 1.0, size=(count, 1))
            axis_pts = a + t * (b - a)
            offsets = rng.normal(0.0, radius, size=(count, 3))
            positions.append(axis_pts + offsets)
            bone_idx.append(np.full(count, j1, dtype=np.int64))
        means = np.concatenate(positions)
        primary = np.concatenate(bone_idx)
        total = means.shape[0]

        in_plane = splat_scale * np.exp(rng.uniform(-0.5, 0.6, size=(total, 1)))
        aspect = np.exp(rng.uniform(-1.3, 1.3, size=(total, 1)))
        scales = np.concatenate(
            [in_plane * aspect, in_plane / aspect, in_plane * 0.35], axis=1
        )
        palette = np.array(
            [[0.7, 0.55, 0.45], [0.35, 0.35, 0.5], [0.4, 0.3, 0.3], [0.6, 0.6, 0.65]]
        )
        cloud = GaussianCloud(
            means=means,
            scales=scales,
            quats=rng.normal(size=(total, 4)),
            opacities=rng.uniform(0.4, 0.99, total),
            sh=_random_sh(rng, total, sh_degree, palette),
        )

        # Secondary bone: the parent joint, weighted by proximity.
        skeleton_parents = np.asarray(skeleton.parents)
        secondary = skeleton_parents[primary]
        secondary = np.where(secondary < 0, primary, secondary)
        d0 = np.linalg.norm(means - skeleton.rest_positions[primary], axis=1)
        d1 = np.linalg.norm(means - skeleton.rest_positions[secondary], axis=1)
        w0 = d1 / np.maximum(d0 + d1, 1e-12)
        weights = np.stack([w0, 1.0 - w0], axis=1)
        return AvatarModel(
            skeleton=skeleton,
            rest_cloud=cloud,
            bone_indices=np.stack([primary, secondary], axis=1),
            bone_weights=weights,
        )


def _limb_segments(skeleton: Skeleton) -> list[tuple[int, int, float]]:
    """(parent, child, capsule radius) for every non-root joint."""
    radius_by_name = {
        "spine": 0.09, "chest": 0.1, "neck": 0.04, "head": 0.07,
        "l_shoulder": 0.05, "l_elbow": 0.04, "l_hand": 0.03,
        "r_shoulder": 0.05, "r_elbow": 0.04, "r_hand": 0.03,
        "l_hip": 0.07, "l_knee": 0.05, "r_hip": 0.07, "r_knee": 0.05,
    }
    segments = []
    for j in range(1, skeleton.n_joints):
        p = skeleton.parents[j]
        segments.append((p, j, radius_by_name.get(skeleton.names[j], 0.05)))
    return segments


def _distribute(n: int, buckets: int, rng: np.random.Generator) -> np.ndarray:
    """Split ``n`` into ``buckets`` roughly-proportional counts."""
    weights = rng.uniform(0.6, 1.4, buckets)
    raw = np.floor(n * weights / weights.sum()).astype(int)
    raw[0] += n - raw.sum()
    return raw


def walking_pose(t: float, amplitude: float = 0.5) -> np.ndarray:
    """Pose parameters ``theta`` for a walk cycle at phase ``t`` (0-1)."""
    theta = np.zeros(15)
    phase = 2.0 * np.pi * t
    swing = amplitude * np.sin(phase)
    theta[5] = 0.3 * swing      # l_shoulder
    theta[6] = -0.4 * abs(swing)  # l_elbow
    theta[8] = -0.3 * swing     # r_shoulder
    theta[9] = -0.4 * abs(swing)  # r_elbow
    theta[11] = -0.5 * swing    # l_hip
    theta[12] = 0.6 * max(np.sin(phase + 0.5), 0.0)   # l_knee
    theta[13] = 0.5 * swing     # r_hip
    theta[14] = 0.6 * max(np.sin(phase + np.pi + 0.5), 0.0)  # r_knee
    theta[3] = 0.05 * np.sin(2 * phase)  # neck sway
    return theta
