"""Quality, performance, and energy metrics."""

from repro.metrics.image import lpips_proxy, mse, psnr, ssim
from repro.metrics.perf import fps_from_seconds, geometric_mean, speedup
from repro.metrics.energy import EnergyBreakdown, EnergyModel

__all__ = [
    "lpips_proxy",
    "mse",
    "psnr",
    "ssim",
    "fps_from_seconds",
    "geometric_mean",
    "speedup",
    "EnergyBreakdown",
    "EnergyModel",
]
