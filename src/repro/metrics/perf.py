"""Performance-metric helpers shared by the experiment harness."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def fps_from_seconds(frame_seconds: float) -> float:
    """Frames per second for a frame time in seconds."""
    if frame_seconds <= 0:
        raise ValidationError("frame time must be positive")
    return 1.0 / frame_seconds


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Baseline-over-improved ratio (>1 means faster)."""
    if improved_seconds <= 0 or baseline_seconds <= 0:
        raise ValidationError("times must be positive")
    return baseline_seconds / improved_seconds


def geometric_mean(values) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValidationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean_fps(fps_values) -> float:
    """Average FPS the way frame times average (harmonic mean).

    Empty input and non-positive values are distinct errors: an empty
    sequence means the caller measured nothing (a harness bug), while
    a non-positive FPS means a measurement was corrupt — conflating
    them hides which invariant broke.
    """
    arr = np.asarray(list(fps_values), dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("harmonic mean of empty sequence")
    if np.any(arr <= 0):
        raise ValidationError("harmonic mean requires positive values")
    return float(arr.size / np.sum(1.0 / arr))
