"""Energy model for the GPU + GBU rendering system (Fig. 15, Tab. II).

Per-frame energy is integrated from device power states: the GPU draws
its busy power while it executes pipeline stages and idle power for
the rest of the frame; the GBU draws its (tiny) module power while
blending.  The paper's headline — 10.8x / 4.4x / 2.5x efficiency on
static / dynamic / avatar scenes — follows from how much of the frame
the GPU can spend idle once Step 3 moves to the GBU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.gpu.specs import GBU_SPEC, GBUSpec, GPUSpec, ORIN_NX


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per frame, by consumer."""

    gpu_busy_j: float
    gpu_idle_j: float
    gbu_j: float

    @property
    def total_j(self) -> float:
        return self.gpu_busy_j + self.gpu_idle_j + self.gbu_j

    def per_n_frames(self, n: int) -> float:
        """Energy for ``n`` frames (the paper reports J per 60 frames)."""
        if n <= 0:
            raise ValidationError("frame count must be positive")
        return self.total_j * n


class EnergyModel:
    """Computes per-frame energy from stage activity."""

    def __init__(self, gpu: GPUSpec = ORIN_NX, gbu: GBUSpec = GBU_SPEC) -> None:
        self.gpu = gpu
        self.gbu = gbu

    def gpu_only_frame(self, frame_seconds: float) -> EnergyBreakdown:
        """Baseline: the GPU is busy for the whole frame."""
        if frame_seconds <= 0:
            raise ValidationError("frame time must be positive")
        return EnergyBreakdown(
            gpu_busy_j=self.gpu.busy_power_w * frame_seconds,
            gpu_idle_j=0.0,
            gbu_j=0.0,
        )

    def enhanced_frame(
        self,
        frame_seconds: float,
        gpu_busy_seconds: float,
        gbu_busy_seconds: float,
    ) -> EnergyBreakdown:
        """GBU-enhanced: GPU busy for Steps 1-2, GBU for Step 3.

        Busy intervals may overlap (they are pipelined); each device's
        energy depends only on its own busy time within the frame.
        """
        if frame_seconds <= 0:
            raise ValidationError("frame time must be positive")
        gpu_busy = min(gpu_busy_seconds, frame_seconds)
        gbu_busy = min(gbu_busy_seconds, frame_seconds)
        return EnergyBreakdown(
            gpu_busy_j=self.gpu.busy_power_w * gpu_busy,
            gpu_idle_j=self.gpu.idle_power_w * (frame_seconds - gpu_busy),
            gbu_j=self.gbu.power_w * gbu_busy,
        )

    @staticmethod
    def efficiency_improvement(
        baseline: EnergyBreakdown, enhanced: EnergyBreakdown
    ) -> float:
        """Energy-efficiency ratio (paper's Fig. 15 y-axis)."""
        if enhanced.total_j <= 0:
            raise ValidationError("enhanced energy must be positive")
        return baseline.total_j / enhanced.total_j
