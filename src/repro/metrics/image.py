"""Image quality metrics: PSNR, SSIM, and an LPIPS proxy.

PSNR and SSIM follow their standard definitions.  LPIPS requires a
pretrained network unavailable offline, so :func:`lpips_proxy`
implements a deterministic multi-scale perceptual distance: a fixed,
seeded bank of random convolutional filters per scale, channel-wise
feature normalization, and averaged squared feature differences —
structurally the LPIPS recipe with random (untrained) features, which
is known to correlate with perceptual distance far better than pixel
MSE.  It is used only for *relative* comparisons (Tab. IV/V deltas);
see DESIGN.md, Substitution 4.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.errors import ValidationError


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a_in = np.asarray(a)
    b_in = np.asarray(b)
    # Distinct errors per defect so callers (and their tests) can tell a
    # resolution mismatch from a representation mismatch: comparing a
    # float render against a uint8 one is a *units* bug (0..1 vs 0..255
    # against one data_range), not a resizing bug.
    if a_in.dtype.kind != b_in.dtype.kind:
        raise ValidationError(
            f"image dtypes differ in kind: {a_in.dtype} vs {b_in.dtype}; "
            "convert both to the same representation before comparing"
        )
    a = a_in.astype(np.float64)
    b = b_in.astype(np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim not in (2, 3):
        raise ValidationError("images must be HxW or HxWxC")
    return a, b


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _check_pair(a, b)
    return float(np.mean((a - b) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better).

    Returns ``inf`` for identical images.
    """
    err = mse(a, b)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range * data_range / err))


def _to_gray(img: np.ndarray) -> np.ndarray:
    if img.ndim == 2:
        return img
    return img @ np.array([0.299, 0.587, 0.114])


def ssim(
    a: np.ndarray,
    b: np.ndarray,
    data_range: float = 1.0,
    window: int = 7,
) -> float:
    """Structural similarity (mean over a uniform-window map)."""
    a, b = _check_pair(a, b)
    x = _to_gray(a)
    y = _to_gray(b)
    if min(x.shape) < window:
        raise ValidationError("image smaller than the SSIM window")
    kernel = np.ones((window, window)) / (window * window)

    def filt(img: np.ndarray) -> np.ndarray:
        return signal.convolve2d(img, kernel, mode="valid")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    mu_x = filt(x)
    mu_y = filt(y)
    xx = filt(x * x) - mu_x * mu_x
    yy = filt(y * y) - mu_y * mu_y
    xy = filt(x * y) - mu_x * mu_y
    num = (2 * mu_x * mu_y + c1) * (2 * xy + c2)
    den = (mu_x**2 + mu_y**2 + c1) * (xx + yy + c2)
    return float(np.mean(num / den))


class _RandomFeatureBank:
    """Fixed random conv filters for the LPIPS proxy (lazily built)."""

    _filters: list[np.ndarray] | None = None

    @classmethod
    def filters(cls) -> list[np.ndarray]:
        if cls._filters is None:
            rng = np.random.default_rng(1234567)
            banks = []
            for n_filters, size in ((8, 3), (8, 5), (8, 7)):
                bank = rng.normal(0.0, 1.0, size=(n_filters, 3, size, size))
                bank -= bank.mean(axis=(2, 3), keepdims=True)
                bank /= np.linalg.norm(bank, axis=(2, 3), keepdims=True) + 1e-12
                banks.append(bank)
            cls._filters = banks
        return cls._filters


def _features(img: np.ndarray, bank: np.ndarray, stride: int) -> np.ndarray:
    """Apply one filter bank (F, 3, k, k) to an HxWx3 image."""
    maps = []
    for f in bank:
        acc = None
        for ch in range(3):
            conv = signal.fftconvolve(img[:, :, ch], f[ch], mode="valid")
            acc = conv if acc is None else acc + conv
        maps.append(acc[::stride, ::stride])
    feats = np.stack(maps, axis=0)
    # LPIPS-style unit normalization across the channel axis.
    norm = np.sqrt((feats**2).sum(axis=0, keepdims=True)) + 1e-10
    return feats / norm


def lpips_proxy(a: np.ndarray, b: np.ndarray) -> float:
    """Deterministic perceptual distance (lower is better, 0 = equal).

    Three scales of random (fixed-seed) convolutional features,
    unit-normalized per position, squared differences averaged — the
    LPIPS computation with an untrained backbone.
    """
    a, b = _check_pair(a, b)
    if a.ndim != 3 or a.shape[2] != 3:
        raise ValidationError("lpips_proxy expects HxWx3 images")
    total = 0.0
    banks = _RandomFeatureBank.filters()
    for level, bank in enumerate(banks):
        stride = 2**level
        fa = _features(a, bank, stride)
        fb = _features(b, bank, stride)
        total += float(np.mean((fa - fb) ** 2))
    return total / len(banks)
