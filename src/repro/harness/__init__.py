"""Experiment harness: registry and plain-text table rendering."""

from repro.harness.tables import format_table
from repro.harness.registry import EXPERIMENTS, run_experiment

__all__ = ["format_table", "EXPERIMENTS", "run_experiment"]
