"""Minimal plain-text table formatting for experiment output."""

from __future__ import annotations

from repro.errors import ValidationError


def format_cell(value) -> str:
    """Human-friendly cell rendering: floats get 3 significant-ish
    digits, everything else goes through str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values (any printable types; floats are compacted).
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValidationError("all rows must match the header width")
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    def fmt_row(values: list[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)
