"""The experiment registry: one runner per table/figure of the paper.

Each runner returns an :class:`ExperimentOutput` holding structured
results plus a formatted table that prints the same rows/series the
paper reports.  Benchmarks call these; EXPERIMENTS.md records their
output next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis import ablation as ablation_mod
from repro.analysis import cache_study, literature, profiling, quality, scaling
from repro.analysis import standalone_study, streaming
from repro.analysis.endtoend import evaluate_all_configs
from repro.errors import ValidationError
from repro.harness.tables import format_table
from repro.metrics.energy import EnergyModel
from repro.scenes.catalog import EVALUATION_SCENES


@dataclass
class ExperimentOutput:
    """A runnable experiment's rendered output.

    Attributes
    ----------
    experiment:
        Registry key ("fig14", "tab5", ...).
    table:
        Plain-text table mirroring the paper's rows/series.
    data:
        Structured results for programmatic checks.
    """

    experiment: str
    table: str
    data: object


def fig1_landscape(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 1: quality/speed landscape (reported values)."""
    rows = [
        [m.name, m.family, m.app_type, m.psnr, m.fps]
        for m in literature.FIG1_LANDSCAPE
    ]
    table = format_table(["method", "family", "app", "PSNR", "FPS"], rows)
    return ExperimentOutput("fig1", table, literature.FIG1_LANDSCAPE)


def tab1_datasets(detail: float = 1.0) -> ExperimentOutput:
    """Tab. I: the scene catalog and its paper-side metadata."""
    from repro.scenes.catalog import CATALOG

    rows = []
    for name in EVALUATION_SCENES:
        spec = CATALOG[name]
        rows.append(
            [
                name,
                spec.app_type.value,
                f"{spec.width}x{spec.height}",
                f"{spec.paper_resolution[0]}x{spec.paper_resolution[1]}",
                spec.n_gaussians,
                spec.paper_n_gaussians,
                spec.workload_scale,
            ]
        )
    table = format_table(
        ["scene", "type", "sim res", "paper res", "sim N", "paper N", "scale"],
        rows,
    )
    return ExperimentOutput("tab1", table, rows)


def fig4_fig5_profile(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 4 + Fig. 5: baseline render time and stage breakdown."""
    profiles = profiling.profile_evaluation_scenes(detail=detail)
    rows = []
    for p in profiles:
        f1, f2, f3 = p.breakdown.fractions
        rows.append(
            [
                p.scene,
                p.app_type.value,
                p.breakdown.total_s * 1e3,
                p.breakdown.fps,
                f1,
                f2,
                f3,
            ]
        )
    table = format_table(
        ["scene", "type", "ms/frame", "FPS", "step1", "step2", "step3"], rows
    )
    return ExperimentOutput("fig4_fig5", table, profiles)


def fig6_flops(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 6 + Challenge 1/2: per-fragment FLOPs and redundancy."""
    profiles = profiling.profile_evaluation_scenes(detail=detail)
    rows = []
    for p in profiles:
        comp = p.comparison
        irss_per_frag = (
            comp.irss_flops / comp.irss_fragments if comp.irss_fragments else 0.0
        )
        rows.append(
            [
                p.scene,
                p.fragment_ratio,
                p.significant_fraction,
                comp.fragment_skip_rate,
                11.0,
                irss_per_frag,
                comp.per_fragment_reduction,
            ]
        )
    table = format_table(
        [
            "scene",
            "frag/gauss",
            "sig frac",
            "skip rate",
            "PFS FLOPs",
            "IRSS FLOPs",
            "reduction",
        ],
        rows,
    )
    return ExperimentOutput("fig6", table, profiles)


def fig9_row_workload(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 9: per-row workload imbalance on a static scene."""
    rows_hist = profiling.per_row_workload_histogram("bonsai", detail=detail)
    imbalance = profiling.row_imbalance_ratio(rows_hist)
    quantiles = np.percentile(rows_hist, [50, 90, 99, 100])
    table = format_table(
        ["metric", "value"],
        [
            ["rows profiled", int(rows_hist.size)],
            ["median fragments/row", float(quantiles[0])],
            ["p90 fragments/row", float(quantiles[1])],
            ["p99 fragments/row", float(quantiles[2])],
            ["max fragments/row", float(quantiles[3])],
            ["max/mean imbalance in tiles", imbalance],
        ],
    )
    return ExperimentOutput("fig9", table, {"histogram": rows_hist, "imbalance": imbalance})


def sec4d_irss_gpu(detail: float = 1.0) -> ExperimentOutput:
    """Sec. IV-D: IRSS as a CUDA kernel (13 -> 22 FPS, -59% step 3)."""
    result = ablation_mod.irss_on_gpu(detail=detail)
    table = format_table(
        ["metric", "measured", "paper"],
        [
            ["baseline FPS", result.baseline_fps, 12.8],
            ["IRSS-GPU FPS", result.irss_fps, 22.0],
            ["speedup", result.speedup, 1.71],
            ["step-3 latency reduction", result.step3_reduction, 0.59],
            ["IRSS SIMT utilization", result.irss_step3_utilization, 0.189],
        ],
    )
    return ExperimentOutput("sec4d", table, result)


def tab2_tab3_specs(detail: float = 1.0) -> ExperimentOutput:
    """Tab. II/III: device specs and GBU module breakdown."""
    from repro.gpu.specs import GBU_SPEC, ORIN_NX

    rows = [
        [
            ORIN_NX.name,
            f"{ORIN_NX.sram_bytes // (1024 * 1024)} MB",
            ORIN_NX.area_mm2,
            f"{ORIN_NX.clock_hz / 1e6:.0f} MHz",
            f"{ORIN_NX.technology_nm} nm",
            ORIN_NX.busy_power_w,
        ],
        [
            "GBU",
            f"{GBU_SPEC.sram_bytes // 1024} KB",
            GBU_SPEC.area_mm2,
            f"{GBU_SPEC.clock_hz / 1e9:.0f} GHz",
            f"{GBU_SPEC.technology_nm} nm",
            GBU_SPEC.power_w,
        ],
    ]
    spec_table = format_table(
        ["device", "SRAM", "area mm2", "freq", "tech", "power W"], rows
    )
    module_rows = [
        [m.name, m.area_mm2, m.power_w] for m in GBU_SPEC.modules
    ]
    module_table = format_table(["module", "area mm2", "power W"], module_rows)
    return ExperimentOutput(
        "tab2_tab3", spec_table + "\n\n" + module_table, (rows, module_rows)
    )


def fig14_fig15_endtoend(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 14 + Fig. 15: FPS and energy efficiency, all 12 scenes."""
    rows = []
    data = {}
    for name in EVALUATION_SCENES:
        results = evaluate_all_configs(name, detail=detail)
        base = results["gpu_pfs"]
        full = results["gbu_full"]
        eff = EnergyModel.efficiency_improvement(base.energy, full.energy)
        rows.append(
            [
                name,
                base.fps,
                full.fps,
                full.fps / base.fps,
                eff,
                base.energy.per_n_frames(60),
                full.energy.per_n_frames(60),
            ]
        )
        data[name] = results
    table = format_table(
        [
            "scene",
            "Orin FPS",
            "GBU FPS",
            "speedup",
            "energy eff",
            "J/60f base",
            "J/60f GBU",
        ],
        rows,
    )
    return ExperimentOutput("fig14_fig15", table, data)


def tab4_quality(detail: float = 1.0) -> ExperimentOutput:
    """Tab. IV: rendering quality parity."""
    results = quality.quality_by_app_type(detail=detail)
    rows = []
    for app, r in results.items():
        rows.append(
            [
                app.value,
                r.reference_psnr,
                r.gbu_psnr,
                r.psnr_delta,
                r.reference_lpips,
                r.gbu_lpips,
                r.lpips_delta,
            ]
        )
    table = format_table(
        [
            "type",
            "3D-GS PSNR",
            "GBU PSNR",
            "dPSNR",
            "3D-GS LPIPS",
            "GBU LPIPS",
            "dLPIPS",
        ],
        rows,
    )
    return ExperimentOutput("tab4", table, results)


def tab5_ablation(detail: float = 1.0) -> ExperimentOutput:
    """Tab. V: technique-by-technique ablation on static scenes."""
    rows_data = ablation_mod.run_ablation(detail=detail)
    rows = [
        [r.label, r.fps, r.energy_efficiency, r.psnr, r.lpips] for r in rows_data
    ]
    table = format_table(
        ["configuration", "FPS", "energy eff", "PSNR", "LPIPS"], rows
    )
    return ExperimentOutput("tab5", table, rows_data)


def fig16_resolution(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 16: resolution scaling on the three dynamic scenes."""
    rows = []
    data = {}
    for name in ("flame_steak", "sear_steak", "cut_beef"):
        points = scaling.resolution_sweep(name)
        data[name] = points
        for p in points:
            rows.append(
                [name, f"{p.width}x{p.height}", p.baseline_fps, p.gbu_fps, p.speedup]
            )
    table = format_table(
        ["scene", "resolution", "Orin FPS", "GBU FPS", "speedup"], rows
    )
    return ExperimentOutput("fig16", table, data)


def fig17_cache(detail: float = 1.0) -> ExperimentOutput:
    """Fig. 17: cache hit rate vs capacity per application class."""
    curves = cache_study.sweep_app_types(detail=detail)
    sizes = sorted(next(iter(curves.values())))
    rows = []
    for app, curve in curves.items():
        rows.append([app.value] + [curve[s] for s in sizes])
    table = format_table(
        ["type"] + [f"{s // 1024}KB" for s in sizes], rows
    )
    return ExperimentOutput("fig17", table, curves)


def sec5a_memory(detail: float = 1.0) -> ExperimentOutput:
    """Sec. V-A: DRAM pressure and the reuse cache's effect."""
    profiles = [
        profiling.profile_scene(name, detail=detail)
        for name in ("bicycle", "bonsai", "counter", "kitchen", "room", "stump")
    ]
    dram = float(np.mean([p.step3_dram_fraction_60fps for p in profiles]))
    pressure = [
        cache_study.memory_pressure(name, detail=detail)
        for name in ("bicycle", "kitchen", "stump")
    ]
    reduction = float(np.mean([p.traffic_reduction for p in pressure]))
    slowdown = float(np.mean([p.pipeline_slowdown_without_cache for p in pressure]))
    table = format_table(
        ["metric", "measured", "paper"],
        [
            ["step-3 DRAM fraction @60FPS", dram, 0.621],
            ["cache traffic reduction", reduction, 0.449],
            ["slowdown without cache", slowdown, 0.135],
        ],
    )
    return ExperimentOutput(
        "sec5a", table, {"dram": dram, "reduction": reduction, "slowdown": slowdown}
    )


def sec6f_distance(detail: float = 1.0) -> ExperimentOutput:
    """Sec. VI-F: camera-distance stress on a static scene."""
    points = scaling.camera_distance_sweep("bonsai")
    base = points[0]
    rows = [
        [p.factor, p.baseline_fps, p.gbu_fps, p.speedup, p.speedup / base.speedup]
        for p in points
    ]
    table = format_table(
        ["distance x", "Orin FPS", "GBU FPS", "speedup", "vs 1x"], rows
    )
    return ExperimentOutput("sec6f", table, points)


def tab6_tab7_standalone(detail: float = 1.0) -> ExperimentOutput:
    """Tab. VI/VII: GBU-Standalone vs prior accelerators."""
    measured = standalone_study.measure_standalone(detail=detail)
    rows = []
    for spec in standalone_study.tab7_rows(measured):
        rows.append(
            [
                spec.name,
                spec.algorithm,
                f"{spec.technology_nm}nm",
                spec.frequency_ghz,
                spec.area_mm2,
                spec.power_w,
                spec.psnr,
                spec.fps,
            ]
        )
    table = format_table(
        ["device", "algorithm", "tech", "GHz", "area mm2", "power W", "PSNR", "FPS"],
        rows,
    )
    return ExperimentOutput("tab6_tab7", table, measured)


def stream_reuse(detail: float = 1.0) -> ExperimentOutput:
    """Streaming extension: cross-frame reuse per application class."""
    points = streaming.stream_reuse_study(detail=detail)
    rows = [
        [
            p.scene,
            p.app_type.value,
            p.trajectory,
            p.cold_hit_rate,
            p.warm_hit_rate,
            p.hit_rate_gain,
            p.binning_reuse,
            p.mean_sim_fps,
            p.motion,
        ]
        for p in points
    ]
    table = format_table(
        [
            "scene",
            "type",
            "path",
            "cold hit",
            "warm hit",
            "gain",
            "bin reuse",
            "sim FPS",
            "motion",
        ],
        rows,
    )
    return ExperimentOutput("stream", table, points)


def qos_study(detail: float = 1.0) -> ExperimentOutput:
    """Streaming extension: deadline QoS, fixed vs adaptive detail."""
    comparison = streaming.compare_qos(detail=detail)
    rows = [
        [
            p.mode,
            p.target_fps,
            p.workers,
            p.sessions,
            p.total_frames,
            p.deadline_misses,
            p.miss_rate,
            p.mean_detail,
            p.mean_scale,
        ]
        for p in comparison.points.values()
    ]
    table = format_table(
        [
            "mode",
            "target FPS",
            "workers",
            "sessions",
            "frames",
            "misses",
            "miss rate",
            "mean detail",
            "mean scale",
        ],
        rows,
    )
    return ExperimentOutput("qos", table, comparison)


def fleet_study(detail: float = 1.0) -> ExperimentOutput:
    """Streaming extension: fleet scaling on generated Poisson traffic."""
    comparison = streaming.fleet_scaling_study(detail=detail)
    rows = [
        [
            p.nodes,
            p.sessions,
            p.total_frames,
            p.sim_makespan_seconds,
            p.sim_frames_per_sec,
            p.migrations,
            p.max_queue_depth,
            p.mean_admission_delay * 1e3,
        ]
        for p in comparison.points.values()
    ]
    lo, hi = comparison.scaling_span
    rows.append(
        [f"{lo}->{hi}", "", "", "", f"{comparison.scaling:.2f}x", "", "", ""]
    )
    table = format_table(
        [
            "nodes",
            "sessions",
            "frames",
            "makespan s",
            "sim f/s",
            "moves",
            "max queue",
            "adm delay ms",
        ],
        rows,
    )
    return ExperimentOutput("fleet", table, comparison)


EXPERIMENTS: dict[str, Callable[..., ExperimentOutput]] = {
    "fig1": fig1_landscape,
    "tab1": tab1_datasets,
    "fig4_fig5": fig4_fig5_profile,
    "fig6": fig6_flops,
    "fig9": fig9_row_workload,
    "sec4d": sec4d_irss_gpu,
    "tab2_tab3": tab2_tab3_specs,
    "tab4": tab4_quality,
    "tab5": tab5_ablation,
    "fig14_fig15": fig14_fig15_endtoend,
    "fig16": fig16_resolution,
    "fig17": fig17_cache,
    "sec5a": sec5a_memory,
    "sec6f": sec6f_distance,
    "tab6_tab7": tab6_tab7_standalone,
    "stream": stream_reuse,
    "qos": qos_study,
    "fleet": fleet_study,
}


def run_experiment(name: str, detail: float = 1.0) -> ExperimentOutput:
    """Run a registered experiment by key."""
    if name not in EXPERIMENTS:
        raise ValidationError(
            f"unknown experiment '{name}'; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](detail=detail)
