"""Edge-GPU timing model (the Jetson Orin NX substitute).

Models the baseline device the paper measures against: SMs executing
the PFS rasterization kernel (tile-lockstep SIMT), the IRSS kernel
(row-per-lane, imbalance-bound), the radix sort and preprocessing of
Rendering Steps 1-2, and a DRAM bandwidth roofline.  Constants are
calibrated once against the paper's published profile (Fig. 4/5) and
then *predict* every downstream experiment (see DESIGN.md,
Substitution 2).
"""

from repro.gpu.specs import GBU_SPEC, ORIN_NX, GBUSpec, GPUSpec
from repro.gpu.workload import FrameWorkload, ScaleFactors
from repro.gpu.timing import GPUTimingModel, StageBreakdown

__all__ = [
    "GBU_SPEC",
    "ORIN_NX",
    "GBUSpec",
    "GPUSpec",
    "FrameWorkload",
    "ScaleFactors",
    "GPUTimingModel",
    "StageBreakdown",
]
