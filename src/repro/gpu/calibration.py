"""Calibrated cycle-cost constants for the GPU timing model.

These are the only tuned numbers in the repository.  They were fitted
once so that the baseline (PFS on the simulated Orin NX) lands inside
the paper's published profile for the static scenes (Fig. 4: 7-17 FPS,
average 12.8; Fig. 5: Step 3 at 70-78%, sorting at 14-24%), and are
then held fixed for every experiment: the IRSS-on-GPU speedup, the GBU
ablation, resolution scaling and camera-distance scaling are all
*predictions* of the model, not fits.

The constants are physically interpretable lane-cycle costs:

* ``pfs_fragment_cycles`` — one PFS fragment on one lane: Eq. 7
  (11 FLOPs), exp, alpha test, blend and the warp-level overheads of
  the 3DGS kernel (shared-memory staging, syncs).
* ``irss_fragment_cycles`` — one IRSS fragment: 2-FLOP Eq. 7 update,
  exp, blend; slightly cheaper than PFS but the same order because
  exp/blend dominate.
* ``irss_setup_cycles`` — per (instance, warp) setup: fetching the
  transformed coefficients and locating first fragments.
* ``step1_flops_per_gaussian`` — projection (Eq. 3), EVD-free conic
  computation, SH evaluation.
* ``step1_efficiency`` — fraction of peak FLOPs the preprocessing
  kernel sustains (memory-layout limited).
* ``sort_cycles_per_key`` — radix-sort cost per (tile|depth) key,
  amortized over the device (includes binning/duplication kernels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError


@dataclass(frozen=True)
class GPUCalibration:
    """Tuned lane-cycle constants (see module docstring)."""

    pfs_fragment_cycles: float = 80.0
    irss_fragment_cycles: float = 72.0
    irss_setup_cycles: float = 72.0
    step1_flops_per_gaussian: float = 280.0
    step1_efficiency: float = 0.02
    sort_cycles_per_key: float = 28.0
    # Fraction of DRAM bandwidth realistically available to the
    # rasterization stream (the rest feeds the other pipeline stages).
    dram_efficiency: float = 0.65
    # Bytes moved per sort key by the radix sort (read + write passes).
    sort_bytes_per_key: float = 24.0
    # Depth sort over *Gaussians* (D&B mode): no duplication or
    # binning kernels, so the per-key cost is much lower.
    gaussian_sort_cycles_per_key: float = 12.0
    gaussian_sort_bytes_per_key: float = 8.0
    # Bytes of Gaussian parameters read by Step 1 per Gaussian
    # (position, scales, quaternion, opacity, SH coefficients).
    step1_bytes_per_gaussian: float = 150.0

    def __post_init__(self) -> None:
        for name in (
            "pfs_fragment_cycles",
            "irss_fragment_cycles",
            "irss_setup_cycles",
            "step1_flops_per_gaussian",
            "sort_cycles_per_key",
        ):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if not 0 < self.step1_efficiency <= 1:
            raise CalibrationError("step1_efficiency must be in (0, 1]")
        if not 0 < self.dram_efficiency <= 1:
            raise CalibrationError("dram_efficiency must be in (0, 1]")


DEFAULT_CALIBRATION = GPUCalibration()


@dataclass(frozen=True)
class GBUCalibration:
    """Cycle costs of the GBU engines (Sec. V-C/V-D).

    * Row PEs shade one fragment per cycle (pipelined MAC + LUT exp);
      segment issue is overlapped with shading by the Row Buffer pop
      (zero-bubble), so ``segment_issue_cycles`` defaults to 0 — the
      ablation benchmarks raise it to quantify the FIFO's value.
    * The D&B engine's comparator array tests four candidate tiles per
      cycle (``dnb_test_cycles`` = 0.25).
    * The Row Generation Engine spends ``rowgen_gaussian_cycles`` per
      Gaussian (threshold computation + comparator array over all 16
      rows in parallel) plus one cycle per binary-search step.
    * The D&B engine tests ``dnb_test_cycles`` per candidate
      (tile, Gaussian) pair and ``dnb_transform_cycles`` per Gaussian
      for the Cholesky/step coefficients.
    * ``dram_latency_cycles`` is the miss penalty seen by the tile
      engine before pipelining; the memory model converts miss traffic
      to bandwidth-limited stall time.
    """

    fragment_cycles: float = 1.0
    segment_issue_cycles: float = 0.0
    rowgen_gaussian_cycles: float = 2.0
    rowgen_search_cycles: float = 1.0
    tile_drain_cycles: float = 20.0
    dnb_test_cycles: float = 0.25
    dnb_transform_cycles: float = 4.0
    gbu_dram_share: float = 0.30

    def __post_init__(self) -> None:
        if self.fragment_cycles <= 0:
            raise CalibrationError("fragment_cycles must be positive")
        if not 0 < self.gbu_dram_share <= 1:
            raise CalibrationError("gbu_dram_share must be in (0, 1]")


DEFAULT_GBU_CALIBRATION = GBUCalibration()
