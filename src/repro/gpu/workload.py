"""Per-frame workload descriptors and paper-scale extrapolation.

A :class:`FrameWorkload` gathers every counter the timing models need
for one rendered frame.  Counters are measured on the simulated
(reduced-scale) scene and extrapolated to paper scale by
:class:`ScaleFactors` (DESIGN.md Sec. 4): Gaussian-driven counters
scale with the reconstruction-size ratio, fragment-driven counters
additionally with the footprint-area ratio, and instance-driven
counters with an estimated duplication-factor ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FEATURE_BYTES
from repro.core.irss import IRSSRenderResult
from repro.errors import ValidationError
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.sorting import RenderLists
from repro.scenes.catalog import SceneSpec


def duplication_estimate(footprint_px: float, tile: int = 16) -> float:
    """Expected tiles overlapped by a footprint of ``footprint_px``
    pixels: ``(sqrt(A)/T + 1)^2`` for a square footprint model."""
    if footprint_px < 0:
        raise ValidationError("footprint area cannot be negative")
    side = np.sqrt(footprint_px)
    return float((side / tile + 1.0) ** 2)


@dataclass(frozen=True)
class ScaleFactors:
    """Multipliers mapping simulated counters to paper scale.

    Attributes
    ----------
    gaussian:
        Visible-Gaussian count ratio (paper / sim).
    fragment:
        Footprint-fragment ratio (drives IRSS and GBU shading work).
    instance:
        (tile, Gaussian) pair ratio (drives sorting, binning, feature
        traffic and PFS shading work).
    pixel:
        Image-pixel ratio (drives per-pixel compositing work).
    """

    gaussian: float = 1.0
    fragment: float = 1.0
    instance: float = 1.0
    pixel: float = 1.0

    @staticmethod
    def identity() -> "ScaleFactors":
        return ScaleFactors()

    @staticmethod
    def uniform(scale: float) -> "ScaleFactors":
        """One multiplier for every counter.

        Uniform scaling keeps every stage fraction, utilization, hit
        rate and speedup exactly as simulated — only absolute frame
        times change.  This is the scaling mode used for the paper
        experiments (DESIGN.md Sec. 4): each catalog scene carries a
        ``workload_scale`` relating its reduced-size synthetic stand-in
        to the full-size capture.
        """
        if scale <= 0:
            raise ValidationError("scale must be positive")
        return ScaleFactors(
            gaussian=scale, fragment=scale, instance=scale, pixel=scale
        )

    @staticmethod
    def for_scene(spec: SceneSpec) -> "ScaleFactors":
        """The catalog scene's calibrated uniform workload scale."""
        return ScaleFactors.uniform(spec.workload_scale)


@dataclass(frozen=True)
class FrameWorkload:
    """Paper-scale workload counters for one frame.

    Attributes
    ----------
    n_gaussians:
        Visible Gaussians after culling (Step-1 work items).
    step1_extra_flops_per_gaussian:
        Application-specific Step-1a cost (0 static, slicing for
        dynamic, skinning for avatars).
    n_instances:
        (tile, Gaussian) pairs (sort keys, feature fetches).
    pfs_fragments:
        Fragments the PFS kernel shades (tile-lockstep, live pixels).
    irss_fragments:
        Footprint fragments the IRSS dataflow shades.
    irss_segments:
        (instance, row) segments (each pays a setup).
    irss_serial_slots:
        Sum over instances of the longest row run — the serialization
        length of a row-per-lane warp.
    pixels:
        Output pixels.
    feature_bytes:
        Step-3 feature traffic without any reuse cache.
    """

    n_gaussians: float
    step1_extra_flops_per_gaussian: float
    n_instances: float
    pfs_fragments: float
    irss_fragments: float
    irss_segments: float
    irss_serial_slots: float
    pixels: float
    feature_bytes: float

    @staticmethod
    def from_renders(
        reference: RenderResult,
        irss: IRSSRenderResult,
        lists: RenderLists,
        n_visible: int,
        step1_extra_flops: float = 0.0,
        scales: ScaleFactors = ScaleFactors(),
    ) -> "FrameWorkload":
        """Assemble a workload from measured render statistics.

        Scaling notes: PFS fragments are tile-lockstep (bounded by the
        fixed tile area per instance), so they scale with instances.
        Segment counts and warp serialization lengths are bounded by
        the tile edge per instance and grow with the footprint's
        *linear* size, so they scale with the geometric mean of the
        instance and fragment factors.
        """
        setup_cycles_proxy = irss.workload.instance_setup.sum()
        serial = float(irss.workload.instance_max_run.sum() + setup_cycles_proxy)
        linear_scale = float(np.sqrt(scales.fragment * scales.instance))
        return FrameWorkload(
            n_gaussians=n_visible * scales.gaussian,
            step1_extra_flops_per_gaussian=step1_extra_flops,
            n_instances=lists.n_instances * scales.instance,
            pfs_fragments=reference.stats.fragments_shaded * scales.instance,
            irss_fragments=irss.stats.fragments_shaded * scales.fragment,
            irss_segments=irss.stats.segments * linear_scale,
            irss_serial_slots=serial * linear_scale,
            pixels=reference.stats.pixels * scales.pixel,
            feature_bytes=lists.n_instances * scales.instance * FEATURE_BYTES,
        )
