"""DRAM traffic and bandwidth roofline for the rendering pipeline.

Limitation 2 (Sec. V-A): Step 3's Gaussian-feature reads alone demand
62.1% of the Orin NX's DRAM bandwidth at 60 FPS on static scenes, so
memory time must be modeled alongside compute.  Each stage's time is
``max(compute_time, bytes / effective_bandwidth)`` — the standard
roofline — with per-stage byte counts derived from the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.calibration import DEFAULT_CALIBRATION, GPUCalibration
from repro.gpu.specs import GPUSpec
from repro.gpu.workload import FrameWorkload


@dataclass(frozen=True)
class TrafficEstimate:
    """DRAM bytes per frame, per pipeline stage."""

    step1_bytes: float
    step2_bytes: float
    step3_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.step1_bytes + self.step2_bytes + self.step3_bytes


def frame_traffic(
    workload: FrameWorkload,
    calib: GPUCalibration = DEFAULT_CALIBRATION,
    framebuffer_bytes_per_pixel: float = 16.0,
) -> TrafficEstimate:
    """Estimate DRAM traffic for the three rendering stages.

    Step 1 streams the raw Gaussian parameters and writes projected
    features; Step 2 streams sort keys through the radix passes;
    Step 3 reads one feature record per (tile, Gaussian) instance and
    writes the framebuffer.
    """
    step1 = workload.n_gaussians * calib.step1_bytes_per_gaussian
    step2 = workload.n_instances * calib.sort_bytes_per_key
    step3 = workload.feature_bytes + workload.pixels * framebuffer_bytes_per_pixel
    return TrafficEstimate(step1_bytes=step1, step2_bytes=step2, step3_bytes=step3)


def bandwidth_fraction_for_fps(
    step3_bytes: float, spec: GPUSpec, fps: float = 60.0
) -> float:
    """Fraction of peak DRAM bandwidth Step 3 needs at a target FPS
    (the paper's 62.1% figure)."""
    return step3_bytes * fps / spec.dram_bandwidth


def roofline_seconds(
    compute_seconds: float,
    stage_bytes: float,
    spec: GPUSpec,
    calib: GPUCalibration = DEFAULT_CALIBRATION,
) -> float:
    """Stage time under the bandwidth roofline."""
    memory_seconds = stage_bytes / (spec.dram_bandwidth * calib.dram_efficiency)
    return max(compute_seconds, memory_seconds)
