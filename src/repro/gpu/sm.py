"""SIMT kernel models for Rendering Step 3 on the edge GPU.

Two kernels are modeled:

* **PFS** (the 3DGS reference): each 16x16 tile runs on one SM with a
  thread per pixel.  Every live pixel of every processed instance
  costs one fragment slot; lockstep execution means slots are spent
  whether or not the fragment is significant (Challenge 2).
* **IRSS-on-GPU** (Sec. IV-D): rows map to SIMT lanes, so each
  instance serializes a warp for its *longest* row segment while the
  other lanes idle — the imbalance that caps utilization at ~19%
  (Limitation 1) and motivates the GBU.

Both models return busy lane-cycles, from which time and utilization
follow given the device spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.calibration import DEFAULT_CALIBRATION, GPUCalibration
from repro.gpu.specs import GPUSpec
from repro.gpu.workload import FrameWorkload


@dataclass(frozen=True)
class KernelEstimate:
    """Timing estimate for one Step-3 kernel invocation.

    Attributes
    ----------
    lane_cycles:
        Total lane-cycles the kernel occupies (busy + forced idle).
    useful_lane_cycles:
        Lane-cycles doing fragment work.
    seconds:
        Execution time on the given device.
    utilization:
        useful / occupied lane-cycles.
    """

    lane_cycles: float
    useful_lane_cycles: float
    seconds: float

    @property
    def utilization(self) -> float:
        if self.lane_cycles <= 0:
            return 0.0
        return self.useful_lane_cycles / self.lane_cycles


def pfs_kernel(
    workload: FrameWorkload,
    spec: GPUSpec,
    calib: GPUCalibration = DEFAULT_CALIBRATION,
) -> KernelEstimate:
    """Model the PFS rasterization kernel.

    Every PFS fragment occupies a lane for ``pfs_fragment_cycles``;
    only the significant ones (approximated by the IRSS fragment
    count, which counts exactly the in-footprint fragments) do useful
    blending work.
    """
    occupied = workload.pfs_fragments * calib.pfs_fragment_cycles
    useful = min(workload.irss_fragments, workload.pfs_fragments) * calib.pfs_fragment_cycles
    seconds = occupied / spec.lane_rate
    return KernelEstimate(
        lane_cycles=occupied, useful_lane_cycles=useful, seconds=seconds
    )


def irss_kernel(
    workload: FrameWorkload,
    spec: GPUSpec,
    calib: GPUCalibration = DEFAULT_CALIBRATION,
    lanes_per_tile: int = 16,
) -> KernelEstimate:
    """Model the IRSS CUDA kernel (row-per-lane mapping).

    Each instance holds ``lanes_per_tile`` lanes for
    ``setup + max_row_run * fragment_cycles``; the workload's
    ``irss_serial_slots`` already aggregates
    ``sum_instances (setup_slot + max_run)``.
    """
    serial_cycles = (
        workload.irss_serial_slots * calib.irss_fragment_cycles
        + workload.n_instances * calib.irss_setup_cycles
    )
    occupied = serial_cycles * lanes_per_tile
    useful = workload.irss_fragments * calib.irss_fragment_cycles
    seconds = occupied / spec.lane_rate
    return KernelEstimate(
        lane_cycles=occupied, useful_lane_cycles=useful, seconds=seconds
    )
