"""Hardware specifications: Jetson Orin NX and the GBU (Tab. II/III).

The GBU's area/power/SRAM figures are taken directly from the paper's
synthesis results (28 nm, 1 GHz); the Orin NX figures from its public
datasheet as cited by the paper.  Cycle-cost calibration constants
live in :mod:`repro.gpu.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class GPUSpec:
    """An edge GPU as seen by the timing model.

    Attributes
    ----------
    name:
        Marketing name.
    sm_count:
        Streaming multiprocessors.
    lanes_per_sm:
        fp32 lanes per SM (CUDA cores / SM).
    clock_hz:
        Boost clock.
    dram_bandwidth:
        Peak DRAM bandwidth in bytes/s.
    peak_tflops:
        Peak fp32 throughput (2 ops per FMA lane-cycle).
    busy_power_w / idle_power_w:
        Typical package power when rendering vs. idling.
    sram_bytes, area_mm2, technology_nm:
        Reporting fields for Tab. II.
    """

    name: str
    sm_count: int
    lanes_per_sm: int
    clock_hz: float
    dram_bandwidth: float
    busy_power_w: float
    idle_power_w: float
    sram_bytes: int
    area_mm2: float
    technology_nm: int

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.lanes_per_sm <= 0 or self.clock_hz <= 0:
            raise ValidationError("GPU spec must have positive compute resources")

    @property
    def peak_tflops(self) -> float:
        return 2.0 * self.sm_count * self.lanes_per_sm * self.clock_hz / 1e12

    @property
    def lane_rate(self) -> float:
        """Aggregate lane-cycles per second."""
        return self.sm_count * self.lanes_per_sm * self.clock_hz


# Jetson Orin NX 16 GB (ref. [2]): 1024 CUDA cores (8 SMs x 128 lanes)
# at 918 MHz, 102.4 GB/s LPDDR5, 15 W typical, ~450 mm2 in 8 nm.
ORIN_NX = GPUSpec(
    name="Jetson Orin NX",
    sm_count=8,
    lanes_per_sm=128,
    clock_hz=918e6,
    dram_bandwidth=102.4e9,
    busy_power_w=15.0,
    idle_power_w=4.0,
    sram_bytes=4 * 1024 * 1024,
    area_mm2=450.0,
    technology_nm=8,
)


@dataclass(frozen=True)
class GBUModuleSpec:
    """Area/power of one GBU hardware module (Tab. III)."""

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class GBUSpec:
    """The Gaussian Blending Unit's hardware parameters (Tab. II/III).

    Attributes
    ----------
    clock_hz:
        Synthesized frequency (1 GHz).
    n_row_pes:
        Row PEs per Tile PE (8).
    rows_per_pe:
        Tile rows handled by each Row PE (2, interleaved by default).
    cache_bytes:
        Gaussian Reuse Cache capacity (32 KB chosen in Sec. VI-E).
    feature_bytes:
        One *decomposed* fp16 feature record — the cache line size
        (32 KB / 32 B = 1024 resident Gaussians).
    miss_burst_bytes:
        DRAM bytes a cache miss moves: the fp32 source record padded
        to burst granularity (see ``repro.config.FEATURE_BYTES``).
    index_bytes:
        Sorted-index bytes streamed per (tile, Gaussian) instance.
    framebuffer_bytes_per_pixel:
        Output writeback per pixel (RGBA8).
    row_buffer_depth:
        FIFO entries per Row Buffer (segments in flight).
    modules:
        Area/power breakdown per module.
    """

    clock_hz: float = 1e9
    n_row_pes: int = 8
    rows_per_pe: int = 2
    cache_bytes: int = 32 * 1024
    feature_bytes: int = 32
    miss_burst_bytes: int = 128
    index_bytes: int = 4
    framebuffer_bytes_per_pixel: int = 4
    row_buffer_depth: int = 8
    sram_bytes: int = 63 * 1024
    technology_nm: int = 28
    modules: tuple[GBUModuleSpec, ...] = (
        GBUModuleSpec("Row PEs", 0.36, 0.11),
        GBUModuleSpec("Row Generation", 0.14, 0.04),
        GBUModuleSpec("D&B Engine", 0.10, 0.03),
        GBUModuleSpec("Cache & Others", 0.30, 0.04),
    )

    @property
    def area_mm2(self) -> float:
        return sum(m.area_mm2 for m in self.modules)

    @property
    def power_w(self) -> float:
        return sum(m.power_w for m in self.modules)

    @property
    def rows_per_tile(self) -> int:
        return self.n_row_pes * self.rows_per_pe

    @property
    def cache_lines(self) -> int:
        """Gaussian feature records the reuse cache can hold."""
        return self.cache_bytes // self.feature_bytes

    def module(self, name: str) -> GBUModuleSpec:
        for m in self.modules:
            if m.name == name:
                return m
        raise ValidationError(f"unknown GBU module '{name}'")


GBU_SPEC = GBUSpec()


# GS-Core (ref. [25]) and NeRF-accelerator comparison points used by
# Tab. VI/VII live in repro.analysis.literature together with the
# other reported-number baselines.
