"""End-to-end GPU frame timing (Rendering Steps 1-3).

Combines the Step-1/2 cost models with the Step-3 SIMT kernel models
and the DRAM roofline into the per-stage breakdown the paper profiles
in Fig. 4/5, for both the baseline PFS pipeline and the IRSS-on-GPU
variant (Sec. IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.gpu.calibration import DEFAULT_CALIBRATION, GPUCalibration
from repro.gpu.memory import frame_traffic, roofline_seconds
from repro.gpu.sm import KernelEstimate, irss_kernel, pfs_kernel
from repro.gpu.specs import ORIN_NX, GPUSpec
from repro.gpu.workload import FrameWorkload


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage frame time (seconds) plus Step-3 diagnostics.

    ``step3_utilization`` is the SIMT lane utilization of the Step-3
    kernel (the 18.9% figure for IRSS-on-GPU in Sec. V-A).
    """

    step1_s: float
    step2_s: float
    step3_s: float
    step3_utilization: float

    @property
    def total_s(self) -> float:
        return self.step1_s + self.step2_s + self.step3_s

    @property
    def fps(self) -> float:
        return 1.0 / self.total_s

    @property
    def fractions(self) -> tuple[float, float, float]:
        t = self.total_s
        return (self.step1_s / t, self.step2_s / t, self.step3_s / t)


class GPUTimingModel:
    """Frame-time model of an edge GPU running a Gaussian pipeline.

    Parameters
    ----------
    spec:
        Device description (default: Jetson Orin NX).
    calib:
        Calibrated cycle-cost constants (see
        :mod:`repro.gpu.calibration`).
    """

    def __init__(
        self,
        spec: GPUSpec = ORIN_NX,
        calib: GPUCalibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec
        self.calib = calib

    # ------------------------------------------------------------------
    # Steps 1 and 2
    # ------------------------------------------------------------------
    def step1_seconds(self, workload: FrameWorkload) -> float:
        """Preprocessing: projection + SH + app-specific deformation."""
        flops = workload.n_gaussians * (
            self.calib.step1_flops_per_gaussian
            + workload.step1_extra_flops_per_gaussian
        )
        peak = self.spec.peak_tflops * 1e12
        compute = flops / (peak * self.calib.step1_efficiency)
        bytes_ = workload.n_gaussians * self.calib.step1_bytes_per_gaussian
        return roofline_seconds(compute, bytes_, self.spec, self.calib)

    def step2_seconds(
        self,
        workload: FrameWorkload,
        keys: float | None = None,
        depth_sort_only: bool = False,
    ) -> float:
        """Sorting + binning over (tile | depth) keys.

        With ``depth_sort_only`` (D&B mode) the GPU sorts Gaussians by
        depth and skips the duplication/binning kernels, which the D&B
        engine performs instead.
        """
        n_keys = workload.n_instances if keys is None else keys
        if n_keys < 0:
            raise ValidationError("key count cannot be negative")
        if depth_sort_only:
            cycles_per_key = self.calib.gaussian_sort_cycles_per_key
            bytes_per_key = self.calib.gaussian_sort_bytes_per_key
        else:
            cycles_per_key = self.calib.sort_cycles_per_key
            bytes_per_key = self.calib.sort_bytes_per_key
        cycles = n_keys * cycles_per_key
        compute = cycles / (self.spec.sm_count * self.spec.clock_hz)
        bytes_ = n_keys * bytes_per_key
        return roofline_seconds(compute, bytes_, self.spec, self.calib)

    # ------------------------------------------------------------------
    # Full frames
    # ------------------------------------------------------------------
    def frame_pfs(self, workload: FrameWorkload) -> StageBreakdown:
        """Baseline pipeline: PFS Step 3 on the GPU (Fig. 4/5)."""
        kernel = pfs_kernel(workload, self.spec, self.calib)
        return self._assemble(workload, kernel)

    def frame_irss(self, workload: FrameWorkload) -> StageBreakdown:
        """IRSS dataflow as a CUDA kernel (Sec. IV-D)."""
        kernel = irss_kernel(workload, self.spec, self.calib)
        return self._assemble(workload, kernel)

    def _assemble(
        self, workload: FrameWorkload, kernel: KernelEstimate
    ) -> StageBreakdown:
        traffic = frame_traffic(workload, self.calib)
        step3 = roofline_seconds(
            kernel.seconds, traffic.step3_bytes, self.spec, self.calib
        )
        return StageBreakdown(
            step1_s=self.step1_seconds(workload),
            step2_s=self.step2_seconds(workload),
            step3_s=step3,
            step3_utilization=kernel.utilization,
        )
