"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ValidationError(ReproError):
    """Raised when input data fails structural or numerical validation."""


class RenderError(ReproError):
    """Raised when a rasterizer cannot produce an image."""


class SimulationError(ReproError):
    """Raised when a hardware simulation reaches an inconsistent state."""


class DeviceBusyError(SimulationError):
    """Raised when a GBU render is issued while a frame is in flight."""


class CalibrationError(ReproError):
    """Raised when a timing model is configured with impossible constants."""
