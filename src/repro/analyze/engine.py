"""Analysis orchestration: project -> rules -> report.

:func:`run_analysis` is the one entry point both the CLI
(``scripts/analyze.py``) and the self-check test
(``tests/analyze/test_self_check.py``) call: build (or accept) a
:class:`~repro.analyze.project.Project`, run the selected rules,
drop inline-suppressed findings, partition the rest against the
baseline, and return an :class:`AnalysisReport`.

The gate contract lives in :meth:`AnalysisReport.ok`: an analysis
passes iff there are **no new findings** — baselined and
inline-suppressed findings are reported (and counted) but do not
fail, and *stale* baseline entries are surfaced so the baseline can
only shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.baseline import Baseline, BaselineEntry
from repro.analyze.findings import Finding
from repro.analyze.project import Project
from repro.analyze.registry import Rule, all_rules

#: Default scan roots, repository-relative.  The hygiene rules look at
#: everything (mirroring the old ``scripts/lint.py`` default paths);
#: invariant rules self-restrict to sim-scoped modules (``repro.*``).
DEFAULT_PATHS = ("src", "benchmarks", "scripts", "tests", "examples")


@dataclass
class AnalysisReport:
    """Outcome of one analysis run.

    ``new`` findings break the gate; ``baselined`` ones matched a
    justified baseline entry; ``suppressed`` were allowed inline at
    the source line; ``stale_entries`` are baseline entries that no
    longer match any finding (fix committed — delete the entry).
    """

    rules: list[Rule]
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new

    @property
    def all_findings(self) -> list[Finding]:
        """Every finding the rules emitted, suppressed or not."""
        return sorted(self.new + self.baselined + self.suppressed)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "rules": [r.rule_id for r in self.rules],
            "counts": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline_entries": len(self.stale_entries),
            },
            "new": [f.to_dict() for f in sorted(self.new)],
            "baselined": [f.to_dict() for f in sorted(self.baselined)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
            "stale_baseline_entries": [
                e.to_dict() for e in self.stale_entries
            ],
        }


def run_analysis(
    project: Project | None = None,
    *,
    root: Path | None = None,
    paths: list[str] | None = None,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Run ``rules`` (default: all registered) over ``project``.

    Either pass a prebuilt ``project`` (tests) or ``root`` + optional
    ``paths`` to scan on disk.  Missing default paths are skipped
    silently so the engine works on partial checkouts; explicitly
    passed paths must exist.
    """
    if project is None:
        if root is None:
            raise ValueError("run_analysis needs a project or a root")
        if paths is None:
            scan = [Path(p) for p in DEFAULT_PATHS if (root / p).exists()]
        else:
            scan = [Path(p) for p in paths]
        project = Project.from_paths(root, scan)
    selected = all_rules() if rules is None else rules
    baseline = Baseline.empty() if baseline is None else baseline

    emitted: list[Finding] = []
    for r in selected:
        emitted.extend(r.run(project))

    by_path = {m.rel_path: m for m in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in emitted:
        mod = by_path.get(finding.path)
        if mod is not None and mod.suppressed(finding.rule_id, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)

    new, baselined, stale = baseline.split(kept)
    return AnalysisReport(
        rules=selected,
        new=sorted(new),
        baselined=sorted(baselined),
        suppressed=sorted(suppressed),
        stale_entries=stale,
    )
