"""The committed baseline / suppression file.

``analyze_baseline.json`` (repository root) records findings that are
*known and justified*: the gate fails only on findings **not** in the
baseline, so adopting a new rule on a large tree never blocks CI — but
every baselined entry carries a mandatory per-entry justification, and
the shipped baseline is empty (the tree is clean; see ISSUE 8's
acceptance criteria).

Entry shape::

    {
      "entries": [
        {
          "rule": "DET102",
          "path": "src/repro/foo.py",
          "line": 12,            # optional: null matches any line
          "justification": "why this finding is acceptable"
        }
      ]
    }

Matching is by ``(rule, path[, line])`` — deliberately *not* by
message text, so rewording a rule's message does not orphan the
baseline.  ``line: null`` matches the whole file, which keeps entries
stable across unrelated edits above the finding; prefer a line when
the file is hot.  Entries that match nothing are reported as *stale*
so the baseline shrinks as code is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analyze.findings import Finding
from repro.errors import ValidationError

#: Default baseline location, relative to the repository root.
BASELINE_FILENAME = "analyze_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One justified suppression (see module docstring)."""

    rule: str
    path: str
    line: int | None
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule_id
            and self.path == finding.path
            and (self.line is None or self.line == finding.line)
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The parsed baseline file."""

    entries: list[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        if not path.exists():
            return cls.empty()
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(f"baseline {path} is not valid JSON: {exc}")
        entries = []
        for raw in data.get("entries", []):
            missing = {"rule", "path", "justification"} - set(raw)
            if missing:
                raise ValidationError(
                    f"baseline entry {raw!r} is missing {sorted(missing)}"
                )
            if not str(raw["justification"]).strip():
                raise ValidationError(
                    f"baseline entry for {raw['rule']} at {raw['path']} has "
                    "an empty justification — every suppression must say why"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    line=None if raw.get("line") is None else int(raw["line"]),
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {"entries": [e.to_dict() for e in self.entries]}
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """``(new, baselined, stale entries)`` partition of ``findings``.

        New findings fail the gate; baselined ones are reported but
        pass; stale entries matched nothing and should be deleted.
        """
        new: list[Finding] = []
        baselined: list[Finding] = []
        used: set[int] = set()
        for finding in findings:
            hit = None
            for i, entry in enumerate(self.entries):
                if entry.matches(finding):
                    hit = i
                    break
            if hit is None:
                new.append(finding)
            else:
                used.add(hit)
                baselined.append(finding)
        stale = [e for i, e in enumerate(self.entries) if i not in used]
        return new, baselined, stale

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justification: str
    ) -> "Baseline":
        """A baseline accepting exactly ``findings`` (``--update-baseline``).

        Every generated entry carries the same placeholder
        justification; the author is expected to replace each with a
        real reason before committing.
        """
        return cls(
            entries=[
                BaselineEntry(
                    rule=f.rule_id,
                    path=f.path,
                    line=f.line,
                    justification=justification,
                )
                for f in sorted(findings)
            ]
        )
