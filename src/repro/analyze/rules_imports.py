"""Import/definition hygiene lints (IMP0xx).

The offline mirror of the ruff gate, folded into the analysis
framework (``scripts/lint.py`` is now a thin shim over these rules so
``tests/test_lint.py`` and CI keep their interface):

``IMP001`` — **unused import** (ruff ``F401``).  A name bound by an
``import``/``from … import`` statement that is never loaded in the
module and not re-exported through ``__all__``.

``IMP002`` — **mutable default argument** (ruff/bugbear ``B006``).  A
list/dict/set display (or bare ``list()``/``dict()``/``set()``/
``bytearray()`` call) as a parameter default is shared across *every*
call of the function — the classic aliasing trap.  ``ruff.toml``
selects ``B006`` for environments with ruff installed; this native
rule keeps the check alive offline.

Unlike the invariant families, these rules scan **every** module the
project was built over (src, benchmarks, scripts, tests, examples) —
hygiene is not sim-scoped.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze.findings import Finding, Severity
from repro.analyze.project import Project
from repro.analyze.registry import rule

UNUSED_IMPORT = "IMP001"
MUTABLE_DEFAULT = "IMP002"


def _imported_names(node: ast.Import | ast.ImportFrom) -> list[tuple[str, str]]:
    """(bound name, display name) pairs introduced by an import node."""
    names = []
    for alias in node.names:
        if alias.name == "*":
            continue
        if alias.asname:
            names.append((alias.asname, alias.name))
        else:
            # "import a.b" binds "a"; "from m import x" binds "x".
            names.append((alias.name.split(".")[0], alias.name))
    return names


def unused_imports(tree: ast.Module) -> list[tuple[int, str, str]]:
    """``(line, bound name, display name)`` of unused imports in ``tree``.

    Mirrors the historical ``scripts/lint.py`` semantics exactly:
    ``__future__`` imports are exempt, and names re-exported as
    strings in ``__all__`` count as used.
    """
    imports: dict[str, tuple[int, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for bound, display in _imported_names(node):
                imports[bound] = (node.lineno, display)

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        used.add(elt.value)

    return sorted(
        (lineno, bound, display)
        for bound, (lineno, display) in imports.items()
        if bound not in used
    )


@rule(
    UNUSED_IMPORT,
    title="unused import (F401)",
    severity=Severity.ERROR,
    description="an imported name is never used nor re-exported",
)
def check_unused_imports(project: Project) -> Iterable[Finding]:
    for mod in project.modules:
        for lineno, _bound, display in unused_imports(mod.tree):
            yield Finding(
                path=mod.rel_path,
                line=lineno,
                rule_id=UNUSED_IMPORT,
                severity=Severity.ERROR,
                message=f"'{display}' imported but unused",
                hint="delete the import (or re-export via __all__)",
            )


#: Calls that build a fresh mutable container.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@rule(
    MUTABLE_DEFAULT,
    title="mutable default argument (B006)",
    severity=Severity.ERROR,
    description=(
        "a list/dict/set default is created once and shared across "
        "every call of the function"
    ),
)
def check_mutable_defaults(project: Project) -> Iterable[Finding]:
    for mod in project.modules:
        for fn in (
            n
            for n in ast.walk(mod.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield Finding(
                        path=mod.rel_path,
                        line=default.lineno,
                        rule_id=MUTABLE_DEFAULT,
                        severity=Severity.ERROR,
                        message=(
                            f"mutable default argument in {fn.name}()"
                        ),
                        hint="default to None and create inside the body",
                    )
