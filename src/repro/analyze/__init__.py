"""Invariant static analysis for the serving stack.

The repository's correctness story rests on three invariants that used
to be enforced only by hand-written tests and reviewer vigilance:

1. **Determinism** — simulated physics must be a pure function of its
   seeds: chaos and golden replays assert byte-identity, which a single
   unseeded RNG call or wall-clock read silently breaks.
2. **Checkpoint completeness** — every piece of mutable session state
   must round-trip through its export/import (capture/restore) pair;
   PRs 4, 6 and 7 each had to retrofit a forgotten field.
3. **Shared-state discipline** — objects shared across worker
   executors (interned :class:`~repro.scenes.catalog.SceneBundle`\\ s,
   content-cache :class:`~repro.stream.content_cache.CachedFrame`\\ s)
   must never be mutated in place after construction.

This package machine-checks all three (plus the import-hygiene lints
that used to live only in ``scripts/lint.py``) as a dependency-free
AST/dataflow framework:

* :mod:`repro.analyze.findings` — the :class:`Finding` record every
  rule emits (rule id, severity, file:line, message, fix hint);
* :mod:`repro.analyze.project` — the parsed module graph the rules
  walk (one AST per file, import edges, sim-path classification,
  inline-suppression table);
* :mod:`repro.analyze.registry` — the rule-plugin registry
  (:func:`rule` decorator, :func:`all_rules`);
* :mod:`repro.analyze.baseline` — the committed baseline/suppression
  file (per-entry justifications; new findings fail, baselined ones
  report);
* :mod:`repro.analyze.engine` — orchestration: build the project, run
  the rules, apply inline suppressions and the baseline, produce an
  :class:`~repro.analyze.engine.AnalysisReport`;
* ``rules_determinism`` / ``rules_checkpoint`` / ``rules_shared`` /
  ``rules_imports`` — the shipped rule families (importing them
  registers their rules).

Entry point: ``scripts/analyze.py`` (human table or ``--json``; exits
non-zero on new findings).  Rule catalog and suppression syntax:
``docs/static-analysis.md``.
"""

from repro.analyze.baseline import Baseline, BaselineEntry
from repro.analyze.engine import AnalysisReport, run_analysis
from repro.analyze.findings import Finding, Severity
from repro.analyze.project import ModuleInfo, Project
from repro.analyze.registry import Rule, all_rules, get_rule, rule

# Importing the rule modules registers their rules with the registry;
# they are re-exported so callers can reference rule ids (e.g.
# ``rules_determinism.UNSEEDED_RNG``) without knowing module layout.
from repro.analyze import rules_determinism  # noqa: E402
from repro.analyze import rules_checkpoint  # noqa: E402
from repro.analyze import rules_shared  # noqa: E402
from repro.analyze import rules_imports  # noqa: E402

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "rule",
    "run_analysis",
    "rules_determinism",
    "rules_checkpoint",
    "rules_shared",
    "rules_imports",
]
