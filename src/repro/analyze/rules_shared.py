"""Shared-state race lints (RACE3xx).

Co-located workers share memory on purpose: interned
:class:`~repro.scenes.catalog.SceneBundle` objects (one per
``(scene, detail)`` across every worker of a node, via
:class:`~repro.stream.content_cache.BundleIntern`) and content-cache
:class:`~repro.stream.content_cache.CachedFrame` products (one buffer
serving every viewer in a pose cell).  The sharing is only sound
because those objects are *immutable after construction* — a single
in-place write would be visible to every executor thread at once, and
to every future cache hit.

``RACE301`` — **in-place write to a shared object**.  Flags attribute
assignments, element assignments, augmented assignments, and known
in-place mutator calls (``append``/``update``/…, plus
``setflags(write=True)`` re-arming a frozen numpy buffer) on any
expression the rule can tie to a shared object:

* a variable or parameter *annotated* with a shared class
  (:data:`SHARED_CLASSES`);
* a local assigned from a shared **producer** — ``build_scene(...)``,
  an ``.build(...)`` call on an interner, a ``.get(...)``/
  ``.lookup(...)`` call on a cache/tier receiver
  (:data:`PRODUCER_METHODS`), or a shared-class constructor;
* an expression whose attribute path passes through ``.bundle`` or a
  ``*_bundle``/``bundle``-named local (:data:`SHARED_NAME_TAILS`) —
  the naming convention the streaming stack uses for interned scene
  bundles;
* a value already **escaped** into shared machinery: once a name is
  passed to ``<executor>.submit(...)``, ``<tier>.put(...)``, or
  ``<cache/view>.insert(...)``, any later mutation in the same scope
  is flagged (the object now has concurrent readers).

Rebinding is always fine (``self.bundle = other`` replaces the
reference, it does not mutate the referent), and the shared classes'
own methods are exempt (that *is* construction).  Sim-scoped
(``repro.*``) only.

The rule is deliberately heuristic — a dependency-free AST dataflow
cannot prove aliasing — so it favors the sharp edge: names and types
that match the repository's sharing conventions are treated as shared,
and intentional exceptions carry an inline
``# analyze: allow[RACE301] reason``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.analyze.findings import Finding, Severity
from repro.analyze.project import Project
from repro.analyze.registry import rule

SHARED_MUTATION = "RACE301"

#: Classes whose instances are shared across executors once published.
SHARED_CLASSES = frozenset({"SceneBundle", "CachedFrame"})

#: Bare callables that return shared objects.
PRODUCER_FUNCS = frozenset({"build_scene"})

#: ``(method name, receiver-name regex)`` pairs returning shared
#: objects: interner builds and cache/tier lookups.
PRODUCER_METHODS = (
    ("build", re.compile(r"intern")),
    ("get", re.compile(r"tier|cache")),
    ("lookup", re.compile(r"tier|cache|content")),
)

#: ``(method name, receiver-name regex)`` pairs that publish an
#: argument into shared machinery (escape points).
ESCAPE_METHODS = (
    ("submit", re.compile(r"executor|pool")),
    ("put", re.compile(r"tier|cache")),
    ("insert", re.compile(r"tier|cache|content")),
)

#: Attribute/variable name tails treated as shared bundles by
#: convention (``self.bundle``, ``scene_bundle``, …).
SHARED_NAME_TAILS = re.compile(r"(^|_)bundle$")

#: In-place mutators on containers/arrays.
_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "fill", "insert", "pop", "popitem", "popleft", "remove",
        "reverse", "sort", "update",
    }
)


def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _annotation_names(annotation: ast.expr | None) -> set[str]:
    """Every identifier appearing in an annotation (handles ``X | None``,
    ``Optional[X]``, and string annotations)."""
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return set()
    names: set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


@dataclass
class _Scope:
    """Flow-light tracking of shared bindings within one function."""

    tracked: set[str] = field(default_factory=set)
    escaped: dict[str, int] = field(default_factory=dict)

    def is_tracked(self, name: str) -> bool:
        return name in self.tracked or bool(SHARED_NAME_TAILS.search(name))


def _is_producer_call(node: ast.expr, scope: _Scope) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in PRODUCER_FUNCS or func.id in SHARED_CLASSES
    if isinstance(func, ast.Attribute):
        if func.attr in SHARED_CLASSES or func.attr in PRODUCER_FUNCS:
            return True
        receiver = _terminal_name(func.value)
        if receiver is None:
            return False
        return any(
            func.attr == method and pattern.search(receiver)
            for method, pattern in PRODUCER_METHODS
        )
    return False


def _chain_shared(node: ast.expr, scope: _Scope, use_line: int) -> str | None:
    """If mutating ``node`` mutates a shared object, say which one.

    Walks the value chain of an attribute/subscript path; returns a
    human-readable description of the shared link — a tracked/escaped
    root name, a ``.bundle``-tailed attribute, or a producer call — or
    ``None`` when the chain reaches nothing shared.
    """
    current = node
    while True:
        if isinstance(current, ast.Call):
            if _is_producer_call(current, scope):
                return ast.unparse(current.func)
            return None
        if isinstance(current, ast.Attribute):
            if SHARED_NAME_TAILS.search(current.attr):
                return ast.unparse(current)
            current = current.value
            continue
        if isinstance(current, ast.Subscript):
            current = current.value
            continue
        if isinstance(current, ast.Name):
            if scope.is_tracked(current.id):
                return current.id
            escape_line = scope.escaped.get(current.id)
            if escape_line is not None and use_line > escape_line:
                return f"{current.id} (escaped at line {escape_line})"
            return None
        return None


def _functions_outside_shared_classes(tree: ast.Module):
    """Every function def not nested in a shared class body."""
    shared_spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name in SHARED_CLASSES:
            shared_spans.append((node.lineno, node.end_lineno or node.lineno))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(lo <= node.lineno <= hi for lo, hi in shared_spans):
                continue
            yield node


def _build_scope(fn: ast.FunctionDef) -> _Scope:
    scope = _Scope()
    args = (
        fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
    )
    for arg in args:
        if _annotation_names(arg.annotation) & SHARED_CLASSES:
            scope.tracked.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_producer_call(
            node.value, scope
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    scope.tracked.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_names(node.annotation) & SHARED_CLASSES or (
                node.value is not None
                and _is_producer_call(node.value, scope)
            ):
                scope.tracked.add(node.target.id)
    # Alias propagation: y = x for tracked x (one extra pass suffices
    # for the chain depths real code uses).
    for _ in range(2):
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and scope.is_tracked(node.value.id)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scope.tracked.add(target.id)
    # Escapes: names handed to submit/put/insert on shared machinery.
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = _terminal_name(node.func.value)
            if receiver is None:
                continue
            if any(
                node.func.attr == method and pattern.search(receiver)
                for method, pattern in ESCAPE_METHODS
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        scope.escaped.setdefault(arg.id, node.lineno)
    return scope


def _setflags_rearm(node: ast.Call) -> bool:
    """``.setflags(...)`` that re-enables writes (or might)."""
    for kw in node.keywords:
        if kw.arg == "write":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return bool(node.args)


@rule(
    SHARED_MUTATION,
    title="in-place write to a shared object",
    severity=Severity.ERROR,
    description=(
        "attribute/element write or in-place mutator call on an "
        "interned bundle, cached frame, or other cross-executor "
        "shared object outside its construction"
    ),
)
def check_shared_mutation(project: Project) -> Iterable[Finding]:
    for mod in project.sim_modules:
        for fn in _functions_outside_shared_classes(mod.tree):
            scope = _build_scope(fn)
            for node in ast.walk(fn):
                # Attribute / element stores: the *value* side of the
                # target is the object being mutated.
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        shared = _chain_shared(
                            target.value, scope, node.lineno
                        )
                        if shared is not None:
                            yield Finding(
                                path=mod.rel_path,
                                line=node.lineno,
                                rule_id=SHARED_MUTATION,
                                severity=Severity.ERROR,
                                message=(
                                    f"in-place write to shared object "
                                    f"'{shared}' in {fn.name}()"
                                ),
                                hint=(
                                    "build a modified copy instead; shared "
                                    "bundles/frames are immutable after "
                                    "construction"
                                ),
                            )
                # In-place mutator calls (incl. setflags re-arm).
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    is_mutator = node.func.attr in _MUTATORS or (
                        node.func.attr == "setflags" and _setflags_rearm(node)
                    )
                    if not is_mutator:
                        continue
                    shared = _chain_shared(node.func.value, scope, node.lineno)
                    if shared is not None:
                        yield Finding(
                            path=mod.rel_path,
                            line=node.lineno,
                            rule_id=SHARED_MUTATION,
                            severity=Severity.ERROR,
                            message=(
                                f"in-place mutator .{node.func.attr}() on "
                                f"shared object '{shared}' in {fn.name}()"
                            ),
                            hint=(
                                "copy before mutating; the object is "
                                "visible to other executors/cache readers"
                            ),
                        )
