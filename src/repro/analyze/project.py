"""The parsed project the analysis rules walk.

A :class:`Project` owns one :class:`ModuleInfo` per python file: the
parsed AST, the resolved module name (``repro.stream.qos`` for files
under ``src/``, a path-derived pseudo-name elsewhere), the inline
suppression table, and whether the module is *sim-scoped* — i.e. part
of the ``repro`` package whose simulated physics must be
deterministic.  Rules that guard runtime invariants (determinism,
checkpoints, shared state) restrict themselves to sim-scoped modules;
hygiene rules (imports, mutable defaults) see everything.

Files are parsed exactly once, whichever rules run; the import graph
between project modules is derived on demand from the same ASTs.

Inline suppressions
-------------------
Two comment forms, matched per physical line of the *reported* node:

``# analyze: allow[RULE1,RULE2] reason``
    Suppress the listed rules (or ``*`` for all) on this line.  The
    reason is mandatory by convention — a bare allow is a review
    smell — but not enforced by the parser.

``# analyze: allow-module[RULE] reason``
    Suppress the listed rules for the whole module (the allowlist
    mechanism for wall-clock/benchmark modules).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError

_ALLOW_RE = re.compile(r"#\s*analyze:\s*(allow|allow-module)\[([^\]]*)\]")

#: Directory names that root a python package tree when scanning.
_SRC_ROOT = "src"


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """``(line -> rule ids, module-wide rule ids)`` from allow comments."""
    per_line: dict[int, set[str]] = {}
    module_wide: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _ALLOW_RE.finditer(text):
            kind, rules = match.group(1), match.group(2)
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            if not ids:
                continue
            if kind == "allow-module":
                module_wide |= ids
            else:
                per_line.setdefault(lineno, set()).update(ids)
    return per_line, module_wide


@dataclass
class ModuleInfo:
    """One parsed python file.

    Attributes
    ----------
    rel_path:
        Repository-root-relative path with forward slashes — the path
        findings report and the baseline matches.
    name:
        Dotted module name for files under ``src/`` (e.g.
        ``repro.stream.qos``); for other files, the relative path with
        ``/`` replaced by ``.`` and the suffix dropped, so every module
        still has a unique, matchable name.
    tree / source:
        The parsed AST and raw text.
    line_suppressions / module_suppressions:
        Inline ``# analyze: allow[...]`` tables (see module docstring).
    """

    rel_path: str
    name: str
    tree: ast.Module
    source: str
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    module_suppressions: set[str] = field(default_factory=set)

    @property
    def in_sim_scope(self) -> bool:
        """Whether this module is part of the ``repro`` runtime package
        (the tree whose simulated physics must be deterministic)."""
        return self.name == "repro" or self.name.startswith("repro.")

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether an inline allow covers ``rule_id`` at ``line``."""
        if rule_id in self.module_suppressions or "*" in self.module_suppressions:
            return True
        ids = self.line_suppressions.get(line, ())
        return rule_id in ids or "*" in ids

    @classmethod
    def from_source(cls, rel_path: str, source: str) -> "ModuleInfo":
        """Parse one in-memory module (how rule tests build fixtures)."""
        tree = ast.parse(source, filename=rel_path)
        per_line, module_wide = _parse_suppressions(source)
        return cls(
            rel_path=rel_path,
            name=_module_name(rel_path),
            tree=tree,
            source=source,
            line_suppressions=per_line,
            module_suppressions=module_wide,
        )


def _module_name(rel_path: str) -> str:
    """Dotted module name for a repository-relative path.

    The package tree starts after the *last* ``src`` component, so
    out-of-tree scan targets (``/tmp/.../src/repro/x.py`` in CLI
    tests) resolve to the same sim-scoped names as in-repo files.
    """
    parts = Path(rel_path).with_suffix("").parts
    if _SRC_ROOT in parts:
        last = len(parts) - 1 - parts[::-1].index(_SRC_ROOT)
        parts = parts[last + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    parts = tuple(p for p in parts if p not in ("/", "\\"))
    return ".".join(parts) if parts else rel_path


@dataclass
class Project:
    """The set of parsed modules one analysis run covers."""

    root: Path
    modules: list[ModuleInfo]

    def __post_init__(self) -> None:
        self._by_name = {m.name: m for m in self.modules}

    @classmethod
    def from_paths(cls, root: Path, paths: list[Path]) -> "Project":
        """Parse every ``*.py`` under ``paths`` (files or directories).

        Paths resolve against ``root``; files that fail to parse raise
        :class:`~repro.errors.ValidationError` naming the file, so a
        syntax error is a loud analysis failure rather than a silently
        skipped module.
        """
        root = root.resolve()
        files: list[Path] = []
        for p in paths:
            p = p if p.is_absolute() else root / p
            if p.is_file():
                files.append(p)
            elif p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                raise ValidationError(f"analysis path '{p}' does not exist")
        modules = []
        seen: set[Path] = set()
        for f in sorted(set(files)):
            if f in seen:  # pragma: no cover - defensive; set() dedups
                continue
            seen.add(f)
            try:
                rel = f.relative_to(root).as_posix()
            except ValueError:
                # Outside the root (explicit scan target): keep the
                # absolute path so findings still point somewhere real.
                rel = f.as_posix()
            try:
                modules.append(ModuleInfo.from_source(rel, f.read_text()))
            except SyntaxError as exc:
                raise ValidationError(
                    f"{rel}:{exc.lineno}: cannot analyze: {exc.msg}"
                ) from exc
        return cls(root=root, modules=modules)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """Build an in-memory project (unit-test fixtures)."""
        return cls(
            root=Path("."),
            modules=[
                ModuleInfo.from_source(rel, text)
                for rel, text in sorted(sources.items())
            ],
        )

    def module(self, name: str) -> ModuleInfo | None:
        return self._by_name.get(name)

    @property
    def sim_modules(self) -> list[ModuleInfo]:
        """Modules inside the ``repro`` runtime package."""
        return [m for m in self.modules if m.in_sim_scope]

    def import_graph(self) -> dict[str, set[str]]:
        """``module -> imported project modules`` adjacency.

        Only edges *within* the project are kept (stdlib/third-party
        imports are dropped); ``from repro.stream import qos`` links to
        ``repro.stream.qos`` when that module exists, else to
        ``repro.stream``.
        """
        graph: dict[str, set[str]] = {}
        for mod in self.modules:
            edges: set[str] = set()
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name in self._by_name:
                            edges.add(alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = node.module or ""
                    if node.level:  # relative import: resolve on the pkg
                        pkg = mod.name.rsplit(".", node.level)[0]
                        base = f"{pkg}.{base}" if base else pkg
                    for alias in node.names:
                        dotted = f"{base}.{alias.name}" if base else alias.name
                        if dotted in self._by_name:
                            edges.add(dotted)
                        elif base in self._by_name:
                            edges.add(base)
            edges.discard(mod.name)
            graph[mod.name] = edges
        return graph
