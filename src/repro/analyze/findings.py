"""The finding record every analysis rule emits.

A :class:`Finding` pins one defect to a file and line, names the rule
that produced it, carries a human message plus a *fix hint* (what to
change, or how to suppress with a justification), and serializes to
the JSON shape ``scripts/analyze.py --json`` emits and the baseline
file matches against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break a stated invariant (unseeded RNG in a sim
    path, a mutable field missing from its checkpoint); ``WARNING``
    findings are strong smells the rule cannot prove fatal from the
    AST alone (set iteration feeding an ordered output).  Both fail
    the gate when new — the split exists for reporting and for
    baseline triage, not for leniency.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Repository-root-relative file path (forward slashes).
    line:
        1-based line of the offending node.
    rule_id:
        The registered rule that produced this finding (e.g.
        ``DET101``).
    severity:
        :class:`Severity` of the violation.
    message:
        One-line description of what is wrong *here*.
    hint:
        How to fix it — or how to suppress it with a justification
        when the code is intentionally exempt.
    """

    path: str
    line: int
    rule_id: str
    severity: Severity
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict:
        """JSON-safe view (the ``--json`` output shape)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }
