"""Checkpoint-completeness lints (CKPT2xx).

The serving stack's crash-recovery/migration story depends on one
discipline: *every* piece of mutable session state round-trips through
its export/import pair.  PRs 4, 6 and 7 each had to retrofit a freshly
added field into :class:`~repro.stream.checkpoint.SessionCheckpoint`
after replay tests caught the drift; these rules turn that bug class
into a static CI failure instead of a test-archaeology exercise.

``CKPT201`` — **mutable attribute not checkpointed**.  For every class
with an export/import method pair (``export_state``/``import_state``,
``capture``/``restore``, ``save_state``/``load_state``), every
``self.<attr>`` that is *mutated after construction* (assigned,
augmented, or in-place mutated via ``append``/``update``/… in any
method outside ``__init__``/``__post_init__`` and the pair itself)
must be either **read** by the export method or **written** by the
import method.  Attributes only ever assigned in ``__init__`` are
construction-time configuration and exempt.

``CKPT202`` — **state field never restored**.  When the export side
returns a dataclass (``return QoSControllerState(...)``), every field
of that dataclass must be *read* by the paired import/restore
function; a field that is written at capture time but never consulted
at restore time is dead weight at best and a silently-dropped piece of
session state at worst.  The pairing covers method pairs and
module-level ``capture_*``/``restore_*`` (or ``export_*``/``import_*``,
``save_*``/``load_*``) function pairs — the
:func:`~repro.stream.checkpoint.capture_checkpoint` /
:func:`~repro.stream.checkpoint.restore_checkpoint` shape.

Both rules are sim-scoped (``repro.*``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analyze.findings import Finding, Severity
from repro.analyze.project import ModuleInfo, Project
from repro.analyze.registry import rule

UNCHECKPOINTED_ATTR = "CKPT201"
UNRESTORED_FIELD = "CKPT202"

#: (export method, import method) name pairs, checked in order.
METHOD_PAIRS = (
    ("export_state", "import_state"),
    ("capture", "restore"),
    ("save_state", "load_state"),
)

#: Module-level function-name prefixes pairing a capture function with
#: its restore counterpart (``capture_checkpoint`` -> ``restore_checkpoint``).
FUNCTION_PREFIX_PAIRS = (
    ("capture_", "restore_"),
    ("export_", "import_"),
    ("save_", "load_"),
)

#: Methods whose call on ``self.<attr>`` counts as in-place mutation.
_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)

#: Methods that never count as post-construction mutation sites.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__"})


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_name(fn: ast.FunctionDef) -> str | None:
    args = fn.args.posonlyargs + fn.args.args
    return args[0].arg if args else None


def _self_attr_events(
    fn: ast.FunctionDef,
) -> Iterator[tuple[str, str, int]]:
    """``(attr, event, line)`` for every ``self.<attr>`` touch in ``fn``.

    Events: ``load``, ``store`` (assignment/augmented assignment), and
    ``mutate`` (a known in-place mutator called on the attribute).
    """
    self_name = _self_name(fn)
    if self_name is None:
        return
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == self_name
        ):
            yield node.func.value.attr, "mutate", node.lineno
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            if isinstance(node.ctx, ast.Store):
                yield node.attr, "store", node.lineno
            elif isinstance(node.ctx, ast.Load):
                yield node.attr, "load", node.lineno
        # Element writes through the attribute: self.attr[k] = v.
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Store)
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == self_name
        ):
            yield node.value.attr, "mutate", node.lineno


def _checkpoint_pairs(
    cls: ast.ClassDef,
) -> Iterator[tuple[ast.FunctionDef, ast.FunctionDef]]:
    methods = _methods(cls)
    for export_name, import_name in METHOD_PAIRS:
        if export_name in methods and import_name in methods:
            yield methods[export_name], methods[import_name]


@rule(
    UNCHECKPOINTED_ATTR,
    title="mutable attribute missing from its checkpoint pair",
    severity=Severity.ERROR,
    description=(
        "a self attribute mutated after construction is neither read "
        "by the class's export method nor written by its import method"
    ),
)
def check_uncheckpointed_attrs(project: Project) -> Iterable[Finding]:
    for mod in project.sim_modules:
        for cls in (
            n for n in ast.walk(mod.tree) if isinstance(n, ast.ClassDef)
        ):
            for export_fn, import_fn in _checkpoint_pairs(cls):
                pair_names = {export_fn.name, import_fn.name}
                mutated: dict[str, int] = {}
                for name, fn in _methods(cls).items():
                    if name in _CONSTRUCTION_METHODS or name in pair_names:
                        continue
                    for attr, event, line in _self_attr_events(fn):
                        if event in ("store", "mutate"):
                            mutated.setdefault(attr, line)
                covered = {
                    attr
                    for attr, event, _ in _self_attr_events(export_fn)
                    if event == "load"
                } | {
                    attr
                    for attr, event, _ in _self_attr_events(import_fn)
                    if event in ("store", "mutate")
                }
                for attr in sorted(set(mutated) - covered):
                    yield Finding(
                        path=mod.rel_path,
                        line=mutated[attr],
                        rule_id=UNCHECKPOINTED_ATTR,
                        severity=Severity.ERROR,
                        message=(
                            f"mutable attribute '{attr}' of {cls.name} is "
                            f"not read by {export_fn.name}() nor written "
                            f"by {import_fn.name}()"
                        ),
                        hint=(
                            f"thread '{attr}' through the checkpoint state "
                            "(or reset it explicitly in "
                            f"{import_fn.name}() if it is derived)"
                        ),
                    )


def _dataclass_fields(cls: ast.ClassDef) -> dict[str, int]:
    """``field -> line`` for a dataclass body (``ClassVar`` excluded)."""
    fields: dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            ann = ast.unparse(stmt.annotation)
            if "ClassVar" in ann:
                continue
            fields[stmt.target.id] = stmt.lineno
    return fields


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        name = node.attr if isinstance(node, ast.Attribute) else getattr(
            node, "id", None
        )
        if name == "dataclass":
            return True
    return False


def _returned_class_names(fn: ast.FunctionDef) -> set[str]:
    """Simple class names constructed in ``return <Name>(...)`` stmts."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
        ):
            names.add(node.value.func.id)
    return names


def _state_param(fn: ast.FunctionDef, state_class: str) -> str | None:
    """The parameter of ``fn`` that carries the checkpoint state."""
    params = fn.args.posonlyargs + fn.args.args
    for arg in params:
        if arg.annotation is not None and state_class in ast.unparse(
            arg.annotation
        ):
            return arg.arg
    if params:
        candidate = params[-1].arg
        return None if candidate in ("self", "cls") else candidate
    return None


def _restore_pairs(
    mod: ModuleInfo,
) -> Iterator[tuple[ast.FunctionDef, ast.FunctionDef]]:
    """Every (export fn, import fn) pair in ``mod`` — methods and
    module-level prefix pairs alike."""
    for cls in (n for n in ast.walk(mod.tree) if isinstance(n, ast.ClassDef)):
        yield from _checkpoint_pairs(cls)
    top = {
        stmt.name: stmt
        for stmt in mod.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for cap_prefix, res_prefix in FUNCTION_PREFIX_PAIRS:
        for name, fn in top.items():
            if not name.startswith(cap_prefix):
                continue
            partner = top.get(res_prefix + name.removeprefix(cap_prefix))
            if partner is not None:
                yield fn, partner


@rule(
    UNRESTORED_FIELD,
    title="checkpoint state field never read at restore",
    severity=Severity.ERROR,
    description=(
        "a field of the dataclass returned by an export/capture "
        "function is never read by the paired import/restore function"
    ),
)
def check_unrestored_fields(project: Project) -> Iterable[Finding]:
    for mod in project.sim_modules:
        classes = {
            n.name: n
            for n in ast.walk(mod.tree)
            if isinstance(n, ast.ClassDef) and _is_dataclass(n)
        }
        seen: set[tuple[str, str]] = set()
        for export_fn, import_fn in _restore_pairs(mod):
            for state_name in sorted(_returned_class_names(export_fn)):
                cls = classes.get(state_name)
                if cls is None:
                    continue
                key = (state_name, import_fn.name)
                if key in seen:
                    continue
                seen.add(key)
                param = _state_param(import_fn, state_name)
                if param is None:
                    continue
                read = {
                    node.attr
                    for node in ast.walk(import_fn)
                    if isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == param
                    and isinstance(node.ctx, ast.Load)
                }
                fields = _dataclass_fields(cls)
                for field_name in sorted(set(fields) - read):
                    yield Finding(
                        path=mod.rel_path,
                        line=fields[field_name],
                        rule_id=UNRESTORED_FIELD,
                        severity=Severity.ERROR,
                        message=(
                            f"field '{field_name}' of {state_name} is "
                            f"never read by {import_fn.name}()"
                        ),
                        hint=(
                            f"consume {param}.{field_name} in "
                            f"{import_fn.name}() — or suppress with a "
                            "justification if the field is telemetry-only"
                        ),
                    )
