"""The rule-plugin registry.

A rule is a function ``(project: Project) -> Iterable[Finding]``
registered under a stable id with the :func:`rule` decorator::

    @rule(
        "DET999",
        title="example",
        severity=Severity.ERROR,
        description="what the rule guards, shown by --list-rules",
    )
    def check_example(project):
        for mod in project.sim_modules:
            ...
            yield Finding(...)

Registration is import-time: importing a ``rules_*`` module makes its
rules available to :func:`~repro.analyze.engine.run_analysis` and the
CLI.  Ids are namespaced by family (``DET1xx`` determinism, ``CKPT2xx``
checkpoint completeness, ``RACE3xx`` shared-state races, ``IMP0xx``
import/definition hygiene) and must be unique — a duplicate
registration raises immediately, so two plugins cannot silently fight
over one id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analyze.findings import Finding, Severity
from repro.analyze.project import Project
from repro.errors import ValidationError


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, metadata, and the check itself."""

    rule_id: str
    title: str
    severity: Severity
    description: str
    check: Callable[[Project], Iterable[Finding]]

    def run(self, project: Project) -> list[Finding]:
        """Run the check, stamping id/severity onto emitted findings.

        Rules construct findings with their own id already set; this
        wrapper validates they did not emit under someone else's id —
        a mislabeled finding would be suppressed by the wrong baseline
        entry.
        """
        findings = []
        for f in self.check(project):
            if f.rule_id != self.rule_id:
                raise ValidationError(
                    f"rule {self.rule_id} emitted a finding labeled "
                    f"'{f.rule_id}'"
                )
            findings.append(f)
        return findings


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str,
    *,
    title: str,
    severity: Severity,
    description: str,
) -> Callable[[Callable[[Project], Iterable[Finding]]], Rule]:
    """Register a rule function under ``rule_id`` (see module docstring)."""

    def _register(check: Callable[[Project], Iterable[Finding]]) -> Rule:
        if rule_id in _REGISTRY:
            raise ValidationError(f"duplicate rule id '{rule_id}'")
        registered = Rule(
            rule_id=rule_id,
            title=title,
            severity=severity,
            description=description,
            check=check,
        )
        _REGISTRY[rule_id] = registered
        return registered

    return _register


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    if rule_id not in _REGISTRY:
        raise ValidationError(
            f"unknown rule id '{rule_id}' (known: {', '.join(sorted(_REGISTRY))})"
        )
    return _REGISTRY[rule_id]
