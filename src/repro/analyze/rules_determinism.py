"""Determinism lints (DET1xx).

Simulated physics must be a pure function of its seeds: chaos-matrix
and golden-regression tests assert *byte-identical* replays, and the
GBU paper's bit-exactness claims are only reproducible if nothing in a
sim path consults ambient entropy.  Three rules enforce that:

``DET101`` — **unseeded RNG**.  ``np.random.default_rng()`` /
``np.random.RandomState()`` / ``random.Random()`` called without a
seed, and any call into the *global* RNGs (``random.random()``,
``np.random.shuffle(...)``, ``np.random.seed(...)`` — global seeding
included: it is cross-module action at a distance).  The fix is always
the same: thread a seeded ``np.random.Generator`` through, as every
scene/traffic/trajectory module already does.

``DET102`` — **wall-clock reads**.  ``time.time``/``perf_counter``/
``monotonic``/``process_time`` (+ ``_ns`` variants, ``localtime``,
``gmtime``, ``ctime``) and ``datetime.now``/``utcnow``/``today``
outside the allowlist of *wall-clock modules*
(:data:`WALL_CLOCK_MODULES`).  Allowlisted modules report host
wall-clock as telemetry (``wall_seconds``) next to simulated time; the
invariant they uphold — asserted by the chaos tests — is that
wall-clock never feeds simulated state.

``DET103`` — **set iteration feeding an ordered output**.  Iterating a
``set`` in a ``for`` loop or list/generator/dict comprehension bakes
hash order into whatever the loop builds; wrapped in ``sorted(...)``
(or feeding an order-insensitive reducer like ``sum``/``min``/``set``)
it is fine.  Flow-insensitive and local: only names that are
*unambiguously* set-valued within one scope are flagged, so the rule
stays quiet on mixed or cross-scope bindings.

All three rules restrict themselves to sim-scoped modules
(``repro.*``): benchmarks, scripts and tests may use entropy and
clocks freely.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable, Iterator

from repro.analyze.findings import Finding, Severity
from repro.analyze.project import ModuleInfo, Project
from repro.analyze.registry import rule

UNSEEDED_RNG = "DET101"
WALL_CLOCK = "DET102"
SET_ITERATION = "DET103"

#: Sim modules allowed to read the wall clock (fnmatch patterns on the
#: dotted module name).  These are the timing-labeled serving modules:
#: they publish host wall-clock as explicit telemetry
#: (``FrameRecord.wall_seconds``, serve/fleet wall totals) alongside —
#: never inside — the simulated ``sim_seconds`` physics.
WALL_CLOCK_MODULES = (
    "repro.stream.pipeline",
    "repro.stream.server",
    "repro.stream.fleet",
    # The serving gateway measures wire-side latencies (reconnect
    # restore time, connection lifetimes) — host telemetry by nature;
    # simulated physics still comes exclusively from the backend.
    "repro.stream.gateway",
)

#: Constructors that are deterministic when given a seed argument and
#: entropy-backed when called bare.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)

#: The stdlib global-RNG functions (module-level ``random.*``).
_STDLIB_GLOBAL_RNG = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Wall-clock callables, by resolved dotted name.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.localtime", "time.gmtime", "time.ctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Builtin consumers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "len", "min", "max", "sum", "any", "all"}
)


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """``bound name -> dotted origin`` for every import in ``tree``.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    Relative imports are skipped (they cannot name stdlib entropy).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                aliases[bound] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and not node.level and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted name of an expression, if resolvable.

    Walks ``a.b.c`` attribute chains down to a root :class:`ast.Name`
    and substitutes the root through the import table.  Returns
    ``None`` for anything whose root is not an imported module/object
    (locals, ``self.…``), so callers never mistake a local attribute
    for a stdlib call.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    return ".".join([origin, *reversed(parts)]) if parts else origin


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@rule(
    UNSEEDED_RNG,
    title="unseeded RNG in a sim path",
    severity=Severity.ERROR,
    description=(
        "RNG constructed without a seed, or global random/np.random "
        "state used, inside repro.* — breaks byte-identical replay"
    ),
)
def check_unseeded_rng(project: Project) -> Iterable[Finding]:
    for mod in project.sim_modules:
        aliases = import_aliases(mod.tree)
        for call in _calls(mod.tree):
            dotted = resolve_dotted(call.func, aliases)
            if dotted is None:
                continue
            if dotted in _SEEDABLE_CONSTRUCTORS:
                if not call.args and not call.keywords:
                    yield Finding(
                        path=mod.rel_path,
                        line=call.lineno,
                        rule_id=UNSEEDED_RNG,
                        severity=Severity.ERROR,
                        message=f"{dotted}() called without a seed",
                        hint=(
                            "pass an explicit seed (e.g. "
                            "np.random.default_rng(spec.seed)) or accept a "
                            "seeded Generator from the caller"
                        ),
                    )
            elif (
                dotted.startswith("numpy.random.")
                and dotted not in _SEEDABLE_CONSTRUCTORS
            ) or (
                dotted.startswith("random.")
                and dotted.removeprefix("random.") in _STDLIB_GLOBAL_RNG
            ):
                yield Finding(
                    path=mod.rel_path,
                    line=call.lineno,
                    rule_id=UNSEEDED_RNG,
                    severity=Severity.ERROR,
                    message=f"global RNG call {dotted}()",
                    hint=(
                        "use a seeded np.random.Generator threaded from the "
                        "call site instead of process-global RNG state"
                    ),
                )


def _wall_clock_allowed(mod: ModuleInfo) -> bool:
    return any(fnmatch.fnmatch(mod.name, pat) for pat in WALL_CLOCK_MODULES)


@rule(
    WALL_CLOCK,
    title="wall-clock read in a sim path",
    severity=Severity.ERROR,
    description=(
        "time.time/perf_counter/monotonic or datetime.now outside the "
        "wall-clock module allowlist — sim state must not see host time"
    ),
)
def check_wall_clock(project: Project) -> Iterable[Finding]:
    for mod in project.sim_modules:
        if _wall_clock_allowed(mod):
            continue
        aliases = import_aliases(mod.tree)
        for call in _calls(mod.tree):
            dotted = resolve_dotted(call.func, aliases)
            if dotted in _WALL_CLOCK_CALLS:
                yield Finding(
                    path=mod.rel_path,
                    line=call.lineno,
                    rule_id=WALL_CLOCK,
                    severity=Severity.ERROR,
                    message=f"wall-clock call {dotted}()",
                    hint=(
                        "derive timing from the simulated clock; if this "
                        "module legitimately reports host wall-clock "
                        "telemetry, add it to WALL_CLOCK_MODULES in "
                        "repro.analyze.rules_determinism"
                    ),
                )


def _walk_scope(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``stmts`` without descending into nested scopes.

    Nested function/class bodies are their own lexical scopes — the
    set-tracking and iteration checks must not see their statements,
    or every finding inside a function would double-report from the
    module pass.
    """
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _SetScope:
    """Collects, per lexical scope, names unambiguously bound to sets."""

    @staticmethod
    def _is_set_expr(node: ast.expr, known: dict[str, bool]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        if isinstance(node, ast.Name):
            return known.get(node.id, False)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return _SetScope._is_set_expr(
                node.left, known
            ) and _SetScope._is_set_expr(node.right, known)
        return False

    def collect(self, body: list[ast.stmt]) -> set[str]:
        """Names whose every assignment in ``body`` is set-valued."""
        verdict: dict[str, bool] = {}

        def note(target: ast.expr, is_set: bool) -> None:
            if isinstance(target, ast.Name):
                prior = verdict.get(target.id, True)
                verdict[target.id] = prior and is_set

        for node in _walk_scope(body):
            if isinstance(node, ast.Assign):
                is_set = self._is_set_expr(node.value, verdict)
                for t in node.targets:
                    note(t, is_set)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                note(node.target, self._is_set_expr(node.value, verdict))
            elif isinstance(node, ast.AugAssign):
                note(node.target, False)
        return {name for name, is_set in verdict.items() if is_set}


def _scopes(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    """Module body plus every function body (each a lexical scope)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _parent_map(stmts: list[ast.stmt]) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for stmt in stmts:
        for node in ast.walk(stmt):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
    return parents


def _order_insensitive_context(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Whether ``node`` feeds an order-insensitive consumer.

    True when an ancestor is a call like ``sorted(...)``/``sum(...)``
    with ``node`` somewhere in its arguments, or a set comprehension —
    either way the set's iteration order cannot leak into an ordered
    output.
    """
    current = node
    while current in parents:
        parent = parents[current]
        if isinstance(parent, ast.Call):
            func = parent.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_INSENSITIVE
                and current is not func
            ):
                return True
        if isinstance(parent, ast.SetComp):
            return True
        current = parent
    return False


@rule(
    SET_ITERATION,
    title="set iteration feeding an ordered output",
    severity=Severity.WARNING,
    description=(
        "for-loop or list/dict/generator comprehension over a set in "
        "repro.* — hash order leaks into ordered results; wrap in "
        "sorted(...)"
    ),
)
def check_set_iteration(project: Project) -> Iterable[Finding]:
    for mod in project.sim_modules:
        for body in _scopes(mod.tree):
            set_names = _SetScope().collect(body)
            parents = _parent_map(body)
            for node in _walk_scope(body):
                iters: list[tuple[ast.expr, ast.AST]] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append((node.iter, node))
                elif isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    iters.extend((g.iter, node) for g in node.generators)
                for iter_expr, construct in iters:
                    is_set = isinstance(
                        iter_expr, (ast.Set, ast.SetComp)
                    ) or (
                        isinstance(iter_expr, ast.Name)
                        and iter_expr.id in set_names
                    ) or (
                        isinstance(iter_expr, ast.Call)
                        and isinstance(iter_expr.func, ast.Name)
                        and iter_expr.func.id in {"set", "frozenset"}
                    )
                    if not is_set:
                        continue
                    if _order_insensitive_context(construct, parents):
                        continue
                    yield Finding(
                        path=mod.rel_path,
                        line=iter_expr.lineno,
                        rule_id=SET_ITERATION,
                        severity=Severity.WARNING,
                        message=(
                            "iteration over a set feeds an ordered "
                            "output (hash-order dependent)"
                        ),
                        hint="iterate sorted(<set>) to pin the order",
                    )
