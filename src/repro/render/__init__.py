"""Pluggable rendering engine: backend registry + vectorized backends.

Quick start::

    from repro.render import get_backend, use_backend

    result = get_backend("vectorized").render_pfs(projected)
    with use_backend("vectorized"):
        ...  # every render_reference / render_irss call in scope

See :mod:`repro.render.backends` for the registry contract and
:mod:`repro.render.vectorized` for the instance-batched engine.
"""

from repro.render.backends import (
    BACKEND_ENV_VAR,
    RasterizerBackend,
    default_backend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.render.vectorized import (
    build_tile_batches,
    render_irss_vectorized,
    render_pfs_vectorized,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "RasterizerBackend",
    "build_tile_batches",
    "default_backend",
    "get_backend",
    "list_backends",
    "register_backend",
    "render_irss_vectorized",
    "render_pfs_vectorized",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
