"""Pluggable rendering engine: backend registry + vectorized backends.

Quick start::

    from repro.render import get_backend, use_backend

    result = get_backend("vectorized").render_pfs(projected)
    with use_backend("vectorized"):
        ...  # every render_reference / render_irss call in scope

See :mod:`repro.render.backends` for the registry contract,
:mod:`repro.render.vectorized` for the instance-batched engine,
:mod:`repro.render.approx` for the measured-quality approximate mode,
and :mod:`repro.render.sharding` for intra-frame tile sharding.
"""

from repro.render.approx import (
    APPROX_TOLERANCE_ENV_VAR,
    DEFAULT_TOLERANCE,
    ApproxPolicy,
    CullStats,
    cull_render_lists,
    default_policy,
    gaussian_alpha_mass,
    render_irss_approx,
    render_pfs_approx,
    set_approx_policy,
    tolerance_for_rung,
    use_approx_policy,
)
from repro.render.backends import (
    BACKEND_ENV_VAR,
    RasterizerBackend,
    default_backend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.render.sharding import (
    ShardedRenderer,
    render_irss_sharded,
    render_pfs_sharded,
    shard_tile_ranges,
)
from repro.render.vectorized import (
    build_tile_batches,
    render_irss_vectorized,
    render_pfs_vectorized,
)

__all__ = [
    "APPROX_TOLERANCE_ENV_VAR",
    "ApproxPolicy",
    "BACKEND_ENV_VAR",
    "CullStats",
    "DEFAULT_TOLERANCE",
    "RasterizerBackend",
    "ShardedRenderer",
    "build_tile_batches",
    "cull_render_lists",
    "default_backend",
    "default_policy",
    "gaussian_alpha_mass",
    "get_backend",
    "list_backends",
    "register_backend",
    "render_irss_approx",
    "render_irss_sharded",
    "render_irss_vectorized",
    "render_pfs_approx",
    "render_pfs_sharded",
    "render_pfs_vectorized",
    "resolve_backend",
    "set_approx_policy",
    "set_default_backend",
    "shard_tile_ranges",
    "tolerance_for_rung",
    "use_approx_policy",
    "use_backend",
]
