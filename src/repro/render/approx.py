"""Contribution-aware approximate rendering (the "approx" backend).

The ``reference`` and ``vectorized`` backends are exact: every binned
(tile, Gaussian) instance is blended until the per-pixel transmittance
crosses the conservative ``transmittance_eps``.  Profiling (Challenge 2
of the paper; FLICKER makes the same observation) shows that most of
that work is spent on Gaussians whose alpha mass within a tile is
negligible — they are fetched, set up and shaded, then contribute
below perceptual significance.  This backend trades *measured* image
quality for latency along two axes:

* **Per-tile contribution-aware culling** — for every (tile, Gaussian)
  instance a closed-form *blended-contribution* estimate is computed:
  the Gaussian's mean per-pixel alpha over the tile (opacity at the
  nearest tile point, scaled by how much of the tile its footprint
  covers), weighted by the transmittance accumulated through the
  members in front of it in depth order.  Instances whose estimated
  contribution falls below a tolerance-scaled threshold are culled —
  this removes both negligible-alpha Gaussians *and* the occluded tail
  behind nearly-opaque foregrounds, while blending order stays depth
  order and membership only shrinks.
* **Aggressive early termination** — the per-pixel transmittance
  cutoff is raised from the exact ``transmittance_eps`` to
  ``term_eps``: a pixel that is already ``1 - term_eps`` opaque stops
  accumulating.  The residual error per pixel is bounded by the
  discarded transmittance.
* **Reduced-precision datapath** — any approximating policy renders
  its bricks in float32 (the exact engines accumulate in float64).
  The rasterizer sweeps are memory-bound, so halving the brick
  bandwidth is nearly free speed; the ~1e-7 relative rounding is
  noise against the culling error above.

Both knobs fold into one scalar :attr:`ApproxPolicy.tolerance` in
``[0, 1]``; tolerance 0 disables both (bit-identical to the exact
vectorized backend, tested), larger tolerances cull and terminate more
aggressively.  Quality is never assumed: every configuration is scored
with PSNR/SSIM against the exact backend (``repro.metrics.image``) in
``tests/render/test_approx.py`` (quality-banded goldens) and
``benchmarks/bench_approx_quality.py`` (asserted per-rung floors).

The QoS ladder maps its relative detail rung to a tolerance through
:func:`tolerance_for_rung`, so a session under deadline pressure that
drops a rung also renders that rung cheaper — the explicit
quality-for-latency trade the serving layer needed a faster rung for.

The active policy is process-wide (like the default backend in
:mod:`repro.render.backends`): ``set_approx_policy`` /
:func:`use_approx_policy` override it, the ``REPRO_APPROX_TOLERANCE``
environment variable seeds it, and the default tolerance is
:data:`DEFAULT_TOLERANCE`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.config import (
    ALPHA_MAX,
    DEFAULT_SETTINGS,
    RenderSettings,
    TRANSMITTANCE_EPS,
)
from repro.core.irss import IRSSRenderResult
from repro.core.transform import IRSSTransform
from repro.errors import ValidationError
from repro.gaussians.projection import Projected2D
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.sorting import RenderLists, build_render_lists
from repro.render.vectorized import render_irss_vectorized, render_pfs_vectorized

#: Environment variable seeding the process-wide approx tolerance.
APPROX_TOLERANCE_ENV_VAR = "REPRO_APPROX_TOLERANCE"

#: Tolerance used when nothing overrides it.  Chosen so the default
#: scene clears the PSNR >= 35 dB / SSIM >= 0.95 floors with a >= 2x
#: speedup over the exact vectorized backend (asserted in
#: ``benchmarks/bench_approx_quality.py``).
DEFAULT_TOLERANCE = 0.25


#: Scale from tolerance to the per-instance contribution cutoff.  At
#: tolerance 1 an instance may be culled when its estimated mean
#: per-pixel blended alpha is below 2e-3 (half an 8-bit code).
CONTRIBUTION_SCALE = 2e-3

#: Scale from tolerance to the early-termination threshold.
TERM_EPS_SCALE = 0.02


@dataclass(frozen=True)
class ApproxPolicy:
    """One approximate-rendering configuration.

    Attributes
    ----------
    tolerance:
        The scalar quality knob in ``[0, 1]`` both derived knobs come
        from (0 = exact).
    min_contribution:
        Estimated mean per-pixel blended-alpha cutoff: tile members
        contributing less are culled (0 keeps everything).
    term_eps:
        Early-termination transmittance threshold (the exact engines
        use the conservative ``RenderSettings.transmittance_eps``).
    min_keep:
        Tiles never cull below this many members, so sparsely covered
        tiles keep their (individually significant) Gaussians.
    """

    tolerance: float
    min_contribution: float
    term_eps: float
    min_keep: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance <= 1.0:
            raise ValidationError("approx tolerance must be in [0, 1]")
        if self.min_contribution < 0.0:
            raise ValidationError("min_contribution cannot be negative")
        if self.term_eps < TRANSMITTANCE_EPS:
            raise ValidationError(
                "term_eps cannot undercut the exact transmittance_eps"
            )
        if self.min_keep < 1:
            raise ValidationError("min_keep must be at least 1")

    @staticmethod
    def for_tolerance(tolerance: float) -> "ApproxPolicy":
        """Derive both approximation knobs from one scalar tolerance.

        Tolerance 0 keeps every instance and the exact termination
        threshold (the renders are then bit-identical to
        ``vectorized``); the knobs open linearly from there.
        """
        if not 0.0 <= tolerance <= 1.0:
            raise ValidationError("approx tolerance must be in [0, 1]")
        return ApproxPolicy(
            tolerance=tolerance,
            min_contribution=CONTRIBUTION_SCALE * tolerance,
            term_eps=max(TRANSMITTANCE_EPS, TERM_EPS_SCALE * tolerance),
        )


def tolerance_for_rung(rung_scale: float) -> float:
    """Tolerance for one QoS detail rung (relative scale in ``(0, 1]``).

    The full-detail rung renders with a small tolerance; every rung
    the controller drops widens it, so the latency relief per rung
    comes from *both* fewer Gaussians (the smaller bundle) and cheaper
    blending.  Clamped to the band measured in
    ``benchmarks/bench_approx_quality.py``.
    """
    if rung_scale <= 0:
        raise ValidationError("detail rung scale must be positive")
    return float(np.clip(0.15 + 0.4 * (1.0 - min(rung_scale, 1.0)), 0.0, 0.55))


_policy_override: ApproxPolicy | None = None


def default_policy() -> ApproxPolicy:
    """The policy used when no override is active."""
    if _policy_override is not None:
        return _policy_override
    env = os.environ.get(APPROX_TOLERANCE_ENV_VAR)
    if env is not None:
        try:
            tolerance = float(env)
        except ValueError:
            raise ValidationError(
                f"{APPROX_TOLERANCE_ENV_VAR} must be a float in [0, 1], "
                f"got '{env}'"
            ) from None
        return ApproxPolicy.for_tolerance(tolerance)
    return ApproxPolicy.for_tolerance(DEFAULT_TOLERANCE)


def set_approx_policy(policy: ApproxPolicy | None) -> ApproxPolicy | None:
    """Override the process-wide approx policy (``None`` clears it).

    Returns the previous override so callers can restore it.
    """
    global _policy_override
    previous = _policy_override
    _policy_override = policy
    return previous


@contextmanager
def use_approx_policy(policy: ApproxPolicy | float) -> Iterator[ApproxPolicy]:
    """Scope an approx-policy override (accepts a bare tolerance)."""
    if not isinstance(policy, ApproxPolicy):
        policy = ApproxPolicy.for_tolerance(policy)
    previous = set_approx_policy(policy)
    try:
        yield policy
    finally:
        set_approx_policy(previous)


def gaussian_alpha_mass(projected: Projected2D) -> np.ndarray:
    """Closed-form per-Gaussian alpha mass (footprint integral).

    The integral of ``opacity * exp(-0.5 * x^T C x)`` over the plane is
    ``opacity * 2 * pi / sqrt(det C)`` for the conic ``C = (a, b; b, c)``
    — a cheap, projection-time upper bound on how much blended alpha a
    Gaussian can contribute anywhere on screen.  Used as the footprint
    factor of :func:`tile_alpha_estimate`.
    """
    conics = projected.conics
    det = conics[:, 0] * conics[:, 2] - conics[:, 1] ** 2
    det = np.maximum(det, 1e-12)
    return projected.opacities * (2.0 * np.pi / np.sqrt(det))


def tile_alpha_estimate(
    projected: Projected2D, lists: RenderLists
) -> tuple[np.ndarray, np.ndarray]:
    """Estimated mean per-pixel alpha of every (tile, Gaussian) instance.

    Returns ``(members, alpha)``: the flat member array (concatenated
    ``lists.per_tile``, depth order within each tile) and, per
    instance, the Gaussian's opacity evaluated at the nearest point of
    the tile, scaled by the fraction of the tile its footprint covers
    — a closed-form estimate of the mean alpha it contributes per tile
    pixel, before occlusion.
    """
    grid = lists.grid
    counts = lists.instances_per_tile()
    if counts.sum() == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0)
    members = np.concatenate([m for m in lists.per_tile if len(m)])
    tiles = np.repeat(np.arange(grid.n_tiles, dtype=np.int64), counts)
    tx = tiles % grid.tiles_x
    ty = tiles // grid.tiles_x
    x0 = tx * grid.tile
    y0 = ty * grid.tile
    x1 = np.minimum(x0 + grid.tile, grid.width) - 1.0
    y1 = np.minimum(y0 + grid.tile, grid.height) - 1.0
    means = projected.means2d[members]
    # Nearest tile pixel to the Gaussian center: where its alpha over
    # the tile peaks (the conic quadratic is monotone in the distance
    # along each axis once clamped to the rectangle).
    dx = np.clip(means[:, 0], x0, x1) - means[:, 0]
    dy = np.clip(means[:, 1], y0, y1) - means[:, 1]
    con = projected.conics[members]
    q = con[:, 0] * dx * dx + 2.0 * con[:, 1] * dx * dy + con[:, 2] * dy * dy
    det = np.maximum(con[:, 0] * con[:, 2] - con[:, 1] ** 2, 1e-12)
    footprint = 2.0 * np.pi / np.sqrt(det)
    area = (x1 - x0 + 1.0) * (y1 - y0 + 1.0)
    peak = projected.opacities[members] * np.exp(-0.5 * np.minimum(q, 30.0))
    alpha = np.minimum(peak, ALPHA_MAX) * np.minimum(1.0, footprint / area)
    return members, alpha


@dataclass(frozen=True)
class CullStats:
    """What contribution-aware culling removed from one frame."""

    instances_before: int
    instances_after: int

    @property
    def culled_fraction(self) -> float:
        if self.instances_before == 0:
            return 0.0
        return 1.0 - self.instances_after / self.instances_before


def cull_render_lists(
    projected: Projected2D,
    lists: RenderLists,
    policy: ApproxPolicy | None = None,
) -> tuple[RenderLists, CullStats]:
    """Drop each tile's negligible-contribution members, keeping depth order.

    For every tile, members are walked front to back accumulating an
    estimated tile transmittance from :func:`tile_alpha_estimate`; a
    member's *blended* contribution is its alpha estimate times the
    transmittance remaining in front of it.  Members below the
    policy's ``min_contribution`` are culled — faint Gaussians anywhere
    and any Gaussian behind a nearly opaque foreground.  The ``min_keep``
    highest-contributing members of each tile always survive, and
    surviving members keep their near-to-far order, so blending
    semantics are unchanged — only membership shrinks.
    """
    if policy is None:
        policy = default_policy()
    before = int(lists.n_instances)
    if policy.min_contribution <= 0.0 or before == 0:
        return lists, CullStats(instances_before=before, instances_after=before)
    _, alpha = tile_alpha_estimate(projected, lists)
    per_tile: list[np.ndarray] = []
    after = 0
    offset = 0
    for members in lists.per_tile:
        n = len(members)
        if n == 0:
            per_tile.append(members)
            continue
        a = alpha[offset : offset + n]
        offset += n
        if n <= policy.min_keep:
            per_tile.append(members)
            after += n
            continue
        # Transmittance estimate in front of each member (depth order).
        trans = np.empty(n)
        trans[0] = 1.0
        np.cumprod(1.0 - a[:-1], out=trans[1:])
        weight = trans * a
        keep = weight >= policy.min_contribution
        if keep.sum() < policy.min_keep:
            top = np.argpartition(-weight, policy.min_keep - 1)
            keep[top[: policy.min_keep]] = True
        kept = members[keep]
        per_tile.append(kept)
        after += len(kept)
    culled = RenderLists(grid=lists.grid, per_tile=per_tile)
    return culled, CullStats(instances_before=before, instances_after=after)


def _approx_settings(
    settings: RenderSettings, policy: ApproxPolicy
) -> RenderSettings:
    eps = max(settings.transmittance_eps, policy.term_eps)
    if eps == settings.transmittance_eps:
        return settings
    return replace(settings, transmittance_eps=eps)


def _approx_dtype(settings: RenderSettings, policy: ApproxPolicy) -> type:
    """Brick precision for one approx render.

    An exact-equivalent policy (nothing culled, no raised termination —
    e.g. tolerance 0) keeps the float64 datapath so the advertised
    bit-identity with ``vectorized`` holds; every approximating policy
    renders in float32, whose ~1e-7 relative error is noise against the
    culling error but halves the brick bandwidth.
    """
    exact_equivalent = (
        policy.min_contribution <= 0.0
        and policy.term_eps <= settings.transmittance_eps
    )
    return np.float64 if exact_equivalent else np.float32


def render_pfs_approx(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
) -> RenderResult:
    """PFS rasterizer under the active approx policy."""
    policy = default_policy()
    if lists is None:
        lists = build_render_lists(projected)
    culled, _ = cull_render_lists(projected, lists, policy)
    return render_pfs_vectorized(
        projected,
        culled,
        settings=_approx_settings(settings, policy),
        dtype=_approx_dtype(settings, policy),
    )


def render_irss_approx(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    transform: IRSSTransform | None = None,
    fp16: bool = False,
) -> IRSSRenderResult:
    """IRSS rasterizer under the active approx policy."""
    policy = default_policy()
    if lists is None:
        lists = build_render_lists(projected)
    culled, _ = cull_render_lists(projected, lists, policy)
    return render_irss_vectorized(
        projected,
        culled,
        settings=_approx_settings(settings, policy),
        transform=transform,
        fp16=fp16,
        dtype=_approx_dtype(settings, policy),
    )
