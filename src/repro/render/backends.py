"""Pluggable rasterizer backend registry.

Every rasterizer in the repository comes in (at least) two
implementations with identical observable behavior:

* ``reference`` — the scalar per-(tile, Gaussian) loops of
  :mod:`repro.gaussians.rasterizer` (PFS) and :mod:`repro.core.irss`
  (IRSS).  These are the numerical ground truth and the easiest code
  to audit against the paper.
* ``vectorized`` — the instance-batched engine of
  :mod:`repro.render.vectorized`: depth-slab batching over flat
  (tile, Gaussian) instance arrays with masked NumPy blending.  It is
  pixel-exact against the reference (bit-identical images and
  workload counters; property-tested) and typically an order of
  magnitude faster.

Selection is threaded through every render entry point as a
``backend=`` keyword; ``backend=None`` resolves to the process-wide
default, which is ``reference`` unless overridden by
``set_default_backend`` or the ``REPRO_RENDER_BACKEND`` environment
variable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ValidationError

#: Environment variable consulted for the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_RENDER_BACKEND"


@dataclass(frozen=True)
class RasterizerBackend:
    """One rendering engine: a PFS and an IRSS implementation.

    Attributes
    ----------
    name:
        Registry key ("reference", "vectorized", ...).
    render_pfs:
        Callable with the :func:`repro.gaussians.rasterizer.render_reference`
        signature ``(projected, lists=None, settings=...)`` returning a
        :class:`~repro.gaussians.rasterizer.RenderResult`.
    render_irss:
        Callable with the :func:`repro.core.irss.render_irss` signature
        ``(projected, lists=None, settings=..., transform=None,
        fp16=False)`` returning an
        :class:`~repro.core.irss.IRSSRenderResult`.
    description:
        One-line summary shown by :func:`list_backends`.
    """

    name: str
    render_pfs: Callable[..., object]
    render_irss: Callable[..., object]
    description: str = ""


_REGISTRY: dict[str, RasterizerBackend] = {}
_default_override: str | None = None


def register_backend(backend: RasterizerBackend) -> RasterizerBackend:
    """Add (or replace) a backend in the registry."""
    if not backend.name:
        raise ValidationError("backend name must be non-empty")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> RasterizerBackend:
    """Look up a backend by name."""
    if name not in _REGISTRY:
        raise ValidationError(
            f"unknown render backend '{name}'; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def list_backends() -> dict[str, str]:
    """Mapping of registered backend names to their descriptions."""
    return {name: b.description for name, b in sorted(_REGISTRY.items())}


def default_backend() -> str:
    """The backend used when callers pass ``backend=None``."""
    if _default_override is not None:
        return _default_override
    return os.environ.get(BACKEND_ENV_VAR, "reference")


def set_default_backend(name: str | None) -> str | None:
    """Override the process-wide default backend.

    ``None`` clears the override (falling back to the environment
    variable / "reference").  Returns the previous override so callers
    can restore it.
    """
    global _default_override
    if name is not None:
        get_backend(name)  # validate eagerly
    previous = _default_override
    _default_override = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[RasterizerBackend]:
    """Context manager scoping a default-backend override."""
    previous = set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        set_default_backend(previous)


def resolve_backend(name: str | None) -> RasterizerBackend:
    """Resolve an explicit name or the configured default."""
    return get_backend(name if name is not None else default_backend())


def _register_builtin_backends() -> None:
    # Imported here (not at module top) so the registry module stays
    # importable from inside rasterizer/irss without a cycle.
    from repro.core.irss import render_irss_loop
    from repro.gaussians.rasterizer import render_reference_loop
    from repro.render.vectorized import (
        render_irss_vectorized,
        render_pfs_vectorized,
    )

    register_backend(
        RasterizerBackend(
            name="reference",
            render_pfs=render_reference_loop,
            render_irss=render_irss_loop,
            description="scalar per-(tile, Gaussian) loops (numerical ground truth)",
        )
    )
    register_backend(
        RasterizerBackend(
            name="vectorized",
            render_pfs=render_pfs_vectorized,
            render_irss=render_irss_vectorized,
            description="instance-batched depth-slab engine (pixel-exact, fast)",
        )
    )

    from repro.render.approx import render_irss_approx, render_pfs_approx

    register_backend(
        RasterizerBackend(
            name="approx",
            render_pfs=render_pfs_approx,
            render_irss=render_irss_approx,
            description=(
                "contribution-aware culling + aggressive early termination "
                "(measured-quality approximate mode)"
            ),
        )
    )


_register_builtin_backends()
