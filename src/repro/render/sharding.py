"""Intra-frame tile sharding: one frame's tile grid across N workers.

Tile-based rasterization is pixel-disjoint by construction — every
pixel belongs to exactly one 16x16 tile, and a tile's blending reads
and writes only its own pixels.  That makes the tile grid an exact
parallel axis *within* a single frame: split the non-empty tiles into
N shards, render each shard independently (any registered backend),
and stitch the per-tile pixel regions and workload counters back
together.  The stitched result is **bit-identical** to the unsharded
render at any shard count (property-tested in
``tests/render/test_sharding.py``), because no floating-point
operation crosses a tile boundary.

Shards are contiguous tile-id ranges balanced by instance count
(:func:`shard_tile_ranges`), so one heavy frame splits into
near-equal slices of blending work instead of equal slices of screen.

Two execution modes:

* ``processes=False`` (default) renders the shards sequentially in
  the calling process — the deterministic mode the serving stack uses
  (its latency benefit comes from the GBU timing model treating the
  shards as parallel tile engines, see
  :meth:`repro.core.gbu.GBUDevice.render`);
* ``processes=True`` fans the shards out over a process pool, so one
  heavy frame can use the whole machine instead of one worker.  The
  pool is shared per (process, shard count) and reused across frames;
  ``benchmarks/bench_approx_quality.py`` records the wall-clock
  scaling curve.

The approx backend composes: its per-tile culling is tile-local, so
sharded approx renders are also shard-count-invariant.  The active
:class:`~repro.render.approx.ApproxPolicy` is shipped to pool workers
explicitly (module globals do not cross process boundaries).
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from dataclasses import fields

import numpy as np

from repro.config import DEFAULT_SETTINGS, RenderSettings
from repro.core.irss import IRSSRenderResult, IRSSStats, TileRowWorkload
from repro.core.transform import IRSSTransform
from repro.errors import ValidationError
from repro.gaussians.projection import Projected2D
from repro.gaussians.rasterizer import RenderResult, RenderStats
from repro.gaussians.sorting import RenderLists, build_render_lists


def shard_tile_ranges(lists: RenderLists, n_shards: int) -> list[np.ndarray]:
    """Partition the tile ids into ``n_shards`` contiguous ranges.

    Ranges are balanced by cumulative instance count (empty tiles are
    free), deterministic, and jointly cover every tile exactly once.
    Shards may come back empty when the frame has fewer busy tiles
    than shards.
    """
    if n_shards < 1:
        raise ValidationError("shard count must be at least 1")
    counts = lists.instances_per_tile().astype(np.float64)
    n_tiles = counts.size
    if n_shards == 1:
        return [np.arange(n_tiles, dtype=np.int64)]
    # Split points at equal quantiles of cumulative instance mass; the
    # searchsorted boundaries are monotone, so ranges stay contiguous.
    csum = np.cumsum(counts)
    total = csum[-1] if n_tiles else 0.0
    if total == 0.0:
        bounds = np.linspace(0, n_tiles, n_shards + 1).astype(np.int64)
    else:
        targets = total * np.arange(1, n_shards) / n_shards
        cuts = np.searchsorted(csum, targets, side="left") + 1
        bounds = np.concatenate([[0], np.clip(cuts, 0, n_tiles), [n_tiles]])
        bounds = np.maximum.accumulate(bounds)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
        for i in range(n_shards)
    ]


def sub_render_lists(lists: RenderLists, tile_ids: np.ndarray) -> RenderLists:
    """Render lists restricted to ``tile_ids`` (others emptied)."""
    keep = set(int(t) for t in tile_ids)
    empty = np.zeros(0, dtype=np.int64)
    per_tile = [
        members if t in keep else empty
        for t, members in enumerate(lists.per_tile)
    ]
    return RenderLists(grid=lists.grid, per_tile=per_tile)


def _sum_stats(cls, shard_stats: list, skip: tuple[str, ...] = ()):
    merged = cls()
    for name in (f.name for f in fields(cls)):
        if name in skip:
            continue
        setattr(merged, name, sum(getattr(s, name) for s in shard_stats))
    return merged


def _stitch_pixels(grid, shard_tiles, shard_images, out) -> None:
    """Copy every shard's tile regions into ``out`` (disjoint writes)."""
    for tiles, img in zip(shard_tiles, shard_images):
        for t in tiles:
            x0, y0, x1, y1 = grid.tile_bounds(int(t))
            out[y0:y1, x0:x1] = img[y0:y1, x0:x1]


def merge_pfs_shards(
    grid,
    shard_tiles: list[np.ndarray],
    results: list[RenderResult],
) -> RenderResult:
    """Stitch per-shard PFS results into one frame (exact)."""
    height, width = results[0].image.shape[:2]
    image = np.zeros_like(results[0].image)
    transmittance = np.ones_like(results[0].transmittance)
    n_contrib = np.zeros_like(results[0].n_contrib)
    for arrays, out in (
        ([r.image for r in results], image),
        ([r.transmittance for r in results], transmittance),
        ([r.n_contrib for r in results], n_contrib),
    ):
        _stitch_pixels(grid, shard_tiles, arrays, out)
    stats = _sum_stats(RenderStats, [r.stats for r in results], skip=("pixels",))
    stats.pixels = width * height
    return RenderResult(
        image=image, transmittance=transmittance, n_contrib=n_contrib, stats=stats
    )


def merge_irss_shards(
    grid,
    shard_tiles: list[np.ndarray],
    results: list[IRSSRenderResult],
) -> IRSSRenderResult:
    """Stitch per-shard IRSS results into one frame (exact)."""
    image = np.zeros_like(results[0].image)
    transmittance = np.ones_like(results[0].transmittance)
    n_contrib = np.zeros_like(results[0].n_contrib)
    for arrays, out in (
        ([r.image for r in results], image),
        ([r.transmittance for r in results], transmittance),
        ([r.n_contrib for r in results], n_contrib),
    ):
        _stitch_pixels(grid, shard_tiles, arrays, out)
    stats = _sum_stats(IRSSStats, [r.stats for r in results])
    workload = TileRowWorkload(
        **{
            f.name: sum(getattr(r.workload, f.name) for r in results)
            for f in fields(TileRowWorkload)
        }
    )
    return IRSSRenderResult(
        image=image,
        transmittance=transmittance,
        n_contrib=n_contrib,
        stats=stats,
        workload=workload,
    )


def _render_shard(
    mode: str,
    projected: Projected2D,
    sub: RenderLists,
    settings: RenderSettings,
    transform: IRSSTransform | None,
    fp16: bool,
    backend: str | None,
    approx_policy,
):
    """Render one shard (top-level so process pools can pickle it)."""
    from repro.render.approx import set_approx_policy
    from repro.render.backends import resolve_backend

    previous = (
        set_approx_policy(approx_policy) if approx_policy is not None else None
    )
    try:
        engine = resolve_backend(backend)
        if mode == "pfs":
            return engine.render_pfs(projected, lists=sub, settings=settings)
        return engine.render_irss(
            projected, lists=sub, settings=settings,
            transform=transform, fp16=fp16,
        )
    finally:
        # Restore (not clear) the prior override: the in-process mode
        # runs in the caller's interpreter, where clearing would erase
        # the caller's own `use_approx_policy` scope for every render
        # after the first sharded frame.
        if approx_policy is not None:
            set_approx_policy(previous)


_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(n_workers: int) -> ProcessPoolExecutor:
    """A per-process pool reused across frames (spawn cost amortized)."""
    pool = _POOLS.get(n_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=n_workers)
        _POOLS[n_workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


def _run_shards(
    mode: str,
    projected: Projected2D,
    lists: RenderLists,
    settings: RenderSettings,
    transform: IRSSTransform | None,
    fp16: bool,
    n_shards: int,
    backend: str | None,
    processes: bool,
) -> tuple[list[np.ndarray], list]:
    from repro.render.approx import _policy_override

    shard_tiles = shard_tile_ranges(lists, n_shards)
    subs = [sub_render_lists(lists, tiles) for tiles in shard_tiles]
    args = [
        (mode, projected, sub, settings, transform, fp16, backend,
         _policy_override)
        for sub in subs
    ]
    if processes:
        futures = [
            _shared_pool(n_shards).submit(_render_shard, *a) for a in args
        ]
        results = [f.result() for f in futures]
    else:
        results = [_render_shard(*a) for a in args]
    return shard_tiles, results


def render_pfs_sharded(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    n_shards: int = 2,
    backend: str | None = None,
    processes: bool = False,
) -> RenderResult:
    """PFS render split over ``n_shards`` tile shards, stitched exactly."""
    if lists is None:
        lists = build_render_lists(projected)
    if n_shards == 1:
        return _render_shard(
            "pfs", projected, lists, settings, None, False, backend, None
        )
    shard_tiles, results = _run_shards(
        "pfs", projected, lists, settings, None, False,
        n_shards, backend, processes,
    )
    return merge_pfs_shards(lists.grid, shard_tiles, results)


def render_irss_sharded(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    transform: IRSSTransform | None = None,
    fp16: bool = False,
    n_shards: int = 2,
    backend: str | None = None,
    processes: bool = False,
) -> IRSSRenderResult:
    """IRSS render split over ``n_shards`` tile shards, stitched exactly."""
    if lists is None:
        lists = build_render_lists(projected)
    if n_shards == 1:
        return _render_shard(
            "irss", projected, lists, settings, transform, fp16, backend, None
        )
    shard_tiles, results = _run_shards(
        "irss", projected, lists, settings, transform, fp16,
        n_shards, backend, processes,
    )
    return merge_irss_shards(lists.grid, shard_tiles, results)


class ShardedRenderer:
    """Render single frames across N tile shards.

    Parameters
    ----------
    n_shards:
        Number of tile shards per frame (1 = plain dispatch).
    backend:
        Backend name each shard renders with (``None`` = process
        default); any registered backend works, including ``approx``.
    processes:
        Fan shards out over a shared process pool (wall-clock
        parallelism) instead of rendering them sequentially.
    """

    def __init__(
        self,
        n_shards: int,
        backend: str | None = None,
        processes: bool = False,
    ) -> None:
        if n_shards < 1:
            raise ValidationError("shard count must be at least 1")
        self.n_shards = int(n_shards)
        self.backend = backend
        self.processes = processes

    def render_pfs(
        self,
        projected: Projected2D,
        lists: RenderLists | None = None,
        settings: RenderSettings = DEFAULT_SETTINGS,
    ) -> RenderResult:
        return render_pfs_sharded(
            projected, lists, settings=settings,
            n_shards=self.n_shards, backend=self.backend,
            processes=self.processes,
        )

    def render_irss(
        self,
        projected: Projected2D,
        lists: RenderLists | None = None,
        settings: RenderSettings = DEFAULT_SETTINGS,
        transform: IRSSTransform | None = None,
        fp16: bool = False,
    ) -> IRSSRenderResult:
        return render_irss_sharded(
            projected, lists, settings=settings, transform=transform,
            fp16=fp16, n_shards=self.n_shards, backend=self.backend,
            processes=self.processes,
        )
