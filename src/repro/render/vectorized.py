"""Instance-batched vectorized rasterizer backends (PFS and IRSS).

The reference rasterizers iterate Python-level over every
(tile, Gaussian) instance, which caps the whole repository at toy
resolutions.  This module restructures the same dataflow for
throughput — the GauRast/FLICKER observation that the win comes from
batching work *across* instances rather than iterating them:

* The per-tile member lists are flattened into padded instance
  matrices, grouped by clipped tile shape (interior tiles batch
  together; edge tiles batch per shape) and sorted by descending
  instance count so padding stays negligible.
* **Depth-slab batching:** whole depth slabs of instances are
  evaluated at once in ``(tile, row, col, depth)`` bricks — depth
  last, so the sequential-in-depth operations below run on contiguous
  memory.  Per-pixel front-to-back blending order is preserved by
  computing the transmittance recurrence
  ``T_d = T_{d-1} * (1 - alpha_d)`` as an exclusive prefix product
  (``np.cumprod`` along the depth axis, which multiplies in exactly
  the reference order), and per-pixel early termination is reproduced
  by *freezing* the transmittance at its first ``eps`` crossing — the
  unfrozen tail of the product is only ever read where the blend mask
  is already false, so the output is unchanged.
* Eq. 7 conics are evaluated for whole bricks at a time; the
  exp/alpha path runs only on the ~10% of fragments that pass the
  threshold test (the reference multiplies the rest by 0 or 1, so
  they never observe alpha).
* The per-pixel color accumulation — the one genuinely sequential
  float reduction — is performed with ``np.einsum`` (which
  accumulates the contraction axis in order) or, for continuation
  chunks and the fp16 datapath, with unbuffered ``np.add.at`` in
  depth order.  Both reproduce the reference add sequence exactly.

Both backends are pixel-exact against their references: bit-identical
images, transmittance, contributor counts, and identical
``RenderStats`` / ``IRSSStats`` / ``TileRowWorkload`` counters
(including early-termination semantics and the fp16 Row-PE datapath).
This is property-tested in ``tests/render/test_backend_parity.py``.

Both renderers also take a ``dtype`` parameter (default ``float64``,
the exact datapath).  ``float32`` halves the brick bandwidth — the
sweeps above are memory-bound — at ~1e-7 relative error; the approx
backend uses it, where that error is negligible against its culling
error.  The exactness guarantees above apply to the default dtype
only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_SETTINGS, FLOPS, RenderSettings
from repro.core.irss import (
    IRSSRenderResult,
    IRSSStats,
    TileRowWorkload,
    _Fp16Features,
)
from repro.core.transform import IRSSTransform, compute_transforms
from repro.errors import RenderError
from repro.gaussians.projection import Projected2D
from repro.gaussians.rasterizer import RenderResult, RenderStats
from repro.gaussians.sorting import RenderLists, build_render_lists

#: Upper bound on the number of (tile, pixel, instance) fragments
#: materialized per chunk (float64 working arrays are ~8x this in
#: bytes).  Sized so a chunk's working set stays cache-resident — the
#: brick sweeps below are bandwidth-bound, and small chunks beat big
#: ones by ~2.5x — while still amortizing per-call overhead.  Tiles and
#: depths are chunked to stay under it, so arbitrarily large scenes
#: render in bounded memory.
CHUNK_FRAGMENT_BUDGET = 1 << 16


@dataclass
class _TileBatch:
    """Non-empty tiles sharing one clipped shape.

    Tiles are ordered by descending member count so that chunks of
    consecutive tiles have near-uniform depth (minimal padding).

    Attributes
    ----------
    rows, cols:
        Clipped tile shape in pixels.
    tile_ids:
        (T,) tile indices into the grid.
    member_lists:
        Per tile (batch order), the depth-ordered Gaussian indices.
        Padded matrices are materialized per chunk (bounded memory),
        not per batch — see :meth:`padded_members`.
    lengths:
        (T,) member counts (non-increasing).
    x0, y0:
        (T,) pixel origin of each tile.
    """

    rows: int
    cols: int
    tile_ids: np.ndarray
    member_lists: list[np.ndarray]
    lengths: np.ndarray
    x0: np.ndarray
    y0: np.ndarray

    def padded_members(self, t0: int, t1: int) -> np.ndarray:
        """(t1-t0, depth) member matrix for a tile chunk, -1 padded."""
        depth = int(self.lengths[t0])
        members = np.full((t1 - t0, depth), -1, dtype=np.int64)
        for row, tile in enumerate(range(t0, t1)):
            tile_members = self.member_lists[tile]
            members[row, : len(tile_members)] = tile_members
        return members


def build_tile_batches(lists: RenderLists) -> list[_TileBatch]:
    """Group the non-empty tiles of a frame into shape-uniform batches."""
    grid = lists.grid
    counts = lists.instances_per_tile()
    groups: dict[tuple[int, int], list[int]] = {}
    for tile_id in np.nonzero(counts > 0)[0]:
        groups.setdefault(grid.tile_shape(int(tile_id)), []).append(int(tile_id))

    batches: list[_TileBatch] = []
    for (rows, cols), ids_list in groups.items():
        ids = np.asarray(ids_list, dtype=np.int64)
        lengths = counts[ids]
        order = np.argsort(-lengths, kind="stable")
        ids = ids[order]
        lengths = lengths[order]
        ty, tx = np.divmod(ids, grid.tiles_x)
        batches.append(
            _TileBatch(
                rows=rows,
                cols=cols,
                tile_ids=ids,
                member_lists=[lists.per_tile[int(t)] for t in ids],
                lengths=lengths,
                x0=tx * grid.tile,
                y0=ty * grid.tile,
            )
        )
    return batches


def _tile_chunks(batch: _TileBatch, budget: int) -> list[tuple[int, int]]:
    """Split a batch into [t0, t1) tile ranges bounded by the budget."""
    pixels = batch.rows * batch.cols
    chunks: list[tuple[int, int]] = []
    t0 = 0
    n = batch.tile_ids.size
    while t0 < n:
        depth = max(int(batch.lengths[t0]), 1)
        span = max(budget // (depth * pixels), 1)
        t1 = min(n, t0 + span)
        chunks.append((t0, t1))
        t0 = t1
    return chunks


def _prefix_products(t_in: np.ndarray, la: np.ndarray) -> np.ndarray:
    """Running transmittance products, in place.

    ``la`` is a ``(..., D+1)`` buffer whose slot 0 is free and whose
    slots ``1..D`` hold each instance's ``(1 - alpha)`` factors (1.0
    where the instance does not touch the pixel).  On return the
    buffer holds the inclusive products ``[t_in, t_in*la_1, ...]`` —
    ``np.multiply.accumulate`` multiplies left to right, the exact
    order of the reference blending loop.
    """
    la[..., 0] = t_in
    return np.multiply.accumulate(la, axis=-1, out=la)


def _frozen_transmittance(
    t_in: np.ndarray, prod: np.ndarray, live: np.ndarray, eps: float
) -> np.ndarray:
    """Transmittance after a chunk, with early termination frozen.

    ``prod[..., d]`` is the running (unfrozen) product after instance
    ``d`` and ``live[...]`` counts its entries above ``eps``.  The
    physical recurrence stops updating a pixel once it crosses
    ``eps``; the products are monotone non-increasing, so the entries
    above ``eps`` form a prefix and the value at the *first* crossing
    sits at index ``live`` (or the final product if it never crossed,
    or the incoming value if the pixel was already terminated).
    """
    depth = prod.shape[-1]
    idx = np.minimum(live, depth - 1)
    frozen = np.take_along_axis(prod, idx[..., None], axis=-1)[..., 0]
    return np.where(t_in <= eps, t_in, frozen)


def _blend_state(
    tile_t: np.ndarray,
    frags: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    alpha: np.ndarray,
    d_span: int,
    eps: float,
    acc_dtype: type = np.float64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Transmittance state for one depth chunk of candidate fragments.

    Scatters the fragments' ``(1 - alpha)`` factors (cast to the
    accumulator dtype, matching the reference's per-step cast) into a
    ones brick, runs the in-order prefix product, and derives the
    activity mask.  Returns ``(prod, active, live)`` where ``prod``
    has ``d_span + 1`` slots (slot 0 = incoming transmittance),
    ``active[..., d]`` tests the pre-instance transmittance against
    ``eps``, and ``live`` counts each pixel's post-instance products
    above ``eps`` (the frozen-crossing index).
    """
    ti, ri, ci, di = frags
    la = np.ones(tile_t.shape + (d_span + 1,), dtype=acc_dtype)
    la[ti, ri, ci, di + 1] = (1.0 - alpha).astype(acc_dtype)
    prod = _prefix_products(tile_t, la)
    act_all = prod > eps
    return prod, act_all[..., :-1], act_all[..., 1:].sum(axis=-1)


def _blend_chunk(
    tile_rgb: np.ndarray,
    tile_n: np.ndarray,
    tile_t: np.ndarray,
    prod: np.ndarray,
    live: np.ndarray,
    frags: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    blend_at: np.ndarray,
    alpha: np.ndarray,
    colors: np.ndarray,
    first_chunk: bool,
    fp16: bool,
    eps: float,
) -> tuple[np.ndarray, int]:
    """Blend one depth chunk into the framebuffer tiles, in place.

    This is the bit-exactness-critical accumulation shared by both
    dataflows.  The per-pixel color sum is the one order-sensitive
    float reduction: the first depth chunk uses ``np.einsum`` (the
    accumulator starts at the gathered zeros and einsum sums the
    contraction axis in order — the exact reference sequence);
    continuation chunks and the fp16 datapath use unbuffered
    ``np.add.at``, which preserves the per-pixel depth order exactly.
    Returns the frozen next-chunk transmittance and the number of
    blended fragments.
    """
    ti, ri, ci, di = frags
    rows, cols = tile_n.shape[1], tile_n.shape[2]
    if fp16:
        t_vals = prod[ti, ri, ci, di].astype(np.float64)
        w16 = np.where(blend_at, t_vals * alpha, 0.0).astype(np.float16)
        contrib = (
            w16[:, None].astype(np.float64) * colors[ti, di]
        ).astype(np.float16)
        np.add.at(tile_rgb, (ti, ri, ci), contrib)
    else:
        weight = np.zeros(tile_t.shape + (prod.shape[-1] - 1,), dtype=prod.dtype)
        weight[ti, ri, ci, di] = np.where(
            blend_at, prod[ti, ri, ci, di] * alpha, 0.0
        )
        if first_chunk:
            tile_rgb += np.einsum(
                "trcd,tdk->trck", weight, colors, optimize=False
            )
        else:
            wi = np.nonzero(weight)
            np.add.at(
                tile_rgb,
                (wi[0], wi[1], wi[2]),
                weight[wi][:, None] * colors[wi[0], wi[3]],
            )
    key = (ti * rows + ri) * cols + ci
    tile_n += (
        np.bincount(key[blend_at], minlength=tile_n.size)
        .reshape(tile_n.shape)
        .astype(np.int32)
    )
    next_t = _frozen_transmittance(tile_t, prod[..., 1:], live, eps)
    return next_t, int(np.count_nonzero(blend_at))


def _sparse_state(
    tile_t: np.ndarray,
    frags: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    alpha: np.ndarray,
    d_span: int,
    eps: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-fragment transmittance state without the dense brick.

    The reduced-precision (approx) counterpart of :func:`_blend_state`:
    fragments arrive from ``np.nonzero`` in ``(tile, row, col, depth)``
    lexicographic order, so each pixel's fragments form one contiguous
    run in depth order.  Per-pixel exclusive prefix products are then a
    segmented log-cumsum over the fragment array — work proportional to
    the fragments that exist instead of the whole
    ``(tile, row, col, depth)`` brick.  The small (log/exp) rounding is
    why this path is reserved for the approx datapath.

    Returns ``(t_before, active, key, n_active, t_out, row_limit)``:
    per-fragment pre-instance transmittance and activity, the flat
    pixel key per fragment, the per-``(tile, depth)`` count of
    still-active pixels (the dense path's ``active.sum(axis=(1, 2))``),
    the frozen post-chunk transmittance, and per ``(tile, row)`` the
    last depth index at which any of its pixels was active (-1 if
    none; drives the IRSS row bookkeeping).
    """
    ti, ri, ci, di = frags
    n_tiles, rows, cols = tile_t.shape
    npix = tile_t.size
    key = (ti * rows + ri) * cols + ci
    t_in = tile_t.reshape(-1)
    la = 1.0 - alpha  # alpha is capped at alpha_max < 1, so log is safe
    # float64 keeps the cross-segment rounding of the shared cumsum far
    # below the output's float32 quantum, so sharded approx renders stay
    # equal to unsharded ones to within last-ulp noise.
    logs = np.log(la, dtype=np.float64)
    excl = np.cumsum(logs)
    excl -= logs  # exclusive prefix: product of earlier fragments
    n_frags = key.size
    first = np.empty(n_frags, dtype=bool)
    last = np.empty(n_frags, dtype=bool)
    if n_frags:
        first[0] = True
        first[1:] = key[1:] != key[:-1]
        last[-1] = True
        last[:-1] = first[1:]
        seg_id = np.cumsum(first) - 1
        base = excl[first]
        t_before = t_in[key] * np.exp(excl - base[seg_id])
    else:
        t_before = excl  # empty
    t_after = t_before * la
    active = t_before > eps
    crossing = active & (t_after <= eps)  # at most one per pixel

    # Per-pixel frozen transmittance and last-active depth index.
    entered = t_in > eps
    limit = np.where(entered, d_span - 1, -1)
    t_out = t_in.copy()
    if n_frags:
        tail_key = key[last]
        t_out[tail_key] = np.where(
            entered[tail_key], t_after[last], t_in[tail_key]
        )
        t_out[key[crossing]] = t_after[crossing]
        limit[key[crossing]] = di[crossing]

    # active-pixel counts per (tile, depth): a histogram of last-active
    # depths, suffix-summed (limit >= d  <=>  active at depth d).
    tile_of_pix = np.repeat(np.arange(n_tiles, dtype=np.int64), rows * cols)
    hist = np.bincount(
        tile_of_pix * (d_span + 1) + limit + 1,
        minlength=n_tiles * (d_span + 1),
    ).reshape(n_tiles, d_span + 1)
    n_active = np.cumsum(hist[:, ::-1], axis=1)[:, ::-1][:, 1:]

    row_limit = limit.reshape(n_tiles, rows, cols).max(axis=2)
    return (
        t_before,
        active,
        key,
        n_active,
        t_out.reshape(n_tiles, rows, cols),
        row_limit,
    )


def _sparse_blend(
    tile_rgb: np.ndarray,
    tile_n: np.ndarray,
    key: np.ndarray,
    blend_at: np.ndarray,
    t_before: np.ndarray,
    alpha: np.ndarray,
    frag_colors: np.ndarray,
) -> int:
    """Scatter-blend active fragments into the framebuffer tiles.

    The approx counterpart of :func:`_blend_chunk`: one ``np.bincount``
    per channel over the fragments only.  ``np.bincount`` adds weights
    in scan order, so each pixel still accumulates front to back.
    Returns the number of blended fragments.
    """
    weight = np.where(blend_at, t_before * alpha, 0.0)
    npix = tile_n.size
    flat_rgb = tile_rgb.reshape(npix, 3)
    for ch in range(3):
        flat_rgb[:, ch] += np.bincount(
            key, weights=weight * frag_colors[:, ch], minlength=npix
        ).astype(flat_rgb.dtype)
    tile_n += (
        np.bincount(key[blend_at], minlength=npix)
        .reshape(tile_n.shape)
        .astype(np.int32)
    )
    return int(np.count_nonzero(blend_at))


# ----------------------------------------------------------------------
# PFS (reference dataflow), vectorized
# ----------------------------------------------------------------------
def render_pfs_vectorized(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    dtype: type = np.float64,
) -> RenderResult:
    """Vectorized PFS rasterizer — pixel-exact vs. ``render_reference``.

    ``dtype`` selects the brick / accumulator precision; the pixel-exact
    guarantee holds for the default ``float64`` only.
    """
    if lists is None:
        lists = build_render_lists(projected)
    grid = lists.grid
    width, height = projected.image_size
    if (grid.width, grid.height) != (width, height):
        raise RenderError("tile grid does not match projection resolution")

    image = np.zeros((height, width, 3), dtype=dtype)
    transmittance = np.ones((height, width), dtype=dtype)
    n_contrib = np.zeros((height, width), dtype=np.int32)
    stats = RenderStats(pixels=width * height, instances=lists.n_instances)

    eps = settings.transmittance_eps
    conics = projected.conics.astype(dtype, copy=False)
    means2d = projected.means2d.astype(dtype, copy=False)
    opacities = projected.opacities.astype(dtype, copy=False)
    thresholds = projected.thresholds.astype(dtype, copy=False)
    colors = projected.colors.astype(dtype, copy=False)

    for batch in build_tile_batches(lists):
        rows, cols = batch.rows, batch.cols
        for t0, t1 in _tile_chunks(batch, CHUNK_FRAGMENT_BUDGET):
            x0 = batch.x0[t0:t1]
            y0 = batch.y0[t0:t1]
            depth = int(batch.lengths[t0])
            n_tiles = t1 - t0
            # Pixel centers at half-integer coordinates (exact in fp64).
            px = (
                x0[:, None, None, None]
                + np.arange(cols, dtype=np.int64)[None, None, :, None]
            ).astype(dtype) + dtype(0.5)  # (T, 1, cols, 1)
            py = (
                y0[:, None, None, None]
                + np.arange(rows, dtype=np.int64)[None, :, None, None]
            ).astype(dtype) + dtype(0.5)  # (T, rows, 1, 1)
            yy = y0[:, None, None] + np.arange(rows)[None, :, None]
            xx = x0[:, None, None] + np.arange(cols)[None, None, :]
            tile_t = transmittance[yy, xx]  # (T, rows, cols)
            tile_rgb = image[yy, xx]
            tile_n = n_contrib[yy, xx]
            members = batch.padded_members(t0, t1)

            d_step = max(CHUNK_FRAGMENT_BUDGET // (n_tiles * rows * cols), 1)
            for d0 in range(0, depth, d_step):
                d1 = min(depth, d0 + d_step)
                m = members[:, d0:d1]
                valid = m >= 0
                g = np.where(valid, m, 0)

                # Depth-last bricks: (T, rows, cols, D).  The quadratic
                # is composed in-place but with the reference expression's
                # exact association: (a*dx)*dx + ((2b)*dx)*dy + (c*dy)*dy
                # (the += reorder below only swaps commutative adds).
                dx = px - means2d[g, 0][:, None, None, :]  # (T, 1, cols, D)
                dy = py - means2d[g, 1][:, None, None, :]  # (T, rows, 1, D)
                a = conics[g, 0][:, None, None, :]
                b = conics[g, 1][:, None, None, :]
                c = conics[g, 2][:, None, None, :]
                power = (2.0 * b * dx) * dy  # the only full-brick product
                power += a * dx * dx
                power += c * dy * dy

                th = np.where(valid, thresholds[g], -np.inf)
                cmask = power <= th[:, None, None, :]

                # Alpha only matters at threshold-passing fragments (the
                # reference multiplies by 0 / 1 elsewhere), so evaluate
                # the exp on the masked ~10% of fragments only.
                frags = np.nonzero(cmask)
                ti, ri, ci, di = frags
                alpha = opacities[g[ti, di]] * np.exp(-0.5 * power[ti, ri, ci, di])
                alpha = np.minimum(alpha, settings.alpha_max)

                if dtype is np.float64:
                    prod, active, live = _blend_state(
                        tile_t, frags, alpha, d1 - d0, eps, dtype
                    )
                    n_active = active.sum(axis=(1, 2))  # (T, D)
                    blend_at = active[ti, ri, ci, di]
                else:
                    t_before, blend_at, pkey, n_active, t_out, _ = (
                        _sparse_state(tile_t, frags, alpha, d1 - d0, eps)
                    )
                n_active *= valid
                shaded = int(n_active.sum())
                stats.instances_processed += int(np.count_nonzero(n_active))
                stats.fragments_shaded += shaded
                stats.eq7_flops += shaded * FLOPS.pfs_flops_per_fragment

                if dtype is np.float64:
                    tile_t, blended = _blend_chunk(
                        tile_rgb, tile_n, tile_t, prod, live, frags, blend_at,
                        alpha, colors[g], first_chunk=d0 == 0, fp16=False,
                        eps=eps,
                    )
                else:
                    blended = _sparse_blend(
                        tile_rgb, tile_n, pkey, blend_at, t_before, alpha,
                        colors[g[ti, di]],
                    )
                    tile_t = t_out
                stats.fragments_significant += blended
                # Whole-chunk early termination: once every pixel of the
                # tile chunk has crossed eps, the remaining depth chunks
                # blend nothing and touch no counter (every mask above is
                # derived from `tile_t > eps`), so skipping them is exact.
                if not (tile_t > eps).any():
                    break

            transmittance[yy, xx] = tile_t
            image[yy, xx] = tile_rgb
            n_contrib[yy, xx] = tile_n

    background = settings.background_array()
    image = image.astype(np.float64, copy=False)
    transmittance = transmittance.astype(np.float64, copy=False)
    image += transmittance[:, :, None] * background[None, None, :]
    return RenderResult(
        image=image, transmittance=transmittance, n_contrib=n_contrib, stats=stats
    )


# ----------------------------------------------------------------------
# IRSS dataflow, vectorized
# ----------------------------------------------------------------------
class _CastFeatures:
    """Per-Gaussian feature record cast once to the compute dtype.

    The reduced-precision (non-fp16) datapath: same attribute layout as
    ``_Fp16Features`` so the gather code below is shared.
    """

    def __init__(
        self, projected: Projected2D, transform: IRSSTransform, dtype: type
    ) -> None:
        self.u00 = transform.u00.astype(dtype)
        self.u01 = transform.u01.astype(dtype)
        self.u11 = transform.u11.astype(dtype)
        self.thresholds = transform.thresholds.astype(dtype)
        self.colors = projected.colors.astype(dtype)
        self.opacities = projected.opacities.astype(dtype)
        self.means2d = transform.means2d.astype(dtype)


def render_irss_vectorized(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    transform: IRSSTransform | None = None,
    fp16: bool = False,
    dtype: type = np.float64,
) -> IRSSRenderResult:
    """Vectorized IRSS rasterizer — pixel-exact vs. ``render_irss``.

    ``dtype`` selects the brick / accumulator precision; the pixel-exact
    guarantee holds for the default ``float64`` only.  ``fp16`` (the
    Row-PE datapath) takes precedence over ``dtype``.
    """
    if lists is None:
        lists = build_render_lists(projected)
    if transform is None:
        transform = compute_transforms(
            projected.conics, projected.means2d, projected.thresholds
        )
    grid = lists.grid
    width, height = projected.image_size
    if (grid.width, grid.height) != (width, height):
        raise RenderError("tile grid does not match projection resolution")

    acc_dtype = np.float16 if fp16 else dtype
    image = np.zeros((height, width, 3), dtype=acc_dtype)
    transmittance = np.ones((height, width), dtype=acc_dtype)
    n_contrib = np.zeros((height, width), dtype=np.int32)
    stats = IRSSStats(instances=lists.n_instances)

    tile = grid.tile
    workload = TileRowWorkload(
        row_fragments=np.zeros((grid.n_tiles, tile), dtype=np.int64),
        row_segments=np.zeros((grid.n_tiles, tile), dtype=np.int64),
        instance_max_run=np.zeros(grid.n_tiles, dtype=np.int64),
        instance_setup=np.zeros(grid.n_tiles, dtype=np.int64),
        binary_search_steps=np.zeros(grid.n_tiles, dtype=np.int64),
        instance_search=np.zeros(grid.n_tiles, dtype=np.int64),
    )

    if fp16:
        features = _Fp16Features(projected, transform)
    elif dtype is not np.float64:
        features = _CastFeatures(projected, transform, dtype)
    else:
        features = None
    geo_dtype = np.float64 if fp16 else dtype
    eps = settings.transmittance_eps

    for batch in build_tile_batches(lists):
        rows, cols = batch.rows, batch.cols
        col_idx = np.arange(cols, dtype=geo_dtype)
        search_latency = max(int(np.ceil(np.log2(max(cols, 2)))), 1)

        for t0, t1 in _tile_chunks(batch, CHUNK_FRAGMENT_BUDGET):
            x0 = batch.x0[t0:t1]
            y0 = batch.y0[t0:t1]
            tids = batch.tile_ids[t0:t1]
            depth = int(batch.lengths[t0])
            n_tiles = t1 - t0
            row_pix_y = (
                y0[:, None] + np.arange(rows, dtype=np.int64)[None, :]
            ).astype(geo_dtype) + geo_dtype(0.5)  # (T, rows)
            yy = y0[:, None, None] + np.arange(rows)[None, :, None]
            xx = x0[:, None, None] + np.arange(cols)[None, None, :]
            tile_t = transmittance[yy, xx]
            tile_rgb = image[yy, xx]
            tile_n = n_contrib[yy, xx]
            local_rows = np.arange(rows, dtype=np.int64)
            members = batch.padded_members(t0, t1)

            d_step = max(CHUNK_FRAGMENT_BUDGET // (n_tiles * rows * cols), 1)
            for d0 in range(0, depth, d_step):
                d1 = min(depth, d0 + d_step)
                m = members[:, d0:d1]
                valid = m >= 0
                g = np.where(valid, m, 0)

                if features is not None:
                    u00 = features.u00[g]
                    u01 = features.u01[g]
                    u11 = features.u11[g]
                    th = features.thresholds[g]
                    mean = features.means2d[g]
                    color = features.colors[g]
                    opacity = features.opacities[g]
                else:
                    u00 = transform.u00[g]
                    u01 = transform.u01[g]
                    u11 = transform.u11[g]
                    th = transform.thresholds[g]
                    mean = transform.means2d[g]
                    color = projected.colors[g]
                    opacity = projected.opacities[g]
                th = np.where(valid, th, -np.inf)

                # Per-row transformed coordinates of the leftmost pixel
                # center (all geometry is transmittance-independent).
                # Row-level arrays are (T, rows, D); depth stays last.
                dx_pix = (
                    x0[:, None].astype(geo_dtype) + geo_dtype(0.5) - mean[:, :, 0]
                )  # (T, D)
                dy_pix = row_pix_y[:, :, None] - mean[:, :, 1][:, None, :]
                x_start = (
                    u00[:, None, :] * dx_pix[:, None, :] + u01[:, None, :] * dy_pix
                )
                y_pp = u11[:, None, :] * dy_pix
                y_sq = y_pp * y_pp

                # Step 1: whole-row rejection.
                half_sq = th[:, None, :] - y_sq
                intersects = half_sq >= 0.0
                half_w = np.sqrt(np.maximum(half_sq, 0.0))
                with np.errstate(invalid="ignore"):
                    c0_raw = np.ceil((-half_w - x_start) / u00[:, None, :])
                    c1_raw = np.floor((half_w - x_start) / u00[:, None, :])
                in_tile = intersects & (c0_raw <= cols - 1) & (c1_raw >= 0)
                c0 = np.clip(np.where(in_tile, c0_raw, 0), 0, cols - 1).astype(
                    np.int64
                )
                c1 = np.clip(np.where(in_tile, c1_raw, -1), -1, cols - 1).astype(
                    np.int64
                )
                nonempty = in_tile & (c1 >= c0) & valid[:, None, :]
                outside_left = intersects & ~nonempty & (x_start > 0.0)
                skipped_empty = intersects & ~nonempty & ~outside_left
                needs_search = (
                    intersects
                    & (x_start * x_start + y_sq > th[:, None, :])
                    & ~outside_left
                )

                # Shade: E = x''^2 + y''^2 with x'' = x_start + c * dx''.
                xpp = (
                    x_start[:, :, None, :]
                    + col_idx[None, None, :, None] * u00[:, None, None, :]
                )
                if fp16:
                    xpp = xpp.astype(np.float16).astype(np.float64)
                # power = xpp^2 + y_sq, squaring the brick in place.
                power = np.multiply(xpp, xpp, out=xpp)
                power += y_sq[:, :, None, :]
                cmask = (
                    nonempty[:, :, None, :]
                    & (col_idx[None, None, :, None] >= c0[:, :, None, :])
                    & (col_idx[None, None, :, None] <= c1[:, :, None, :])
                    & (power <= th[:, None, None, :])
                )

                frags = np.nonzero(cmask)
                ti, ri, ci, di = frags
                alpha = opacity[ti, di] * np.exp(-0.5 * power[ti, ri, ci, di])
                if fp16:
                    alpha = alpha.astype(np.float16).astype(np.float64)
                alpha = np.minimum(alpha, settings.alpha_max)

                if fp16 or dtype is np.float64:
                    prod, active, live = _blend_state(
                        tile_t, frags, alpha, d1 - d0, eps, acc_dtype
                    )
                    n_live = active.sum(axis=(1, 2))  # (T, D)
                    row_active = active.any(axis=2)  # (T, rows, D)
                    blend_at = active[ti, ri, ci, di]
                else:
                    t_before, blend_at, pkey, n_live, t_out, row_limit = (
                        _sparse_state(tile_t, frags, alpha, d1 - d0, eps)
                    )
                    row_active = (
                        row_limit[:, :, None]
                        >= np.arange(d1 - d0, dtype=np.int64)[None, None, :]
                    )

                # Early-termination bookkeeping: an instance is
                # "processed" iff any of its tile's pixels was still
                # active when its depth rank came up (the reference
                # loop's whole-tile break).
                n_live *= valid
                processed = n_live > 0
                n_proc = int(np.count_nonzero(processed))
                stats.instances_processed += n_proc
                stats.rows_considered += n_proc * rows
                stats.fragments_pfs_equivalent += int(n_live.sum())
                workload.instance_setup[tids] += processed.sum(axis=1)

                stats.rows_skipped_y += int(
                    ((~intersects).sum(axis=1) * processed).sum()
                )
                stats.rows_skipped_sign += int(
                    (outside_left.sum(axis=1) * processed).sum()
                )
                stats.rows_skipped_empty += int(
                    (skipped_empty.sum(axis=1) * processed).sum()
                )

                n_search = needs_search.sum(axis=1) * processed  # (T, D)
                stats.binary_search_rows += int(n_search.sum())
                steps = n_search * search_latency
                stats.binary_search_steps += int(steps.sum())
                workload.binary_search_steps[tids] += steps.sum(axis=1)
                workload.instance_search[tids] += (n_search > 0).sum(axis=1)

                terminated = nonempty & ~row_active
                stats.rows_terminated += int(
                    (terminated.sum(axis=1) * processed).sum()
                )
                shaded_rows = nonempty & row_active
                seg_len = np.where(shaded_rows, c1 - c0 + 1, 0)
                n_frag = int(seg_len.sum())
                n_seg = int(np.count_nonzero(shaded_rows))
                stats.fragments_shaded += n_frag
                stats.segments += n_seg
                stats.eq7_flops += (
                    n_seg * FLOPS.irss_flops_first_fragment
                    + (n_frag - n_seg) * FLOPS.irss_flops_per_fragment
                )
                workload.row_fragments[tids[:, None], local_rows[None, :]] += (
                    seg_len.sum(axis=2)
                )
                workload.row_segments[tids[:, None], local_rows[None, :]] += (
                    shaded_rows.sum(axis=2)
                )
                workload.instance_max_run[tids] += seg_len.max(axis=1).sum(axis=1)

                if fp16 or dtype is np.float64:
                    tile_t, blended = _blend_chunk(
                        tile_rgb, tile_n, tile_t, prod, live, frags, blend_at,
                        alpha, color, first_chunk=d0 == 0, fp16=fp16, eps=eps,
                    )
                else:
                    blended = _sparse_blend(
                        tile_rgb, tile_n, pkey, blend_at, t_before, alpha,
                        color[ti, di],
                    )
                    tile_t = t_out
                stats.fragments_blended += blended
                # Exact whole-chunk early termination (see the PFS loop).
                if not (tile_t > eps).any():
                    break

            transmittance[yy, xx] = tile_t
            image[yy, xx] = tile_rgb
            n_contrib[yy, xx] = tile_n

    background = settings.background_array().astype(acc_dtype)
    image = image.astype(np.float64) + (
        transmittance.astype(np.float64)[:, :, None]
        * background.astype(np.float64)[None, None, :]
    )
    return IRSSRenderResult(
        image=image,
        transmittance=transmittance.astype(np.float64),
        n_contrib=n_contrib,
        stats=stats,
        workload=workload,
    )
