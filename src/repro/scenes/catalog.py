"""The evaluation-scene catalog (Tab. I substitution).

Each of the paper's 12 evaluation scenes gets a named synthetic
stand-in: a procedural generator plus paper-side workload metadata
used to extrapolate simulated counters to paper scale (DESIGN.md
Sec. 4).  The simulated resolutions keep the paper's aspect ratios at
roughly 1/5 linear scale so that a full Python render stays tractable.

Paper-side Gaussian counts are estimates from the cited algorithm
papers (3DGS, 4D-GS, SplattingAvatar); they only enter the FPS
extrapolation, never any shape claim (speedups, percentages, hit
rates are scale-free).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.dynamics.avatar import AvatarModel, walking_pose
from repro.dynamics.temporal import TemporalGaussianModel
from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.scenes.synthetic import ground_and_objects, indoor_room, object_cluster, surface_shell


class AppType(enum.Enum):
    """The paper's three AR/VR application classes."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    AVATAR = "avatar"


# Paper-reported per-app fragment-to-Gaussian ratios (Challenge 1).
PAPER_FRAGMENT_RATIO = {
    AppType.STATIC: 541.0,
    AppType.DYNAMIC: 161.0,
    AppType.AVATAR: 688.0,
}

# Paper-reported significant-fragment fractions (Challenge 2).
PAPER_SIGNIFICANT_FRACTION = {
    AppType.STATIC: 0.076,
    AppType.DYNAMIC: 0.137,
    AppType.AVATAR: 0.099,
}


@dataclass(frozen=True)
class SceneSpec:
    """Catalog entry for one evaluation scene.

    Attributes
    ----------
    name:
        Paper scene name (lower-snake).
    app_type:
        Which application class the scene belongs to.
    width, height:
        Simulated render resolution.
    n_gaussians:
        Simulated Gaussian count.
    generator:
        Key into the generator table.
    camera_radius / camera_height / camera_fov:
        Orbit-camera placement for the evaluation view.
    seed:
        Deterministic scene seed.
    paper_resolution:
        The dataset resolution listed in Tab. I.
    paper_n_gaussians:
        Estimated reconstruction size at paper scale.
    workload_scale:
        Uniform sim-to-paper workload multiplier (DESIGN.md Sec. 4).
        Calibrated once so that the *baseline* model reproduces the
        scene's Fig. 4 frame time; every other result is a model
        prediction relative to that anchor.
    generator_kwargs:
        Extra arguments for the generator.
    """

    name: str
    app_type: AppType
    width: int
    height: int
    n_gaussians: int
    generator: str
    camera_radius: float = 3.0
    camera_height: float = 0.5
    camera_fov: float = 55.0
    seed: int = 0
    paper_resolution: tuple[int, int] = (1245, 825)
    paper_n_gaussians: int = 1_000_000
    workload_scale: float = 1.0
    generator_kwargs: dict = field(default_factory=dict)

    @property
    def sim_pixels(self) -> int:
        return self.width * self.height

    @property
    def paper_pixels(self) -> int:
        return self.paper_resolution[0] * self.paper_resolution[1]

    @property
    def gaussian_scale(self) -> float:
        """Paper-to-sim Gaussian count ratio."""
        return self.paper_n_gaussians / self.n_gaussians

    @property
    def paper_fragment_ratio(self) -> float:
        return PAPER_FRAGMENT_RATIO[self.app_type]

    def eval_resolution(self, detail: float = 1.0) -> tuple[int, int]:
        """Detail-scaled render resolution (linear scale, 32-px floor).

        The single definition shared by :func:`build_scene` and the
        streaming trajectories, so streamed frames stay comparable
        with the single-frame experiments.

        The 32-px floor is applied through one *shared* scale factor
        (raised until the smaller dimension reaches 32), never per
        axis: clamping width and height independently would distort
        the aspect ratio at low detail and make the pixel count
        non-monotone in ``detail`` — and this is the resolution ladder
        the QoS controller (:mod:`repro.stream.qos`) walks, so both
        properties are load-bearing (property-tested in
        ``tests/scenes/test_catalog.py``).
        """
        if detail <= 0:
            raise ValidationError("detail must be positive")
        scale = max(float(np.sqrt(detail)), 32.0 / min(self.width, self.height))
        width = max(int(self.width * scale), 32)
        height = max(int(self.height * scale), 32)
        return width, height

    def eval_eye(self) -> list[float]:
        """The evaluation camera's eye position (orbit placement)."""
        return [
            self.camera_radius * 0.8,
            self.camera_height,
            -self.camera_radius * 0.6,
        ]


@dataclass
class SceneBundle:
    """A built scene: the model, the evaluation camera, and accessors.

    ``frame_cloud(k)`` returns the 3D Gaussians for frame ``k``
    together with the application-specific Step-1a FLOPs per Gaussian
    (0 for static scenes, slicing cost for dynamic, skinning cost for
    avatars) — the quantity the GPU timing model charges for the
    application-specific preprocessing.
    """

    spec: SceneSpec
    camera: Camera
    static_cloud: GaussianCloud | None = None
    temporal_model: TemporalGaussianModel | None = None
    avatar_model: AvatarModel | None = None
    n_eval_frames: int = 8

    @property
    def is_static(self) -> bool:
        """True when every frame shares the same Gaussian cloud."""
        return self.spec.app_type is AppType.STATIC

    def frame_clock(self, frame: int = 0) -> int:
        """Scene-side identity of a frame's Gaussian cloud.

        Static scenes return 0 forever; animated scenes tick through
        their evaluation loop (``frame % n_eval_frames``).  Streaming
        layers combine this with the camera pose to key cross-frame
        caches: equal clocks guarantee equal clouds.
        """
        if self.is_static:
            return 0
        return frame % self.n_eval_frames

    def frame_cloud(self, frame: int = 0) -> tuple[GaussianCloud, int]:
        cloud, extra_flops, _ = self.frame_cloud_indexed(frame)
        return cloud, extra_flops

    def frame_cloud_indexed(
        self, frame: int = 0
    ) -> tuple[GaussianCloud, int, np.ndarray]:
        """Like :meth:`frame_cloud`, plus frame-stable source indices.

        The third element maps each cloud row to a stable Gaussian
        identity within the scene's model (static cloud row, 4D kernel
        index, or avatar splat index) — what streaming layers key
        their cross-frame caches on.  For static and avatar scenes the
        mapping is the identity; dynamic scenes cull transient kernels,
        so rows shift between frames.
        """
        t = (frame % self.n_eval_frames) / self.n_eval_frames
        if self.spec.app_type is AppType.STATIC:
            if self.static_cloud is None:
                raise ValidationError("static scene missing its cloud")
            ids = np.arange(len(self.static_cloud), dtype=np.int64)
            return self.static_cloud, 0, ids
        if self.spec.app_type is AppType.DYNAMIC:
            if self.temporal_model is None:
                raise ValidationError("dynamic scene missing its temporal model")
            cloud, ids = self.temporal_model.at_time_indexed(t)
            return cloud, self.temporal_model.slice_flops_per_gaussian(), ids
        if self.avatar_model is None:
            raise ValidationError("avatar scene missing its model")
        cloud = self.avatar_model.at_pose(walking_pose(t))
        ids = np.arange(len(cloud), dtype=np.int64)
        return cloud, self.avatar_model.skinning_flops_per_gaussian(), ids

    @property
    def n_source_gaussians(self) -> int:
        """Size of the stable Gaussian universe across every frame."""
        if self.spec.app_type is AppType.STATIC:
            if self.static_cloud is None:
                raise ValidationError("static scene missing its cloud")
            return len(self.static_cloud)
        if self.spec.app_type is AppType.DYNAMIC:
            if self.temporal_model is None:
                raise ValidationError("dynamic scene missing its temporal model")
            return len(self.temporal_model)
        if self.avatar_model is None:
            raise ValidationError("avatar scene missing its model")
        return len(self.avatar_model.rest_cloud)


def _static_specs() -> list[SceneSpec]:
    # MipNeRF-360 stand-ins.  Outdoor scenes (bicycle, stump) are the
    # largest reconstructions; indoor ones are smaller but denser.
    return [
        SceneSpec(
            name="bicycle", workload_scale=646.0, app_type=AppType.STATIC, width=256, height=168,
            n_gaussians=2600, generator="outdoor", seed=101,
            camera_radius=3.2, camera_height=0.6,
            paper_resolution=(1245, 825), paper_n_gaussians=6_100_000,
            generator_kwargs={"n_objects": 5, "object_scale": 0.011},
        ),
        SceneSpec(
            name="bonsai", workload_scale=395.0, app_type=AppType.STATIC, width=208, height=138,
            n_gaussians=1700, generator="indoor", seed=102,
            camera_radius=2.4, camera_height=0.4,
            paper_resolution=(779, 519), paper_n_gaussians=1_250_000,
            generator_kwargs={"n_furniture": 3, "furniture_scale": 0.013},
        ),
        SceneSpec(
            name="counter", workload_scale=391.0, app_type=AppType.STATIC, width=208, height=138,
            n_gaussians=1800, generator="indoor", seed=103,
            camera_radius=2.2, camera_height=0.5,
            paper_resolution=(779, 519), paper_n_gaussians=1_200_000,
            generator_kwargs={"n_furniture": 4, "furniture_scale": 0.014},
        ),
        SceneSpec(
            name="kitchen", workload_scale=507.0, app_type=AppType.STATIC, width=208, height=138,
            n_gaussians=2000, generator="indoor", seed=104,
            camera_radius=2.3, camera_height=0.45,
            paper_resolution=(779, 519), paper_n_gaussians=1_800_000,
            generator_kwargs={"n_furniture": 4, "furniture_scale": 0.013},
        ),
        SceneSpec(
            name="room", workload_scale=420.0, app_type=AppType.STATIC, width=208, height=138,
            n_gaussians=1600, generator="indoor", seed=105,
            camera_radius=2.6, camera_height=0.5,
            paper_resolution=(779, 519), paper_n_gaussians=1_500_000,
            generator_kwargs={"n_furniture": 3, "furniture_scale": 0.0138},
        ),
        SceneSpec(
            name="stump", workload_scale=500.0, app_type=AppType.STATIC, width=256, height=168,
            n_gaussians=2400, generator="outdoor", seed=106,
            camera_radius=3.0, camera_height=0.7,
            paper_resolution=(1245, 825), paper_n_gaussians=4_900_000,
            generator_kwargs={"n_objects": 3, "object_scale": 0.012},
        ),
    ]


def _dynamic_specs() -> list[SceneSpec]:
    # Neural-3D-Video stand-ins (a kitchen counter with moving
    # foreground): indoor geometry plus a dynamic cluster.
    common = dict(
        app_type=AppType.DYNAMIC, width=256, height=192, generator="dynamic",
        camera_radius=2.6, camera_height=0.4,
        paper_resolution=(1352, 1014),
    )
    return [
        SceneSpec(name="flame_steak", workload_scale=258.0, n_gaussians=1500, seed=201,
                  paper_n_gaussians=320_000,
                  generator_kwargs={"moving_fraction": 0.4, "furniture_scale": 0.014}, **common),
        SceneSpec(name="sear_steak", workload_scale=265.0, n_gaussians=1400, seed=202,
                  paper_n_gaussians=300_000,
                  generator_kwargs={"moving_fraction": 0.35, "furniture_scale": 0.014}, **common),
        SceneSpec(name="cut_beef", workload_scale=252.0, n_gaussians=1600, seed=203,
                  paper_n_gaussians=330_000,
                  generator_kwargs={"moving_fraction": 0.3, "furniture_scale": 0.013}, **common),
    ]


def _avatar_specs() -> list[SceneSpec]:
    # PeopleSnapshot stand-ins: a single humanoid against nothing.
    common = dict(
        app_type=AppType.AVATAR, width=192, height=192, generator="avatar",
        camera_radius=2.2, camera_height=0.25,
        paper_resolution=(1080, 1080),
    )
    return [
        SceneSpec(name="female_4", workload_scale=129.0, n_gaussians=1100, seed=301,
                  paper_n_gaussians=120_000, **common),
        SceneSpec(name="male_3", workload_scale=133.0, n_gaussians=1000, seed=302,
                  paper_n_gaussians=110_000, **common),
        SceneSpec(name="male_4", workload_scale=120.0, n_gaussians=1200, seed=303,
                  paper_n_gaussians=130_000, **common),
    ]


def _nerf_synthetic_specs() -> list[SceneSpec]:
    # NeRF-Synthetic stand-ins for the Tab. VII accelerator benchmark:
    # single centered objects at 800x800 (sim: 160x160).
    specs = []
    for i, name in enumerate(["lego", "chair", "drums", "hotdog"]):
        specs.append(
            SceneSpec(
                name=f"nerf_{name}", app_type=AppType.STATIC,
                width=160, height=160, n_gaussians=900,
                generator="object", seed=401 + i,
                camera_radius=2.5, camera_height=0.4,
                paper_resolution=(800, 800), paper_n_gaussians=60_000,
            )
        )
    return specs


CATALOG: dict[str, SceneSpec] = {
    spec.name: spec
    for spec in (
        _static_specs() + _dynamic_specs() + _avatar_specs() + _nerf_synthetic_specs()
    )
}

# The 12 scenes of the paper's main evaluation, in figure order.
EVALUATION_SCENES = [
    "bicycle", "bonsai", "counter", "kitchen", "room", "stump",
    "flame_steak", "sear_steak", "cut_beef",
    "female_4", "male_3", "male_4",
]


def scene_names() -> list[str]:
    return list(CATALOG)


def scenes_of_type(app_type: AppType, evaluation_only: bool = True) -> list[SceneSpec]:
    names = EVALUATION_SCENES if evaluation_only else list(CATALOG)
    return [CATALOG[n] for n in names if CATALOG[n].app_type is app_type]


def build_scene(spec_or_name: SceneSpec | str, detail: float = 1.0) -> SceneBundle:
    """Construct a scene bundle from a spec (or catalog name).

    Parameters
    ----------
    spec_or_name:
        A :class:`SceneSpec` or a catalog key.
    detail:
        Multiplier on Gaussian count and linear resolution; tests use
        ``detail < 1`` for speed, the resolution-scaling experiment
        uses ``detail`` on resolution only via camera rescaling.
    """
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    if detail <= 0:
        raise ValidationError("detail must be positive")
    rng = np.random.default_rng(spec.seed)
    n = max(int(spec.n_gaussians * detail), 50)
    width, height = spec.eval_resolution(detail)

    camera = Camera.look_at(
        eye=spec.eval_eye(),
        target=[0.0, 0.0, 0.0],
        width=width,
        height=height,
        fov_y_deg=spec.camera_fov,
    )

    if spec.generator == "outdoor":
        cloud = ground_and_objects(n, rng, **spec.generator_kwargs)
        return SceneBundle(spec=spec, camera=camera, static_cloud=cloud)
    if spec.generator == "indoor":
        cloud = indoor_room(n, rng, **spec.generator_kwargs)
        return SceneBundle(spec=spec, camera=camera, static_cloud=cloud)
    if spec.generator == "object":
        cloud = GaussianCloud.concatenate(
            [
                object_cluster(int(n * 0.7), rng, extent=0.8, scale=0.05),
                surface_shell(n - int(n * 0.7), rng, radii=(0.9, 0.9, 0.9), scale=0.06),
            ]
        )
        return SceneBundle(spec=spec, camera=camera, static_cloud=cloud)
    if spec.generator == "dynamic":
        kwargs = dict(spec.generator_kwargs)
        moving_fraction = kwargs.pop("moving_fraction", 0.35)
        base = indoor_room(n, rng, **kwargs)
        model = TemporalGaussianModel.synthetic(
            base, rng, moving_fraction=moving_fraction
        )
        return SceneBundle(spec=spec, camera=camera, temporal_model=model)
    if spec.generator == "avatar":
        model = AvatarModel.synthetic(n, rng)
        return SceneBundle(spec=spec, camera=camera, avatar_model=model)
    raise ValidationError(f"unknown generator '{spec.generator}'")


class BundleCache:
    """Bounded LRU cache of built scene bundles, keyed ``(scene, detail)``.

    Serving workers build one bundle per distinct ``(scene, detail)``
    pair they render.  With per-session *adaptive* detail
    (:mod:`repro.stream.qos`) that key space is no longer one entry
    per session — a controller walking the detail ladder touches a new
    bundle per rung — so an unbounded dict grows without limit over a
    long serve.  This cache evicts the least-recently-used bundle once
    ``capacity`` is exceeded; an evicted rung is simply rebuilt on the
    next touch (scene builds are deterministic, so eviction never
    changes output, only build work).

    ``builder`` overrides how a missed bundle is produced (default:
    :func:`build_scene`).  Co-located workers pass a shared interner
    (:class:`~repro.stream.content_cache.BundleIntern`) here so one
    immutable bundle per ``(scene, detail)`` serves every worker on
    the node instead of each building its own copy.
    """

    def __init__(self, capacity: int = 8, builder=None) -> None:
        if capacity < 1:
            raise ValidationError("bundle cache capacity must be at least 1")
        self.capacity = capacity
        self._builder = build_scene if builder is None else builder
        self._bundles: dict[tuple[str, float], SceneBundle] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._bundles)

    def get(self, scene: SceneSpec | str, detail: float = 1.0) -> SceneBundle:
        """Fetch (or build) the bundle for ``(scene, detail)``."""
        name = scene if isinstance(scene, str) else scene.name
        key = (name, float(detail))
        bundle = self._bundles.get(key)
        if bundle is not None:
            self.hits += 1
            # Re-insert to refresh recency (dicts preserve insertion
            # order, so the first key is always the LRU victim).
            del self._bundles[key]
            self._bundles[key] = bundle
            return bundle
        self.misses += 1
        bundle = self._builder(scene, detail=detail)
        self._bundles[key] = bundle
        while len(self._bundles) > self.capacity:
            self._bundles.pop(next(iter(self._bundles)))
        return bundle

    def put(self, scene: SceneSpec | str, detail: float, bundle: SceneBundle) -> None:
        """Seed the cache with an already-built bundle."""
        name = scene if isinstance(scene, str) else scene.name
        self._bundles[(name, float(detail))] = bundle
        while len(self._bundles) > self.capacity:
            self._bundles.pop(next(iter(self._bundles)))

    def clear(self) -> None:
        self._bundles.clear()
        self.hits = 0
        self.misses = 0
