"""Procedural Gaussian-cloud generators.

Real 3DGS reconstructions share a few structural traits that matter
for rendering workload: splats concentrate on surfaces, are locally
tangent-aligned (flat pancakes rather than spheres), vary in size by
2-3 orders of magnitude (fine texture vs. sky/background blobs), and
overlap several deep along a ray.  The generators below reproduce
those traits with simple geometry so the blending workload statistics
land in the paper's reported bands.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.sh import num_sh_coeffs


def _random_sh(rng: np.random.Generator, n: int, degree: int, palette: np.ndarray) -> np.ndarray:
    """SH coefficients whose DC band is drawn from a color palette with
    mild view-dependent higher bands."""
    k = num_sh_coeffs(degree)
    sh = rng.normal(0.0, 0.08, size=(n, k, 3))
    base = palette[rng.integers(0, len(palette), size=n)]
    jitter = rng.normal(0.0, 0.08, size=(n, 3))
    sh[:, 0, :] = np.clip(base + jitter, 0.05, 1.4)
    return sh


def _tangent_quats(rng: np.random.Generator, normals: np.ndarray) -> np.ndarray:
    """Quaternions rotating the local z-axis onto the given normals.

    Splats generated on a surface get their smallest scale axis along
    the normal, mimicking fitted reconstructions.
    """
    normals = normals / np.maximum(np.linalg.norm(normals, axis=1, keepdims=True), 1e-12)
    z = np.array([0.0, 0.0, 1.0])
    n = normals.shape[0]
    quats = np.empty((n, 4))
    dots = normals @ z
    axes = np.cross(np.tile(z, (n, 1)), normals)
    axis_norms = np.linalg.norm(axes, axis=1, keepdims=True)
    degenerate = axis_norms[:, 0] < 1e-9
    axes = np.where(degenerate[:, None], np.array([1.0, 0.0, 0.0]), axes / np.maximum(axis_norms, 1e-12))
    angles = np.arccos(np.clip(dots, -1.0, 1.0))
    half = angles / 2.0
    quats[:, 0] = np.cos(half)
    quats[:, 1:] = axes * np.sin(half)[:, None]
    # Random in-plane spin.
    spin = rng.uniform(0.0, 2.0 * np.pi, n)
    spin_q = np.zeros((n, 4))
    spin_q[:, 0] = np.cos(spin / 2.0)
    spin_q[:, 3] = np.sin(spin / 2.0)
    combined = _quat_multiply(quats, spin_q)
    # The covariance convention is Sigma = R^T S^2 R (Sec. II-A), so the
    # variance along a world direction v is ||S R v||^2: R must map the
    # *normal to the local z-axis*, i.e. the conjugate of the rotation
    # that maps z onto the normal.
    conjugate = combined.copy()
    conjugate[:, 1:] = -conjugate[:, 1:]
    return conjugate


def _quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product of two (N, 4) quaternion arrays (w, x, y, z)."""
    w1, x1, y1, z1 = q1.T
    w2, x2, y2, z2 = q2.T
    return np.stack(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ],
        axis=1,
    )


def surface_shell(
    n: int,
    rng: np.random.Generator,
    center: np.ndarray = (0.0, 0.0, 0.0),
    radii: np.ndarray = (1.0, 1.0, 1.0),
    scale: float = 0.05,
    scale_spread: float = 2.0,
    flatness: float = 0.25,
    palette: np.ndarray | None = None,
    sh_degree: int = 2,
    opacity_range: tuple[float, float] = (0.15, 0.85),
) -> GaussianCloud:
    """Gaussians on the surface of an ellipsoid shell.

    Parameters
    ----------
    n:
        Number of Gaussians.
    center, radii:
        Ellipsoid placement.
    scale:
        Median in-plane splat standard deviation (world units).
    scale_spread:
        Log-uniform spread factor around ``scale``.
    flatness:
        Ratio of the normal-axis scale to the in-plane scales.
    palette:
        (K, 3) base colors; a muted default is used when omitted.
    """
    if n <= 0:
        raise ValidationError("surface_shell needs n > 0")
    center = np.asarray(center, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    if palette is None:
        palette = np.array(
            [[0.6, 0.5, 0.4], [0.4, 0.5, 0.3], [0.5, 0.5, 0.6], [0.7, 0.6, 0.5]]
        )

    dirs = rng.normal(size=(n, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    means = center + dirs * radii
    # Normals of the ellipsoid at those points.
    normals = dirs / radii
    in_plane = scale * np.exp(
        rng.uniform(-np.log(scale_spread), np.log(scale_spread), size=(n, 1))
    )
    aspect = np.exp(rng.uniform(-1.5, 1.5, size=(n, 1)))
    scales = np.concatenate(
        [in_plane * aspect, in_plane / aspect, in_plane * flatness], axis=1
    )
    return GaussianCloud(
        means=means,
        scales=scales,
        quats=_tangent_quats(rng, normals),
        opacities=rng.uniform(*opacity_range, size=n),
        sh=_random_sh(rng, n, sh_degree, palette),
    )


def object_cluster(
    n: int,
    rng: np.random.Generator,
    center: np.ndarray = (0.0, 0.0, 0.0),
    extent: float = 0.5,
    scale: float = 0.03,
    scale_spread: float = 2.5,
    palette: np.ndarray | None = None,
    sh_degree: int = 2,
    opacity_range: tuple[float, float] = (0.1, 0.85),
) -> GaussianCloud:
    """A volumetric blob of Gaussians (foliage, clutter, props).

    Means follow an anisotropic normal around ``center``; orientations
    are random, producing the deep overlap that stresses alpha
    blending.
    """
    if n <= 0:
        raise ValidationError("object_cluster needs n > 0")
    center = np.asarray(center, dtype=np.float64)
    if palette is None:
        palette = np.array(
            [[0.3, 0.5, 0.25], [0.5, 0.4, 0.3], [0.45, 0.45, 0.5], [0.6, 0.55, 0.4]]
        )
    means = center + rng.normal(0.0, extent / 2.0, size=(n, 3))
    base = scale * np.exp(
        rng.uniform(-np.log(scale_spread), np.log(scale_spread), size=(n, 1))
    )
    ratios = np.exp(rng.uniform(-1.6, 1.6, size=(n, 3)))
    return GaussianCloud(
        means=means,
        scales=base * ratios,
        quats=rng.normal(size=(n, 4)),
        opacities=rng.uniform(*opacity_range, size=n),
        sh=_random_sh(rng, n, sh_degree, palette),
    )


def ground_plane(
    n: int,
    rng: np.random.Generator,
    half_size: float = 3.0,
    y: float = -0.6,
    scale: float = 0.013,
    palette: np.ndarray | None = None,
    sh_degree: int = 2,
) -> GaussianCloud:
    """Flat splats tiling a ground plane (outdoor scenes)."""
    if palette is None:
        palette = np.array([[0.35, 0.4, 0.25], [0.45, 0.42, 0.3], [0.3, 0.33, 0.28]])
    means = np.stack(
        [
            rng.uniform(-half_size, half_size, n),
            np.full(n, y) + rng.normal(0.0, 0.01, n),
            rng.uniform(-half_size, half_size, n),
        ],
        axis=1,
    )
    in_plane = scale * np.exp(rng.uniform(-0.7, 0.9, size=(n, 1)))
    aspect = np.exp(rng.uniform(-1.4, 1.4, size=(n, 1)))
    scales = np.concatenate([in_plane * aspect, in_plane * 0.15, in_plane / aspect], axis=1)
    normals = np.tile(np.array([0.0, 1.0, 0.0]), (n, 1))
    return GaussianCloud(
        means=means,
        scales=scales,
        quats=_tangent_quats(rng, normals),
        opacities=rng.uniform(0.2, 0.75, n),
        sh=_random_sh(rng, n, sh_degree, palette),
    )


def ground_and_objects(
    n: int,
    rng: np.random.Generator,
    n_objects: int = 4,
    spread: float = 1.4,
    object_scale: float = 0.045,
    ground_fraction: float = 0.3,
    background_fraction: float = 0.15,
    sh_degree: int = 2,
) -> GaussianCloud:
    """Outdoor-style static scene: ground + object clusters + far shell.

    This is the MipNeRF-360 stand-in (bicycle, stump, ...): a large
    footprint spread, a dominant central object and a big enclosing
    background shell of large sparse Gaussians.
    """
    n_ground = int(n * ground_fraction)
    n_bg = int(n * background_fraction)
    n_obj = n - n_ground - n_bg
    parts = [ground_plane(n_ground, rng, sh_degree=sh_degree)] if n_ground else []
    if n_bg:
        parts.append(
            surface_shell(
                n_bg,
                rng,
                radii=(9.0, 6.0, 9.0),
                scale=0.09,
                scale_spread=1.8,
                flatness=0.3,
                sh_degree=sh_degree,
                opacity_range=(0.12, 0.55),
            )
        )
    per_cluster = max(n_obj // max(n_objects, 1), 1)
    for k in range(n_objects):
        angle = 2.0 * np.pi * k / n_objects
        radius = 0.0 if k == 0 else spread * (0.5 + 0.5 * rng.uniform())
        center = np.array(
            [radius * np.cos(angle), rng.uniform(-0.3, 0.4), radius * np.sin(angle)]
        )
        count = per_cluster if k < n_objects - 1 else n_obj - per_cluster * (n_objects - 1)
        if count > 0:
            parts.append(
                object_cluster(
                    count, rng, center=center, extent=0.6, scale=object_scale,
                    sh_degree=sh_degree,
                )
            )
    return GaussianCloud.concatenate(parts)


def indoor_room(
    n: int,
    rng: np.random.Generator,
    room_half: float = 1.8,
    n_furniture: int = 3,
    furniture_scale: float = 0.04,
    wall_fraction: float = 0.45,
    sh_degree: int = 2,
) -> GaussianCloud:
    """Indoor static scene: box walls plus furniture clusters
    (bonsai / counter / kitchen / room stand-ins)."""
    n_wall = int(n * wall_fraction)
    n_furn = n - n_wall
    parts = []
    if n_wall:
        # Walls as five large flat patches (no front wall).
        per_wall = n_wall // 5
        specs = [
            ((0.0, 0.0, room_half), (0.0, 0.0, -1.0), (room_half, room_half)),
            ((-room_half, 0.0, 0.0), (1.0, 0.0, 0.0), (room_half, room_half)),
            ((room_half, 0.0, 0.0), (-1.0, 0.0, 0.0), (room_half, room_half)),
            ((0.0, -room_half / 1.5, 0.0), (0.0, 1.0, 0.0), (room_half, room_half)),
            ((0.0, room_half / 1.5, 0.0), (0.0, -1.0, 0.0), (room_half, room_half)),
        ]
        wall_parts = []
        for (center, normal, (hu, hv)) in specs:
            m = per_wall
            normal = np.asarray(normal)
            # Build tangent frame.
            up = np.array([0.0, 1.0, 0.0])
            if abs(normal[1]) > 0.9:
                up = np.array([1.0, 0.0, 0.0])
            u = np.cross(up, normal)
            u /= np.linalg.norm(u)
            v = np.cross(normal, u)
            coords = rng.uniform(-1.0, 1.0, size=(m, 2)) * np.array([hu, hv])
            means = np.asarray(center) + coords[:, :1] * u + coords[:, 1:] * v
            in_plane = 0.032 * np.exp(rng.uniform(-0.5, 0.7, size=(m, 1)))
            aspect = np.exp(rng.uniform(-1.4, 1.4, size=(m, 1)))
            scales = np.concatenate([in_plane * aspect, in_plane / aspect, in_plane * 0.15], axis=1)
            wall_parts.append(
                GaussianCloud(
                    means=means,
                    scales=scales,
                    quats=_tangent_quats(rng, np.tile(normal, (m, 1))),
                    opacities=rng.uniform(0.3, 0.85, m),
                    sh=_random_sh(
                        rng, m, sh_degree,
                        np.array([[0.65, 0.6, 0.55], [0.55, 0.52, 0.5]]),
                    ),
                )
            )
        parts.extend(wall_parts)
    placed = sum(len(p) for p in parts)
    n_furn = n - placed
    per = max(n_furn // max(n_furniture, 1), 1)
    for k in range(n_furniture):
        center = np.array(
            [rng.uniform(-0.9, 0.9), rng.uniform(-0.8, 0.2), rng.uniform(-0.9, 0.9)]
        )
        count = per if k < n_furniture - 1 else n_furn - per * (n_furniture - 1)
        if count > 0:
            parts.append(
                object_cluster(
                    count, rng, center=center, extent=0.45, scale=furniture_scale,
                    sh_degree=sh_degree,
                )
            )
    return GaussianCloud.concatenate(parts)
