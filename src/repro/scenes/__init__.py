"""Synthetic workload generation (dataset substitution).

The paper evaluates on MipNeRF-360, Neural-3D-Video and PeopleSnapshot
captures; this package provides procedural stand-ins whose workload
statistics (screen footprint distribution, duplication factor,
significant-fragment fraction, depth complexity) drive the same
behaviours.  See DESIGN.md, Substitution 1.
"""

from repro.scenes.synthetic import (
    ground_and_objects,
    indoor_room,
    object_cluster,
    surface_shell,
)
from repro.scenes.catalog import (
    AppType,
    BundleCache,
    SceneBundle,
    SceneSpec,
    CATALOG,
    build_scene,
    scene_names,
    scenes_of_type,
)

__all__ = [
    "ground_and_objects",
    "indoor_room",
    "object_cluster",
    "surface_shell",
    "AppType",
    "BundleCache",
    "SceneBundle",
    "SceneSpec",
    "CATALOG",
    "build_scene",
    "scene_names",
    "scenes_of_type",
]
