"""The paper's contribution: the IRSS dataflow and the GBU hardware.

Modules
-------
transform:
    The two-step coordinate transformation P -> P' -> P'' (Sec. IV-B).
irss:
    Functional Intra-Row Sequential Shading rasterizer with compute
    sharing and redundancy skipping (Sec. IV), plus FLOP/skip counters.
flops:
    Aggregate FLOP accounting comparing the PFS and IRSS dataflows.
row_engine:
    Cycle models of the Row Generation Engine and Row PEs (Sec. V-C).
tile_engine:
    The Row-Centric Tile Engine (analytic model + tick validator).
reuse_cache:
    The Gaussian Reuse Cache with precomputed reuse-distance
    replacement, plus LRU/FIFO baselines (Sec. V-D).
dnb:
    The Decomposition & Binning engine (Sec. V-D/V-E).
gbu:
    The GBU device model and its programming interface (Sec. V-F).
pipeline:
    The two-level GPU/GBU and D&B/TilePE pipeline (Sec. V-E, Fig. 13).
standalone:
    GBU-Standalone — GBU plus GS-Core-style Step 1/2 units (Sec. VI-F).
precision:
    fp16 datapath emulation for the Row PEs.
"""

from repro.core.transform import IRSSTransform, compute_transforms
from repro.core.irss import IRSSStats, render_irss

__all__ = [
    "IRSSTransform",
    "compute_transforms",
    "IRSSStats",
    "render_irss",
]
