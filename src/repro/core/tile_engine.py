"""The Row-Centric Tile Engine at frame granularity (Sec. V-C).

Aggregates the per-tile analytic estimates of
:mod:`repro.core.row_engine` over a whole frame's
:class:`~repro.core.irss.TileRowWorkload`, producing the compute-side
cycle count, per-component breakdown and utilization of one Tile PE
rendering every tile in traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.irss import TileRowWorkload
from repro.core.row_engine import analytic_tile_cycles
from repro.errors import ValidationError
from repro.gpu.calibration import DEFAULT_GBU_CALIBRATION, GBUCalibration
from repro.gpu.specs import GBU_SPEC, GBUSpec


@dataclass(frozen=True)
class TileEngineReport:
    """Frame-level compute profile of the Tile PE.

    Attributes
    ----------
    tile_cycles:
        (n_tiles,) latency of each tile.
    generation_cycles / max_row_pe_cycles:
        (n_tiles,) per-tile component latencies (before drain).
    useful_cycles:
        (n_tiles,) fragment-shading cycles (utilization numerator).
    """

    tile_cycles: np.ndarray
    generation_cycles: np.ndarray
    max_row_pe_cycles: np.ndarray
    useful_cycles: np.ndarray
    pe_frame_cycles: np.ndarray
    cross_tile_overlap: bool = True
    drain_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Frame cycles under the configured tile-boundary model."""
        if self.cross_tile_overlap:
            # The Row Buffers decouple the Row Generation Engine from
            # the Row PEs, so a PE that finishes its rows early starts
            # polling the next tile's work items while stragglers
            # drain: per-tile imbalance amortizes across the frame and
            # the frame latency is the slowest PE's total work (or the
            # generation engine, if it is the global bottleneck).
            gen_total = float(self.generation_cycles.sum())
            pe_totals = self.pe_frame_cycles
            return max(gen_total, float(pe_totals.max(initial=0.0))) + float(
                self.drain_cycles
            )
        # Per-tile barrier (ablation): every non-empty tile pays a
        # pipeline flush on top of its own latency.
        n_busy = int(np.count_nonzero(self.tile_cycles))
        return float(self.tile_cycles.sum()) + float(self.drain_cycles) * n_busy

    @property
    def utilization(self) -> float:
        """Row-PE utilization across the frame (Fig. 10's right side)."""
        denom = self.tile_cycles.sum()
        if denom <= 0:
            return 0.0
        # useful_cycles is summed over all 8 PEs; the capacity is
        # n_pes * tile_cycles.
        return float(self.useful_cycles.sum() / (denom * self._n_pes))

    _n_pes: int = 8

    def seconds(self, spec: GBUSpec = GBU_SPEC) -> float:
        return self.total_cycles / spec.clock_hz

    def generation_bound_tiles(self) -> int:
        """Tiles whose latency is set by the generation engine."""
        return int(np.count_nonzero(self.generation_cycles > self.max_row_pe_cycles))


def simulate_tile_engine(
    workload: TileRowWorkload,
    spec: GBUSpec = GBU_SPEC,
    calib: GBUCalibration = DEFAULT_GBU_CALIBRATION,
    interleaved: bool = True,
    cross_tile_overlap: bool = True,
) -> TileEngineReport:
    """Run the analytic tile engine over every tile of a frame.

    ``cross_tile_overlap`` models the Row Buffers streaming work items
    across tile boundaries (the design point — Sec. V-C's "Row PEs
    consistently poll the fragments to be rendered"); disabling it
    inserts a barrier after every tile, which the ablation benchmark
    uses to quantify the buffers' contribution.
    """
    n_tiles = workload.n_tiles
    if workload.row_fragments.shape[1] != spec.rows_per_tile:
        raise ValidationError(
            f"workload rows ({workload.row_fragments.shape[1]}) do not match "
            f"the Tile PE's rows per tile ({spec.rows_per_tile})"
        )
    tile_cycles = np.zeros(n_tiles)
    gen_cycles = np.zeros(n_tiles)
    max_pe = np.zeros(n_tiles)
    useful = np.zeros(n_tiles)
    pe_frame = np.zeros(spec.n_row_pes)
    for t in range(n_tiles):
        if workload.instance_setup[t] == 0:
            continue
        est = analytic_tile_cycles(
            workload.row_fragments[t],
            workload.row_segments[t],
            int(workload.instance_setup[t]),
            int(workload.instance_search[t]),
            calib=calib,
            n_pes=spec.n_row_pes,
            interleaved=interleaved,
        )
        tile_cycles[t] = est.tile_cycles
        gen_cycles[t] = est.generation_cycles
        max_pe[t] = float(est.row_pe_cycles.max(initial=0.0))
        useful[t] = est.useful_cycles
        pe_frame += est.row_pe_cycles
    report = TileEngineReport(
        tile_cycles=tile_cycles,
        generation_cycles=gen_cycles,
        max_row_pe_cycles=max_pe,
        useful_cycles=useful,
        pe_frame_cycles=pe_frame,
        cross_tile_overlap=cross_tile_overlap,
        drain_cycles=calib.tile_drain_cycles,
    )
    object.__setattr__(report, "_n_pes", spec.n_row_pes)
    return report
