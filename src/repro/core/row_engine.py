"""Cycle models of the Row Generation Engine and Row PEs (Sec. V-C).

Two levels of fidelity:

* The **analytic model** (used for full scenes) computes, per tile,
  the serialized cycles of the Row Generation Engine and of each Row
  PE from aggregate per-row fragment/segment counts.  It assumes the
  row buffers are deep enough to decouple generation from shading
  (the paper sizes them so), making tile latency the slower engine's
  serialized time plus the un-overlapped share of the other side:
  ``max(generation, pe) + min(generation, pe) / 2``.
* The **tick simulator** (used by validation tests) executes the
  engine cycle by cycle with finite row-buffer FIFOs and real
  backpressure, on explicit per-instance traces.  Property tests
  assert the analytic model matches it closely when buffers are deep
  and bounds it from below when they are shallow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.gpu.calibration import DEFAULT_GBU_CALIBRATION, GBUCalibration


@dataclass(frozen=True)
class TileTrace:
    """Explicit per-instance workload of one tile.

    Attributes
    ----------
    segments:
        (n_instances, n_rows) fragment count of each (instance, row)
        segment (0 = row skipped for that instance).
    search_steps:
        (n_instances,) binary-search iterations the generation engine
        spends on the instance (summed over its rows).
    """

    segments: np.ndarray
    search_steps: np.ndarray

    def __post_init__(self) -> None:
        seg = np.asarray(self.segments, dtype=np.int64)
        steps = np.asarray(self.search_steps, dtype=np.int64)
        if seg.ndim != 2:
            raise ValidationError("segments must be (instances, rows)")
        if steps.shape != (seg.shape[0],):
            raise ValidationError("search_steps must have one entry per instance")
        if np.any(seg < 0) or np.any(steps < 0):
            raise ValidationError("trace counts cannot be negative")
        object.__setattr__(self, "segments", seg)
        object.__setattr__(self, "search_steps", steps)

    @property
    def n_instances(self) -> int:
        return self.segments.shape[0]

    @property
    def n_rows(self) -> int:
        return self.segments.shape[1]


def row_assignment(n_rows: int, n_pes: int, interleaved: bool = True) -> list[np.ndarray]:
    """Map tile rows to Row PEs.

    Interleaved assignment (row ``r`` -> PE ``r % n_pes``) balances
    elliptical footprints better than contiguous pairing because a
    Gaussian's heavy central rows land on different PEs; the ablation
    benchmark compares both.
    """
    if n_rows % n_pes != 0:
        raise ValidationError("rows must divide evenly among Row PEs")
    if interleaved:
        return [np.arange(n_rows)[k::n_pes] for k in range(n_pes)]
    per = n_rows // n_pes
    return [np.arange(k * per, (k + 1) * per) for k in range(n_pes)]


@dataclass(frozen=True)
class RowEngineEstimate:
    """Analytic per-tile cycle estimate.

    Attributes
    ----------
    generation_cycles:
        Serialized Row Generation Engine cycles.
    row_pe_cycles:
        (n_pes,) serialized shading cycles per Row PE.
    tile_cycles:
        Tile latency under the deep-buffer assumption.
    useful_cycles:
        Fragment-shading cycles summed over PEs (utilization numerator).
    """

    generation_cycles: float
    row_pe_cycles: np.ndarray
    tile_cycles: float
    useful_cycles: float

    @property
    def utilization(self) -> float:
        n_pes = len(self.row_pe_cycles)
        denom = n_pes * self.tile_cycles
        if denom <= 0:
            return 0.0
        return float(self.useful_cycles / denom)


def analytic_tile_cycles(
    row_fragments: np.ndarray,
    row_segments: np.ndarray,
    n_instances: int,
    search_instances: int,
    calib: GBUCalibration = DEFAULT_GBU_CALIBRATION,
    n_pes: int = 8,
    interleaved: bool = True,
) -> RowEngineEstimate:
    """Analytic tile latency from per-row aggregate workload.

    Parameters
    ----------
    row_fragments / row_segments:
        (n_rows,) totals over all instances of the tile.
    n_instances:
        Gaussians processed by the generation engine for this tile.
    search_instances:
        Instances needing a binary search.  The comparator array
        searches all rows of an instance concurrently, so each such
        instance pays one parallel search latency of
        ``ceil(log2(tile)) * rowgen_search_cycles``.
    """
    row_fragments = np.asarray(row_fragments, dtype=np.float64)
    row_segments = np.asarray(row_segments, dtype=np.float64)
    n_rows = row_fragments.shape[0]
    assignment = row_assignment(n_rows, n_pes, interleaved)

    per_row = (
        row_fragments * calib.fragment_cycles + row_segments * calib.segment_issue_cycles
    )
    pe_cycles = np.array([per_row[rows].sum() for rows in assignment])
    search_latency = np.ceil(np.log2(max(row_fragments.shape[0], 2)))
    gen = float(
        n_instances * calib.rowgen_gaussian_cycles
        + search_instances * search_latency * calib.rowgen_search_cycles
    )
    pe_max = float(pe_cycles.max(initial=0.0))
    # Deep-buffer makespan.  The slower engine is always busy once
    # fed, so its serialized time is a floor; how much of the *other*
    # engine's work overlaps depends on how the per-instance work is
    # interleaved in depth order, which the aggregate counters cannot
    # see.  Perfect interleaving would hide nearly all of it
    # (+min/n); fully skewed arrival (the critical PE's work entirely
    # in the last instances) hides none (+min).  With no distribution
    # information the model assumes half-overlap — validated against
    # the tick simulator to track it within the +-20% band across
    # random traces (tests/core/test_row_engine.py).  The +1 is the
    # simulator's loop-exit cycle.
    if gen > 0 or pe_max > 0:
        tile = max(gen, pe_max) + 0.5 * min(gen, pe_max) + 1.0
    else:
        tile = 0.0
    useful = float(row_fragments.sum() * calib.fragment_cycles)
    return RowEngineEstimate(
        generation_cycles=float(gen),
        row_pe_cycles=pe_cycles,
        tile_cycles=tile,
        useful_cycles=useful,
    )


@dataclass
class TickResult:
    """Outcome of the tick-accurate simulation of one tile."""

    cycles: int
    fragments_shaded: int
    generation_busy_cycles: int
    row_pe_busy_cycles: np.ndarray
    max_buffer_occupancy: np.ndarray


def tick_simulate_tile(
    trace: TileTrace,
    calib: GBUCalibration = DEFAULT_GBU_CALIBRATION,
    n_pes: int = 8,
    buffer_depth: int = 8,
    interleaved: bool = True,
    max_cycles: int = 10_000_000,
) -> TickResult:
    """Cycle-by-cycle simulation of the Row-Centric Tile Engine.

    The Row Generation Engine walks instances in depth order; for each
    it spends ``rowgen_gaussian_cycles + search_steps`` cycles, then
    atomically pushes one work item per non-empty row into that row's
    buffer (stalling while any target buffer is full).  Each Row PE
    round-robins over its rows' buffers, paying the segment-issue
    latency and then one cycle per fragment.

    Only integer cycle costs are supported in tick mode.
    """
    for name in ("fragment_cycles", "segment_issue_cycles",
                 "rowgen_gaussian_cycles", "rowgen_search_cycles"):
        if float(getattr(calib, name)) != int(getattr(calib, name)):
            raise ValidationError("tick simulation requires integer cycle costs")

    n_rows = trace.n_rows
    assignment = row_assignment(n_rows, n_pes, interleaved)

    buffers: list[list[int]] = [[] for _ in range(n_rows)]
    max_occ = np.zeros(n_rows, dtype=np.int64)

    issue = int(calib.segment_issue_cycles)
    frag_c = int(calib.fragment_cycles)
    gen_c = int(calib.rowgen_gaussian_cycles)
    search_c = int(calib.rowgen_search_cycles)

    search_latency = int(np.ceil(np.log2(max(trace.n_rows, 2))))

    def instance_setup(i: int) -> int:
        searching = int(trace.search_steps[i] > 0)
        return gen_c + search_c * search_latency * searching

    # Generation engine state machine: per instance spend the setup
    # cycles, then (in the final setup cycle or stalling afterwards)
    # push one work item per non-empty row into its buffer.
    inst = 0
    gen_done = trace.n_instances == 0
    setup_left = instance_setup(0) if not gen_done else 0
    pending: list[tuple[int, int]] | None = None
    gen_busy = 0

    pe_remaining = np.zeros(n_pes, dtype=np.int64)
    pe_busy = np.zeros(n_pes, dtype=np.int64)
    pe_rr = np.zeros(n_pes, dtype=np.int64)
    fragments = 0
    cycles = 0

    def advance_instance() -> None:
        nonlocal inst, gen_done, setup_left, pending
        inst += 1
        pending = None
        if inst >= trace.n_instances:
            gen_done = True
        else:
            setup_left = instance_setup(inst)

    def try_push() -> bool:
        """Push the pending work items if every target FIFO has room."""
        nonlocal pending
        assert pending is not None
        if any(len(buffers[r]) >= buffer_depth for r, _ in pending):
            return False
        for r, length in pending:
            buffers[r].append(length)
            max_occ[r] = max(max_occ[r], len(buffers[r]))
        return True

    while True:
        if cycles >= max_cycles:
            raise SimulationError("tick simulation exceeded max_cycles")

        # --- Generation engine (one action per cycle) ---
        if not gen_done:
            gen_busy += 1
            if pending is not None:
                # Stalled on full buffers from a previous cycle.
                if try_push():
                    advance_instance()
            else:
                setup_left -= 1
                if setup_left == 0:
                    seg = trace.segments[inst]
                    pending = [
                        (r, int(seg[r])) for r in range(n_rows) if seg[r] > 0
                    ]
                    if not pending or try_push():
                        advance_instance()

        # --- Row PEs ---
        for k in range(n_pes):
            if pe_remaining[k] > 0:
                pe_remaining[k] -= 1
                pe_busy[k] += 1
                continue
            rows = assignment[k]
            for step in range(len(rows)):
                r = rows[(pe_rr[k] + step) % len(rows)]
                if buffers[r]:
                    length = buffers[r].pop(0)
                    pe_remaining[k] = issue + length * frag_c - 1
                    fragments += length
                    pe_busy[k] += 1
                    pe_rr[k] = (pe_rr[k] + step + 1) % len(rows)
                    break

        cycles += 1
        if gen_done and not any(buffers) and not pe_remaining.any():
            break

    return TickResult(
        cycles=cycles,
        fragments_shaded=fragments,
        generation_busy_cycles=gen_busy,
        row_pe_busy_cycles=pe_busy,
        max_buffer_occupancy=max_occ,
    )


def trace_to_aggregates(trace: TileTrace) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Convert an explicit trace to the analytic model's aggregates:
    (row_fragments, row_segments, n_instances, search_steps)."""
    row_fragments = trace.segments.sum(axis=0)
    row_segments = (trace.segments > 0).sum(axis=0)
    return (
        row_fragments,
        row_segments,
        trace.n_instances,
        int((trace.search_steps > 0).sum()),
    )
