"""Functional Intra-Row Sequential Shading (IRSS) rasterizer (Sec. IV).

Renders the exact same image as the reference PFS rasterizer (the
transformation is exact, not an approximation — Sec. IV-B) while
modeling the IRSS execution: per (tile, Gaussian) instance, each
intersected row is shaded left-to-right between the first and last
significant fragments; everything outside is skipped.

Three implementations are provided:

* :func:`render_irss` — the production entry point; dispatches to a
  registered rendering backend (see :mod:`repro.render.backends`).
  The default "reference" backend is :func:`render_irss_loop`; the
  "vectorized" backend batches instances across tiles and is an order
  of magnitude faster with bit-identical output.
* :func:`render_irss_loop` — per instance, the per-row intervals come
  from the closed-form oracle (:meth:`IRSSTransform.row_interval`) and
  fragments are evaluated with the shared-intermediate arithmetic
  ``E = x''^2 + y''^2`` where ``x'' = x_start + c * dx``; rows are
  processed with numpy.
* :func:`render_irss_sequential` — a literal scalar transcription of
  the dataflow (binary search for the first fragment, one-at-a-time
  stepping with ``x'' += dx'`` and walk-off detection of the last
  fragment).  It is slow and exists to validate the production path
  and the hardware cycle counts on small inputs.

Both collect the statistics behind the paper's headline claims:
per-fragment FLOPs (11 -> 2), redundant-fragment skip rate (up to
92.3%), per-row workload imbalance (Fig. 9), and binary-search step
counts for the Row Generation Engine model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_SETTINGS, FLOPS, RenderSettings
from repro.errors import RenderError
from repro.gaussians.projection import Projected2D
from repro.gaussians.sorting import RenderLists, build_render_lists
from repro.core.transform import (
    IRSSTransform,
    binary_search_first_fragment,
    compute_transforms,
)


@dataclass
class IRSSStats:
    """Counters describing one IRSS render.

    Attributes
    ----------
    fragments_shaded:
        Fragments inside [first, last] segments (actually evaluated).
    fragments_pfs_equivalent:
        Fragments the PFS dataflow would have evaluated for the same
        instances (full tile rows) — the denominator of the skip rate.
    fragments_blended:
        Fragments that passed the threshold test and were blended.
    segments:
        Number of non-empty (instance, row) segments.
    rows_considered:
        Total (instance, row) pairs examined.
    rows_skipped_y:
        Rows rejected by the Step-1 ``y''^2 > Th`` test (Fig. 8b).
    rows_skipped_sign:
        Rows rejected by the Step-3 sign test.
    rows_skipped_empty:
        Rows where the interval fell between pixel centers.
    rows_terminated:
        Rows skipped because all their pixels had terminated.
    binary_search_rows:
        Rows that needed the binary search to locate the first fragment.
    binary_search_steps:
        Total binary-search iterations spent (Row Generation Engine).
    eq7_flops:
        FLOPs charged for Eq. 7 under the paper's convention: 11 per
        segment-first fragment, 2 per subsequent fragment.
    instances / instances_processed:
        Same meaning as in the PFS stats.
    """

    fragments_shaded: int = 0
    fragments_pfs_equivalent: int = 0
    fragments_blended: int = 0
    segments: int = 0
    rows_considered: int = 0
    rows_skipped_y: int = 0
    rows_skipped_sign: int = 0
    rows_skipped_empty: int = 0
    rows_terminated: int = 0
    binary_search_rows: int = 0
    binary_search_steps: int = 0
    eq7_flops: int = 0
    instances: int = 0
    instances_processed: int = 0

    @property
    def skip_rate(self) -> float:
        """Fraction of PFS-equivalent fragments that IRSS never touched
        (the paper reports up to 92.3% on static scenes)."""
        if self.fragments_pfs_equivalent == 0:
            return 0.0
        return 1.0 - self.fragments_shaded / self.fragments_pfs_equivalent

    @property
    def flops_per_fragment(self) -> float:
        """Average Eq. 7 FLOPs per shaded fragment (paper: -> 2-3)."""
        if self.fragments_shaded == 0:
            return 0.0
        return self.eq7_flops / self.fragments_shaded


@dataclass
class TileRowWorkload:
    """Per-tile, per-row fragment workload gathered during a render.

    The GBU tile-engine and the GPU SIMT models both schedule from
    these arrays rather than re-deriving geometry.

    Attributes
    ----------
    row_fragments:
        (n_tiles, tile_size) int64 — fragments shaded per image row of
        each tile (row index is local to the tile).
    row_segments:
        (n_tiles, tile_size) int64 — segments per row (each segment
        costs one setup in a Row PE).
    instance_max_run:
        (n_tiles,) int64 — sum over instances of the per-instance
        longest row segment.  A SIMT warp that maps rows to lanes is
        serialized by exactly this quantity.
    instance_setup:
        (n_tiles,) int64 — instances processed per tile (each pays one
        per-instance setup in a warp or generation engine).
    binary_search_steps:
        (n_tiles,) int64 — total search iterations (lane-serial view,
        used by the GPU kernel model).
    instance_search:
        (n_tiles,) int64 — instances with at least one searching row.
        The Row Generation Engine's comparator array searches all 16
        rows concurrently, so an instance pays one parallel search
        latency regardless of how many of its rows search.
    """

    row_fragments: np.ndarray
    row_segments: np.ndarray
    instance_max_run: np.ndarray
    instance_setup: np.ndarray
    binary_search_steps: np.ndarray
    instance_search: np.ndarray

    @property
    def n_tiles(self) -> int:
        return self.row_fragments.shape[0]

    def total_fragments(self) -> int:
        return int(self.row_fragments.sum())

    def row_utilization(self) -> float:
        """Mean ratio of row work to (16 x per-tile max row work): the
        SIMT lane utilization the paper measures at 18.9% (Sec. V-A
        uses per-warp max; this is the per-tile aggregate analogue)."""
        busy = self.row_fragments.sum(axis=1).astype(np.float64)
        slots = self.row_fragments.shape[1] * self.instance_max_run.astype(np.float64)
        mask = slots > 0
        if not np.any(mask):
            return 0.0
        return float(busy[mask].sum() / slots[mask].sum())


@dataclass
class IRSSRenderResult:
    """Image plus IRSS statistics and the per-row workload model."""

    image: np.ndarray
    transmittance: np.ndarray
    n_contrib: np.ndarray
    stats: IRSSStats
    workload: TileRowWorkload


def render_irss(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    transform: IRSSTransform | None = None,
    fp16: bool = False,
    backend: str | None = None,
) -> IRSSRenderResult:
    """Render with the IRSS dataflow through a selectable backend.

    Parameters
    ----------
    projected:
        Output of Rendering Step 1.
    lists:
        Depth-ordered render lists; built on demand.
    settings:
        Shared blending thresholds.
    transform:
        Precomputed IRSS transforms (e.g. from the D&B engine); built
        on demand via Cholesky.
    fp16:
        Emulate the GBU Row PE's fp16 datapath: Gaussian features and
        blending accumulators are quantized to half precision.  The
        skip logic still uses the fp16-quantized features, so the
        shaded fragment set may differ slightly from fp64 (this is the
        <0.1 PSNR effect of Tab. IV).
    backend:
        Rendering engine name ("reference", "vectorized", ...); every
        backend is pixel-exact, so this only selects an execution
        strategy.  ``None`` uses the process default (see
        :mod:`repro.render.backends`).
    """
    from repro.render.backends import resolve_backend

    return resolve_backend(backend).render_irss(
        projected, lists=lists, settings=settings, transform=transform, fp16=fp16
    )


def render_irss_loop(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    transform: IRSSTransform | None = None,
    fp16: bool = False,
) -> IRSSRenderResult:
    """The per-instance, row-vectorized IRSS loop (the "reference" backend)."""
    if lists is None:
        lists = build_render_lists(projected)
    if transform is None:
        transform = compute_transforms(
            projected.conics, projected.means2d, projected.thresholds
        )
    grid = lists.grid
    width, height = projected.image_size
    if (grid.width, grid.height) != (width, height):
        raise RenderError("tile grid does not match projection resolution")

    acc_dtype = np.float16 if fp16 else np.float64
    image = np.zeros((height, width, 3), dtype=acc_dtype)
    transmittance = np.ones((height, width), dtype=acc_dtype)
    n_contrib = np.zeros((height, width), dtype=np.int32)
    stats = IRSSStats()

    tile = grid.tile
    n_tiles = grid.n_tiles
    workload = TileRowWorkload(
        row_fragments=np.zeros((n_tiles, tile), dtype=np.int64),
        row_segments=np.zeros((n_tiles, tile), dtype=np.int64),
        instance_max_run=np.zeros(n_tiles, dtype=np.int64),
        instance_setup=np.zeros(n_tiles, dtype=np.int64),
        binary_search_steps=np.zeros(n_tiles, dtype=np.int64),
        instance_search=np.zeros(n_tiles, dtype=np.int64),
    )

    if fp16:
        features = _Fp16Features(projected, transform)
    else:
        features = None

    for tile_id in range(n_tiles):
        members = lists.per_tile[tile_id]
        stats.instances += len(members)
        if len(members) == 0:
            continue
        _render_tile_irss(
            tile_id, members, projected, transform, grid, settings,
            image, transmittance, n_contrib, stats, workload, features,
        )

    background = settings.background_array().astype(acc_dtype)
    image = image.astype(np.float64) + (
        transmittance.astype(np.float64)[:, :, None] * background.astype(np.float64)
    )
    return IRSSRenderResult(
        image=image,
        transmittance=transmittance.astype(np.float64),
        n_contrib=n_contrib,
        stats=stats,
        workload=workload,
    )


class _Fp16Features:
    """Per-Gaussian feature record quantized to the GBU's fp16 format.

    The Row Generation Engine forwards (position, color, opacity,
    threshold, y''^2, x'', dx'') to the Row PEs (Sec. V-C); in the GBU
    these travel as fp16.  Quantizing the transform coefficients and
    colors once per Gaussian reproduces that datapath.
    """

    def __init__(self, projected: Projected2D, transform: IRSSTransform) -> None:
        as16 = lambda arr: arr.astype(np.float16).astype(np.float64)
        self.u00 = as16(transform.u00)
        self.u01 = as16(transform.u01)
        self.u11 = as16(transform.u11)
        self.thresholds = as16(transform.thresholds)
        self.colors = as16(projected.colors)
        self.opacities = as16(projected.opacities)
        # Screen positions keep fp32-equivalent precision in hardware
        # (they are small integers plus a fraction); quantize means to
        # fp32 which is exact for our resolutions.
        self.means2d = transform.means2d.astype(np.float32).astype(np.float64)


def _render_tile_irss(
    tile_id: int,
    members: np.ndarray,
    projected: Projected2D,
    transform: IRSSTransform,
    grid,
    settings: RenderSettings,
    image: np.ndarray,
    transmittance: np.ndarray,
    n_contrib: np.ndarray,
    stats: IRSSStats,
    workload: TileRowWorkload,
    features: _Fp16Features | None,
) -> None:
    x0, y0, x1, y1 = grid.tile_bounds(tile_id)
    rows = y1 - y0
    cols = x1 - x0

    tile_rgb = image[y0:y1, x0:x1]
    tile_t = transmittance[y0:y1, x0:x1]
    tile_n = n_contrib[y0:y1, x0:x1]

    col_idx = np.arange(cols, dtype=np.float64)
    row_pix_y = np.arange(y0, y1, dtype=np.float64) + 0.5

    fp16 = features is not None
    eps = settings.transmittance_eps

    for g in members:
        live = tile_t > eps
        row_active = live.any(axis=1)
        if not row_active.any():
            break
        n_live_pixels = int(np.count_nonzero(live))
        stats.instances_processed += 1
        workload.instance_setup[tile_id] += 1
        stats.rows_considered += rows

        if fp16:
            u00 = features.u00[g]
            u01 = features.u01[g]
            u11 = features.u11[g]
            th = features.thresholds[g]
            mean = features.means2d[g]
            color = features.colors[g]
            opacity = features.opacities[g]
        else:
            u00 = float(transform.u00[g])
            u01 = float(transform.u01[g])
            u11 = float(transform.u11[g])
            th = float(transform.thresholds[g])
            mean = transform.means2d[g]
            color = projected.colors[g]
            opacity = float(projected.opacities[g])

        # Per-row transformed coordinates of the leftmost pixel center.
        dx_pix = x0 + 0.5 - mean[0]
        dy_pix = row_pix_y - mean[1]
        x_start = u00 * dx_pix + u01 * dy_pix        # x'' at column 0
        y_pp = u11 * dy_pix                           # y'' constant per row
        y_sq = y_pp * y_pp

        # Step 1: whole-row rejection.
        half_sq = th - y_sq
        intersects = half_sq >= 0.0
        stats.rows_skipped_y += int(np.count_nonzero(~intersects))

        half_w = np.sqrt(np.maximum(half_sq, 0.0))
        # Closed-form interval (matches the hardware binary search +
        # walk-off; property-tested in tests/core/test_transform.py).
        with np.errstate(invalid="ignore"):
            c0_raw = np.ceil((-half_w - x_start) / u00)
            c1_raw = np.floor((half_w - x_start) / u00)
        # Reject rows whose interval lies entirely outside the tile
        # before clamping (clamping must not fabricate fragments).
        in_tile = intersects & (c0_raw <= cols - 1) & (c1_raw >= 0)
        c0 = np.clip(np.where(in_tile, c0_raw, 0), 0, cols - 1).astype(np.int64)
        c1 = np.clip(np.where(in_tile, c1_raw, -1), -1, cols - 1).astype(np.int64)
        nonempty = in_tile & (c1 >= c0)

        # Sign test bookkeeping (Step 3): rows whose ellipse lies fully
        # to the left are rejected without a search (x'' and dx'' share
        # a sign); empty intervals to the right cost a failed search.
        outside_left = intersects & ~nonempty & (x_start > 0.0)
        stats.rows_skipped_sign += int(np.count_nonzero(outside_left))
        stats.rows_skipped_empty += int(
            np.count_nonzero(intersects & ~nonempty & ~outside_left)
        )

        # Binary search cost: rows whose leftmost fragment is outside
        # the circle yet an interval may exist to the right.
        needs_search = intersects & (x_start * x_start + y_sq > th) & ~outside_left
        n_search = int(np.count_nonzero(needs_search))
        stats.binary_search_rows += n_search
        search_steps = n_search * max(int(np.ceil(np.log2(max(cols, 2)))), 1)
        stats.binary_search_steps += search_steps
        workload.binary_search_steps[tile_id] += search_steps
        if n_search:
            workload.instance_search[tile_id] += 1

        terminated = nonempty & ~row_active
        stats.rows_terminated += int(np.count_nonzero(terminated))
        shaded_rows = nonempty & row_active
        stats.fragments_pfs_equivalent += n_live_pixels
        if not shaded_rows.any():
            continue

        seg_len = np.where(shaded_rows, c1 - c0 + 1, 0)
        n_frag = int(seg_len.sum())
        n_seg = int(np.count_nonzero(shaded_rows))
        stats.fragments_shaded += n_frag
        stats.segments += n_seg
        stats.eq7_flops += (
            n_seg * FLOPS.irss_flops_first_fragment
            + (n_frag - n_seg) * FLOPS.irss_flops_per_fragment
        )

        local_rows = np.nonzero(shaded_rows)[0]
        workload.row_fragments[tile_id, local_rows] += seg_len[local_rows]
        workload.row_segments[tile_id, local_rows] += 1
        workload.instance_max_run[tile_id] += int(seg_len.max())

        # Shade: E = x''^2 + y''^2 with x'' = x_start + c * dx''.
        xpp = x_start[:, None] + col_idx[None, :] * u00
        if fp16:
            xpp = xpp.astype(np.float16).astype(np.float64)
        power = xpp * xpp + y_sq[:, None]
        inside = (
            shaded_rows[:, None]
            & (col_idx[None, :] >= c0[:, None])
            & (col_idx[None, :] <= c1[:, None])
        )

        alpha = opacity * np.exp(-0.5 * power)
        if fp16:
            alpha = alpha.astype(np.float16).astype(np.float64)
        alpha = np.minimum(alpha, settings.alpha_max)
        blend = inside & (power <= th) & (tile_t > eps)
        k = int(np.count_nonzero(blend))
        if k == 0:
            continue
        stats.fragments_blended += k

        if fp16:
            t64 = tile_t.astype(np.float64)
            weight = np.where(blend, t64 * alpha, 0.0).astype(np.float16)
            tile_rgb += (weight[:, :, None].astype(np.float64)
                         * color[None, None, :]).astype(np.float16)
            tile_t *= np.where(blend, 1.0 - alpha, 1.0).astype(np.float16)
        else:
            weight = np.where(blend, tile_t * alpha, 0.0)
            tile_rgb += weight[:, :, None] * color[None, None, :]
            tile_t *= np.where(blend, 1.0 - alpha, 1.0)
        tile_n += blend.astype(np.int32)


def render_irss_sequential(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    transform: IRSSTransform | None = None,
) -> IRSSRenderResult:
    """Literal scalar IRSS implementation (validation path).

    Follows Sec. IV step by step: Step-1/2/3 first-fragment location
    (including the actual binary search), then sequential stepping
    ``x'' += dx''`` with walk-off detection of the last fragment.
    Orders of magnitude slower than :func:`render_irss`; use on small
    scenes only.
    """
    if lists is None:
        lists = build_render_lists(projected)
    if transform is None:
        transform = compute_transforms(
            projected.conics, projected.means2d, projected.thresholds
        )
    grid = lists.grid
    width, height = projected.image_size

    image = np.zeros((height, width, 3), dtype=np.float64)
    transmittance = np.ones((height, width), dtype=np.float64)
    n_contrib = np.zeros((height, width), dtype=np.int32)
    stats = IRSSStats()
    tile = grid.tile
    workload = TileRowWorkload(
        row_fragments=np.zeros((grid.n_tiles, tile), dtype=np.int64),
        row_segments=np.zeros((grid.n_tiles, tile), dtype=np.int64),
        instance_max_run=np.zeros(grid.n_tiles, dtype=np.int64),
        instance_setup=np.zeros(grid.n_tiles, dtype=np.int64),
        binary_search_steps=np.zeros(grid.n_tiles, dtype=np.int64),
        instance_search=np.zeros(grid.n_tiles, dtype=np.int64),
    )
    eps = settings.transmittance_eps

    for tile_id in range(grid.n_tiles):
        members = lists.per_tile[tile_id]
        stats.instances += len(members)
        if len(members) == 0:
            continue
        x0, y0, x1, y1 = grid.tile_bounds(tile_id)
        cols = x1 - x0
        for g in members:
            if not (transmittance[y0:y1, x0:x1] > eps).any():
                break
            stats.instances_processed += 1
            workload.instance_setup[tile_id] += 1
            max_run = 0
            searched = False
            th = float(transform.thresholds[g])
            dx = float(transform.u00[g])
            opacity = float(projected.opacities[g])
            color = projected.colors[g]
            for y in range(y0, y1):
                stats.rows_considered += 1
                row_t = transmittance[y, x0:x1]
                row_live = row_t > eps
                n_live = int(np.count_nonzero(row_live))
                stats.fragments_pfs_equivalent += n_live
                if n_live == 0:
                    continue
                first, steps = binary_search_first_fragment(
                    transform, g, x0, y, cols
                )
                stats.binary_search_steps += steps
                workload.binary_search_steps[tile_id] += steps
                if steps > 0:
                    stats.binary_search_rows += 1
                    searched = True
                if first < 0:
                    x_start, ypp = transform.row_start(g, x0, y)
                    if ypp * ypp > th:
                        stats.rows_skipped_y += 1
                    elif x_start > 0:
                        stats.rows_skipped_sign += 1
                    else:
                        stats.rows_skipped_empty += 1
                    continue
                x_start, ypp = transform.row_start(g, x0, y)
                y_sq = ypp * ypp
                stats.segments += 1
                local_row = y - y0
                workload.row_segments[tile_id, local_row] += 1
                # Sequential shading with walk-off detection.
                col = first
                xpp = x_start + first * dx
                run = 0
                first_in_segment = True
                while col < cols:
                    power = xpp * xpp + y_sq
                    if power > th:
                        break  # last fragment passed (Sec. IV-C)
                    stats.fragments_shaded += 1
                    run += 1
                    stats.eq7_flops += (
                        FLOPS.irss_flops_first_fragment
                        if first_in_segment
                        else FLOPS.irss_flops_per_fragment
                    )
                    first_in_segment = False
                    px = x0 + col
                    t_here = transmittance[y, px]
                    if t_here > eps:
                        alpha = min(
                            opacity * np.exp(-0.5 * power), settings.alpha_max
                        )
                        image[y, px] += t_here * alpha * color
                        transmittance[y, px] = t_here * (1.0 - alpha)
                        n_contrib[y, px] += 1
                        stats.fragments_blended += 1
                    col += 1
                    xpp += dx
                workload.row_fragments[tile_id, local_row] += run
                max_run = max(max_run, run)
            workload.instance_max_run[tile_id] += max_run
            if searched:
                workload.instance_search[tile_id] += 1

    background = settings.background_array()
    image += transmittance[:, :, None] * background[None, None, :]
    return IRSSRenderResult(
        image=image,
        transmittance=transmittance,
        n_contrib=n_contrib,
        stats=stats,
        workload=workload,
    )
