"""The IRSS two-step coordinate transformation (Sec. IV-B).

The paper exposes sharable intermediates by transforming pixel
coordinates twice:

* ``P -> P'``: an eigenvalue decomposition of the conic
  ``Sigma*^-1 = Q D Q^T`` gives ``P' = D^{1/2} Q^T (P - mu*)`` so that
  Eq. 7 equals ``||P'||^2`` — the anisotropic Gaussian becomes an
  isotropic circle (Fig. 7b).
* ``P' -> P''``: a rotation ``Theta`` aligns the inter-column step
  ``Delta P'`` with the x''-axis (Fig. 7c), so that moving one pixel
  right changes only ``x''`` and ``y''^2`` is constant along a row.

The composition ``U = Theta D^{1/2} Q^T`` maps the column step to
``(dx'', 0)`` and is therefore *upper triangular* with positive
diagonal — i.e. the two-step transform is exactly the Cholesky factor
of the conic:

    U = [[sqrt(a),  b / sqrt(a)          ],
         [0,        sqrt(c - b^2 / a)    ]],    U^T U = Sigma*^-1.

Both construction routes are implemented; a property test asserts they
agree (up to the sign of each row, which does not affect distances).
All quantities needed by the hardware are derived here:
``dx'' = sqrt(a)`` (column step), the row steps, and the per-row
closed-form intersection interval used for redundancy skipping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

# Guard against degenerate conics; dilation in projection keeps
# eigenvalues well above this in practice.
_MIN_DIAG = 1e-12


@dataclass
class IRSSTransform:
    """Per-Gaussian IRSS stepping coefficients, vectorized over M
    Gaussians.

    With ``U`` the upper-triangular transform and pixel centers
    ``P = (x + 0.5, y + 0.5)``, the transformed coordinates obey:

    * moving right one pixel:  ``x'' += dx_col``; ``y''`` unchanged,
    * moving down one pixel:   ``x'' += dx_row``; ``y'' += dy_row``.

    Attributes
    ----------
    u00, u01, u11:
        Entries of ``U`` (``u10`` is zero by construction).
    means2d:
        (M, 2) screen-space centers the transforms are anchored at.
    thresholds:
        (M,) Mahalanobis-squared truncation thresholds ``Th``.
    """

    u00: np.ndarray
    u01: np.ndarray
    u11: np.ndarray
    means2d: np.ndarray
    thresholds: np.ndarray

    def __len__(self) -> int:
        return self.u00.shape[0]

    # -- per-Gaussian steps ------------------------------------------------
    @property
    def dx_col(self) -> np.ndarray:
        """x'' increment per one-pixel step right (= sqrt(conic a))."""
        return self.u00

    @property
    def dx_row(self) -> np.ndarray:
        """x'' increment per one-pixel step down."""
        return self.u01

    @property
    def dy_row(self) -> np.ndarray:
        """y'' increment per one-pixel step down."""
        return self.u11

    def transform_point(self, index: int, point: np.ndarray) -> np.ndarray:
        """Map a pixel-space point to P''-space for Gaussian ``index``."""
        d = np.asarray(point, dtype=np.float64) - self.means2d[index]
        return np.array(
            [self.u00[index] * d[0] + self.u01[index] * d[1], self.u11[index] * d[1]]
        )

    def mahalanobis_sq(self, index: int, points: np.ndarray) -> np.ndarray:
        """Eq. 7 via ``||P''||^2`` for a batch of pixel-space points."""
        points = np.asarray(points, dtype=np.float64)
        d = points - self.means2d[index]
        xpp = self.u00[index] * d[:, 0] + self.u01[index] * d[:, 1]
        ypp = self.u11[index] * d[:, 1]
        return xpp * xpp + ypp * ypp

    # -- row geometry ------------------------------------------------------
    def row_start(self, index: int, x0: float, y: float) -> tuple[float, float]:
        """(x'', y'') of the pixel center ``(x0 + 0.5, y + 0.5)``.

        ``x0`` and ``y`` are integer pixel coordinates of a row's
        leftmost fragment (e.g. a tile's left edge).
        """
        dx = x0 + 0.5 - self.means2d[index, 0]
        dy = y + 0.5 - self.means2d[index, 1]
        return (
            float(self.u00[index] * dx + self.u01[index] * dy),
            float(self.u11[index] * dy),
        )

    def row_interval(
        self, index: int, x0: int, y: int, width: int
    ) -> tuple[int, int]:
        """Closed-form first/last significant column in a row.

        Returns column offsets ``(c0, c1)`` relative to ``x0`` such
        that pixel centers ``x0 + c`` for ``c in [c0, c1]`` satisfy
        ``x''^2 + y''^2 <= Th``; returns ``(0, -1)`` when the row does
        not intersect the truncated Gaussian.  This is the oracle the
        hardware's binary search must agree with (Sec. IV-C).
        """
        th = float(self.thresholds[index])
        x_start, ypp = self.row_start(index, x0, y)
        remaining = th - ypp * ypp
        if remaining < 0.0:
            return (0, -1)
        half_width = np.sqrt(remaining)
        dx = float(self.u00[index])
        if dx <= 0.0:
            raise ValidationError("dx_col must be positive for a valid conic")
        # x''(c) = x_start + c * dx in [-half_width, +half_width].
        c0 = int(np.ceil((-half_width - x_start) / dx))
        c1 = int(np.floor((half_width - x_start) / dx))
        c0 = max(c0, 0)
        c1 = min(c1, width - 1)
        if c0 > c1:
            return (0, -1)
        return (c0, c1)


def _validate_conics(conics: np.ndarray) -> np.ndarray:
    conics = np.asarray(conics, dtype=np.float64)
    if conics.ndim != 2 or conics.shape[1] != 3:
        raise ValidationError(f"conics must be (M, 3), got {conics.shape}")
    return conics


def compute_transforms(
    conics: np.ndarray, means2d: np.ndarray, thresholds: np.ndarray
) -> IRSSTransform:
    """Build IRSS transforms for all Gaussians via Cholesky (fast path).

    The conic ``[[a, b], [b, c]]`` must be symmetric positive definite
    (guaranteed by the low-pass dilation in projection).  The Cholesky
    factorization is algebraically identical to the paper's EVD +
    rotation construction (see module docstring); the EVD route is
    kept in :func:`compute_transforms_evd` for validation.
    """
    conics = _validate_conics(conics)
    means2d = np.asarray(means2d, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    a = conics[:, 0]
    b = conics[:, 1]
    c = conics[:, 2]
    if np.any(a <= _MIN_DIAG):
        raise ValidationError("conic 'a' entries must be positive")
    u00 = np.sqrt(a)
    u01 = b / u00
    rest = c - u01 * u01
    if np.any(rest <= _MIN_DIAG):
        raise ValidationError("conic is not positive definite")
    u11 = np.sqrt(rest)
    return IRSSTransform(
        u00=u00, u01=u01, u11=u11, means2d=means2d, thresholds=thresholds
    )


def compute_transforms_evd(
    conics: np.ndarray, means2d: np.ndarray, thresholds: np.ndarray
) -> IRSSTransform:
    """Build IRSS transforms following the paper's construction
    literally: EVD of the conic, then the row-aligning rotation.

    For each Gaussian:

    1. ``Sigma*^-1 = Q D Q^T``  (Eq. 8-9), giving ``M = D^{1/2} Q^T``
       with ``P' = M (P - mu*)``.
    2. ``Delta P' = M e_x`` is the inter-column step; ``Theta`` rotates
       it onto the x'-axis (Eq. 13).
    3. ``U = Theta M``; the signs of the rows are normalized so the
       diagonal is positive (a reflection does not change ``||P''||``).
    """
    conics = _validate_conics(conics)
    means2d = np.asarray(means2d, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    m = conics.shape[0]
    u00 = np.empty(m)
    u01 = np.empty(m)
    u11 = np.empty(m)
    for i in range(m):
        a, b, c = conics[i]
        mat = np.array([[a, b], [b, c]])
        eigenvalues, q = np.linalg.eigh(mat)
        if np.any(eigenvalues <= _MIN_DIAG):
            raise ValidationError("conic is not positive definite")
        half = np.diag(np.sqrt(eigenvalues)) @ q.T
        step = half @ np.array([1.0, 0.0])
        norm = np.linalg.norm(step)
        cos_t = step[0] / norm
        sin_t = step[1] / norm
        theta = np.array([[cos_t, sin_t], [-sin_t, cos_t]])
        u = theta @ half
        # Theta maps the column step to (norm, 0); numerical noise can
        # leave a tiny u[1, 0], which we zero by construction.
        if u[1, 1] < 0:
            u[1, :] = -u[1, :]
        u00[i] = u[0, 0]
        u01[i] = u[0, 1]
        u11[i] = u[1, 1]
    return IRSSTransform(
        u00=u00, u01=u01, u11=u11, means2d=means2d, thresholds=thresholds
    )


def binary_search_first_fragment(
    transform: IRSSTransform, index: int, x0: int, y: int, width: int
) -> tuple[int, int]:
    """The hardware's 3-step first-fragment location (Sec. IV-C).

    Implements the paper's algorithm literally and returns
    ``(first_column, search_steps)`` where ``search_steps`` counts the
    binary-search iterations the Row Generation Engine would spend
    (zero when steps 1-2 decide immediately).  Returns ``(-1, steps)``
    when no fragment in the row intersects the Gaussian.
    """
    th = float(transform.thresholds[index])
    x_start, ypp = transform.row_start(index, x0, y)
    y_sq = ypp * ypp
    # Step 1: whole-row rejection on y''^2.
    if y_sq > th:
        return (-1, 0)
    dx = float(transform.u00[index])
    # Step 2: leftmost fragment already inside.
    if x_start * x_start + y_sq <= th:
        return (0, 0)
    # Step 3: sign agreement means the ellipse lies left of the tile
    # (x'' grows away from zero) -> no intersection in this tile...
    if x_start > 0.0 and dx > 0.0:
        return (-1, 0)
    # ...otherwise binary search for the first inside column.
    lo, hi = 0, width - 1
    steps = 0
    # Invariant: column lo-1 (or the left edge) is outside; search the
    # first c with x''(c)^2 + y''^2 <= th.
    first = -1
    while lo <= hi:
        steps += 1
        midpoint = (lo + hi) // 2
        x_mid = x_start + midpoint * dx
        if x_mid * x_mid + y_sq <= th:
            first = midpoint
            hi = midpoint - 1
        else:
            # Decide which side of the circle we are on.
            if x_mid < 0.0:
                lo = midpoint + 1
            else:
                hi = midpoint - 1
    return (first, steps)


def walk_last_fragment(
    transform: IRSSTransform, index: int, x0: int, y: int, first: int, width: int
) -> int:
    """Sequential walk-off detection of the last fragment (Sec. IV-C).

    Starting from ``first``, steps right until ``x''^2 + y''^2 > Th``;
    the previous column is the last significant fragment.  This mirrors
    the Row PE behavior: the walk itself is the shading loop, so it
    costs no extra cycles.
    """
    th = float(transform.thresholds[index])
    x_start, ypp = transform.row_start(index, x0, y)
    y_sq = ypp * ypp
    dx = float(transform.u00[index])
    col = first
    xpp = x_start + first * dx
    while col < width:
        if xpp * xpp + y_sq > th:
            return col - 1
        col += 1
        xpp += dx
    return width - 1
