"""Aggregate FLOP accounting for the PFS vs IRSS comparison (Fig. 6).

The paper's Challenge 1 quantifies Rendering Step 3's arithmetic by
the cost of Eq. 7: 11 FLOPs per fragment under PFS, 2 FLOPs per
fragment under IRSS after the two-step transform (3 FLOPs with only
the first transform), for an up-to-5.5x per-fragment reduction.  This
module turns the counters collected by the rasterizers into the
figures the paper reports, including the "1.1 TFLOPs at 60 FPS = 58%
of Orin NX peak" style projections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FLOPS
from repro.core.irss import IRSSStats
from repro.gaussians.rasterizer import RenderStats


@dataclass(frozen=True)
class DataflowComparison:
    """Side-by-side Eq. 7 workload of the two dataflows on one frame.

    Attributes
    ----------
    pfs_fragments / irss_fragments:
        Fragments evaluated by each dataflow.
    pfs_flops / irss_flops:
        Eq. 7 FLOPs charged under the paper's convention.
    """

    pfs_fragments: int
    pfs_flops: int
    irss_fragments: int
    irss_flops: int

    @property
    def fragment_skip_rate(self) -> float:
        """Fraction of PFS fragments IRSS never evaluated (<= 92.3%)."""
        if self.pfs_fragments == 0:
            return 0.0
        return 1.0 - self.irss_fragments / self.pfs_fragments

    @property
    def per_fragment_reduction(self) -> float:
        """PFS / IRSS FLOPs per *shaded* fragment (paper: up to 5.5x)."""
        if self.irss_fragments == 0 or self.irss_flops == 0:
            return 0.0
        irss_per_fragment = self.irss_flops / self.irss_fragments
        return FLOPS.pfs_flops_per_fragment / irss_per_fragment

    @property
    def total_flop_reduction(self) -> float:
        """Combined effect of compute sharing and redundancy skipping."""
        if self.irss_flops == 0:
            return 0.0
        return self.pfs_flops / self.irss_flops


def compare_dataflows(pfs: RenderStats, irss: IRSSStats) -> DataflowComparison:
    """Build a :class:`DataflowComparison` from per-frame statistics."""
    return DataflowComparison(
        pfs_fragments=pfs.fragments_shaded,
        pfs_flops=pfs.eq7_flops,
        irss_fragments=irss.fragments_shaded,
        irss_flops=irss.eq7_flops,
    )


def tflops_for_target_fps(eq7_flops_per_frame: float, fps: float = 60.0) -> float:
    """Eq. 7 TFLOPs/s needed to sustain ``fps`` (Challenge 1 framing)."""
    return eq7_flops_per_frame * fps / 1e12


def peak_fraction(tflops_required: float, peak_tflops: float) -> float:
    """Fraction of a device's peak arithmetic the workload demands."""
    if peak_tflops <= 0:
        return float("inf")
    return tflops_required / peak_tflops
