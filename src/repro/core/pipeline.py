"""The two-level pipeline between GPU, D&B engine and Tile PE
(Sec. V-E, Fig. 13).

Level 1 — frame pipeline: while the GBU blends frame ``k``, the GPU
runs Rendering Steps 1-2 of frame ``k+1`` out of a double buffer in
DRAM.  In steady state the frame time is the maximum of the two sides
plus a synchronization overhead (the ``GBU_check_status`` handshake).

Level 2 — chunk pipeline: within the GBU, the depth-ordered Gaussians
are split into chunks; once the D&B engine has binned a chunk the Tile
PE starts on it, overlapping binning with blending.  With ``n`` equal
chunks the makespan approaches ``max(a, b) + min(a, b)/n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class PipelinedFrame:
    """Steady-state timing of the GPU/GBU frame pipeline.

    Attributes
    ----------
    gpu_seconds:
        Steps 1-2 (and any residual work) on the GPU.
    gbu_seconds:
        Step 3 on the GBU (including its memory stalls).
    sync_seconds:
        Handshake/double-buffer turnaround per frame.
    """

    gpu_seconds: float
    gbu_seconds: float
    sync_seconds: float = 0.0

    @property
    def frame_seconds(self) -> float:
        """Steady-state frame latency (pipelined)."""
        return max(self.gpu_seconds, self.gbu_seconds) + self.sync_seconds

    @property
    def unpipelined_seconds(self) -> float:
        """Frame time if GPU and GBU ran back to back."""
        return self.gpu_seconds + self.gbu_seconds + self.sync_seconds

    @property
    def fps(self) -> float:
        return 1.0 / self.frame_seconds

    @property
    def pipeline_gain(self) -> float:
        """Speedup contributed by overlapping the two sides."""
        return self.unpipelined_seconds / self.frame_seconds

    @property
    def bottleneck(self) -> str:
        return "gbu" if self.gbu_seconds >= self.gpu_seconds else "gpu"


def chunked_overlap_seconds(
    producer_seconds: float, consumer_seconds: float, n_chunks: int
) -> float:
    """Makespan of a two-stage pipeline over ``n_chunks`` equal chunks.

    The classic result: the slower stage runs continuously after a
    fill delay of one producer chunk, so

        makespan = max(a, b) + min(a, b) / n_chunks.
    """
    if n_chunks <= 0:
        raise ValidationError("n_chunks must be positive")
    if producer_seconds < 0 or consumer_seconds < 0:
        raise ValidationError("stage times cannot be negative")
    a, b = producer_seconds, consumer_seconds
    return max(a, b) + min(a, b) / n_chunks


def chunk_count(n_gaussians: int, chunk_size: int) -> int:
    """Number of depth-ordered chunks the D&B engine processes."""
    if chunk_size <= 0:
        raise ValidationError("chunk_size must be positive")
    return max((n_gaussians + chunk_size - 1) // chunk_size, 1)
