"""The Decomposition & Binning engine (Sec. V-D / V-E).

The D&B engine offloads two pieces of work from the GPU:

1. the per-Gaussian transform coefficients of the IRSS dataflow (the
   Cholesky/EVD "decomposition"), and
2. the Gaussian-tile intersection test ("binning"), performed exactly
   by adapting the IRSS row-intersection algorithm to tile rows —
   strictly tighter than the GPU's conservative AABB duplication.

As a by-product of binning it emits the per-access reuse distances the
Gaussian Reuse Cache consumes (Fig. 12a).  With the D&B engine active
the GPU's Rendering Step 2 shrinks to a depth sort over *Gaussians*
(not instances), because chunked depth-ordered binning preserves the
per-tile depth order (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.transform import IRSSTransform, compute_transforms
from repro.errors import ValidationError
from repro.gaussians.projection import Projected2D
from repro.gaussians.sorting import RenderLists, build_render_lists
from repro.gaussians.tiles import TileGrid, bin_gaussians, exact_tile_intersections
from repro.gpu.calibration import DEFAULT_GBU_CALIBRATION, GBUCalibration


@dataclass(frozen=True)
class DnBReport:
    """Work accounting for one frame of the D&B engine.

    Attributes
    ----------
    n_gaussians:
        Gaussians decomposed (transform coefficients computed).
    candidate_pairs:
        (tile, Gaussian) pairs tested (the conservative AABB set).
    exact_pairs:
        Pairs that survived the exact intersection test.
    cycles:
        Engine cycles for the frame.
    """

    n_gaussians: int
    candidate_pairs: int
    exact_pairs: int
    cycles: float

    @property
    def pair_reduction(self) -> float:
        """Fraction of conservative instances eliminated by the exact
        test (extra work the Tile PE and cache never see)."""
        if self.candidate_pairs == 0:
            return 0.0
        return 1.0 - self.exact_pairs / self.candidate_pairs


@dataclass
class DnBOutput:
    """Everything the D&B engine hands downstream."""

    lists: RenderLists
    transform: IRSSTransform
    report: DnBReport


def run_dnb(
    projected: Projected2D,
    grid: TileGrid | None = None,
    calib: GBUCalibration = DEFAULT_GBU_CALIBRATION,
    exact: bool = True,
) -> DnBOutput:
    """Execute the D&B engine for one frame.

    Parameters
    ----------
    projected:
        Step-1 output (from the GPU).
    grid:
        Tile grid; defaults to the projection's image size.
    exact:
        Use the exact ellipse-tile test (the engine's design point);
        ``False`` falls back to AABB binning for ablation.
    """
    if grid is None:
        width, height = projected.image_size
        grid = TileGrid(width=width, height=height)

    conservative = bin_gaussians(grid, projected.means2d, projected.radii)
    candidate_pairs = int(sum(len(t) for t in conservative))
    if exact:
        per_tile = exact_tile_intersections(
            grid,
            projected.means2d,
            projected.radii,
            projected.conics,
            projected.thresholds,
        )
    else:
        per_tile = conservative
    exact_pairs = int(sum(len(t) for t in per_tile))

    lists = build_render_lists(projected, grid=grid, per_tile=per_tile)
    transform = compute_transforms(
        projected.conics, projected.means2d, projected.thresholds
    )
    cycles = (
        len(projected) * calib.dnb_transform_cycles
        + candidate_pairs * calib.dnb_test_cycles
    )
    return DnBOutput(
        lists=lists,
        transform=transform,
        report=DnBReport(
            n_gaussians=len(projected),
            candidate_pairs=candidate_pairs,
            exact_pairs=exact_pairs,
            cycles=float(cycles),
        ),
    )


def reuse_distance_table(lists: RenderLists) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the cache's access trace and per-access tile ids.

    Returns ``(trace, tile_of_access)`` — the inputs of the reuse cache
    simulation; this is the Fig. 12(a) precomputation.
    """
    trace = lists.gaussian_access_sequence()
    counts = lists.instances_per_tile()
    tile_of_access = np.repeat(np.arange(lists.grid.n_tiles, dtype=np.int64), counts)
    if tile_of_access.shape != trace.shape:
        raise ValidationError("trace/tile alignment failure")
    return trace, tile_of_access
