"""The Gaussian Reuse Cache (Sec. V-D).

The tile engine touches one Gaussian feature record per (tile,
Gaussian) instance, in a fully deterministic order: tiles are walked
in traversal order and each tile reads its depth-sorted Gaussian list.
Because the Decomposition & Binning engine knows this sequence ahead
of time, the cache can precompute each access's *reuse distance* — the
tile index at which the feature will be needed again — and evict the
line whose next use is farthest away.  At tile granularity this is
Belady's optimal policy, realizable in hardware precisely because the
access trace is precomputable (the paper's key insight, Fig. 12).

This module simulates the RD policy together with LRU and FIFO
baselines used by the ablation study, and provides the size sweep of
Fig. 17.

Two simulation modes are provided:

* **Cold (single frame)** — :class:`ReuseDistanceCache` /
  :class:`LRUCache` / :class:`FIFOCache` start from an empty cache,
  exactly as the paper evaluates one frame in isolation.
* **Temporal (streaming)** — :class:`TemporalReuseSimulator` keeps the
  resident set alive *across* frames, modeling a head-tracked stream
  where consecutive frames touch largely overlapping Gaussian sets.
  Lines carried over from earlier frames serve *inter-frame* hits that
  a cold cache would miss; per-frame and cumulative hit rates are
  reported so serving layers (``repro.stream``) can quantify
  cross-frame reuse.  Callers must key the trace by a frame-stable
  Gaussian identity (e.g. ``Projected2D.source_index``) — per-frame
  visible indices are not comparable across frames.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, ValidationError


@dataclass(frozen=True)
class CacheEconomics:
    """One cache's hit-rate / traffic economics, in a single shape.

    Two cache families live in this repository: the per-frame feature
    reuse cache of this module (reported through :class:`CacheReport`)
    and the tiered content-addressed render cache of
    :mod:`repro.stream.content_cache`.  Both ultimately answer the
    same two questions — what fraction of accesses hit, and what
    fraction of demanded bytes never went downstream — so both derive
    those answers from this one dataclass.  :attr:`CacheReport.hit_rate`
    and :attr:`CacheReport.traffic_reduction` delegate here (with
    bit-identical arithmetic), and the fleet's per-tier economics are
    sums of these objects, so the two report shapes cannot drift apart.

    Attributes
    ----------
    accesses / hits / misses:
        Access counters (one access per lookup).
    miss_bytes / total_bytes:
        Bytes fetched past this cache vs. bytes demanded of it.  Kept
        as explicit counters, not derived from the hit counters: lines
        (or cached frames) need not all cost the same bytes.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    miss_bytes: float = 0.0
    total_bytes: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def traffic_reduction(self) -> float:
        """Fraction of demanded bytes this cache kept from going
        downstream (the paper's Fig. 17 metric at the feature level)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.miss_bytes / self.total_bytes

    def __add__(self, other: "CacheEconomics") -> "CacheEconomics":
        return CacheEconomics(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            miss_bytes=self.miss_bytes + other.miss_bytes,
            total_bytes=self.total_bytes + other.total_bytes,
        )

    def to_dict(self) -> dict:
        """JSON-safe view (counters plus the derived rates)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_bytes": self.miss_bytes,
            "total_bytes": self.total_bytes,
            "hit_rate": self.hit_rate,
            "traffic_reduction": self.traffic_reduction,
        }


@dataclass(frozen=True)
class CacheReport:
    """Outcome of simulating one frame of feature fetches.

    Attributes
    ----------
    accesses / hits / misses:
        Access counters (one access per (tile, Gaussian) instance).
    capacity_lines:
        Cache capacity in feature records.
    bytes_per_line:
        Feature record size.
    """

    accesses: int
    hits: int
    misses: int
    capacity_lines: int
    bytes_per_line: int

    @property
    def economics(self) -> CacheEconomics:
        """This report's counters in the shared economics shape.

        The byte counters are computed from ``bytes_per_line`` here —
        uniform line size is a property of *this* cache family, not of
        the shared dataclass.
        """
        return CacheEconomics(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            miss_bytes=self.misses * self.bytes_per_line,
            total_bytes=self.accesses * self.bytes_per_line,
        )

    @property
    def hit_rate(self) -> float:
        return self.economics.hit_rate

    @property
    def miss_bytes(self) -> float:
        return self.misses * self.bytes_per_line

    @property
    def total_bytes(self) -> float:
        return self.accesses * self.bytes_per_line

    @property
    def traffic_reduction(self) -> float:
        """Fraction of off-chip feature traffic removed (paper: 44.9%).

        Delegates to :attr:`CacheEconomics.traffic_reduction` over the
        byte counters (``miss_bytes`` vs ``total_bytes``), not copied
        from :attr:`hit_rate`: the two coincide only while every line
        costs the same ``bytes_per_line``, and deriving both from one
        formula would silently hide a future non-uniform line size.
        """
        return self.economics.traffic_reduction


def _validate_trace(trace: np.ndarray, tile_of_access: np.ndarray) -> None:
    if trace.shape != tile_of_access.shape:
        raise ValidationError("trace and tile ids must be aligned")
    if trace.ndim != 1:
        raise ValidationError("trace must be one-dimensional")


def next_use_tiles(trace: np.ndarray, tile_of_access: np.ndarray) -> np.ndarray:
    """For each access, the tile index of the same Gaussian's next
    access (``+inf`` when never reused).

    This is the quantity the D&B engine precomputes per (tile,
    Gaussian) pair in Fig. 12(a).
    """
    _validate_trace(trace, tile_of_access)
    n = trace.shape[0]
    next_use = np.full(n, np.inf)
    last_seen: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        g = int(trace[i])
        j = last_seen.get(g)
        if j is not None:
            next_use[i] = tile_of_access[j]
        last_seen[g] = i
    return next_use


class ReuseDistanceCache:
    """The paper's cache: evict the line whose precomputed next use is
    farthest in the tile traversal (optimal at tile granularity).

    Implementation notes: a lazy max-heap keyed by next-use tile holds
    eviction candidates; stale entries (superseded by a hit's Step-4
    update) are skipped on pop.  A global tile counter mirrors the
    hardware's subtract-and-compare (Fig. 12b), though simulating with
    absolute tile indices is equivalent.
    """

    def __init__(self, capacity_lines: int, bytes_per_line: int = 32) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line

    def simulate(
        self, trace: np.ndarray, tile_of_access: np.ndarray
    ) -> CacheReport:
        _validate_trace(trace, tile_of_access)
        n = trace.shape[0]
        if self.capacity_lines == 0:
            return CacheReport(n, 0, n, 0, self.bytes_per_line)

        next_use = next_use_tiles(trace, tile_of_access)
        resident: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        hits = 0
        for i in range(n):
            g = int(trace[i])
            nu = float(next_use[i])
            if g in resident:
                hits += 1
                # Step 4: refresh the line's reuse distance.
                resident[g] = nu
                heapq.heappush(heap, (-nu, g))
                continue
            # Miss: evict the farthest-reuse line if full (Steps 2-3).
            if len(resident) >= self.capacity_lines:
                while heap:
                    neg_nu, victim = heapq.heappop(heap)
                    if victim in resident and resident[victim] == -neg_nu:
                        del resident[victim]
                        break
                else:
                    raise SimulationError("eviction heap exhausted with full cache")
            resident[g] = nu
            heapq.heappush(heap, (-nu, g))
        return CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line)


class LRUCache:
    """Least-recently-used baseline (what a generic cache would do)."""

    def __init__(self, capacity_lines: int, bytes_per_line: int = 32) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line

    def simulate(
        self, trace: np.ndarray, tile_of_access: np.ndarray | None = None
    ) -> CacheReport:
        n = trace.shape[0]
        if self.capacity_lines == 0:
            return CacheReport(n, 0, n, 0, self.bytes_per_line)
        # dict preserves insertion order: re-inserting on touch gives LRU.
        resident: dict[int, None] = {}
        hits = 0
        for i in range(n):
            g = int(trace[i])
            if g in resident:
                hits += 1
                del resident[g]
            elif len(resident) >= self.capacity_lines:
                oldest = next(iter(resident))
                del resident[oldest]
            resident[g] = None
        return CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line)


class FIFOCache:
    """First-in-first-out baseline."""

    def __init__(self, capacity_lines: int, bytes_per_line: int = 32) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line

    def simulate(
        self, trace: np.ndarray, tile_of_access: np.ndarray | None = None
    ) -> CacheReport:
        n = trace.shape[0]
        if self.capacity_lines == 0:
            return CacheReport(n, 0, n, 0, self.bytes_per_line)
        resident: dict[int, None] = {}
        hits = 0
        for i in range(n):
            g = int(trace[i])
            if g in resident:
                hits += 1
                continue
            if len(resident) >= self.capacity_lines:
                oldest = next(iter(resident))
                del resident[oldest]
            resident[g] = None
        return CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line)


POLICIES = {
    "reuse_distance": ReuseDistanceCache,
    "lru": LRUCache,
    "fifo": FIFOCache,
}


@dataclass(frozen=True)
class FrameCacheSample:
    """One frame of a :class:`TemporalReuseSimulator` run.

    Attributes
    ----------
    frame:
        0-based index of the frame within the stream.
    report:
        The frame's own access counters (warm-start state included).
    carried_hits:
        Hits served by lines that were already resident when the frame
        began — the *inter-frame* reuse a cold cache cannot capture.
    cumulative_accesses / cumulative_hits:
        Running totals over the stream up to and including this frame.
    """

    frame: int
    report: CacheReport
    carried_hits: int
    cumulative_accesses: int
    cumulative_hits: int

    @property
    def cumulative_hit_rate(self) -> float:
        if self.cumulative_accesses == 0:
            return 0.0
        return self.cumulative_hits / self.cumulative_accesses

    @property
    def carried_hit_rate(self) -> float:
        """Fraction of this frame's accesses served by carried lines."""
        if self.report.accesses == 0:
            return 0.0
        return self.carried_hits / self.report.accesses


@dataclass(frozen=True)
class TemporalCacheState:
    """Portable snapshot of a :class:`TemporalReuseSimulator`.

    What crosses a process boundary when a stream session is
    checkpointed (``repro.stream.checkpoint``): the resident line ids
    in cache order plus the cumulative counters.  This is sufficient
    for byte-identical continuation because no policy consults the
    stored per-line *values* across a frame boundary — reuse-distance
    re-keys every carried line with its first use in the incoming
    trace, and LRU/FIFO only use the dict *order* (which
    ``resident_ids`` preserves).
    """

    policy: str
    capacity_lines: int
    bytes_per_line: int
    resident_ids: tuple[int, ...]
    frames_observed: int
    cumulative_accesses: int
    cumulative_hits: int

    @property
    def resident_lines(self) -> int:
        return len(self.resident_ids)


class TemporalReuseSimulator:
    """Streaming (cross-frame) mode of the Gaussian Reuse Cache.

    The simulator owns the resident set and is fed one frame trace at a
    time through :meth:`observe_frame`.  Frame 0 starts cold, so its
    report equals the single-frame simulation; every later frame starts
    from the previous frame's resident lines.

    For the reuse-distance policy, carried lines are re-keyed at the
    start of every frame with their *first* use tile in the incoming
    trace (``+inf`` when the Gaussian is not referenced this frame), so
    eviction decisions stay Belady-optimal at tile granularity within
    the frame.  LRU and FIFO carry their recency/arrival order across
    the frame boundary unchanged.

    :meth:`export_state` / :meth:`import_state` snapshot and restore
    the cross-frame state (resident set + cumulative counters), which
    is what session checkpointing and worker-crash recovery in
    ``repro.stream`` are built on.
    """

    def __init__(
        self,
        capacity_lines: int,
        bytes_per_line: int = 32,
        policy: str = "reuse_distance",
    ) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        if policy not in POLICIES:
            raise ValidationError(f"unknown cache policy '{policy}'")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line
        self.policy = policy
        self._resident: dict[int, float] = {}
        self._samples: list[FrameCacheSample] = []
        self._frames_observed = 0
        self._cum_accesses = 0
        self._cum_hits = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all resident lines and frame history (cold restart)."""
        self._resident.clear()
        self._samples.clear()
        self._frames_observed = 0
        self._cum_accesses = 0
        self._cum_hits = 0

    def flush_resident(self) -> None:
        """Invalidate resident lines, keeping the cumulative counters.

        Used by adaptive-quality streams (:mod:`repro.stream.qos`)
        when a session switches detail: feature records of one level
        of detail do not serve another, so a detail switch flushes the
        resident set — the stream's cumulative hit statistics keep
        accumulating across the switch.
        """
        self._resident.clear()

    def export_state(self) -> TemporalCacheState:
        """Snapshot the cross-frame state (resident set + counters).

        The resident ids are exported in cache order (insertion order
        of the backing dict), which is exactly the recency/arrival
        order LRU and FIFO evict by.
        """
        return TemporalCacheState(
            policy=self.policy,
            capacity_lines=self.capacity_lines,
            bytes_per_line=self.bytes_per_line,
            resident_ids=tuple(int(g) for g in self._resident),
            frames_observed=self._frames_observed,
            cumulative_accesses=self._cum_accesses,
            cumulative_hits=self._cum_hits,
        )

    def import_state(self, state: TemporalCacheState) -> None:
        """Restore a snapshot taken by :meth:`export_state`.

        The snapshot must come from a simulator with the same policy
        and geometry; local per-frame samples are discarded (they
        belong to the exporting instance) while the cumulative
        counters continue from the snapshot.
        """
        if state.policy != self.policy:
            raise ValidationError(
                f"cache state was exported under policy '{state.policy}', "
                f"this simulator runs '{self.policy}'"
            )
        if (
            state.capacity_lines != self.capacity_lines
            or state.bytes_per_line != self.bytes_per_line
        ):
            raise ValidationError(
                "cache state geometry mismatch: exported "
                f"{state.capacity_lines}x{state.bytes_per_line}B, simulator "
                f"has {self.capacity_lines}x{self.bytes_per_line}B"
            )
        if len(state.resident_ids) > self.capacity_lines:
            raise ValidationError("cache state holds more lines than capacity")
        if len(set(state.resident_ids)) != len(state.resident_ids):
            raise ValidationError("cache state resident ids must be unique")
        # Values are irrelevant across a frame boundary (see class
        # docstring); only membership and order must survive.
        self._resident = {int(g): 0.0 for g in state.resident_ids}
        self._samples = []
        self._frames_observed = state.frames_observed
        self._cum_accesses = state.cumulative_accesses
        self._cum_hits = state.cumulative_hits

    @property
    def samples(self) -> list[FrameCacheSample]:
        """Per-frame samples observed by this instance (oldest first).

        After :meth:`import_state` only post-restore frames appear
        here; the pre-restore history lives in the cumulative
        counters.
        """
        return list(self._samples)

    @property
    def frames_observed(self) -> int:
        return self._frames_observed

    @property
    def resident_lines(self) -> int:
        return len(self._resident)

    @property
    def cumulative_hit_rate(self) -> float:
        if self._cum_accesses == 0:
            return 0.0
        return self._cum_hits / self._cum_accesses

    @property
    def cold_hit_rate(self) -> float:
        """Frame 0's hit rate — the single-frame (cold cache) baseline."""
        if not self._samples:
            return 0.0
        return self._samples[0].report.hit_rate

    def per_frame_hit_rates(self) -> list[float]:
        return [s.report.hit_rate for s in self._samples]

    # ------------------------------------------------------------------
    # Frame observation
    # ------------------------------------------------------------------
    def observe_frame(
        self, trace: np.ndarray, tile_of_access: np.ndarray
    ) -> FrameCacheSample:
        """Feed one frame's feature-access trace through the warm cache.

        ``trace`` must be keyed by a frame-stable Gaussian identity;
        ``tile_of_access`` gives the traversal-order tile of each
        access, as in the cold simulations.
        """
        _validate_trace(trace, tile_of_access)
        n = trace.shape[0]
        if self.capacity_lines == 0:
            report = CacheReport(n, 0, n, 0, self.bytes_per_line)
            return self._record(report, carried_hits=0)

        if self.policy == "reuse_distance":
            report, carried = self._observe_rd(trace, tile_of_access)
        elif self.policy == "lru":
            report, carried = self._observe_lru(trace)
        else:  # fifo
            report, carried = self._observe_fifo(trace)
        return self._record(report, carried_hits=carried)

    def _record(self, report: CacheReport, carried_hits: int) -> FrameCacheSample:
        sample = FrameCacheSample(
            frame=self._frames_observed,
            report=report,
            carried_hits=carried_hits,
            cumulative_accesses=self._cum_accesses + report.accesses,
            cumulative_hits=self._cum_hits + report.hits,
        )
        self._samples.append(sample)
        self._frames_observed += 1
        self._cum_accesses = sample.cumulative_accesses
        self._cum_hits = sample.cumulative_hits
        return sample

    def _observe_rd(
        self, trace: np.ndarray, tile_of_access: np.ndarray
    ) -> tuple[CacheReport, int]:
        n = trace.shape[0]
        next_use = next_use_tiles(trace, tile_of_access)
        # Re-key carried lines with their first use in this frame.
        first_use: dict[int, float] = {}
        for i in range(n - 1, -1, -1):
            first_use[int(trace[i])] = float(tile_of_access[i])
        resident = {
            g: first_use.get(g, np.inf) for g in self._resident
        }
        heap: list[tuple[float, int]] = [(-nu, g) for g, nu in resident.items()]
        heapq.heapify(heap)

        hits = 0
        carried = 0
        touched: set[int] = set()
        for i in range(n):
            g = int(trace[i])
            nu = float(next_use[i])
            if g in resident:
                hits += 1
                if g not in touched:
                    carried += 1
                touched.add(g)
                resident[g] = nu
                heapq.heappush(heap, (-nu, g))
                continue
            touched.add(g)
            if len(resident) >= self.capacity_lines:
                while heap:
                    neg_nu, victim = heapq.heappop(heap)
                    if victim in resident and resident[victim] == -neg_nu:
                        del resident[victim]
                        break
                else:
                    raise SimulationError("eviction heap exhausted with full cache")
            resident[g] = nu
            heapq.heappush(heap, (-nu, g))
        self._resident = resident
        return (
            CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line),
            carried,
        )

    def _observe_lru(self, trace: np.ndarray) -> tuple[CacheReport, int]:
        n = trace.shape[0]
        resident = self._resident
        hits = 0
        carried = 0
        touched: set[int] = set()
        for i in range(n):
            g = int(trace[i])
            if g in resident:
                hits += 1
                if g not in touched:
                    carried += 1
                del resident[g]
            elif len(resident) >= self.capacity_lines:
                oldest = next(iter(resident))
                del resident[oldest]
            touched.add(g)
            resident[g] = 0.0
        return (
            CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line),
            carried,
        )

    def _observe_fifo(self, trace: np.ndarray) -> tuple[CacheReport, int]:
        n = trace.shape[0]
        resident = self._resident
        hits = 0
        carried = 0
        touched: set[int] = set()
        for i in range(n):
            g = int(trace[i])
            if g in resident:
                hits += 1
                if g not in touched:
                    carried += 1
                touched.add(g)
                continue
            if len(resident) >= self.capacity_lines:
                oldest = next(iter(resident))
                del resident[oldest]
            touched.add(g)
            resident[g] = 0.0
        return (
            CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line),
            carried,
        )


def sweep_cache_sizes(
    trace: np.ndarray,
    tile_of_access: np.ndarray,
    sizes_bytes: list[int],
    bytes_per_line: int = 32,
    policy: str = "reuse_distance",
) -> dict[int, CacheReport]:
    """Hit rate across cache capacities (Fig. 17's x-axis)."""
    if policy not in POLICIES:
        raise ValidationError(f"unknown policy '{policy}'")
    results = {}
    for size in sizes_bytes:
        cache = POLICIES[policy](size // bytes_per_line, bytes_per_line)
        results[size] = cache.simulate(trace, tile_of_access)
    return results
