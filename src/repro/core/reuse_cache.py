"""The Gaussian Reuse Cache (Sec. V-D).

The tile engine touches one Gaussian feature record per (tile,
Gaussian) instance, in a fully deterministic order: tiles are walked
in traversal order and each tile reads its depth-sorted Gaussian list.
Because the Decomposition & Binning engine knows this sequence ahead
of time, the cache can precompute each access's *reuse distance* — the
tile index at which the feature will be needed again — and evict the
line whose next use is farthest away.  At tile granularity this is
Belady's optimal policy, realizable in hardware precisely because the
access trace is precomputable (the paper's key insight, Fig. 12).

This module simulates the RD policy together with LRU and FIFO
baselines used by the ablation study, and provides the size sweep of
Fig. 17.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, ValidationError


@dataclass(frozen=True)
class CacheReport:
    """Outcome of simulating one frame of feature fetches.

    Attributes
    ----------
    accesses / hits / misses:
        Access counters (one access per (tile, Gaussian) instance).
    capacity_lines:
        Cache capacity in feature records.
    bytes_per_line:
        Feature record size.
    """

    accesses: int
    hits: int
    misses: int
    capacity_lines: int
    bytes_per_line: int

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_bytes(self) -> float:
        return self.misses * self.bytes_per_line

    @property
    def total_bytes(self) -> float:
        return self.accesses * self.bytes_per_line

    @property
    def traffic_reduction(self) -> float:
        """Fraction of off-chip feature traffic removed (paper: 44.9%)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


def _validate_trace(trace: np.ndarray, tile_of_access: np.ndarray) -> None:
    if trace.shape != tile_of_access.shape:
        raise ValidationError("trace and tile ids must be aligned")
    if trace.ndim != 1:
        raise ValidationError("trace must be one-dimensional")


def next_use_tiles(trace: np.ndarray, tile_of_access: np.ndarray) -> np.ndarray:
    """For each access, the tile index of the same Gaussian's next
    access (``+inf`` when never reused).

    This is the quantity the D&B engine precomputes per (tile,
    Gaussian) pair in Fig. 12(a).
    """
    _validate_trace(trace, tile_of_access)
    n = trace.shape[0]
    next_use = np.full(n, np.inf)
    last_seen: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        g = int(trace[i])
        j = last_seen.get(g)
        if j is not None:
            next_use[i] = tile_of_access[j]
        last_seen[g] = i
    return next_use


class ReuseDistanceCache:
    """The paper's cache: evict the line whose precomputed next use is
    farthest in the tile traversal (optimal at tile granularity).

    Implementation notes: a lazy max-heap keyed by next-use tile holds
    eviction candidates; stale entries (superseded by a hit's Step-4
    update) are skipped on pop.  A global tile counter mirrors the
    hardware's subtract-and-compare (Fig. 12b), though simulating with
    absolute tile indices is equivalent.
    """

    def __init__(self, capacity_lines: int, bytes_per_line: int = 32) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line

    def simulate(
        self, trace: np.ndarray, tile_of_access: np.ndarray
    ) -> CacheReport:
        _validate_trace(trace, tile_of_access)
        n = trace.shape[0]
        if self.capacity_lines == 0:
            return CacheReport(n, 0, n, 0, self.bytes_per_line)

        next_use = next_use_tiles(trace, tile_of_access)
        resident: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        hits = 0
        for i in range(n):
            g = int(trace[i])
            nu = float(next_use[i])
            if g in resident:
                hits += 1
                # Step 4: refresh the line's reuse distance.
                resident[g] = nu
                heapq.heappush(heap, (-nu, g))
                continue
            # Miss: evict the farthest-reuse line if full (Steps 2-3).
            if len(resident) >= self.capacity_lines:
                while heap:
                    neg_nu, victim = heapq.heappop(heap)
                    if victim in resident and resident[victim] == -neg_nu:
                        del resident[victim]
                        break
                else:
                    raise SimulationError("eviction heap exhausted with full cache")
            resident[g] = nu
            heapq.heappush(heap, (-nu, g))
        return CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line)


class LRUCache:
    """Least-recently-used baseline (what a generic cache would do)."""

    def __init__(self, capacity_lines: int, bytes_per_line: int = 32) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line

    def simulate(
        self, trace: np.ndarray, tile_of_access: np.ndarray | None = None
    ) -> CacheReport:
        n = trace.shape[0]
        if self.capacity_lines == 0:
            return CacheReport(n, 0, n, 0, self.bytes_per_line)
        # dict preserves insertion order: re-inserting on touch gives LRU.
        resident: dict[int, None] = {}
        hits = 0
        for i in range(n):
            g = int(trace[i])
            if g in resident:
                hits += 1
                del resident[g]
            elif len(resident) >= self.capacity_lines:
                oldest = next(iter(resident))
                del resident[oldest]
            resident[g] = None
        return CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line)


class FIFOCache:
    """First-in-first-out baseline."""

    def __init__(self, capacity_lines: int, bytes_per_line: int = 32) -> None:
        if capacity_lines < 0:
            raise ValidationError("capacity cannot be negative")
        self.capacity_lines = capacity_lines
        self.bytes_per_line = bytes_per_line

    def simulate(
        self, trace: np.ndarray, tile_of_access: np.ndarray | None = None
    ) -> CacheReport:
        n = trace.shape[0]
        if self.capacity_lines == 0:
            return CacheReport(n, 0, n, 0, self.bytes_per_line)
        resident: dict[int, None] = {}
        hits = 0
        for i in range(n):
            g = int(trace[i])
            if g in resident:
                hits += 1
                continue
            if len(resident) >= self.capacity_lines:
                oldest = next(iter(resident))
                del resident[oldest]
            resident[g] = None
        return CacheReport(n, hits, n - hits, self.capacity_lines, self.bytes_per_line)


POLICIES = {
    "reuse_distance": ReuseDistanceCache,
    "lru": LRUCache,
    "fifo": FIFOCache,
}


def sweep_cache_sizes(
    trace: np.ndarray,
    tile_of_access: np.ndarray,
    sizes_bytes: list[int],
    bytes_per_line: int = 32,
    policy: str = "reuse_distance",
) -> dict[int, CacheReport]:
    """Hit rate across cache capacities (Fig. 17's x-axis)."""
    if policy not in POLICIES:
        raise ValidationError(f"unknown policy '{policy}'")
    results = {}
    for size in sizes_bytes:
        cache = POLICIES[policy](size // bytes_per_line, bytes_per_line)
        results[size] = cache.simulate(trace, tile_of_access)
    return results
