"""fp16 datapath emulation helpers for the GBU Row PEs.

The Row-Centric Tile PE computes in 16-bit floating point (Sec. VI-B),
which is the sole source of the <0.1 PSNR quality difference in
Tab. IV/V.  These helpers quantize arrays through IEEE half precision
and measure the quantization error, so tests can bound the datapath's
numerical behavior independently of full renders.
"""

from __future__ import annotations

import numpy as np


def quantize_fp16(values: np.ndarray) -> np.ndarray:
    """Round-trip an array through IEEE fp16, returned as float64."""
    return np.asarray(values).astype(np.float16).astype(np.float64)


def quantization_error(values: np.ndarray) -> np.ndarray:
    """Absolute error introduced by one fp16 round trip."""
    values = np.asarray(values, dtype=np.float64)
    return np.abs(values - quantize_fp16(values))


def max_relative_error(values: np.ndarray) -> float:
    """Worst relative fp16 error over the array (0 for all-zero input).

    For normal fp16 values this is bounded by 2^-11 (about 4.9e-4);
    subnormals and overflow make it larger, which is why the Row PE
    keeps thresholds and coordinates in well-scaled ranges.
    """
    values = np.asarray(values, dtype=np.float64)
    mask = values != 0
    if not np.any(mask):
        return 0.0
    err = quantization_error(values)[mask] / np.abs(values[mask])
    return float(err.max())


FP16_UNIT_ROUNDOFF = 2.0 ** -11
FP16_MAX = 65504.0
