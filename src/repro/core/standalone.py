"""GBU-Standalone: a full 3D-GS accelerator built around the GBU
(Sec. VI-F, Tab. VI/VII).

The plug-in GBU accelerates only Rendering Step 3; GBU-Standalone adds
hardware for Steps 1 and 2 following GS-Core's Culling / Conversion /
Sorting units so the whole pipeline runs without a GPU:

* a **Preprocess Unit** that culls and projects Gaussians and
  evaluates SH color (one Gaussian per cycle through a deep pipeline),
* a **Sort Unit** that depth-sorts with a hardware merge network
  (``k`` keys per cycle per pass over ``log`` passes),
* the unmodified GBU (D&B + Tile Engine + Reuse Cache) for Step 3.

Area and power add the paper's Tab. VI deltas on top of the GBU
modules; the three stages run chunk-pipelined like the plug-in
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gbu import GBUConfig, GBUDevice, GBUReport
from repro.core.pipeline import chunked_overlap_seconds
from repro.errors import ValidationError
from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.projection import project
from repro.gpu.specs import GBU_SPEC, GBUSpec
from repro.gpu.workload import ScaleFactors


@dataclass(frozen=True)
class StandaloneSpec:
    """Hardware parameters of GBU-Standalone (Tab. VI row).

    The Step-1/2 units follow GS-Core's design point: their area and
    power are the difference between the paper's GBU-Standalone totals
    (1.78 mm2 / 0.78 W) and the GBU's own modules (0.90 mm2 / 0.22 W).
    """

    gbu: GBUSpec = GBU_SPEC
    preprocess_gaussians_per_cycle: float = 1.0
    sort_keys_per_cycle: float = 4.0
    preprocess_area_mm2: float = 0.45
    preprocess_power_w: float = 0.28
    sort_area_mm2: float = 0.43
    sort_power_w: float = 0.28

    @property
    def area_mm2(self) -> float:
        return self.gbu.area_mm2 + self.preprocess_area_mm2 + self.sort_area_mm2

    @property
    def power_w(self) -> float:
        return self.gbu.power_w + self.preprocess_power_w + self.sort_power_w

    @property
    def step3_area_mm2(self) -> float:
        """Area of the Step-3 processing elements only (Tab. VI's
        'Step 3 PE' column): Row PEs + Row Generation."""
        return (
            self.gbu.module("Row PEs").area_mm2
            + self.gbu.module("Row Generation").area_mm2
        )

    @property
    def step3_power_w(self) -> float:
        return (
            self.gbu.module("Row PEs").power_w
            + self.gbu.module("Row Generation").power_w
        )


STANDALONE_SPEC = StandaloneSpec()


@dataclass
class StandaloneReport:
    """Timing and energy of one GBU-Standalone frame."""

    preprocess_seconds: float
    sort_seconds: float
    gbu: GBUReport
    frame_seconds: float
    energy_j: float

    @property
    def fps(self) -> float:
        return 1.0 / self.frame_seconds

    @property
    def image(self) -> np.ndarray:
        return self.gbu.image


class GBUStandalone:
    """A standalone 3D-GS accelerator: Steps 1-3 in hardware."""

    def __init__(
        self,
        spec: StandaloneSpec = STANDALONE_SPEC,
        config: GBUConfig = GBUConfig(),
    ) -> None:
        self.spec = spec
        self.device = GBUDevice(spec=spec.gbu, config=config)

    def render(
        self,
        cloud: GaussianCloud,
        camera: Camera,
        scales: ScaleFactors = ScaleFactors(),
    ) -> StandaloneReport:
        """Render one frame fully on the accelerator."""
        if len(cloud) == 0:
            raise ValidationError("cannot render an empty cloud")
        projected = project(cloud, camera)

        clock = self.spec.gbu.clock_hz
        pre_cycles = len(cloud) / self.spec.preprocess_gaussians_per_cycle
        pre_s = pre_cycles * scales.gaussian / clock
        # Merge-sort network: n log2(n) key movements at k keys/cycle.
        n = max(len(projected), 2)
        sort_cycles = n * np.log2(n) / self.spec.sort_keys_per_cycle
        sort_s = sort_cycles * scales.gaussian / clock

        gbu = self.device.render(projected, scales=scales)

        # Three-stage chunk pipeline: preprocess -> sort -> blend.
        front = chunked_overlap_seconds(pre_s, sort_s, 8)
        frame_s = chunked_overlap_seconds(front, gbu.step3_seconds, 8)
        energy = self.spec.power_w * frame_s
        return StandaloneReport(
            preprocess_seconds=pre_s,
            sort_seconds=sort_s,
            gbu=gbu,
            frame_seconds=frame_s,
            energy_j=energy,
        )
