"""The Gaussian Blending Unit device model and programming interface.

Ties the pieces together: the D&B engine bins and decomposes, the
Row-Centric Tile Engine blends with the IRSS dataflow, the Gaussian
Reuse Cache filters feature traffic, and the chunk pipeline overlaps
binning with blending.  The device renders *functionally* (producing
the actual image through :func:`repro.core.irss.render_irss`, with an
fp16 datapath by default) and *temporally* (cycle accounting for every
engine), mirroring how the paper's emulator wraps the RTL design.

The C-style interface of Listing 1 (``GBU_render_image`` /
``GBU_check_status``) is provided on top of :class:`GBUDevice` for
API parity; Python callers normally use :meth:`GBUDevice.render`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_CHUNK_SIZE, DEFAULT_SETTINGS, RenderSettings
from repro.core.dnb import reuse_distance_table, run_dnb
from repro.core.irss import IRSSRenderResult, render_irss
from repro.core.pipeline import chunk_count, chunked_overlap_seconds
from repro.core.reuse_cache import (
    POLICIES,
    CacheReport,
    FrameCacheSample,
    TemporalReuseSimulator,
)
from repro.core.irss import TileRowWorkload
from repro.core.tile_engine import TileEngineReport, simulate_tile_engine
from repro.errors import DeviceBusyError, ValidationError
from repro.gaussians.projection import Projected2D
from repro.gaussians.sorting import RenderLists, build_render_lists
from repro.gpu.calibration import DEFAULT_GBU_CALIBRATION, GBUCalibration
from repro.gpu.specs import GBU_SPEC, GBUSpec, GPUSpec, ORIN_NX
from repro.gpu.workload import ScaleFactors


@dataclass(frozen=True)
class GBUConfig:
    """Feature configuration of a GBU instance (the Tab. V axes).

    Attributes
    ----------
    use_dnb:
        Decompose/bin on the GBU (exact intersections, chunk
        pipelining, reuse-distance precomputation).  When off, the GPU
        supplies conservatively binned lists.
    use_cache:
        Enable the Gaussian Reuse Cache.
    cache_policy:
        "reuse_distance" (the paper's), "lru" or "fifo" for ablation.
    fp16:
        Row PE datapath precision.
    chunk_size:
        Gaussians per chunk in the D&B/TilePE pipeline.
    interleaved_rows:
        Row-to-PE assignment (interleaved vs contiguous pairs).
    cross_tile_overlap:
        Let Row Buffers stream work across tile boundaries (design
        point); off inserts a per-tile barrier (ablation).
    backend:
        Rendering engine used for the functional IRSS render
        ("reference", "vectorized", "approx", ...).  The exact
        backends are pixel-identical, so there the choice only affects
        simulation wall-clock; "approx" additionally applies the
        process-wide :class:`~repro.render.approx.ApproxPolicy`
        (measured-quality approximation), which shrinks both the
        blending workload and the feature traffic the cache model
        sees.  ``None`` uses the process default.
    shards:
        Number of parallel tile engines the frame's tile grid is
        sharded across.  The functional image is unchanged (tile
        sharding is exact); compute time becomes the *slowest shard's*
        cycle count, so a deadline-missing stream can buy latency with
        hardware parallelism instead of quality.
    """

    use_dnb: bool = True
    use_cache: bool = True
    cache_policy: str = "reuse_distance"
    fp16: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    interleaved_rows: bool = True
    cross_tile_overlap: bool = True
    backend: str | None = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.cache_policy not in POLICIES:
            raise ValidationError(f"unknown cache policy '{self.cache_policy}'")
        if self.shards < 1:
            raise ValidationError("shards must be at least 1")
        if self.backend is not None:
            # Fail at configuration time with the registered-name list
            # instead of mid-render.  Imported here to keep the device
            # model importable without the backend registry.
            from repro.render.backends import get_backend

            get_backend(self.backend)


@dataclass
class GBUReport:
    """Everything one GBU frame produces.

    Timing attributes are *paper-scale* seconds (after applying the
    scene's workload scale); cycle counts are raw simulation values.
    """

    render: IRSSRenderResult
    tile_engine: TileEngineReport
    cache: CacheReport
    dnb_cycles: float
    compute_seconds: float
    memory_seconds: float
    dnb_seconds: float
    step3_seconds: float
    feature_bytes_fetched: float
    feature_bytes_demanded: float
    #: Set when the frame was rendered with a warm cross-frame cache
    #: (``cache_state=`` in :meth:`GBUDevice.render`); ``cache`` then
    #: holds the warm counters and this sample adds stream context.
    cache_sample: FrameCacheSample | None = None
    #: The frame-stable feature access trace and its tile ids, kept
    #: only for warm-cache renders (``cache_state=`` given).  A
    #: content-addressed frame cache replays this trace through a
    #: *different* session's :class:`TemporalReuseSimulator` so a
    #: dedup-served frame advances temporal cache state exactly as a
    #: fresh render would (see :meth:`GBUDevice.replay_step3_seconds`).
    feature_trace: np.ndarray | None = None
    feature_tiles: np.ndarray | None = None

    @property
    def image(self) -> np.ndarray:
        return self.render.image

    @property
    def utilization(self) -> float:
        return self.tile_engine.utilization

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds > self.compute_seconds

    @property
    def traffic_reduction(self) -> float:
        """Fraction of feature traffic the cache removed this frame.

        Delegates to :attr:`CacheReport.traffic_reduction` — the
        DRAM-burst scaling applied to ``feature_bytes_*`` multiplies
        misses and demand alike, so re-deriving the ratio here would
        just duplicate the cache's own byte accounting.
        """
        return self.cache.traffic_reduction


def _workload_subset(
    workload: TileRowWorkload, tile_ids: np.ndarray
) -> TileRowWorkload:
    """The workload restricted to ``tile_ids`` (other tiles zeroed).

    The tile engine skips tiles with no instance setup, so simulating a
    subset costs only the shard's own tiles.
    """
    from dataclasses import fields

    mask = np.zeros(workload.instance_setup.shape[0], dtype=bool)
    mask[tile_ids] = True
    kwargs = {}
    for f in fields(TileRowWorkload):
        arr = getattr(workload, f.name)
        out = np.zeros_like(arr)
        out[mask] = arr[mask]
        kwargs[f.name] = out
    return TileRowWorkload(**kwargs)


class GBUDevice:
    """A simulated Gaussian Blending Unit.

    Parameters
    ----------
    spec:
        Hardware parameters (clock, PEs, cache size).
    config:
        Feature configuration.
    calib:
        Engine cycle costs.
    host_gpu:
        The GPU whose DRAM the GBU shares (bandwidth source).
    """

    def __init__(
        self,
        spec: GBUSpec = GBU_SPEC,
        config: GBUConfig = GBUConfig(),
        calib: GBUCalibration = DEFAULT_GBU_CALIBRATION,
        host_gpu: GPUSpec = ORIN_NX,
    ) -> None:
        self.spec = spec
        self.config = config
        self.calib = calib
        self.host_gpu = host_gpu
        self._busy = False
        self._last_report: GBUReport | None = None

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def render(
        self,
        projected: Projected2D,
        settings: RenderSettings = DEFAULT_SETTINGS,
        scales: ScaleFactors = ScaleFactors(),
        lists: RenderLists | None = None,
        cache_state: TemporalReuseSimulator | None = None,
        feature_ids: np.ndarray | None = None,
    ) -> GBUReport:
        """Render one frame and account its cycles.

        Parameters
        ----------
        projected:
            Step-1 output (produced by the host GPU).
        settings:
            Blending thresholds shared with the reference.
        scales:
            Sim-to-paper workload scaling for the timing outputs.
        lists:
            Pre-binned render lists; only honored when the D&B engine
            is disabled (otherwise the engine bins exactly itself).
        cache_state:
            Warm cross-frame reuse-cache state (streaming mode).  When
            given, the frame's feature traffic runs through the
            persistent :class:`TemporalReuseSimulator` instead of a
            cold per-frame cache; build one with
            :meth:`new_cache_state` and reuse it across the frames of
            one stream session.
        feature_ids:
            Frame-stable identity per visible Gaussian (typically
            ``projected.source_index``), required for ``cache_state``
            to recognize the same Gaussian across frames.  Without it
            the raw visible indices are used, which is only valid when
            the visible set is frame-invariant.
        """
        # --- Decomposition & Binning ---
        if self.config.use_dnb:
            dnb = run_dnb(projected, calib=self.calib, exact=True)
            lists = dnb.lists
            transform = dnb.transform
            dnb_cycles = dnb.report.cycles
        else:
            if lists is None:
                lists = build_render_lists(projected)
            transform = None
            dnb_cycles = 0.0

        # --- Functional render (Row PEs, fp16 datapath) ---
        render = render_irss(
            projected,
            lists,
            settings=settings,
            transform=transform,
            fp16=self.config.fp16,
            backend=self.config.backend,
        )

        # --- Tile engine cycles ---
        engine = simulate_tile_engine(
            render.workload,
            spec=self.spec,
            calib=self.calib,
            interleaved=self.config.interleaved_rows,
            cross_tile_overlap=self.config.cross_tile_overlap,
        )

        # --- Feature traffic through the reuse cache ---
        # The approx backend culls per-tile membership before blending,
        # so the feature stream the cache sees must be the culled one:
        # approximation reduces memory traffic, not just compute.
        trace_lists = lists
        if self.resolved_backend_name() == "approx":
            from repro.render.approx import cull_render_lists

            trace_lists, _ = cull_render_lists(projected, trace_lists)
        trace, tile_of_access = reuse_distance_table(trace_lists)
        cache_sample: FrameCacheSample | None = None
        if cache_state is not None:
            stable = trace if feature_ids is None else feature_ids[trace]
            cache_sample = cache_state.observe_frame(stable, tile_of_access)
            cache = cache_sample.report
        else:
            capacity = self.spec.cache_lines if self.config.use_cache else 0
            cache = POLICIES[self.config.cache_policy](
                capacity, self.spec.feature_bytes
            ).simulate(trace, tile_of_access)

        # --- Paper-scale seconds ---
        # With N tile shards, N engines blend disjoint tile subsets in
        # parallel; the frame completes when the slowest shard does.
        # Memory time is *not* divided — the shards share one DRAM.
        compute_cycles = engine.total_cycles
        if self.config.shards > 1:
            from repro.render.sharding import shard_tile_ranges

            compute_cycles = max(
                simulate_tile_engine(
                    _workload_subset(render.workload, tiles),
                    spec=self.spec,
                    calib=self.calib,
                    interleaved=self.config.interleaved_rows,
                    cross_tile_overlap=self.config.cross_tile_overlap,
                ).total_cycles
                for tiles in shard_tile_ranges(trace_lists, self.config.shards)
            )
        compute_s = compute_cycles * scales.fragment / self.spec.clock_hz
        demanded, feature_fetch, memory_s = self._blend_memory_seconds(
            cache, render.image.shape[0], render.image.shape[1], scales
        )
        dnb_s = dnb_cycles * scales.instance / self.spec.clock_hz

        # --- Chunk pipeline: D&B overlaps the (roofline) blending ---
        blend_s = max(compute_s, memory_s)
        if self.config.use_dnb:
            n_chunks = chunk_count(len(projected), self.config.chunk_size)
            step3_s = chunked_overlap_seconds(dnb_s, blend_s, n_chunks)
        else:
            step3_s = blend_s

        report = GBUReport(
            render=render,
            tile_engine=engine,
            cache=cache,
            dnb_cycles=dnb_cycles,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            dnb_seconds=dnb_s,
            step3_seconds=step3_s,
            feature_bytes_fetched=feature_fetch,
            feature_bytes_demanded=demanded,
            cache_sample=cache_sample,
            feature_trace=stable if cache_state is not None else None,
            feature_tiles=tile_of_access if cache_state is not None else None,
        )
        self._last_report = report
        return report

    def _blend_memory_seconds(
        self, cache: CacheReport, height: int, width: int, scales: ScaleFactors
    ) -> tuple[float, float, float]:
        """Feature-stream byte counters and DRAM seconds for one frame.

        Every miss pulls the fp32 source record at DRAM burst
        granularity; hits are served from the 32 B fp16 lines on chip.
        Index lists and framebuffer writeback always go off-chip.
        Returns ``(demanded, feature_fetch, memory_seconds)``.  The
        arithmetic (order included) is shared verbatim between
        :meth:`render` and :meth:`replay_step3_seconds` so a replayed
        frame's timing is bit-identical to the rendered original.
        """
        demanded = cache.accesses * self.spec.miss_burst_bytes * scales.instance
        feature_fetch = cache.misses * self.spec.miss_burst_bytes * scales.instance
        index_bytes = cache.accesses * self.spec.index_bytes * scales.instance
        pixels = height * width
        framebuffer_bytes = (
            pixels * self.spec.framebuffer_bytes_per_pixel * scales.pixel
        )
        fetched = feature_fetch + index_bytes + framebuffer_bytes
        bandwidth = self.host_gpu.dram_bandwidth * self.calib.gbu_dram_share
        memory_s = fetched / bandwidth
        return demanded, feature_fetch, memory_s

    def replay_step3_seconds(
        self,
        cache: CacheReport,
        height: int,
        width: int,
        scales: ScaleFactors,
        compute_seconds: float,
    ) -> float:
        """Step-3 seconds for a frame served from a content cache.

        A dedup-served frame skips the functional render but its
        *timing* must match a fresh render bit-for-bit: the caller
        replays the cached feature trace through its own session's
        :class:`TemporalReuseSimulator` (yielding ``cache``) and passes
        the cached ``compute_seconds``; this method reapplies the same
        memory roofline as :meth:`render`.  Only valid for streaming
        configurations (``use_dnb=False``), where step 3 is the plain
        compute/memory max with no chunked D&B overlap.
        """
        if self.config.use_dnb:
            raise ValidationError(
                "replay_step3_seconds requires use_dnb=False (streaming mode)"
            )
        _, _, memory_s = self._blend_memory_seconds(cache, height, width, scales)
        return max(compute_seconds, memory_s)

    def resolved_backend_name(self) -> str:
        """The backend name this device will actually render with."""
        if self.config.backend is not None:
            return self.config.backend
        from repro.render.backends import default_backend

        return default_backend()

    def new_cache_state(self) -> TemporalReuseSimulator:
        """A fresh warm-cache state sized for this device.

        One state per stream session: capacity and policy come from the
        device's spec/config (capacity 0 when the cache is disabled, so
        streaming through a cacheless device degenerates to all
        misses).
        """
        capacity = self.spec.cache_lines if self.config.use_cache else 0
        return TemporalReuseSimulator(
            capacity_lines=capacity,
            bytes_per_line=self.spec.feature_bytes,
            policy=self.config.cache_policy,
        )

    # ------------------------------------------------------------------
    # Listing-1 style interface
    # ------------------------------------------------------------------
    def GBU_render_image(
        self,
        height: int,
        width: int,
        input_feature: Projected2D,
        sorted_index: RenderLists | None,
        frame_buffer: np.ndarray,
        ch: int = 3,
        scales: ScaleFactors = ScaleFactors(),
        cache_state: TemporalReuseSimulator | None = None,
        feature_ids: np.ndarray | None = None,
    ) -> None:
        """C-interface shim of Listing 1.

        Triggers an asynchronous render into ``frame_buffer``; poll or
        block with :meth:`GBU_check_status`.  The ``sorted_index``
        argument carries the Step-2 output, as in the paper's API.
        The keyword extensions (``scales``, ``cache_state``,
        ``feature_ids``) mirror :meth:`render` so streaming servers can
        drive the device through the busy/handshake protocol.
        """
        if self._busy:
            raise DeviceBusyError("GBU busy: frame already in flight")
        if frame_buffer.shape != (height, width, ch):
            raise ValidationError(
                f"frame buffer must be ({height}, {width}, {ch})"
            )
        if (width, height) != input_feature.image_size:
            raise ValidationError("frame buffer does not match projection size")
        if ch != 3:
            raise ValidationError("this model implements 3 color channels")
        self._busy = True
        report = self.render(
            input_feature,
            scales=scales,
            lists=sorted_index,
            cache_state=cache_state,
            feature_ids=feature_ids,
        )
        self._pending_copy = (frame_buffer, report.image)

    def GBU_check_status(self, blocking: bool = False) -> int:
        """Return 1 while a frame is in flight, 0 when idle.

        With ``blocking=True`` the (simulated) frame completes: the
        image lands in the caller's frame buffer and 0 is returned.
        GBU does not synchronize with any CUDA stream by itself — this
        call is how the GPU/GBU frame pipeline hands over buffers.
        """
        if not self._busy:
            return 0
        if not blocking:
            return 1
        frame_buffer, image = self._pending_copy
        frame_buffer[...] = image
        self._busy = False
        return 0

    @property
    def last_report(self) -> GBUReport:
        if self._last_report is None:
            raise ValidationError("no frame rendered yet")
        return self._last_report
