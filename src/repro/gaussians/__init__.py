"""3D Gaussian Splatting substrate: scene representation and the
reference rendering pipeline (Rendering Steps 1-3 of the paper).

Modules
-------
gaussian:
    Structure-of-arrays container for a cloud of 3D Gaussians.
sh:
    Real spherical harmonics evaluation for view-dependent color.
camera:
    Pinhole camera model with look-at and orbit constructors.
projection:
    Rendering Step 1 — EWA projection of 3D Gaussians to 2D screen
    Gaussians with depth and color.
tiles:
    16x16 tile grid and conservative Gaussian-to-tile binning.
sorting:
    Rendering Step 2 — per-tile depth ordering (render lists).
rasterizer:
    Rendering Step 3 — reference Parallel Fragment Shading (PFS)
    rasterizer, numerically equivalent to the 3DGS CUDA kernel.
"""

from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.camera import Camera
from repro.gaussians.projection import Projected2D, project
from repro.gaussians.tiles import TileGrid, bin_gaussians
from repro.gaussians.sorting import RenderLists, build_render_lists
from repro.gaussians.rasterizer import RenderResult, render_reference

__all__ = [
    "GaussianCloud",
    "Camera",
    "Projected2D",
    "project",
    "TileGrid",
    "bin_gaussians",
    "RenderLists",
    "build_render_lists",
    "RenderResult",
    "render_reference",
]
