"""Rendering Step 3 — reference Parallel Fragment Shading rasterizer.

This is the numerical reference for the whole repository: a faithful
re-implementation of the 3DGS tile-based CUDA kernel's observable
behavior (Sec. II-B of the paper).  Per tile, Gaussians are processed
in depth order; for each Gaussian the Mahalanobis form of Eq. 7 is
evaluated at every pixel of the tile in lockstep (the PFS dataflow),
alpha is computed per Eq. 5, and front-to-back alpha blending per
Eq. 6 with per-pixel early termination.

Besides the image, the rasterizer returns the workload statistics the
paper's profiling sections are built on: fragments shaded vs.
significant, per-tile processed-Gaussian counts (early termination
shortens tails), and per-pixel contributor counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_SETTINGS, FLOPS, RenderSettings
from repro.errors import RenderError
from repro.gaussians.projection import Projected2D
from repro.gaussians.sorting import RenderLists, build_render_lists
from repro.gaussians.tiles import TileGrid


@dataclass
class RenderStats:
    """Workload counters accumulated while rasterizing one image.

    Attributes
    ----------
    fragments_shaded:
        Fragments whose Eq. 7 form was evaluated (for PFS this is
        every pixel of every (tile, Gaussian) instance on pixels that
        had not yet terminated).
    fragments_significant:
        Fragments whose alpha cleared ``alpha_min`` and were blended.
    instances:
        (tile, Gaussian) pairs considered.
    instances_processed:
        Pairs actually processed before whole-tile early termination.
    eq7_flops:
        FLOPs charged for Eq. 7 evaluation under the paper's
        convention (11 per PFS fragment).
    pixels:
        Number of pixels in the image.
    """

    fragments_shaded: int = 0
    fragments_significant: int = 0
    instances: int = 0
    instances_processed: int = 0
    eq7_flops: int = 0
    pixels: int = 0

    @property
    def significant_fraction(self) -> float:
        """Share of shaded fragments that actually contributed
        (Challenge 2 reports 7.6-13.7% across app types)."""
        if self.fragments_shaded == 0:
            return 0.0
        return self.fragments_significant / self.fragments_shaded

    @property
    def fragments_per_instance(self) -> float:
        if self.instances_processed == 0:
            return 0.0
        return self.fragments_shaded / self.instances_processed


@dataclass
class RenderResult:
    """Output of a rasterizer: image plus diagnostics.

    Attributes
    ----------
    image:
        (H, W, 3) float64 linear RGB in [0, ~1].
    transmittance:
        (H, W) remaining transmittance per pixel.
    n_contrib:
        (H, W) int32 count of blended fragments per pixel.
    stats:
        Aggregated :class:`RenderStats`.
    """

    image: np.ndarray
    transmittance: np.ndarray
    n_contrib: np.ndarray
    stats: RenderStats


def render_reference(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
    backend: str | None = None,
) -> RenderResult:
    """Rasterize with the PFS dataflow through a selectable backend.

    Parameters
    ----------
    projected:
        Output of Rendering Step 1.
    lists:
        Depth-sorted render lists (Step 2); built on demand if omitted.
    settings:
        Blending thresholds and background color.
    backend:
        Rendering engine name ("reference", "vectorized", ...); every
        backend is pixel-exact, so this only selects an execution
        strategy.  ``None`` uses the process default (see
        :mod:`repro.render.backends`).
    """
    from repro.render.backends import resolve_backend

    return resolve_backend(backend).render_pfs(
        projected, lists=lists, settings=settings
    )


def render_reference_loop(
    projected: Projected2D,
    lists: RenderLists | None = None,
    settings: RenderSettings = DEFAULT_SETTINGS,
) -> RenderResult:
    """The scalar per-(tile, Gaussian) PFS loop (the "reference" backend)."""
    if lists is None:
        lists = build_render_lists(projected)
    grid = lists.grid
    width, height = projected.image_size
    if (grid.width, grid.height) != (width, height):
        raise RenderError("tile grid does not match projection resolution")

    image = np.zeros((height, width, 3), dtype=np.float64)
    transmittance = np.ones((height, width), dtype=np.float64)
    n_contrib = np.zeros((height, width), dtype=np.int32)
    stats = RenderStats(pixels=width * height)

    for tile_id in range(grid.n_tiles):
        members = lists.per_tile[tile_id]
        stats.instances += len(members)
        if len(members) == 0:
            continue
        _render_tile(
            tile_id, members, projected, grid, settings,
            image, transmittance, n_contrib, stats,
        )

    background = settings.background_array()
    image += transmittance[:, :, None] * background[None, None, :]
    return RenderResult(
        image=image, transmittance=transmittance, n_contrib=n_contrib, stats=stats
    )


def _render_tile(
    tile_id: int,
    members: np.ndarray,
    projected: Projected2D,
    grid: TileGrid,
    settings: RenderSettings,
    image: np.ndarray,
    transmittance: np.ndarray,
    n_contrib: np.ndarray,
    stats: RenderStats,
) -> None:
    """Blend one tile in place, mimicking the CUDA kernel's PFS loop."""
    x0, y0, x1, y1 = grid.tile_bounds(tile_id)
    ys, xs = np.mgrid[y0:y1, x0:x1]
    # Pixel centers at half-integer coordinates.
    px = xs.astype(np.float64) + 0.5
    py = ys.astype(np.float64) + 0.5

    tile_rgb = image[y0:y1, x0:x1]
    tile_t = transmittance[y0:y1, x0:x1]
    tile_n = n_contrib[y0:y1, x0:x1]

    for g in members:
        active = tile_t > settings.transmittance_eps
        n_active = int(np.count_nonzero(active))
        if n_active == 0:
            # Whole tile terminated: the CUDA kernel's warps all retire.
            break
        stats.instances_processed += 1
        # PFS shades every not-yet-terminated pixel in lockstep.
        stats.fragments_shaded += n_active
        stats.eq7_flops += n_active * FLOPS.pfs_flops_per_fragment

        a, b, c = projected.conics[g]
        dx = px - projected.means2d[g, 0]
        dy = py - projected.means2d[g, 1]
        power = a * dx * dx + 2.0 * b * dx * dy + c * dy * dy

        alpha = projected.opacities[g] * np.exp(-0.5 * power)
        alpha = np.minimum(alpha, settings.alpha_max)
        # Truncation: keep fragments inside the thresholded ellipse.
        # Th encodes alpha >= alpha_min capped at the 3-sigma bound, so
        # this single test is the one both PFS and IRSS must agree on.
        contributes = active & (power <= projected.thresholds[g])
        k = int(np.count_nonzero(contributes))
        if k == 0:
            continue
        stats.fragments_significant += k

        weight = np.where(contributes, tile_t * alpha, 0.0)
        tile_rgb += weight[:, :, None] * projected.colors[g][None, None, :]
        tile_t *= np.where(contributes, 1.0 - alpha, 1.0)
        tile_n += contributes.astype(np.int32)


def render_image(
    projected: Projected2D, settings: RenderSettings = DEFAULT_SETTINGS
) -> np.ndarray:
    """Convenience wrapper returning just the image array."""
    return render_reference(projected, settings=settings).image
