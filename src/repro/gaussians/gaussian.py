"""Structure-of-arrays container for a cloud of 3D Gaussians.

A scene is a set of elliptical 3D Gaussian kernels (Sec. II-A of the
paper).  Each kernel ``i`` is parameterized by:

* a mean ``mu_i`` in world space,
* a covariance ``Sigma_i = R_i^T S_i^T S_i R_i`` factored into a
  rotation (stored as a unit quaternion) and per-axis scales,
* an opacity factor ``o_i`` in (0, 1],
* spherical-harmonics coefficients ``sh_i`` for view-dependent color.

The storage layout is structure-of-arrays (one numpy array per field)
because every stage of the pipeline is vectorized over Gaussians.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.sh import num_sh_coeffs


def quaternion_to_rotation(quats: np.ndarray) -> np.ndarray:
    """Convert unit quaternions (w, x, y, z) to rotation matrices.

    Parameters
    ----------
    quats:
        Array of shape (N, 4).  Quaternions are normalized internally,
        so callers may pass unnormalized values.

    Returns
    -------
    Array of shape (N, 3, 3) of rotation matrices.
    """
    quats = np.asarray(quats, dtype=np.float64)
    if quats.ndim != 2 or quats.shape[1] != 4:
        raise ValidationError(f"quaternions must have shape (N, 4), got {quats.shape}")
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    if np.any(norms < 1e-12):
        raise ValidationError("zero-norm quaternion encountered")
    w, x, y, z = (quats / norms).T

    rot = np.empty((quats.shape[0], 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    rot[:, 0, 1] = 2.0 * (x * y - w * z)
    rot[:, 0, 2] = 2.0 * (x * z + w * y)
    rot[:, 1, 0] = 2.0 * (x * y + w * z)
    rot[:, 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    rot[:, 1, 2] = 2.0 * (y * z - w * x)
    rot[:, 2, 0] = 2.0 * (x * z - w * y)
    rot[:, 2, 1] = 2.0 * (y * z + w * x)
    rot[:, 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return rot


@dataclass
class GaussianCloud:
    """A cloud of N 3D Gaussians in structure-of-arrays layout.

    Attributes
    ----------
    means:
        (N, 3) world-space centers ``mu``.
    scales:
        (N, 3) per-axis standard deviations (the diagonal of ``S``).
    quats:
        (N, 4) unit quaternions (w, x, y, z) encoding the rotation ``R``.
    opacities:
        (N,) opacity factors ``o`` in (0, 1].
    sh:
        (N, K, 3) spherical-harmonics coefficients, where
        ``K = (degree + 1)^2``.
    """

    means: np.ndarray
    scales: np.ndarray
    quats: np.ndarray
    opacities: np.ndarray
    sh: np.ndarray

    def __post_init__(self) -> None:
        self.means = np.ascontiguousarray(self.means, dtype=np.float64)
        self.scales = np.ascontiguousarray(self.scales, dtype=np.float64)
        self.quats = np.ascontiguousarray(self.quats, dtype=np.float64)
        self.opacities = np.ascontiguousarray(self.opacities, dtype=np.float64)
        self.sh = np.ascontiguousarray(self.sh, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.means.shape[0]

    @property
    def sh_degree(self) -> int:
        """Spherical-harmonics degree implied by the coefficient count."""
        k = self.sh.shape[1]
        degree = int(round(np.sqrt(k))) - 1
        if num_sh_coeffs(degree) != k:
            raise ValidationError(f"{k} SH coefficients is not a full degree")
        return degree

    def validate(self) -> None:
        """Check structural and numerical invariants; raise on failure."""
        n = self.means.shape[0]
        if self.means.ndim != 2 or self.means.shape[1] != 3:
            raise ValidationError(f"means must be (N, 3), got {self.means.shape}")
        if self.scales.shape != (n, 3):
            raise ValidationError(f"scales must be ({n}, 3), got {self.scales.shape}")
        if self.quats.shape != (n, 4):
            raise ValidationError(f"quats must be ({n}, 4), got {self.quats.shape}")
        if self.opacities.shape != (n,):
            raise ValidationError(f"opacities must be ({n},), got {self.opacities.shape}")
        if self.sh.ndim != 3 or self.sh.shape[0] != n or self.sh.shape[2] != 3:
            raise ValidationError(f"sh must be ({n}, K, 3), got {self.sh.shape}")
        if n == 0:
            return
        if not np.all(np.isfinite(self.means)):
            raise ValidationError("non-finite Gaussian means")
        if np.any(self.scales <= 0):
            raise ValidationError("scales must be strictly positive")
        if np.any(self.opacities <= 0) or np.any(self.opacities > 1):
            raise ValidationError("opacities must lie in (0, 1]")
        # Degree must be a complete band.
        _ = self.sh_degree

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def rotations(self) -> np.ndarray:
        """Rotation matrices ``R`` of shape (N, 3, 3)."""
        return quaternion_to_rotation(self.quats)

    def covariances(self) -> np.ndarray:
        """World-space 3D covariances ``Sigma = R^T S^T S R``, shape (N, 3, 3).

        This matches Eq. 1's factorization in the paper (Sec. II-A).
        """
        rot = self.rotations()
        # S R scales the rows of R; Sigma = (S R)^T (S R).
        sr = self.scales[:, :, None] * rot
        return np.einsum("nij,nik->njk", sr, sr)

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def subset(self, index: np.ndarray) -> "GaussianCloud":
        """Return a new cloud containing only the selected Gaussians."""
        return GaussianCloud(
            means=self.means[index],
            scales=self.scales[index],
            quats=self.quats[index],
            opacities=self.opacities[index],
            sh=self.sh[index],
        )

    def translated(self, offset: np.ndarray) -> "GaussianCloud":
        """Return a copy of the cloud rigidly translated by ``offset``."""
        offset = np.asarray(offset, dtype=np.float64).reshape(1, 3)
        return GaussianCloud(
            means=self.means + offset,
            scales=self.scales.copy(),
            quats=self.quats.copy(),
            opacities=self.opacities.copy(),
            sh=self.sh.copy(),
        )

    def perturbed(
        self,
        rng: np.random.Generator,
        position_sigma: float = 0.0,
        scale_sigma: float = 0.0,
        opacity_sigma: float = 0.0,
        sh_sigma: float = 0.0,
    ) -> "GaussianCloud":
        """Return a noisy copy simulating reconstruction error.

        Used by the quality benchmarks: the "true" cloud renders ground
        truth and a perturbed copy plays the role of the model fitted
        from photographs (see DESIGN.md, Substitution 5).
        """
        n = len(self)
        means = self.means + rng.normal(0.0, position_sigma, (n, 3))
        scales = self.scales * np.exp(rng.normal(0.0, scale_sigma, (n, 3)))
        opacities = np.clip(
            self.opacities * np.exp(rng.normal(0.0, opacity_sigma, n)), 1e-4, 1.0
        )
        sh = self.sh + rng.normal(0.0, sh_sigma, self.sh.shape)
        return GaussianCloud(
            means=means, scales=scales, quats=self.quats.copy(), opacities=opacities, sh=sh
        )

    @staticmethod
    def concatenate(clouds: list["GaussianCloud"]) -> "GaussianCloud":
        """Merge several clouds (all with the same SH degree) into one."""
        if not clouds:
            raise ValidationError("cannot concatenate an empty list of clouds")
        degrees = {c.sh_degree for c in clouds}
        if len(degrees) != 1:
            raise ValidationError(f"mixed SH degrees {degrees} cannot be concatenated")
        return GaussianCloud(
            means=np.concatenate([c.means for c in clouds]),
            scales=np.concatenate([c.scales for c in clouds]),
            quats=np.concatenate([c.quats for c in clouds]),
            opacities=np.concatenate([c.opacities for c in clouds]),
            sh=np.concatenate([c.sh for c in clouds]),
        )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @staticmethod
    def empty(sh_degree: int = 2) -> "GaussianCloud":
        """An empty cloud with the given SH degree."""
        k = num_sh_coeffs(sh_degree)
        return GaussianCloud(
            means=np.zeros((0, 3)),
            scales=np.zeros((0, 3)),
            quats=np.zeros((0, 4)),
            opacities=np.zeros((0,)),
            sh=np.zeros((0, k, 3)),
        )

    @staticmethod
    def random(
        n: int,
        rng: np.random.Generator,
        extent: float = 1.0,
        scale_range: tuple[float, float] = (0.01, 0.1),
        sh_degree: int = 2,
        anisotropy: float = 3.0,
    ) -> "GaussianCloud":
        """Draw a random cloud, mainly for tests and micro-benchmarks.

        Parameters
        ----------
        n:
            Number of Gaussians.
        rng:
            Numpy random generator (callers own the seed).
        extent:
            Means are uniform in ``[-extent, extent]^3``.
        scale_range:
            Log-uniform range for the geometric-mean scale.
        sh_degree:
            Spherical-harmonics degree of the color model.
        anisotropy:
            Maximum per-axis ratio applied on top of the base scale.
        """
        if n < 0:
            raise ValidationError("n must be non-negative")
        k = num_sh_coeffs(sh_degree)
        base = np.exp(
            rng.uniform(np.log(scale_range[0]), np.log(scale_range[1]), size=(n, 1))
        )
        ratios = np.exp(rng.uniform(-np.log(anisotropy), np.log(anisotropy), size=(n, 3)))
        sh = rng.normal(0.0, 0.12, size=(n, k, 3))
        # Bias the DC band so mean colors land in a displayable range.
        sh[:, 0, :] = rng.uniform(0.2, 1.2, size=(n, 3))
        return GaussianCloud(
            means=rng.uniform(-extent, extent, size=(n, 3)),
            scales=base * ratios,
            quats=rng.normal(size=(n, 4)),
            opacities=rng.uniform(0.2, 0.99, size=n),
            sh=sh,
        )
